/**
 * @file
 * Table 1 — applications and execution details: number of
 * executions, global and local idle-period counts, total traced
 * I/Os. Paper values printed alongside for comparison.
 */

#include <iostream>

#include "bench_common.hpp"

using namespace pcap;

namespace {

struct PaperRow
{
    const char *app;
    int executions;
    int globalIdle;
    int localIdle;
    long totalIos;
};

constexpr PaperRow kPaper[] = {
    {"mozilla", 49, 365, 1001, 90843},
    {"writer", 33, 112, 358, 133016},
    {"impress", 19, 87, 234, 220455},
    {"xemacs", 37, 94, 103, 79720},
    {"nedit", 29, 29, 29, 6663},
    {"mplayer", 31, 51, 111, 512433},
};

} // namespace

int
main()
{
    bench::printHeader(
        "Table 1: applications and execution details",
        "measured = this reproduction's synthetic workload; "
        "paper = Gniady et al., Table 1.");

    sim::Evaluation eval(bench::standardConfig());

    TextTable table;
    table.setHeader({"app", "executions", "global idle", "(paper)",
                     "local idle", "(paper)", "total I/Os",
                     "(paper)"});

    for (const PaperRow &paper : kPaper) {
        const auto row = eval.table1(paper.app);
        table.addRow({paper.app, std::to_string(row.executions),
                      std::to_string(row.globalIdlePeriods),
                      std::to_string(paper.globalIdle),
                      std::to_string(row.localIdlePeriods),
                      std::to_string(paper.localIdle),
                      std::to_string(row.totalIos),
                      std::to_string(paper.totalIos)});
    }
    table.print(std::cout);
    return 0;
}
