/**
 * @file
 * Figure 8 — energy distribution.
 *
 * For every application: the energy of the Base system (no power
 * management), the Ideal oracle, TP, LT and PCAP, broken into Busy
 * I/O, Idle<Breakeven, Idle>Breakeven and Power-cycle components,
 * normalized to the Base total.
 *
 * Paper reference: Base spends ~83% of energy idle (82% in periods
 * above breakeven); savings averages: Ideal 78%, TP 72%, LT 75%,
 * PCAP 76%.
 */

#include <iostream>

#include "bench_common.hpp"

using namespace pcap;

namespace {

void
addEnergyRow(TextTable &table, const std::string &app,
             const std::string &label,
             const power::EnergyLedger &ledger,
             const power::EnergyLedger &base,
             std::vector<double> *savings)
{
    const double base_total = base.total();
    auto frac = [base_total](double joules) {
        return base_total > 0.0 ? joules / base_total : 0.0;
    };
    const double total_fraction = ledger.normalizedTo(base);
    table.addRow(
        {app, label,
         percentString(frac(
             ledger.get(power::EnergyCategory::BusyIo))),
         percentString(frac(
             ledger.get(power::EnergyCategory::IdleShort))),
         percentString(frac(
             ledger.get(power::EnergyCategory::IdleLong))),
         percentString(frac(
             ledger.get(power::EnergyCategory::PowerCycle))),
         percentString(total_fraction),
         percentString(1.0 - total_fraction)});
    if (savings)
        savings->push_back(1.0 - total_fraction);
}

} // namespace

int
main()
{
    bench::printHeader(
        "Figure 8: energy distribution (normalized to Base)",
        "Paper savings averages: Ideal 78%, TP 72%, LT 75%, "
        "PCAP 76%.");

    sim::Evaluation eval(bench::standardConfig());
    const std::vector<sim::PolicyConfig> policies = {
        sim::PolicyConfig::timeoutPolicy(),
        sim::PolicyConfig::learningTree(),
        sim::PolicyConfig::pcapBase(),
    };

    TextTable table;
    table.setHeader({"app", "policy", "busy", "idle<BE", "idle>BE",
                     "cycle", "total", "saved"});

    std::vector<double> ideal_savings;
    std::vector<std::vector<double>> policy_savings(policies.size());

    for (const std::string &app : eval.appNames()) {
        const power::EnergyLedger &base = eval.baseRun(app).energy;
        addEnergyRow(table, app, "Base", base, base, nullptr);
        addEnergyRow(table, app, "Ideal", eval.idealRun(app).energy,
                     base, &ideal_savings);
        for (std::size_t p = 0; p < policies.size(); ++p) {
            addEnergyRow(table, app, policies[p].label,
                         eval.globalRun(app, policies[p]).run.energy,
                         base, &policy_savings[p]);
        }
    }

    table.addRow({"AVERAGE", "Ideal", "", "", "", "", "",
                  percentString(bench::averageOf(ideal_savings))});
    for (std::size_t p = 0; p < policies.size(); ++p) {
        table.addRow({"AVERAGE", policies[p].label, "", "", "", "",
                      "",
                      percentString(
                          bench::averageOf(policy_savings[p]))});
    }
    table.print(std::cout);
    return 0;
}
