/**
 * @file
 * Ablation — unlearning on misprediction (extension, not in the
 * paper).
 *
 * The paper keeps every trained signature and relies on the
 * wait-window and context (history/fd) to suppress subpath-aliasing
 * mispredictions, suggesting only LRU replacement for stale entries
 * (Section 4.2). A natural extension is to *drop* an entry the
 * moment it mispredicts. This bench measures the trade: unlearning
 * removes repeat offenders but also forgets genuinely bimodal paths,
 * costing coverage.
 */

#include <iostream>

#include "bench_common.hpp"

using namespace pcap;

int
main()
{
    bench::printHeader(
        "Ablation (extension): drop table entries on misprediction",
        "Not in the paper; quantifies the design choice of keeping "
        "aliased entries and filtering contextually instead.");

    sim::Evaluation eval(bench::standardConfig());

    TextTable table;
    table.setHeader({"app", "policy", "hit", "miss", "not-predicted",
                     "entries"});

    for (bool unlearn : {false, true}) {
        sim::PolicyConfig pcap = sim::PolicyConfig::pcapBase();
        pcap.pcap.unlearnOnMisprediction = unlearn;
        pcap.label = unlearn ? "PCAP-unlearn" : "PCAP";
        std::vector<double> hit, miss;
        for (const std::string &app : eval.appNames()) {
            const auto outcome = eval.globalRun(app, pcap);
            table.addRow(
                {app, pcap.label,
                 percentString(outcome.run.accuracy.hitFraction()),
                 percentString(outcome.run.accuracy.missFraction()),
                 percentString(
                     outcome.run.accuracy.notPredictedFraction()),
                 std::to_string(outcome.tableEntries)});
            hit.push_back(outcome.run.accuracy.hitFraction());
            miss.push_back(outcome.run.accuracy.missFraction());
        }
        table.addRow({"AVERAGE", pcap.label,
                      percentString(bench::averageOf(hit)),
                      percentString(bench::averageOf(miss)), "", ""});
    }
    table.print(std::cout);
    return 0;
}
