/**
 * @file
 * Figure 7 — global shutdown predictor accuracy.
 *
 * The complete system-wide predictor: per-process local predictors
 * combined by the Global Shutdown Predictor, normalized to the
 * number of global idle periods.
 *
 * Paper reference (averages): TP 71% hit / 8% miss; LT 84% / 20%;
 * PCAP 86% / 10%.
 */

#include <iostream>

#include "bench_common.hpp"

using namespace pcap;

int
main()
{
    bench::printHeader(
        "Figure 7: global shutdown predictor accuracy",
        "Paper averages: TP 71% hit / 8% miss; LT 84% / 20%; "
        "PCAP 86% / 10%.");

    sim::Evaluation eval(bench::standardConfig());
    const std::vector<sim::PolicyConfig> policies = {
        sim::PolicyConfig::timeoutPolicy(),
        sim::PolicyConfig::learningTree(),
        sim::PolicyConfig::pcapBase(),
    };

    TextTable table;
    table.setHeader({"app", "policy", "hit", "not-predicted", "miss",
                     "periods"});

    std::vector<std::vector<double>> hit(policies.size());
    std::vector<std::vector<double>> miss(policies.size());

    for (const std::string &app : eval.appNames()) {
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const sim::AccuracyStats stats =
                eval.globalRun(app, policies[p]).run.accuracy;
            table.addRow({app, policies[p].label,
                          percentString(stats.hitFraction()),
                          percentString(stats.notPredictedFraction()),
                          percentString(stats.missFraction()),
                          std::to_string(stats.opportunities)});
            hit[p].push_back(stats.hitFraction());
            miss[p].push_back(stats.missFraction());
        }
    }
    for (std::size_t p = 0; p < policies.size(); ++p) {
        table.addRow({"AVERAGE", policies[p].label,
                      percentString(bench::averageOf(hit[p])), "",
                      percentString(bench::averageOf(miss[p])), ""});
    }
    table.print(std::cout);
    return 0;
}
