#include "reports.hpp"

#include <iostream>
#include <ostream>

#include <fstream>
#include <iomanip>
#include <optional>
#include <sstream>

#include "obs/perf.hpp"
#include "obs/provenance.hpp"
#include "power/disk_params.hpp"
#include "sim/drivers.hpp"
#include "sim/fleet.hpp"
#include "sim/trace_store.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "util/table.hpp"
#include "workload/app_model.hpp"

namespace pcap::bench {

namespace {

/** The named policies, resolved through the registry. */
std::vector<sim::PolicyConfig>
policiesByName(std::initializer_list<const char *> names)
{
    std::vector<sim::PolicyConfig> policies;
    policies.reserve(names.size());
    for (const char *name : names)
        policies.push_back(sim::policyByName(name));
    return policies;
}

/** Titled section header, exactly as the historical binaries. */
void
header(std::ostream &os, const std::string &title,
       const std::string &paper_note)
{
    os << "\n== " << title << " ==\n";
    if (!paper_note.empty())
        os << paper_note << "\n";
    os << "\n";
}

std::vector<sim::Cell>
globalCells(const std::vector<sim::PolicyConfig> &policies,
            bool withBase = false)
{
    std::vector<sim::Cell> cells;
    for (const std::string &app :
         workload::standardAppNames()) {
        for (const auto &policy : policies)
            cells.push_back({sim::CellMode::Global, app, policy});
        if (withBase)
            cells.push_back({sim::CellMode::Base, app, {}});
    }
    return cells;
}

// -- Table 1 ---------------------------------------------------

struct Table1PaperRow
{
    const char *app;
    int executions;
    int globalIdle;
    int localIdle;
    long totalIos;
};

constexpr Table1PaperRow kTable1Paper[] = {
    {"mozilla", 49, 365, 1001, 90843},
    {"writer", 33, 112, 358, 133016},
    {"impress", 19, 87, 234, 220455},
    {"xemacs", 37, 94, 103, 79720},
    {"nedit", 29, 29, 29, 6663},
    {"mplayer", 31, 51, 111, 512433},
};

void
reportTable1(ReportContext &ctx, std::ostream &os)
{
    header(os, "Table 1: applications and execution details",
           "measured = this reproduction's synthetic workload; "
           "paper = Gniady et al., Table 1.");

    TextTable table;
    table.setHeader({"app", "executions", "global idle", "(paper)",
                     "local idle", "(paper)", "total I/Os",
                     "(paper)"});

    for (const Table1PaperRow &paper : kTable1Paper) {
        const auto row = ctx.eval.table1(paper.app);
        table.addRow({paper.app, std::to_string(row.executions),
                      std::to_string(row.globalIdlePeriods),
                      std::to_string(paper.globalIdle),
                      std::to_string(row.localIdlePeriods),
                      std::to_string(paper.localIdle),
                      std::to_string(row.totalIos),
                      std::to_string(paper.totalIos)});
    }
    table.print(os);
}

std::vector<sim::Cell>
cellsTable1()
{
    std::vector<sim::Cell> cells;
    for (const std::string &app : workload::standardAppNames())
        cells.push_back({sim::CellMode::Table1, app, {}});
    return cells;
}

// -- Table 2 ---------------------------------------------------

void
reportTable2(ReportContext &, std::ostream &os)
{
    header(os,
           "Table 2: states and state transitions of the simulated "
           "disk",
           "Fujitsu MHF 2043AT, as used throughout the paper.");

    const power::DiskParams disk = power::fujitsuMhf2043at();

    TextTable table;
    table.setHeader({"parameter", "value", "paper"});
    table.addRow({"Busy power",
                  fixedString(disk.busyPowerW, 2) + " W", "2.2 W"});
    table.addRow({"Idle power",
                  fixedString(disk.idlePowerW, 2) + " W", "0.95 W"});
    table.addRow({"Standby power",
                  fixedString(disk.standbyPowerW, 2) + " W",
                  "0.13 W"});
    table.addRow({"Spin-up energy",
                  fixedString(disk.spinUpEnergyJ, 1) + " J",
                  "4.4 J"});
    table.addRow({"Shutdown energy",
                  fixedString(disk.shutdownEnergyJ, 2) + " J",
                  "0.36 J"});
    table.addRow({"Spin-up time",
                  fixedString(usToSeconds(disk.spinUpTime), 2) +
                      " s",
                  "1.6 s"});
    table.addRow({"Shutdown time",
                  fixedString(usToSeconds(disk.shutdownTime), 2) +
                      " s",
                  "0.67 s"});
    table.addRow({"Breakeven time (quoted)",
                  fixedString(usToSeconds(disk.breakevenTime), 2) +
                      " s",
                  "5.43 s"});
    table.addRow({"Breakeven time (derived)",
                  fixedString(disk.derivedBreakevenSeconds(), 2) +
                      " s",
                  "-"});
    table.print(os);

    const std::string problem = disk.validate();
    os << "\nconsistency check: "
       << (problem.empty() ? "OK" : problem) << "\n";
}

std::vector<sim::Cell>
cellsNone()
{
    return {};
}

// -- Table 3 ---------------------------------------------------

struct Table3PaperRow
{
    const char *app;
    int pcap, pcaph, pcapf, pcapfh;
};

constexpr Table3PaperRow kTable3Paper[] = {
    {"mozilla", 72, 99, 129, 139}, {"writer", 30, 36, 30, 36},
    {"impress", 34, 44, 44, 47},   {"xemacs", 13, 16, 13, 16},
    {"nedit", 6, 6, 6, 6},         {"mplayer", 24, 24, 26, 26},
};

std::vector<sim::PolicyConfig>
pcapVariantPolicies()
{
    return policiesByName({"PCAP", "PCAPh", "PCAPf", "PCAPfh"});
}

void
reportTable3(ReportContext &ctx, std::ostream &os)
{
    header(os,
           "Table 3: prediction-table storage requirements "
           "(entries)",
           "Paper: 6-139 entries; mozilla PCAPfh = 139 entries "
           "(556 bytes).");

    const std::vector<sim::PolicyConfig> policies =
        pcapVariantPolicies();

    TextTable table;
    table.setHeader({"app", "PCAP", "(paper)", "PCAPh", "(paper)",
                     "PCAPf", "(paper)", "PCAPfh", "(paper)",
                     "bytes (PCAPfh)"});

    for (const Table3PaperRow &paper : kTable3Paper) {
        std::vector<std::size_t> entries;
        for (const auto &policy : policies)
            entries.push_back(
                ctx.eval.globalRun(paper.app, policy).tableEntries);
        table.addRow({paper.app, std::to_string(entries[0]),
                      std::to_string(paper.pcap),
                      std::to_string(entries[1]),
                      std::to_string(paper.pcaph),
                      std::to_string(entries[2]),
                      std::to_string(paper.pcapf),
                      std::to_string(entries[3]),
                      std::to_string(paper.pcapfh),
                      std::to_string(entries[3] * 4)});
    }
    table.print(os);
}

std::vector<sim::Cell>
cellsTable3()
{
    return globalCells(pcapVariantPolicies());
}

// -- Figures 6 and 7 -------------------------------------------

std::vector<sim::PolicyConfig>
corePolicies()
{
    return policiesByName({"TP", "LT", "PCAP"});
}

/** Figures 6 and 7 share their layout; only the stats source
 * (local vs global run) differs. */
void
accuracyFigure(ReportContext &ctx, std::ostream &os, bool local)
{
    const std::vector<sim::PolicyConfig> policies = corePolicies();

    TextTable table;
    table.setHeader({"app", "policy", "hit", "not-predicted",
                     "miss", "periods"});

    std::vector<std::vector<double>> hit(policies.size());
    std::vector<std::vector<double>> miss(policies.size());

    for (const std::string &app : ctx.eval.appNames()) {
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const sim::AccuracyStats stats =
                local ? ctx.eval.localAccuracy(app, policies[p])
                      : ctx.eval.globalRun(app, policies[p])
                            .run.accuracy;
            table.addRow({app, policies[p].label,
                          percentString(stats.hitFraction()),
                          percentString(
                              stats.notPredictedFraction()),
                          percentString(stats.missFraction()),
                          std::to_string(stats.opportunities)});
            hit[p].push_back(stats.hitFraction());
            miss[p].push_back(stats.missFraction());
        }
    }
    for (std::size_t p = 0; p < policies.size(); ++p) {
        table.addRow({"AVERAGE", policies[p].label,
                      percentString(averageOf(hit[p])), "",
                      percentString(averageOf(miss[p])), ""});
    }
    table.print(os);
}

void
reportFig6(ReportContext &ctx, std::ostream &os)
{
    header(os, "Figure 6: local shutdown predictor accuracy",
           "Paper averages: TP 52% hit / 3% miss; LT 88% / 10%; "
           "PCAP 89% / 5%.");
    accuracyFigure(ctx, os, /*local=*/true);
}

std::vector<sim::Cell>
cellsFig6()
{
    std::vector<sim::Cell> cells;
    for (const std::string &app : workload::standardAppNames())
        for (const auto &policy : corePolicies())
            cells.push_back({sim::CellMode::Local, app, policy});
    return cells;
}

void
reportFig7(ReportContext &ctx, std::ostream &os)
{
    header(os, "Figure 7: global shutdown predictor accuracy",
           "Paper averages: TP 71% hit / 8% miss; LT 84% / 20%; "
           "PCAP 86% / 10%.");
    accuracyFigure(ctx, os, /*local=*/false);
}

std::vector<sim::Cell>
cellsFig7()
{
    return globalCells(corePolicies());
}

// -- Figure 8 --------------------------------------------------

void
addEnergyRow(TextTable &table, const std::string &app,
             const std::string &label,
             const power::EnergyLedger &ledger,
             const power::EnergyLedger &base,
             std::vector<double> *savings)
{
    const double base_total = base.total();
    auto frac = [base_total](double joules) {
        return base_total > 0.0 ? joules / base_total : 0.0;
    };
    const double total_fraction = ledger.normalizedTo(base);
    table.addRow(
        {app, label,
         percentString(
             frac(ledger.get(power::EnergyCategory::BusyIo))),
         percentString(
             frac(ledger.get(power::EnergyCategory::IdleShort))),
         percentString(
             frac(ledger.get(power::EnergyCategory::IdleLong))),
         percentString(
             frac(ledger.get(power::EnergyCategory::PowerCycle))),
         percentString(total_fraction),
         percentString(1.0 - total_fraction)});
    if (savings)
        savings->push_back(1.0 - total_fraction);
}

void
reportFig8(ReportContext &ctx, std::ostream &os)
{
    header(os, "Figure 8: energy distribution (normalized to Base)",
           "Paper savings averages: Ideal 78%, TP 72%, LT 75%, "
           "PCAP 76%.");

    const std::vector<sim::PolicyConfig> policies = corePolicies();

    TextTable table;
    table.setHeader({"app", "policy", "busy", "idle<BE", "idle>BE",
                     "cycle", "total", "saved"});

    std::vector<double> ideal_savings;
    std::vector<std::vector<double>> policy_savings(
        policies.size());

    for (const std::string &app : ctx.eval.appNames()) {
        const power::EnergyLedger &base =
            ctx.eval.baseRun(app).energy;
        addEnergyRow(table, app, "Base", base, base, nullptr);
        addEnergyRow(table, app, "Ideal",
                     ctx.eval.idealRun(app).energy, base,
                     &ideal_savings);
        for (std::size_t p = 0; p < policies.size(); ++p) {
            addEnergyRow(
                table, app, policies[p].label,
                ctx.eval.globalRun(app, policies[p]).run.energy,
                base, &policy_savings[p]);
        }
    }

    table.addRow({"AVERAGE", "Ideal", "", "", "", "", "",
                  percentString(averageOf(ideal_savings))});
    for (std::size_t p = 0; p < policies.size(); ++p) {
        table.addRow({"AVERAGE", policies[p].label, "", "", "", "",
                      "",
                      percentString(
                          averageOf(policy_savings[p]))});
    }
    table.print(os);
}

std::vector<sim::Cell>
cellsFig8()
{
    std::vector<sim::Cell> cells = globalCells(corePolicies(),
                                               /*withBase=*/true);
    for (const std::string &app : workload::standardAppNames())
        cells.push_back({sim::CellMode::Ideal, app, {}});
    return cells;
}

// -- Figure 9 --------------------------------------------------

void
reportFig9(ReportContext &ctx, std::ostream &os)
{
    header(os,
           "Figure 9: PCAP context optimizations (global "
           "predictor)",
           "Paper averages: PCAP 85%/10%, PCAPh 85%/5%, PCAPf "
           "85%/9%, PCAPfh 84%/5%; history halves mozilla's "
           "misses.");

    const std::vector<sim::PolicyConfig> policies =
        pcapVariantPolicies();

    TextTable table;
    table.setHeader({"app", "policy", "hit-primary", "hit-backup",
                     "miss-primary", "miss-backup", "not-predicted",
                     "hit", "miss"});

    std::vector<std::vector<double>> hit(policies.size());
    std::vector<std::vector<double>> miss(policies.size());

    for (const std::string &app : ctx.eval.appNames()) {
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const sim::AccuracyStats stats =
                ctx.eval.globalRun(app, policies[p]).run.accuracy;
            table.addRow(
                {app, policies[p].label,
                 percentString(stats.hitPrimaryFraction()),
                 percentString(stats.hitBackupFraction()),
                 percentString(stats.missPrimaryFraction()),
                 percentString(stats.missBackupFraction()),
                 percentString(stats.notPredictedFraction()),
                 percentString(stats.hitFraction()),
                 percentString(stats.missFraction())});
            hit[p].push_back(stats.hitFraction());
            miss[p].push_back(stats.missFraction());
        }
    }
    for (std::size_t p = 0; p < policies.size(); ++p) {
        table.addRow({"AVERAGE", policies[p].label, "", "", "", "",
                      "", percentString(averageOf(hit[p])),
                      percentString(averageOf(miss[p]))});
    }
    table.print(os);
}

// -- Figure 10 -------------------------------------------------

std::vector<sim::PolicyConfig>
reusePolicies()
{
    return policiesByName({"PCAP", "PCAPa", "LT", "LTa"});
}

void
reportFig10(ReportContext &ctx, std::ostream &os)
{
    header(os,
           "Figure 10: prediction-table reuse (global predictor)",
           "Paper: PCAP primary 70% (backup 15%); PCAPa primary "
           "16% (backup 59%); LT 66%/18%; LTa 26%/50%.");

    const std::vector<sim::PolicyConfig> policies = reusePolicies();

    TextTable table;
    table.setHeader({"app", "policy", "hit-primary", "hit-backup",
                     "miss-primary", "miss-backup",
                     "not-predicted"});

    std::vector<std::vector<double>> hitP(policies.size());
    std::vector<std::vector<double>> hitB(policies.size());
    std::vector<std::vector<double>> miss(policies.size());

    for (const std::string &app : ctx.eval.appNames()) {
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const sim::AccuracyStats stats =
                ctx.eval.globalRun(app, policies[p]).run.accuracy;
            table.addRow(
                {app, policies[p].label,
                 percentString(stats.hitPrimaryFraction()),
                 percentString(stats.hitBackupFraction()),
                 percentString(stats.missPrimaryFraction()),
                 percentString(stats.missBackupFraction()),
                 percentString(stats.notPredictedFraction())});
            hitP[p].push_back(stats.hitPrimaryFraction());
            hitB[p].push_back(stats.hitBackupFraction());
            miss[p].push_back(stats.missFraction());
        }
    }
    for (std::size_t p = 0; p < policies.size(); ++p) {
        table.addRow({"AVERAGE", policies[p].label,
                      percentString(averageOf(hitP[p])),
                      percentString(averageOf(hitB[p])),
                      percentString(averageOf(miss[p])), "", ""});
    }
    table.print(os);
}

std::vector<sim::Cell>
cellsFig10()
{
    return globalCells(reusePolicies());
}

// -- Ablation: timeout sensitivity -----------------------------

std::vector<sim::PolicyConfig>
timeoutSweepPolicies()
{
    std::vector<sim::PolicyConfig> policies;
    for (double timer : {2.0, 5.43, 10.0, 20.0, 30.0}) {
        policies.push_back(
            sim::PolicyConfig::timeoutPolicy(secondsUs(timer)));
        sim::PolicyConfig pcap = sim::policyByName("PCAP");
        pcap.timeout = secondsUs(timer);
        policies.push_back(pcap);
    }
    return policies;
}

double
averageSavings(sim::EvaluationApi &eval,
               const sim::PolicyConfig &policy)
{
    std::vector<double> savings;
    for (const std::string &app : eval.appNames()) {
        const double total =
            eval.globalRun(app, policy)
                .run.energy.normalizedTo(eval.baseRun(app).energy);
        savings.push_back(1.0 - total);
    }
    return averageOf(savings);
}

double
averageMiss(sim::EvaluationApi &eval,
            const sim::PolicyConfig &policy)
{
    std::vector<double> misses;
    for (const std::string &app : eval.appNames())
        misses.push_back(eval.globalRun(app, policy)
                             .run.accuracy.missFraction());
    return averageOf(misses);
}

void
reportAblationTimeout(ReportContext &ctx, std::ostream &os)
{
    header(os, "Ablation: timeout sensitivity (Section 6.3)",
           "Paper: TP 10s saves 72% / 8% miss; TP 5.43s saves 74% "
           "/ 12% miss; LT and PCAP are insensitive to the backup "
           "timer.");

    const double timers_s[] = {2.0, 5.43, 10.0, 20.0, 30.0};

    TextTable table;
    table.setHeader({"timer", "TP saved", "TP miss", "PCAP saved",
                     "PCAP miss"});

    for (double timer : timers_s) {
        sim::PolicyConfig tp =
            sim::PolicyConfig::timeoutPolicy(secondsUs(timer));
        sim::PolicyConfig pcap = sim::policyByName("PCAP");
        pcap.timeout = secondsUs(timer);

        table.addRow({fixedString(timer, 2) + " s",
                      percentString(averageSavings(ctx.eval, tp)),
                      percentString(averageMiss(ctx.eval, tp)),
                      percentString(averageSavings(ctx.eval, pcap)),
                      percentString(averageMiss(ctx.eval, pcap))});
    }
    table.print(os);
}

std::vector<sim::Cell>
cellsAblationTimeout()
{
    return globalCells(timeoutSweepPolicies(), /*withBase=*/true);
}

// -- Ablation: history length ----------------------------------

std::vector<sim::PolicyConfig>
historySweepPolicies()
{
    std::vector<sim::PolicyConfig> policies;
    for (int length : {1, 2, 4, 6, 8, 10, 12}) {
        sim::PolicyConfig pcaph = sim::policyByName("PCAPh");
        pcaph.pcap.historyLength = length;
        policies.push_back(pcaph);
        sim::PolicyConfig lt = sim::policyByName("LT");
        lt.lt.historyLength = length;
        policies.push_back(lt);
    }
    return policies;
}

void
hitMissAverages(sim::EvaluationApi &eval,
                const sim::PolicyConfig &policy, double &hit,
                double &miss)
{
    std::vector<double> hits, misses;
    for (const std::string &app : eval.appNames()) {
        const sim::AccuracyStats stats =
            eval.globalRun(app, policy).run.accuracy;
        hits.push_back(stats.hitFraction());
        misses.push_back(stats.missFraction());
    }
    hit = averageOf(hits);
    miss = averageOf(misses);
}

void
reportAblationHistory(ReportContext &ctx, std::ostream &os)
{
    header(os,
           "Ablation: history length (PCAPh idle history / LT tree "
           "depth)",
           "Paper picks PCAPh length 6 and LT depth 8; longer "
           "histories plateau.");

    TextTable table;
    table.setHeader({"length", "PCAPh hit", "PCAPh miss", "LT hit",
                     "LT miss"});

    for (int length : {1, 2, 4, 6, 8, 10, 12}) {
        sim::PolicyConfig pcaph = sim::policyByName("PCAPh");
        pcaph.pcap.historyLength = length;
        sim::PolicyConfig lt = sim::policyByName("LT");
        lt.lt.historyLength = length;

        double pcap_hit = 0, pcap_miss = 0, lt_hit = 0, lt_miss = 0;
        hitMissAverages(ctx.eval, pcaph, pcap_hit, pcap_miss);
        hitMissAverages(ctx.eval, lt, lt_hit, lt_miss);

        table.addRow({std::to_string(length),
                      percentString(pcap_hit),
                      percentString(pcap_miss),
                      percentString(lt_hit),
                      percentString(lt_miss)});
    }
    table.print(os);
}

std::vector<sim::Cell>
cellsAblationHistory()
{
    return globalCells(historySweepPolicies());
}

// -- Ablation: wait-window -------------------------------------

std::vector<sim::PolicyConfig>
waitWindowSweepPolicies()
{
    std::vector<sim::PolicyConfig> policies;
    for (double window_s : {0.05, 0.25, 0.5, 1.0, 2.0, 4.0}) {
        sim::PolicyConfig pcap = sim::policyByName("PCAP");
        pcap.pcap.waitWindow = secondsUs(window_s);
        policies.push_back(pcap);
    }
    return policies;
}

void
reportAblationWaitWindow(ReportContext &ctx, std::ostream &os)
{
    header(os,
           "Ablation: sliding wait-window length (PCAP, global)",
           "Paper uses 1 s; shorter windows let burst-internal "
           "matches spin the disk down, longer windows waste idle "
           "energy.");

    TextTable table;
    table.setHeader({"window", "hit", "miss", "not-predicted",
                     "saved"});

    for (double window_s : {0.05, 0.25, 0.5, 1.0, 2.0, 4.0}) {
        sim::PolicyConfig pcap = sim::policyByName("PCAP");
        pcap.pcap.waitWindow = secondsUs(window_s);

        std::vector<double> hit, miss, notp, saved;
        for (const std::string &app : ctx.eval.appNames()) {
            const auto outcome = ctx.eval.globalRun(app, pcap);
            hit.push_back(outcome.run.accuracy.hitFraction());
            miss.push_back(outcome.run.accuracy.missFraction());
            notp.push_back(
                outcome.run.accuracy.notPredictedFraction());
            saved.push_back(1.0 -
                            outcome.run.energy.normalizedTo(
                                ctx.eval.baseRun(app).energy));
        }
        table.addRow({fixedString(window_s, 2) + " s",
                      percentString(averageOf(hit)),
                      percentString(averageOf(miss)),
                      percentString(averageOf(notp)),
                      percentString(averageOf(saved))});
    }
    table.print(os);
}

std::vector<sim::Cell>
cellsAblationWaitWindow()
{
    return globalCells(waitWindowSweepPolicies(),
                       /*withBase=*/true);
}

// -- Ablation: file-cache size ---------------------------------

/** The cells one row of the cache sweep queries (any config). */
std::vector<sim::Cell>
cellsAblationCache()
{
    return globalCells(policiesByName({"PCAP"}), /*withBase=*/true);
}

void
reportAblationCache(ReportContext &ctx, std::ostream &os)
{
    header(os, "Ablation: file-cache size (paper: 256 KB)",
           "Larger caches absorb more traffic: fewer disk "
           "accesses, fewer but longer idle periods.");

    // The raw traces the sweep shares stay resident only while this
    // report runs. The scope spans the whole function — serial
    // engines skip the prefetch and compute inside the render loop
    // below — and on close the store drops every published entry.
    std::optional<sim::TraceStore::Retention> retention;
    if (ctx.traceStore)
        retention.emplace(*ctx.traceStore);

    TextTable table;
    table.setHeader({"cache", "disk accesses", "global periods",
                     "PCAP hit", "PCAP miss", "PCAP saved"});

    // Build every engine up front and prefetch each row's cells:
    // raw workload traces are shared across the sweep through the
    // trace store (generation is cache-independent), so each extra
    // cache size pays only the file-cache filter and the replays —
    // fanned across the worker pool instead of run serially inside
    // the render loop below.
    struct SweepRow
    {
        std::size_t kb = 0;
        sim::ExperimentConfig config;
        std::unique_ptr<sim::EvaluationApi> owned;
        sim::EvaluationApi *eval = nullptr;
    };
    std::vector<SweepRow> rows;
    for (std::size_t kb : {64, 128, 256, 512, 1024, 4096}) {
        SweepRow row;
        row.kb = kb;
        row.config = standardConfig();
        row.config.cache.capacityBytes = kb * 1024;
        // The paper's 256 KB row IS the standard configuration —
        // reuse the shared engine (and its memoized cells) there.
        const bool standard =
            row.config.cache.capacityBytes ==
            standardConfig().cache.capacityBytes;
        if (!standard) {
            row.owned = ctx.makeEval(row.config);
            row.eval = row.owned.get();
        } else {
            row.eval = &ctx.eval;
        }
        rows.push_back(std::move(row));
    }
    // Overlap the rows: each prefetch fans its cells over its own
    // transient pool, and the slowest cell of one configuration no
    // longer gates the start of the next. Serial engines implement
    // prefetchCells as a no-op, so the standalone binary still
    // computes every cell inline below.
    pcap::parallelFor(static_cast<unsigned>(rows.size()),
                      rows.size(), [&](std::size_t i) {
                          rows[i].eval->prefetchCells(
                              cellsAblationCache());
                      });

    for (const SweepRow &row : rows) {
        sim::EvaluationApi *eval = row.eval;
        const sim::ExperimentConfig &config = row.config;

        std::uint64_t accesses = 0, periods = 0;
        std::vector<double> hit, miss, saved;
        for (const std::string &app : eval->appNames()) {
            for (const auto &input : eval->inputs(app)) {
                accesses += input.accesses.size();
                periods += input.countGlobalOpportunities(
                    config.sim.breakeven());
            }
            const auto outcome =
                eval->globalRun(app, sim::policyByName("PCAP"));
            hit.push_back(outcome.run.accuracy.hitFraction());
            miss.push_back(outcome.run.accuracy.missFraction());
            saved.push_back(1.0 -
                            outcome.run.energy.normalizedTo(
                                eval->baseRun(app).energy));
        }
        table.addRow({std::to_string(row.kb) + " KB",
                      std::to_string(accesses),
                      std::to_string(periods),
                      percentString(averageOf(hit)),
                      percentString(averageOf(miss)),
                      percentString(averageOf(saved))});
    }
    table.print(os);
}

// -- Ablation: unlearning --------------------------------------

std::vector<sim::PolicyConfig>
unlearnPolicies()
{
    std::vector<sim::PolicyConfig> policies;
    for (bool unlearn : {false, true}) {
        sim::PolicyConfig pcap = sim::policyByName("PCAP");
        pcap.pcap.unlearnOnMisprediction = unlearn;
        pcap.label = unlearn ? "PCAP-unlearn" : "PCAP";
        policies.push_back(pcap);
    }
    return policies;
}

void
reportAblationUnlearn(ReportContext &ctx, std::ostream &os)
{
    header(os,
           "Ablation (extension): drop table entries on "
           "misprediction",
           "Not in the paper; quantifies the design choice of "
           "keeping aliased entries and filtering contextually "
           "instead.");

    TextTable table;
    table.setHeader({"app", "policy", "hit", "miss",
                     "not-predicted", "entries"});

    for (const sim::PolicyConfig &pcap : unlearnPolicies()) {
        std::vector<double> hit, miss;
        for (const std::string &app : ctx.eval.appNames()) {
            const auto outcome = ctx.eval.globalRun(app, pcap);
            table.addRow(
                {app, pcap.label,
                 percentString(outcome.run.accuracy.hitFraction()),
                 percentString(
                     outcome.run.accuracy.missFraction()),
                 percentString(
                     outcome.run.accuracy.notPredictedFraction()),
                 std::to_string(outcome.tableEntries)});
            hit.push_back(outcome.run.accuracy.hitFraction());
            miss.push_back(outcome.run.accuracy.missFraction());
        }
        table.addRow({"AVERAGE", pcap.label,
                      percentString(averageOf(hit)),
                      percentString(averageOf(miss)), "", ""});
    }
    table.print(os);
}

std::vector<sim::Cell>
cellsAblationUnlearn()
{
    return globalCells(unlearnPolicies());
}

// -- Extension: related predictors -----------------------------

std::vector<sim::PolicyConfig>
relatedPolicies()
{
    return policiesByName({"TP", "ATP", "EA", "SB", "LT", "PCAP"});
}

void
reportRelated(ReportContext &ctx, std::ostream &os)
{
    header(os,
           "Extension: prior dynamic predictors of Section 2 "
           "(global)",
           "EA = Hwang & Wu exponential average; SB = Srivastava "
           "short-busy heuristic; ATP = adaptive timeout. The "
           "paper's survey [13] found such predictors far less "
           "accurate than TP; PCAP should dominate all of them.");

    const std::vector<sim::PolicyConfig> policies =
        relatedPolicies();

    TextTable table;
    table.setHeader({"app", "policy", "hit", "miss",
                     "not-predicted", "saved"});

    std::vector<std::vector<double>> hit(policies.size());
    std::vector<std::vector<double>> miss(policies.size());
    std::vector<std::vector<double>> saved(policies.size());

    for (const std::string &app : ctx.eval.appNames()) {
        const double base = ctx.eval.baseRun(app).energy.total();
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const auto outcome =
                ctx.eval.globalRun(app, policies[p]);
            const auto &accuracy = outcome.run.accuracy;
            const double savings =
                1.0 - outcome.run.energy.total() / base;
            table.addRow({app, policies[p].label,
                          percentString(accuracy.hitFraction()),
                          percentString(accuracy.missFraction()),
                          percentString(
                              accuracy.notPredictedFraction()),
                          percentString(savings)});
            hit[p].push_back(accuracy.hitFraction());
            miss[p].push_back(accuracy.missFraction());
            saved[p].push_back(savings);
        }
    }
    for (std::size_t p = 0; p < policies.size(); ++p) {
        table.addRow({"AVERAGE", policies[p].label,
                      percentString(averageOf(hit[p])),
                      percentString(averageOf(miss[p])), "",
                      percentString(averageOf(saved[p]))});
    }
    table.print(os);
}

std::vector<sim::Cell>
cellsRelated()
{
    return globalCells(relatedPolicies(), /*withBase=*/true);
}

// -- Extension: multi-state ------------------------------------

void
reportMultiState(ReportContext &ctx, std::ostream &os)
{
    header(os,
           "Extension: multi-state PCAP (Section 7 future work)",
           "PCAP-MS parks the disk in a 0.55 W low-power idle mode "
           "on every primary prediction, then spins down after the "
           "wait-window.");

    TextTable table;
    table.setHeader({"app", "policy", "hit", "miss", "saved",
                     "low-power entries"});

    const sim::PolicyConfig pcap = sim::policyByName("PCAP");

    std::vector<double> saved_plain, saved_ms;
    for (const std::string &app : ctx.eval.appNames()) {
        const double base = ctx.eval.baseRun(app).energy.total();

        const sim::RunResult plain_run =
            ctx.eval.globalRun(app, pcap).run;
        const double plain_saved =
            1.0 - plain_run.energy.total() / base;
        table.addRow({app, "PCAP",
                      percentString(
                          plain_run.accuracy.hitFraction()),
                      percentString(
                          plain_run.accuracy.missFraction()),
                      percentString(plain_saved), "-"});
        saved_plain.push_back(plain_saved);

        const sim::RunResult ms_run =
            ctx.eval.multiStateRun(app, pcap).run;
        const double ms_saved =
            1.0 - ms_run.energy.total() / base;
        table.addRow(
            {app, "PCAP-MS",
             percentString(ms_run.accuracy.hitFraction()),
             percentString(ms_run.accuracy.missFraction()),
             percentString(ms_saved), ""});
        saved_ms.push_back(ms_saved);
    }
    table.addRow({"AVERAGE", "PCAP", "", "",
                  percentString(averageOf(saved_plain)), ""});
    table.addRow({"AVERAGE", "PCAP-MS", "", "",
                  percentString(averageOf(saved_ms)), ""});
    table.print(os);

    os << "\nThe accuracy columns are identical by construction — "
          "the extension changes only where the wait-window is "
          "spent.\n";
}

std::vector<sim::Cell>
cellsMultiState()
{
    std::vector<sim::Cell> cells;
    const sim::PolicyConfig pcap = sim::policyByName("PCAP");
    for (const std::string &app : workload::standardAppNames()) {
        cells.push_back({sim::CellMode::Global, app, pcap});
        cells.push_back({sim::CellMode::MultiState, app, pcap});
        cells.push_back({sim::CellMode::Base, app, {}});
    }
    return cells;
}

// -- Extension: idle-period length histogram -------------------

/** Bucket label "<= Xs" / "> Xs" with a compact seconds rendering. */
std::string
bucketLabel(TimeUs upper, TimeUs previous)
{
    auto seconds = [](TimeUs t) {
        const double s = usToSeconds(t);
        const bool whole = s >= 1.0 && t % 1000000 == 0;
        return fixedString(s, whole ? 0 : 2) + " s";
    };
    if (upper == kTimeNever)
        return "> " + seconds(previous);
    return "<= " + seconds(upper);
}

void
reportIdleHistogram(ReportContext &ctx, std::ostream &os)
{
    header(os,
           "Extension: idle-period length histogram (global PCAP)",
           "Every merged-stream idle period the replay kernel "
           "classified, bucketed by length; the breakeven boundary "
           "(5.43 s) separates short periods from shutdown "
           "opportunities. Opt-in report: run via --only "
           "idle_histogram.");

    const sim::SimParams &sim_params = ctx.eval.config().sim;
    sim::IdleHistogramObserver observer(
        sim::IdleHistogramObserver::defaultBoundaries(
            sim_params.breakeven()));
    sim::SimulationKernel kernel(sim_params, observer);
    const sim::PolicyConfig pcap = sim::policyByName("PCAP");
    for (const std::string &app : ctx.eval.appNames()) {
        sim::PolicySession session(pcap);
        sim::GlobalDriver driver(session);
        kernel.run(ctx.eval.inputs(app), driver);
    }

    TextTable table;
    table.setHeader({"length", "short", "not-pred", "hit(P)",
                     "hit(B)", "miss(P)", "miss(B)", "total"});

    auto outcomeCount = [](const sim::IdleHistogramObserver::Bucket
                               &bucket,
                           sim::IdleOutcome outcome) {
        return std::to_string(
            bucket.byOutcome[static_cast<std::size_t>(outcome)]);
    };

    TimeUs previous = 0;
    for (const auto &bucket : observer.buckets()) {
        table.addRow(
            {bucketLabel(bucket.upper, previous),
             outcomeCount(bucket, sim::IdleOutcome::Short),
             outcomeCount(bucket, sim::IdleOutcome::NotPredicted),
             outcomeCount(bucket, sim::IdleOutcome::HitPrimary),
             outcomeCount(bucket, sim::IdleOutcome::HitBackup),
             outcomeCount(bucket, sim::IdleOutcome::MissPrimary),
             outcomeCount(bucket, sim::IdleOutcome::MissBackup),
             std::to_string(bucket.total())});
        previous = bucket.upper;
    }
    table.print(os);

    os << "\ntotal idle periods: " << observer.totalPeriods()
       << " (all applications, all executions)\n";
}

// -- Extension: signature attribution forensics ----------------

/** 0x-prefixed 8-hex-digit rendering of a 4-byte signature. */
std::string
hexSignature(std::uint32_t signature)
{
    std::ostringstream os;
    os << "0x" << std::hex << std::setw(8) << std::setfill('0')
       << signature;
    return os.str();
}

void
reportSignatureAttribution(ReportContext &ctx, std::ostream &os)
{
    header(os,
           "Extension: per-signature accuracy and energy "
           "attribution (global PCAP)",
           "The provenance flight recorder joins every classified "
           "idle period with the PCAP decision behind it. Below: "
           "the top mispredicting signatures per application and "
           "every signature collision (distinct PC paths summing to "
           "the same 4-byte signature). Opt-in report: run via "
           "--only signature_attribution.");

    constexpr std::size_t kTop = 5;
    const sim::SimParams &sim_params = ctx.eval.config().sim;
    const sim::PolicyConfig pcap = sim::policyByName("PCAP");

    TextTable table;
    table.setHeader({"app", "signature", "periods", "hits", "misses",
                     "paths", "net J"});

    std::uint64_t total_records = 0;
    std::uint64_t total_collisions = 0;
    std::string collision_notes;
    for (const std::string &app : ctx.eval.appNames()) {
        obs::ProvenanceRecorder recorder;
        obs::ForensicsSink sink;
        recorder.addSink(&sink);
        sim::ProvenanceObserver observer(recorder, sim_params.disk);
        sim::SimulationKernel kernel(sim_params, observer);
        sim::PolicySession session(pcap);
        session.setProvenanceTap(&observer);
        sim::GlobalDriver driver(session);
        observer.bindDecisionPid(
            [&driver] { return driver.decisionPid(); });
        kernel.run(ctx.eval.inputs(app), driver);
        recorder.close();

        const obs::ProvenanceForensics &forensics = sink.forensics();
        total_records += forensics.records();
        for (const obs::SignatureSummary *summary :
             forensics.topMispredictors(kTop)) {
            table.addRow({app, hexSignature(summary->signature),
                          std::to_string(summary->periods),
                          std::to_string(summary->hits()),
                          std::to_string(summary->misses()),
                          std::to_string(summary->pathCounts.size()),
                          fixedString(summary->energyDeltaJ, 1)});
        }
        for (const obs::SignatureSummary *summary :
             forensics.collisions()) {
            ++total_collisions;
            collision_notes += "  " + app + ": " +
                               hexSignature(summary->signature) +
                               " formed by " +
                               std::to_string(
                                   summary->pathCounts.size()) +
                               " distinct PC paths over " +
                               std::to_string(summary->periods) +
                               " periods\n";
        }
    }
    table.print(os);

    os << "\nsignature collisions: " << total_collisions << "\n";
    if (!collision_notes.empty())
        os << collision_notes;
    os << "provenance records: " << total_records
       << " (all applications, all executions)\n";
}

// -- Fleet: streaming host cells (opt-in) ----------------------

/**
 * The machine-readable drill-down block (schema pcap-drilldown-v1):
 * per flagged host its pass-1 reasons and per-policy re-run summary,
 * with artifact *stems* only — paths stay relative to wherever the
 * caller put the directory, so the block is location-independent.
 */
Json
drilldownJson(const sim::FleetReport &report, std::uint64_t seed)
{
    Json root = Json::object();
    root["schema"] = "pcap-drilldown-v1";
    root["fleet_seed"] = seed;
    Json &hostsJson = root["hosts"];
    hostsJson = Json::array();
    for (const auto &drill : report.drilldowns) {
        Json entry = Json::object();
        entry["host"] = drill.host;
        entry["seed"] = drill.seed;
        entry["think_time_scale"] = drill.thinkTimeScale;
        entry["executions"] = drill.executions;
        entry["accesses"] = drill.accesses;
        entry["sim_span_us"] = drill.simSpanUs;
        entry["base_energy_j"] = drill.baseEnergyJ;
        Json &reasonsJson = entry["reasons"];
        reasonsJson = Json::array();
        for (const auto &reason : drill.reasons) {
            Json item = Json::object();
            item["policy"] = reason.policy;
            item["metric"] = reason.metric;
            item["value"] = reason.value;
            item["median"] = reason.median;
            item["score"] = reason.score;
            reasonsJson.push(std::move(item));
        }
        Json &policiesJson = entry["policies"];
        policiesJson = Json::array();
        for (const auto &policy : drill.policies) {
            Json item = Json::object();
            item["policy"] = policy.policy;
            item["stem"] = policy.stem;
            item["energy_j"] = policy.energyJ;
            item["saved_fraction"] = policy.savedFraction;
            item["hit_fraction"] = policy.hitFraction;
            item["miss_fraction"] = policy.missFraction;
            item["shutdowns"] = policy.shutdowns;
            item["spin_ups"] = policy.spinUps;
            item["table_entries"] = policy.tableEntries;
            // Counter deltas ride along only under --perf: without
            // it the bundle stays byte-identical across runs and
            // thread counts (the CI `diff -r` gate).
            if (policy.hasPerf)
                item["perf"] = obs::perfCountsJson(policy.perf);
            Json &artifacts = item["artifacts"];
            artifacts = Json::object();
            artifacts["trace"] = policy.stem + ".jsonl";
            artifacts["provenance_binary"] =
                policy.stem + ".prov.bin";
            artifacts["provenance_jsonl"] =
                policy.stem + ".prov.jsonl";
            artifacts["timeline_json"] =
                policy.stem + ".timeline.json";
            artifacts["timeline_csv"] =
                policy.stem + ".timeline.csv";
            policiesJson.push(std::move(item));
        }
        hostsJson.push(std::move(entry));
    }
    return root;
}

/** drilldown.json — the bundle index pcap_fleet_report.py reads. */
void
writeDrilldownIndex(const sim::FleetReport &report,
                    std::uint64_t seed, const std::string &dir)
{
    const std::string path = dir + "/drilldown.json";
    std::ofstream os(path, std::ios::trunc);
    if (!os)
        panic("cannot write " + path);
    drilldownJson(report, seed).dump(os);
    os << "\n";
}

void
reportFleet(ReportContext &ctx, std::ostream &os)
{
    header(os, "Fleet: streaming host cells",
           "N independent power-managed hosts, each a seeded "
           "variation of the paper's workloads, replayed "
           "generate-replay-discard: peak memory is bounded no "
           "matter the fleet size. Percentiles are across hosts.");

    workload::FleetConfig fleet;
    fleet.fleetSeed = ctx.fleet.seed;
    fleet.hosts = ctx.fleet.hosts;
    fleet.maxAppsPerHost = 3;
    fleet.executionsMin = 4;
    fleet.executionsMax = 12;
    fleet.minThinkScale = 0.5;
    fleet.maxThinkScale = 2.0;

    const std::vector<sim::PolicyConfig> policies =
        policiesByName({"TP", "PCAP"});

    const sim::ExperimentConfig config = standardConfig();
    sim::FleetOptions options;
    options.jobs = ctx.fleet.jobs;
    options.metrics = ctx.fleet.metrics;
    options.alerts = ctx.fleet.alerts;
    options.drilldownDir = ctx.fleet.drilldownDir;
    sim::FleetDriver driver(fleet, config.sim, config.cache,
                            options);
    const sim::FleetReport report = [&] {
        obs::PerfRegion perf("fleet:simulate");
        return driver.run(policies);
    }();

    os << "hosts:              " << report.hosts << "\n"
       << "executions:         " << report.executions << "\n"
       << "disk accesses:      " << report.accesses << "\n"
       << "idle opportunities: " << report.opportunities << "\n"
       << "base energy (J):    p50 "
       << fixedString(report.baseEnergyJ.p50, 1) << "  p90 "
       << fixedString(report.baseEnergyJ.p90, 1) << "  p99 "
       << fixedString(report.baseEnergyJ.p99, 1) << "  mean "
       << fixedString(report.meanBaseEnergyJ, 1) << "\n\n";

    TextTable table;
    table.setHeader({"policy", "saved p50", "saved p90",
                     "saved p99", "energy p50 (J)", "hit p50",
                     "miss p50", "shutdowns", "spin-ups"});
    for (const auto &policy : report.policies) {
        table.addRow({policy.policy,
                      percentString(policy.savedFraction.p50),
                      percentString(policy.savedFraction.p90),
                      percentString(policy.savedFraction.p99),
                      fixedString(policy.energyJ.p50, 1),
                      percentString(policy.hitFraction.p50),
                      percentString(policy.missFraction.p50),
                      std::to_string(policy.shutdowns),
                      std::to_string(policy.spinUps)});
    }
    table.print(os);

    std::size_t flagged = 0;
    for (const auto &policy : report.policies)
        flagged += policy.outliers.size();
    os << "\noutlier hosts (|value - median| > "
       << fixedString(sim::FleetOptions{}.outlierMadThreshold, 1)
       << " MAD): " << flagged << "\n";
    if (flagged) {
        TextTable outlierTable;
        outlierTable.setHeader({"policy", "host", "metric", "value",
                                "median", "score"});
        for (const auto &policy : report.policies)
            for (const auto &outlier : policy.outliers)
                outlierTable.addRow(
                    {policy.policy, std::to_string(outlier.host),
                     outlier.metric, percentString(outlier.value),
                     percentString(outlier.median),
                     fixedString(outlier.score, 1)});
        outlierTable.print(os);
    }

    // Drill-down summary keeps to artifact stems — never the output
    // directory — so two smoke runs into different directories stay
    // byte-identical.
    if (!ctx.fleet.drilldownDir.empty()) {
        os << "\ndrilled hosts (instrumented re-simulation): "
           << report.drilldowns.size() << "\n";
        if (!report.drilldowns.empty()) {
            TextTable drillTable;
            drillTable.setHeader({"host", "policy", "saved", "miss",
                                  "spin-ups", "table", "stem"});
            for (const auto &drill : report.drilldowns)
                for (const auto &policy : drill.policies)
                    drillTable.addRow(
                        {std::to_string(drill.host), policy.policy,
                         percentString(policy.savedFraction),
                         percentString(policy.missFraction),
                         std::to_string(policy.spinUps),
                         std::to_string(policy.tableEntries),
                         policy.stem});
            drillTable.print(os);
        }
        writeDrilldownIndex(report, ctx.fleet.seed,
                            ctx.fleet.drilldownDir);
    }

    if (!ctx.fleetJson)
        return;
    auto percentilesJson = [](const sim::FleetPercentiles &p) {
        Json json = Json::object();
        json["p50"] = p.p50;
        json["p90"] = p.p90;
        json["p99"] = p.p99;
        return json;
    };
    Json &root = *ctx.fleetJson;
    root = Json::object();
    root["schema"] = "pcap-fleet-v1";
    root["hosts"] = report.hosts;
    root["fleet_seed"] = ctx.fleet.seed;
    root["executions"] = report.executions;
    root["accesses"] = report.accesses;
    root["opportunities"] = report.opportunities;
    root["base_energy_j"] = percentilesJson(report.baseEnergyJ);
    root["mean_base_energy_j"] = report.meanBaseEnergyJ;
    Json &policiesJson = root["policies"];
    policiesJson = Json::array();
    for (const auto &policy : report.policies) {
        Json entry = Json::object();
        entry["policy"] = policy.policy;
        entry["energy_j"] = percentilesJson(policy.energyJ);
        entry["saved_fraction"] =
            percentilesJson(policy.savedFraction);
        entry["hit_fraction"] =
            percentilesJson(policy.hitFraction);
        entry["miss_fraction"] =
            percentilesJson(policy.missFraction);
        entry["mean_energy_j"] = policy.meanEnergyJ;
        entry["mean_saved_fraction"] = policy.meanSavedFraction;
        entry["saved_fraction_median"] = policy.medianSavedFraction;
        entry["saved_fraction_mad"] = policy.madSavedFraction;
        entry["miss_fraction_median"] = policy.medianMissFraction;
        entry["miss_fraction_mad"] = policy.madMissFraction;
        entry["shutdowns"] = policy.shutdowns;
        entry["spin_ups"] = policy.spinUps;
        Json &outliersJson = entry["outliers"];
        outliersJson = Json::array();
        for (const auto &outlier : policy.outliers) {
            Json item = Json::object();
            item["host"] = outlier.host;
            item["metric"] = outlier.metric;
            item["value"] = outlier.value;
            item["median"] = outlier.median;
            item["score"] = outlier.score;
            outliersJson.push(std::move(item));
        }
        policiesJson.push(std::move(entry));
    }
    // Only with an active drill-down pass, so the default fleet
    // block stays byte-identical when the flag is absent.
    if (!ctx.fleet.drilldownDir.empty())
        root["drilldown"] = drilldownJson(report, ctx.fleet.seed);
}

} // namespace

double
averageOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double total = 0.0;
    for (double v : values)
        total += v;
    return total / static_cast<double>(values.size());
}

const std::vector<Report> &
allReports()
{
    static const std::vector<Report> kReports = {
        {"table1", "bench_table1", reportTable1, cellsTable1},
        {"table2", "bench_table2", reportTable2, cellsNone},
        {"table3", "bench_table3", reportTable3, cellsTable3},
        {"fig6", "bench_fig6", reportFig6, cellsFig6},
        {"fig7", "bench_fig7", reportFig7, cellsFig7},
        {"fig8", "bench_fig8", reportFig8, cellsFig8},
        {"fig9", "bench_fig9", reportFig9, cellsTable3},
        {"fig10", "bench_fig10", reportFig10, cellsFig10},
        {"ablation_timeout", "bench_ablation_timeout",
         reportAblationTimeout, cellsAblationTimeout},
        {"ablation_history", "bench_ablation_history",
         reportAblationHistory, cellsAblationHistory},
        {"ablation_waitwindow", "bench_ablation_waitwindow",
         reportAblationWaitWindow, cellsAblationWaitWindow},
        {"ablation_cache", "bench_ablation_cache",
         reportAblationCache, cellsAblationCache},
        {"ablation_unlearn", "bench_ablation_unlearn",
         reportAblationUnlearn, cellsAblationUnlearn},
        {"related", "bench_related", reportRelated, cellsRelated},
        {"extension_multistate", "bench_extension_multistate",
         reportMultiState, cellsMultiState},
        // Opt-in: new instrumentation report, outside the
        // byte-compared reference suite.
        {"idle_histogram", "", reportIdleHistogram, cellsNone,
         /*optIn=*/true},
        {"signature_attribution", "", reportSignatureAttribution,
         cellsNone, /*optIn=*/true},
        // Opt-in: streaming fleet simulation — does not query the
        // shared engine at all, so `--only fleet` never
        // materializes the six-app workload.
        {"fleet", "", reportFleet, cellsNone, /*optIn=*/true},
    };
    return kReports;
}

int
runReportStandalone(const std::string &name)
{
    for (const Report &report : allReports()) {
        if (report.name != name)
            continue;
        // One trace store for the standard engine and any sweep
        // engines the report builds: configurations share raw
        // traces and re-run only the file-cache filter.
        auto store = std::make_shared<sim::TraceStore>();
        sim::Evaluation eval(standardConfig(), store);
        ReportContext ctx{
            eval, [store](const sim::ExperimentConfig &config) {
                return std::unique_ptr<sim::EvaluationApi>(
                    new sim::Evaluation(config, store));
            }};
        ctx.traceStore = store.get();
        report.run(ctx, std::cout);
        return 0;
    }
    error("unknown report: " + name);
    return 1;
}

} // namespace pcap::bench
