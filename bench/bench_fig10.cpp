/**
 * @file
 * Figure 10 — prediction-table reuse.
 *
 * Global predictor results for PCAP and LT with prediction tables
 * carried across executions (Section 4.2) against PCAPa and LTa,
 * which discard learned state when the application exits. Hits and
 * misses are split by primary vs backup source.
 *
 * Paper reference: with reuse, PCAP's primary predictor makes 70% of
 * correct predictions (backup adds 15%); without reuse the primary
 * share collapses to 16% (backup 59%). LT: 66%/18% with reuse vs
 * 26%/50% without — reuse quadruples PCAP's primary coverage.
 */

#include <iostream>

#include "bench_common.hpp"

using namespace pcap;

int
main()
{
    bench::printHeader(
        "Figure 10: prediction-table reuse (global predictor)",
        "Paper: PCAP primary 70% (backup 15%); PCAPa primary 16% "
        "(backup 59%); LT 66%/18%; LTa 26%/50%.");

    sim::Evaluation eval(bench::standardConfig());
    const std::vector<sim::PolicyConfig> policies = {
        sim::PolicyConfig::pcapBase(),
        sim::PolicyConfig::pcapNoReuse(),
        sim::PolicyConfig::learningTree(),
        sim::PolicyConfig::learningTreeNoReuse(),
    };

    TextTable table;
    table.setHeader({"app", "policy", "hit-primary", "hit-backup",
                     "miss-primary", "miss-backup", "not-predicted"});

    std::vector<std::vector<double>> hitP(policies.size());
    std::vector<std::vector<double>> hitB(policies.size());
    std::vector<std::vector<double>> miss(policies.size());

    for (const std::string &app : eval.appNames()) {
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const sim::AccuracyStats stats =
                eval.globalRun(app, policies[p]).run.accuracy;
            table.addRow(
                {app, policies[p].label,
                 percentString(stats.hitPrimaryFraction()),
                 percentString(stats.hitBackupFraction()),
                 percentString(stats.missPrimaryFraction()),
                 percentString(stats.missBackupFraction()),
                 percentString(stats.notPredictedFraction())});
            hitP[p].push_back(stats.hitPrimaryFraction());
            hitB[p].push_back(stats.hitBackupFraction());
            miss[p].push_back(stats.missFraction());
        }
    }
    for (std::size_t p = 0; p < policies.size(); ++p) {
        table.addRow({"AVERAGE", policies[p].label,
                      percentString(bench::averageOf(hitP[p])),
                      percentString(bench::averageOf(hitB[p])),
                      percentString(bench::averageOf(miss[p])), "",
                      ""});
    }
    table.print(std::cout);
    return 0;
}
