/**
 * @file
 * Table 2 — the states and state transitions of the simulated disk
 * (Fujitsu MHF 2043AT), plus a consistency check: the breakeven time
 * derived from the other parameters must agree with the quoted
 * 5.43 s.
 */

#include <iostream>

#include "bench_common.hpp"
#include "power/disk_params.hpp"

using namespace pcap;

int
main()
{
    bench::printHeader(
        "Table 2: states and state transitions of the simulated disk",
        "Fujitsu MHF 2043AT, as used throughout the paper.");

    const power::DiskParams disk = power::fujitsuMhf2043at();

    TextTable table;
    table.setHeader({"parameter", "value", "paper"});
    table.addRow({"Busy power", fixedString(disk.busyPowerW, 2) + " W",
                  "2.2 W"});
    table.addRow({"Idle power", fixedString(disk.idlePowerW, 2) + " W",
                  "0.95 W"});
    table.addRow({"Standby power",
                  fixedString(disk.standbyPowerW, 2) + " W",
                  "0.13 W"});
    table.addRow({"Spin-up energy",
                  fixedString(disk.spinUpEnergyJ, 1) + " J", "4.4 J"});
    table.addRow({"Shutdown energy",
                  fixedString(disk.shutdownEnergyJ, 2) + " J",
                  "0.36 J"});
    table.addRow({"Spin-up time",
                  fixedString(usToSeconds(disk.spinUpTime), 2) + " s",
                  "1.6 s"});
    table.addRow({"Shutdown time",
                  fixedString(usToSeconds(disk.shutdownTime), 2) +
                      " s",
                  "0.67 s"});
    table.addRow({"Breakeven time (quoted)",
                  fixedString(usToSeconds(disk.breakevenTime), 2) +
                      " s",
                  "5.43 s"});
    table.addRow({"Breakeven time (derived)",
                  fixedString(disk.derivedBreakevenSeconds(), 2) +
                      " s",
                  "-"});
    table.print(std::cout);

    const std::string problem = disk.validate();
    std::cout << "\nconsistency check: "
              << (problem.empty() ? "OK" : problem) << "\n";
    return problem.empty() ? 0 : 1;
}
