/**
 * @file
 * Extension — the prior dynamic predictors of Section 2, evaluated
 * under the same harness as the paper's own comparison.
 *
 * The paper compares PCAP only against TP and the Learning Tree (the
 * strongest prior work), but its background section discusses three
 * more families: exponential-average idle prediction (Hwang & Wu,
 * "EA"), busy-period regression (Srivastava et al., "SB"), and
 * feedback-adapted timeouts (Douglis et al. / Golding et al.,
 * "ATP"). This bench runs them all on the global predictor, which
 * reproduces the qualitative claim of the paper's survey reference
 * [13]: dynamic predictors before LT/PCAP shut down eagerly but
 * mispredict far more than the timeout.
 */

#include <iostream>

#include "bench_common.hpp"

using namespace pcap;

int
main()
{
    bench::printHeader(
        "Extension: prior dynamic predictors of Section 2 "
        "(global)",
        "EA = Hwang & Wu exponential average; SB = Srivastava "
        "short-busy heuristic; ATP = adaptive timeout. The paper's "
        "survey [13] found such predictors far less accurate than "
        "TP; PCAP should dominate all of them.");

    sim::Evaluation eval(bench::standardConfig());
    const std::vector<sim::PolicyConfig> policies = {
        sim::PolicyConfig::timeoutPolicy(),
        sim::PolicyConfig::adaptiveTimeoutPolicy(),
        sim::PolicyConfig::expAveragePolicy(),
        sim::PolicyConfig::busyRatioPolicy(),
        sim::PolicyConfig::learningTree(),
        sim::PolicyConfig::pcapBase(),
    };

    TextTable table;
    table.setHeader({"app", "policy", "hit", "miss",
                     "not-predicted", "saved"});

    std::vector<std::vector<double>> hit(policies.size());
    std::vector<std::vector<double>> miss(policies.size());
    std::vector<std::vector<double>> saved(policies.size());

    for (const std::string &app : eval.appNames()) {
        const double base = eval.baseRun(app).energy.total();
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const auto outcome = eval.globalRun(app, policies[p]);
            const auto &accuracy = outcome.run.accuracy;
            const double savings =
                1.0 - outcome.run.energy.total() / base;
            table.addRow({app, policies[p].label,
                          percentString(accuracy.hitFraction()),
                          percentString(accuracy.missFraction()),
                          percentString(
                              accuracy.notPredictedFraction()),
                          percentString(savings)});
            hit[p].push_back(accuracy.hitFraction());
            miss[p].push_back(accuracy.missFraction());
            saved[p].push_back(savings);
        }
    }
    for (std::size_t p = 0; p < policies.size(); ++p) {
        table.addRow({"AVERAGE", policies[p].label,
                      percentString(bench::averageOf(hit[p])),
                      percentString(bench::averageOf(miss[p])), "",
                      percentString(bench::averageOf(saved[p]))});
    }
    table.print(std::cout);
    return 0;
}
