/**
 * @file
 * Ablation — file-cache size.
 *
 * The paper filters traces through a 256 KB Linux-like file cache so
 * only misses reach the disk (Section 6). A larger cache absorbs
 * more traffic, merging disk idle periods into fewer, longer ones —
 * which changes what every predictor sees.
 */

#include <iostream>

#include "bench_common.hpp"

using namespace pcap;

int
main()
{
    bench::printHeader(
        "Ablation: file-cache size (paper: 256 KB)",
        "Larger caches absorb more traffic: fewer disk accesses, "
        "fewer but longer idle periods.");

    TextTable table;
    table.setHeader({"cache", "disk accesses", "global periods",
                     "PCAP hit", "PCAP miss", "PCAP saved"});

    for (std::size_t kb : {64, 128, 256, 512, 1024, 4096}) {
        sim::ExperimentConfig config = bench::standardConfig();
        config.cache.capacityBytes = kb * 1024;
        sim::Evaluation eval(config);

        std::uint64_t accesses = 0, periods = 0;
        std::vector<double> hit, miss, saved;
        for (const std::string &app : eval.appNames()) {
            for (const auto &input : eval.inputs(app)) {
                accesses += input.accesses.size();
                periods += input.countGlobalOpportunities(
                    config.sim.breakeven());
            }
            const auto outcome =
                eval.globalRun(app, sim::PolicyConfig::pcapBase());
            hit.push_back(outcome.run.accuracy.hitFraction());
            miss.push_back(outcome.run.accuracy.missFraction());
            saved.push_back(1.0 -
                            outcome.run.energy.normalizedTo(
                                eval.baseRun(app).energy));
        }
        table.addRow({std::to_string(kb) + " KB",
                      std::to_string(accesses),
                      std::to_string(periods),
                      percentString(bench::averageOf(hit)),
                      percentString(bench::averageOf(miss)),
                      percentString(bench::averageOf(saved))});
    }
    table.print(std::cout);
    return 0;
}
