/**
 * @file
 * Ablation — timeout sensitivity (Section 6.3).
 *
 * The paper: TP with a 10 s timer saves 72% of energy at 8% global
 * mispredictions; setting the timer to the breakeven time (5.43 s)
 * raises savings to 74% but mispredictions to 12%. LT and PCAP
 * energy savings are "not affected by the timeout value" since most
 * predictions come from the primary predictors.
 *
 * This bench sweeps the timer for TP and for PCAP's backup.
 */

#include <iostream>

#include "bench_common.hpp"

using namespace pcap;

namespace {

double
averageSavings(sim::Evaluation &eval, const sim::PolicyConfig &policy)
{
    std::vector<double> savings;
    for (const std::string &app : eval.appNames()) {
        const double total =
            eval.globalRun(app, policy)
                .run.energy.normalizedTo(eval.baseRun(app).energy);
        savings.push_back(1.0 - total);
    }
    return bench::averageOf(savings);
}

double
averageMiss(sim::Evaluation &eval, const sim::PolicyConfig &policy)
{
    std::vector<double> misses;
    for (const std::string &app : eval.appNames())
        misses.push_back(eval.globalRun(app, policy)
                             .run.accuracy.missFraction());
    return bench::averageOf(misses);
}

} // namespace

int
main()
{
    bench::printHeader(
        "Ablation: timeout sensitivity (Section 6.3)",
        "Paper: TP 10s saves 72% / 8% miss; TP 5.43s saves 74% / "
        "12% miss; LT and PCAP are insensitive to the backup timer.");

    sim::Evaluation eval(bench::standardConfig());
    const double timers_s[] = {2.0, 5.43, 10.0, 20.0, 30.0};

    TextTable table;
    table.setHeader(
        {"timer", "TP saved", "TP miss", "PCAP saved", "PCAP miss"});

    for (double timer : timers_s) {
        sim::PolicyConfig tp =
            sim::PolicyConfig::timeoutPolicy(secondsUs(timer));
        sim::PolicyConfig pcap = sim::PolicyConfig::pcapBase();
        pcap.timeout = secondsUs(timer);

        table.addRow({fixedString(timer, 2) + " s",
                      percentString(averageSavings(eval, tp)),
                      percentString(averageMiss(eval, tp)),
                      percentString(averageSavings(eval, pcap)),
                      percentString(averageMiss(eval, pcap))});
    }
    table.print(std::cout);
    return 0;
}
