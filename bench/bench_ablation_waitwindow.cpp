/**
 * @file
 * Ablation — sliding wait-window length (Section 4.1.1).
 *
 * The paper uses a one-second wait-window "since it filters
 * mispredictions in most common cases". Without the window (0.05 s
 * here — the window also delays the spin-down, so exactly 0 is not
 * representable in the decision model), every intra-burst signature
 * match would spin the disk down mid-burst; very long windows eat
 * into the energy savings like a timeout would.
 */

#include <iostream>

#include "bench_common.hpp"

using namespace pcap;

int
main()
{
    bench::printHeader(
        "Ablation: sliding wait-window length (PCAP, global)",
        "Paper uses 1 s; shorter windows let burst-internal matches "
        "spin the disk down, longer windows waste idle energy.");

    sim::Evaluation eval(bench::standardConfig());

    TextTable table;
    table.setHeader({"window", "hit", "miss", "not-predicted",
                     "saved"});

    for (double window_s : {0.05, 0.25, 0.5, 1.0, 2.0, 4.0}) {
        sim::PolicyConfig pcap = sim::PolicyConfig::pcapBase();
        pcap.pcap.waitWindow = secondsUs(window_s);

        std::vector<double> hit, miss, notp, saved;
        for (const std::string &app : eval.appNames()) {
            const auto outcome = eval.globalRun(app, pcap);
            hit.push_back(outcome.run.accuracy.hitFraction());
            miss.push_back(outcome.run.accuracy.missFraction());
            notp.push_back(
                outcome.run.accuracy.notPredictedFraction());
            saved.push_back(1.0 -
                            outcome.run.energy.normalizedTo(
                                eval.baseRun(app).energy));
        }
        table.addRow({fixedString(window_s, 2) + " s",
                      percentString(bench::averageOf(hit)),
                      percentString(bench::averageOf(miss)),
                      percentString(bench::averageOf(notp)),
                      percentString(bench::averageOf(saved))});
    }
    table.print(std::cout);
    return 0;
}
