/**
 * @file
 * Runtime overhead of PCAP (Section 3.2.2) — google-benchmark
 * microbenchmarks.
 *
 * The paper argues the per-I/O work (obtain the PC, add it to the
 * signature, one hash-table lookup) is "about four memory accesses"
 * and insignificant next to the thousands of instructions an I/O
 * takes. These benchmarks measure the actual cost of the
 * signature update + table lookup, the training path, the Learning
 * Tree step, and a full global-predictor access.
 */

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <unordered_map>

#include "core/global.hpp"
#include "core/pcap.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "pred/learning_tree.hpp"
#include "pred/timeout.hpp"
#include "sim/drivers.hpp"
#include "sim/input.hpp"
#include "sim/kernel.hpp"
#include "sim/observer.hpp"
#include "sim/policy.hpp"

using namespace pcap;

namespace {

/** Pre-populate a table with n realistic entries. */
std::shared_ptr<core::PredictionTable>
makeTable(std::size_t n)
{
    auto table = std::make_shared<core::PredictionTable>();
    for (std::size_t i = 0; i < n; ++i) {
        core::TableKey key;
        key.signature = static_cast<std::uint32_t>(
            0x08048000u + i * 0x9e3779b9u);
        table->train(key);
    }
    return table;
}

void
BM_PcapOnIo(benchmark::State &state)
{
    const auto table =
        makeTable(static_cast<std::size_t>(state.range(0)));
    core::PcapConfig config;
    core::PcapPredictor predictor(config, table);

    pred::IoContext ctx;
    ctx.time = 0;
    ctx.sincePrev = millisUs(50);
    ctx.pc = 0x08048010;
    ctx.fd = 3;
    for (auto _ : state) {
        ctx.time += millisUs(100);
        ctx.pc += 0x10;
        benchmark::DoNotOptimize(predictor.onIo(ctx));
    }
}
BENCHMARK(BM_PcapOnIo)->Arg(16)->Arg(139)->Arg(4096);

void
BM_PcapTrainingCycle(benchmark::State &state)
{
    const auto table = makeTable(64);
    core::PcapConfig config;
    core::PcapPredictor predictor(config, table);

    pred::IoContext ctx;
    ctx.time = 0;
    ctx.pc = 0x08048010;
    ctx.fd = 3;
    for (auto _ : state) {
        // A long idle period completes: training + path reset.
        ctx.time += secondsUs(10);
        ctx.sincePrev = secondsUs(10);
        ctx.pc += 0x10;
        benchmark::DoNotOptimize(predictor.onIo(ctx));
    }
}
BENCHMARK(BM_PcapTrainingCycle);

void
BM_TableLookup(benchmark::State &state)
{
    const auto table =
        makeTable(static_cast<std::size_t>(state.range(0)));
    core::TableKey key;
    key.signature = 0x08048000u + 7 * 0x9e3779b9u;
    for (auto _ : state)
        benchmark::DoNotOptimize(table->lookup(key));
}
BENCHMARK(BM_TableLookup)->Arg(139)->Arg(4096);

void
BM_LearningTreeOnIo(benchmark::State &state)
{
    pred::LtConfig config;
    auto tree = std::make_shared<pred::LtTree>(config);
    pred::LtPredictor predictor(config, tree);

    pred::IoContext ctx;
    ctx.time = 0;
    std::uint64_t i = 0;
    for (auto _ : state) {
        ctx.time += secondsUs(4);
        // Alternate short/long so the tree keeps training.
        ctx.sincePrev = (++i % 3) ? secondsUs(2) : secondsUs(8);
        benchmark::DoNotOptimize(predictor.onIo(ctx));
    }
}
BENCHMARK(BM_LearningTreeOnIo);

void
BM_GlobalPredictorAccess(benchmark::State &state)
{
    const auto table = makeTable(64);
    core::GlobalShutdownPredictor gsp(
        [&table](Pid, TimeUs) {
            return std::make_unique<core::PcapPredictor>(
                core::PcapConfig{}, table);
        });
    const int processes = static_cast<int>(state.range(0));
    for (Pid pid = 0; pid < processes; ++pid)
        gsp.processStart(pid, 0);

    trace::DiskAccess access;
    access.pc = 0x08048010;
    access.fd = 3;
    std::uint64_t i = 0;
    for (auto _ : state) {
        access.time += millisUs(100);
        access.pid = static_cast<Pid>(++i % processes);
        access.pc += 0x10;
        benchmark::DoNotOptimize(gsp.onAccess(access));
    }
}
BENCHMARK(BM_GlobalPredictorAccess)->Arg(1)->Arg(4)->Arg(16);

/** A synthetic execution: n accesses round-robined over 4 pids. */
sim::ExecutionInput
makeInput(std::size_t n)
{
    sim::ExecutionInput input;
    input.app = "synthetic";
    for (std::size_t i = 0; i < n; ++i) {
        trace::DiskAccess access;
        access.time = static_cast<TimeUs>(i) * millisUs(10);
        access.pid = static_cast<Pid>(i % 4);
        access.pc = 0x08048000u + static_cast<std::uint32_t>(i);
        input.accesses.push_back(access);
    }
    for (Pid pid = 0; pid < 4; ++pid) {
        input.processes.push_back(
            {pid, 0, static_cast<TimeUs>(n) * millisUs(10)});
    }
    return input;
}

/**
 * The old ExecutionInput::accessesOf: scan the whole stream and
 * copy the matching records into a fresh vector on every call.
 * Kept here as the baseline for the precomputed-slice version.
 */
std::vector<trace::DiskAccess>
accessesOfByCopy(const sim::ExecutionInput &input, Pid pid)
{
    std::vector<trace::DiskAccess> result;
    for (const auto &access : input.accesses) {
        if (access.pid == pid)
            result.push_back(access);
    }
    return result;
}

void
BM_AccessesOfCopy(benchmark::State &state)
{
    const sim::ExecutionInput input =
        makeInput(static_cast<std::size_t>(state.range(0)));
    Pid pid = 0;
    for (auto _ : state) {
        pid = (pid + 1) % 4;
        benchmark::DoNotOptimize(accessesOfByCopy(input, pid));
    }
}
BENCHMARK(BM_AccessesOfCopy)->Arg(1024)->Arg(65536);

void
BM_AccessesOfPrecomputed(benchmark::State &state)
{
    const sim::ExecutionInput input =
        makeInput(static_cast<std::size_t>(state.range(0)));
    input.accessesOf(0); // finalize outside the timed loop
    Pid pid = 0;
    for (auto _ : state) {
        pid = (pid + 1) % 4;
        benchmark::DoNotOptimize(input.accessesOf(pid).size());
    }
}
BENCHMARK(BM_AccessesOfPrecomputed)->Arg(1024)->Arg(65536);

/**
 * The GlobalShutdownPredictor slot store: per-access pid lookup
 * followed by a full scan combining decisions. Measured for both
 * map types to back the std::map → std::unordered_map switch in
 * core/global.hpp (see DESIGN.md for recorded numbers).
 */
struct SlotLike
{
    TimeUs lastIoTime = -1;
    TimeUs earliest = 0;
};

template <typename Map>
void
BM_SlotStoreAccess(benchmark::State &state)
{
    const Pid slots = static_cast<Pid>(state.range(0));
    Map map;
    for (Pid pid = 0; pid < slots; ++pid)
        map.emplace(pid, SlotLike{pid * 100, pid * 1000});

    std::uint64_t i = 0;
    for (auto _ : state) {
        // The per-access path: find the responsible slot, update it,
        // then scan all slots for the latest decision.
        const Pid pid = static_cast<Pid>(++i % slots);
        auto it = map.find(pid);
        it->second.lastIoTime = static_cast<TimeUs>(i);
        TimeUs best = -1;
        for (const auto &[key, slot] : map) {
            (void)key;
            if (slot.earliest > best)
                best = slot.earliest;
        }
        benchmark::DoNotOptimize(best);
    }
}
BENCHMARK(BM_SlotStoreAccess<std::map<Pid, SlotLike>>)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64);
BENCHMARK(BM_SlotStoreAccess<std::unordered_map<Pid, SlotLike>>)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64);

/**
 * Observability hot paths (PR 3): the per-event cost of a resolved
 * counter increment and histogram observe, the resolve (registry
 * lookup) itself, and the end-to-end tax of hanging a
 * MetricsObserver on the idle-period sink versus the NullObserver.
 * The acceptance bar is <5% on the simulation hot path; the
 * per-event costs here are the budget's denominators.
 */
void
BM_MetricsCounterInc(benchmark::State &state)
{
    obs::MetricsRegistry registry;
    obs::Counter &counter = registry.counter("bm_total");
    for (auto _ : state)
        counter.inc();
    benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_MetricsCounterInc);

void
BM_MetricsHistogramObserve(benchmark::State &state)
{
    obs::MetricsRegistry registry;
    obs::Histogram &histogram = registry.histogram(
        "bm_hist", {1e4, 1e5, 1e6, 2e6, 1e7, 3e7, 6e7, 3e8});
    double v = 0.0;
    for (auto _ : state) {
        v = v > 1e8 ? 1.0 : v * 3.0 + 7.0;
        histogram.observe(v);
    }
    benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_MetricsHistogramObserve);

void
BM_MetricsRegistryLookup(benchmark::State &state)
{
    // The once-per-cell resolve path: mutex + hash of the series
    // identity. Hot loops hoist this out; the benchmark documents
    // why.
    obs::MetricsRegistry registry;
    registry.counter("bm_total", {{"app", "x"}});
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            &registry.counter("bm_total", {{"app", "x"}}));
    }
}
BENCHMARK(BM_MetricsRegistryLookup);

template <bool WithMetrics>
void
BM_IdleSinkClassify(benchmark::State &state)
{
    obs::MetricsRegistry registry;
    obs::ScopedMetrics scope(&registry, {{"app", "bm"}});
    sim::SimParams params;
    sim::MetricsObserver metrics(scope, params.breakeven());
    sim::SimObserver &observer =
        WithMetrics ? static_cast<sim::SimObserver &>(metrics)
                    : sim::nullObserver();

    sim::AccuracyStats stats;
    sim::IdleSink sink(params.breakeven(), stats, observer);
    TimeUs t = 0;
    std::uint64_t i = 0;
    for (auto _ : state) {
        const TimeUs gap =
            (++i % 3) ? secondsUs(30.0) : millisUs(100.0);
        sink.classify(0, t, t + gap, (i % 3) ? t + secondsUs(5.0) : -1,
                      pred::DecisionSource::Primary);
        t += gap;
    }
    benchmark::DoNotOptimize(stats.opportunities);
}
BENCHMARK(BM_IdleSinkClassify<false>)->Name("BM_IdleSinkClassify/null");
BENCHMARK(BM_IdleSinkClassify<true>)
    ->Name("BM_IdleSinkClassify/metrics");

/**
 * Provenance flight recorder (PR 5): the raw ring append, and the
 * end-to-end recorder cost per classified idle period — the same
 * sink loop as BM_IdleSinkClassify, but with a ProvenanceObserver
 * attached (sink-less ring, flight-recorder mode). Compare against
 * BM_IdleSinkClassify/null for the per-period tax; the default
 * provenance-off path pays only a null pointer test in the
 * predictor.
 */
void
BM_ProvenanceRecorderAppend(benchmark::State &state)
{
    obs::ProvenanceRecorder recorder(
        static_cast<std::size_t>(state.range(0)));
    obs::ProvenanceRecord record;
    record.signature = 0x1234;
    record.flags = obs::kProvHasDecision;
    for (auto _ : state) {
        record.startUs += 1000;
        record.endUs = record.startUs + 500;
        recorder.append(record);
    }
    benchmark::DoNotOptimize(recorder.appended());
}
BENCHMARK(BM_ProvenanceRecorderAppend)->Arg(4096);

void
BM_IdleSinkClassifyProvenance(benchmark::State &state)
{
    sim::SimParams params;
    obs::ProvenanceRecorder recorder;
    sim::ProvenanceObserver provenance(recorder, params.disk);

    sim::AccuracyStats stats;
    sim::IdleSink sink(params.breakeven(), stats, provenance);
    TimeUs t = 0;
    std::uint64_t i = 0;
    for (auto _ : state) {
        const TimeUs gap =
            (++i % 3) ? secondsUs(30.0) : millisUs(100.0);
        sink.classify(0, t, t + gap, (i % 3) ? t + secondsUs(5.0) : -1,
                      pred::DecisionSource::Primary);
        t += gap;
    }
    benchmark::DoNotOptimize(stats.opportunities);
}
BENCHMARK(BM_IdleSinkClassifyProvenance)
    ->Name("BM_IdleSinkClassify/provenance");

/**
 * Batched SoA replay kernel (PR 6): one full execution replayed
 * through SimulationKernel per iteration, batched vs the scalar
 * reference loop, with and without an attached observer. The
 * "per_period" counter is seconds per idle period (displayed with an
 * SI suffix, so 2.5n reads as 2.5 ns/period); the uninstrumented
 * batched path is the one the <3 ns/period budget applies to.
 *
 * The input alternates two 100 ms gaps with one 30 s opportunity, so
 * the replay exercises classification, shutdown issuance and the
 * disk model — not just event dispatch.
 */
sim::ExecutionInput
makeReplayInput(std::size_t periods)
{
    sim::ExecutionInput input;
    input.app = "synthetic";
    TimeUs t = 0;
    for (std::size_t i = 0; i < periods; ++i) {
        trace::DiskAccess access;
        access.time = t;
        access.pid = static_cast<Pid>(i % 4);
        access.pc = 0x08048000u + static_cast<std::uint32_t>(i % 97);
        input.accesses.push_back(access);
        t += (i % 3) ? millisUs(100.0) : secondsUs(30.0);
    }
    for (Pid pid = 0; pid < 4; ++pid)
        input.processes.push_back({pid, 0, t});
    input.endTime = t;
    input.finalize();
    return input;
}

template <sim::KernelPath Path, bool WithObserver>
void
BM_KernelBatchReplay(benchmark::State &state)
{
    const std::size_t periods =
        static_cast<std::size_t>(state.range(0));
    const sim::ExecutionInput input = makeReplayInput(periods);
    sim::SimParams params;
    sim::IdleHistogramObserver histogram(
        sim::IdleHistogramObserver::defaultBoundaries(
            params.breakeven()));
    sim::SimObserver &observer =
        WithObserver ? static_cast<sim::SimObserver &>(histogram)
                     : sim::nullObserver();
    sim::SimulationKernel kernel(params, observer, Path);
    sim::PolicySession session(sim::policyByName("TP"));
    sim::GlobalDriver driver(session);
    for (auto _ : state)
        benchmark::DoNotOptimize(kernel.runExecution(input, driver));
    state.counters["per_period"] = benchmark::Counter(
        static_cast<double>(periods),
        benchmark::Counter::kIsIterationInvariantRate |
            benchmark::Counter::kInvert);
}
BENCHMARK(BM_KernelBatchReplay<sim::KernelPath::Batched, false>)
    ->Name("BM_KernelBatchReplay/batched/null")
    ->Arg(65536);
BENCHMARK(BM_KernelBatchReplay<sim::KernelPath::Batched, true>)
    ->Name("BM_KernelBatchReplay/batched/observed")
    ->Arg(65536);
BENCHMARK(BM_KernelBatchReplay<sim::KernelPath::Scalar, false>)
    ->Name("BM_KernelBatchReplay/scalar/null")
    ->Arg(65536);
BENCHMARK(BM_KernelBatchReplay<sim::KernelPath::Scalar, true>)
    ->Name("BM_KernelBatchReplay/scalar/observed")
    ->Arg(65536);

void
BM_TimeoutOnIo(benchmark::State &state)
{
    pred::TimeoutPredictor predictor(secondsUs(10.0));
    pred::IoContext ctx;
    for (auto _ : state) {
        ctx.time += millisUs(100);
        benchmark::DoNotOptimize(predictor.onIo(ctx));
    }
}
BENCHMARK(BM_TimeoutOnIo);

} // namespace

BENCHMARK_MAIN();
