/**
 * @file
 * The paper's tables and figures as reusable report functions.
 *
 * Every report renders through any EvaluationApi — the per-figure
 * binaries pass a serial sim::Evaluation (and stay byte-identical to
 * their historical output), while bench_all passes one shared
 * sim::ParallelEvaluation so the whole suite reuses a single
 * generated workload and memoized simulation cells.
 *
 * Each report also enumerates the standard-config simulation cells
 * it will query, so bench_all can prefetch the union across the
 * thread pool before rendering.
 */

#ifndef PCAP_BENCH_REPORTS_HPP
#define PCAP_BENCH_REPORTS_HPP

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace pcap {
class Json;
}

namespace pcap::obs {
class AlertEngine;
}

namespace pcap::bench {

/** The fixed seed all benches share (numbers must be reproducible). */
constexpr std::uint64_t kBenchSeed = 42;

/** Standard evaluation: paper parameters, full execution counts. */
inline sim::ExperimentConfig
standardConfig()
{
    sim::ExperimentConfig config;
    config.seed = kBenchSeed;
    return config;
}

/** Average of per-application values (the paper averages across
 * applications, never pooling periods). */
double averageOf(const std::vector<double> &values);

/**
 * Builds an experiment engine for a non-standard config (the
 * file-cache ablation sweeps cache sizes, each a separate workload).
 */
using EvalFactory = std::function<std::unique_ptr<sim::EvaluationApi>(
    const sim::ExperimentConfig &)>;

/** Settings of the opt-in fleet report (see reportFleet). */
struct FleetSettings
{
    std::uint64_t hosts = 128; ///< --hosts
    std::uint64_t seed = kBenchSeed;
    unsigned jobs = 1; ///< host-cell sharding width
    obs::MetricsRegistry *metrics = nullptr;

    /** Alert engine fed the fleet distributions (--alerts). */
    obs::AlertEngine *alerts = nullptr;

    /** Outlier drill-down output directory (--drilldown-dir);
     * empty disables the instrumented re-simulation pass. */
    std::string drilldownDir;
};

/** Everything a report needs to render. */
struct ReportContext
{
    /** Engine configured with standardConfig(). */
    sim::EvaluationApi &eval;

    /** Factory for engines with other configs. */
    EvalFactory makeEval;

    /** Fleet-report knobs (defaults match the CI smoke run). */
    FleetSettings fleet{};

    /** When non-null, the fleet report fills this with its
     * machine-readable pcap-fleet-v1 block. */
    Json *fleetJson = nullptr;

    /**
     * The run's shared trace store, or null. Reports that build
     * sweep engines open a TraceStore::Retention on it so the raw
     * traces they share are dropped once the sweep finishes.
     */
    sim::TraceStore *traceStore = nullptr;
};

/** One table/figure of the evaluation suite. */
struct Report
{
    /** Short name for --only selection and JSON keys. */
    std::string name;

    /** The historical standalone binary. */
    std::string binary;

    /** Render the report (text identical to the old binary). */
    void (*run)(ReportContext &ctx, std::ostream &os);

    /** Standard-config cells the report queries, for prefetching.
     * Empty for reports that use other configs or none. */
    std::vector<sim::Cell> (*cells)();

    /** Opt-in reports run only when named via --only; they are not
     * part of the byte-compared reference suite. */
    bool optIn = false;
};

/** All reports, in the canonical EXPERIMENTS.md order. */
const std::vector<Report> &allReports();

/**
 * Convenience for the thin per-figure wrappers: run one report with
 * a private serial Evaluation on std::cout.
 * @return the process exit code.
 */
int runReportStandalone(const std::string &name);

} // namespace pcap::bench

#endif // PCAP_BENCH_REPORTS_HPP
