/**
 * @file
 * Figure 9 — PCAP optimizations.
 *
 * Global predictor results for PCAP, PCAPh (idle-period history,
 * length 6), PCAPf (file-descriptor context) and PCAPfh (both), with
 * hits and misses split by the predictor that made the last decision
 * (primary vs backup timeout).
 *
 * Paper reference (averages): PCAP 85% hit / 10% miss; PCAPh 85% /
 * 5%; PCAPf 85% / 9%; PCAPfh 84% / 5%. History cuts mozilla's
 * mispredictions from 26% to 13%.
 */

#include <iostream>

#include "bench_common.hpp"

using namespace pcap;

int
main()
{
    bench::printHeader(
        "Figure 9: PCAP context optimizations (global predictor)",
        "Paper averages: PCAP 85%/10%, PCAPh 85%/5%, PCAPf 85%/9%, "
        "PCAPfh 84%/5%; history halves mozilla's misses.");

    sim::Evaluation eval(bench::standardConfig());
    const std::vector<sim::PolicyConfig> policies = {
        sim::PolicyConfig::pcapBase(),
        sim::PolicyConfig::pcapHistory(),
        sim::PolicyConfig::pcapFd(),
        sim::PolicyConfig::pcapFdHistory(),
    };

    TextTable table;
    table.setHeader({"app", "policy", "hit-primary", "hit-backup",
                     "miss-primary", "miss-backup", "not-predicted",
                     "hit", "miss"});

    std::vector<std::vector<double>> hit(policies.size());
    std::vector<std::vector<double>> miss(policies.size());

    for (const std::string &app : eval.appNames()) {
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const sim::AccuracyStats stats =
                eval.globalRun(app, policies[p]).run.accuracy;
            table.addRow(
                {app, policies[p].label,
                 percentString(stats.hitPrimaryFraction()),
                 percentString(stats.hitBackupFraction()),
                 percentString(stats.missPrimaryFraction()),
                 percentString(stats.missBackupFraction()),
                 percentString(stats.notPredictedFraction()),
                 percentString(stats.hitFraction()),
                 percentString(stats.missFraction())});
            hit[p].push_back(stats.hitFraction());
            miss[p].push_back(stats.missFraction());
        }
    }
    for (std::size_t p = 0; p < policies.size(); ++p) {
        table.addRow({"AVERAGE", policies[p].label, "", "", "", "",
                      "", percentString(bench::averageOf(hit[p])),
                      percentString(bench::averageOf(miss[p]))});
    }
    table.print(std::cout);
    return 0;
}
