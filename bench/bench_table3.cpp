/**
 * @file
 * Table 3 — storage requirements of the prediction tables: the
 * number of entries each PCAP variant has learned per application
 * after all executions, and the bytes needed to persist them.
 *
 * Paper reference: PCAP 6-72 entries per application, PCAPfh up to
 * 139 entries = 556 bytes for mozilla; storage is never a concern.
 */

#include <iostream>

#include "bench_common.hpp"

using namespace pcap;

namespace {

struct PaperRow
{
    const char *app;
    int pcap, pcaph, pcapf, pcapfh;
};

constexpr PaperRow kPaper[] = {
    {"mozilla", 72, 99, 129, 139}, {"writer", 30, 36, 30, 36},
    {"impress", 34, 44, 44, 47},   {"xemacs", 13, 16, 13, 16},
    {"nedit", 6, 6, 6, 6},         {"mplayer", 24, 24, 26, 26},
};

} // namespace

int
main()
{
    bench::printHeader(
        "Table 3: prediction-table storage requirements (entries)",
        "Paper: 6-139 entries; mozilla PCAPfh = 139 entries "
        "(556 bytes).");

    sim::Evaluation eval(bench::standardConfig());
    const std::vector<sim::PolicyConfig> policies = {
        sim::PolicyConfig::pcapBase(),
        sim::PolicyConfig::pcapHistory(),
        sim::PolicyConfig::pcapFd(),
        sim::PolicyConfig::pcapFdHistory(),
    };

    TextTable table;
    table.setHeader({"app", "PCAP", "(paper)", "PCAPh", "(paper)",
                     "PCAPf", "(paper)", "PCAPfh", "(paper)",
                     "bytes (PCAPfh)"});

    for (const PaperRow &paper : kPaper) {
        std::vector<std::size_t> entries;
        for (const auto &policy : policies)
            entries.push_back(
                eval.globalRun(paper.app, policy).tableEntries);
        table.addRow({paper.app, std::to_string(entries[0]),
                      std::to_string(paper.pcap),
                      std::to_string(entries[1]),
                      std::to_string(paper.pcaph),
                      std::to_string(entries[2]),
                      std::to_string(paper.pcapf),
                      std::to_string(entries[3]),
                      std::to_string(paper.pcapfh),
                      std::to_string(entries[3] * 4)});
    }
    table.print(std::cout);
    return 0;
}
