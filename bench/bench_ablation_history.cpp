/**
 * @file
 * Ablation — history-length sensitivity.
 *
 * The paper chose six idle periods for PCAPh ("longer history does
 * not reduce mispredictions any further", Section 6.4.1) and eight
 * for LT ("longer history lengths does not improve accuracy",
 * Section 6.1). This bench sweeps both.
 */

#include <iostream>

#include "bench_common.hpp"

using namespace pcap;

namespace {

void
averages(sim::Evaluation &eval, const sim::PolicyConfig &policy,
         double &hit, double &miss)
{
    std::vector<double> hits, misses;
    for (const std::string &app : eval.appNames()) {
        const sim::AccuracyStats stats =
            eval.globalRun(app, policy).run.accuracy;
        hits.push_back(stats.hitFraction());
        misses.push_back(stats.missFraction());
    }
    hit = bench::averageOf(hits);
    miss = bench::averageOf(misses);
}

} // namespace

int
main()
{
    bench::printHeader(
        "Ablation: history length (PCAPh idle history / LT tree "
        "depth)",
        "Paper picks PCAPh length 6 and LT depth 8; longer "
        "histories plateau.");

    sim::Evaluation eval(bench::standardConfig());

    TextTable table;
    table.setHeader({"length", "PCAPh hit", "PCAPh miss", "LT hit",
                     "LT miss"});

    for (int length : {1, 2, 4, 6, 8, 10, 12}) {
        sim::PolicyConfig pcaph = sim::PolicyConfig::pcapHistory();
        pcaph.pcap.historyLength = length;
        sim::PolicyConfig lt = sim::PolicyConfig::learningTree();
        lt.lt.historyLength = length;

        double pcap_hit = 0, pcap_miss = 0, lt_hit = 0, lt_miss = 0;
        averages(eval, pcaph, pcap_hit, pcap_miss);
        averages(eval, lt, lt_hit, lt_miss);

        table.addRow({std::to_string(length),
                      percentString(pcap_hit),
                      percentString(pcap_miss),
                      percentString(lt_hit),
                      percentString(lt_miss)});
    }
    table.print(std::cout);
    return 0;
}
