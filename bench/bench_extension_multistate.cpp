/**
 * @file
 * Extension — multi-state PCAP (the paper's Section 7 future work).
 *
 * Thin wrapper: the report itself lives in reports.cpp so bench_all
 * can render it from a shared parallel experiment engine; this
 * binary keeps the historical one-report-per-process interface.
 */

#include "reports.hpp"

int
main()
{
    return pcap::bench::runReportStandalone("extension_multistate");
}
