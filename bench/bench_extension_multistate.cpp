/**
 * @file
 * Extension — multiple low-power states (the paper's Section 7
 * future work).
 *
 * "PCAP can be further extended to handle multiple low power states
 * of hard disks. For example, the sliding wait-window can be
 * optimized to put the disk into a lower power state immediately,
 * and only shut down after the wait-window elapses."
 *
 * This bench implements exactly that: on a primary prediction the
 * disk parks in a low-power idle mode (heads unloaded, 0.55 W) the
 * moment it goes idle, and the full spin-down still waits for the
 * wait-window. Benefits: the wait-window second is spent at 0.55 W
 * instead of 0.95 W, and a misprediction costs a 0.35 J head-load
 * instead of a 4.76 J spin cycle.
 */

#include <iostream>

#include "bench_common.hpp"

using namespace pcap;

int
main()
{
    bench::printHeader(
        "Extension: multi-state PCAP (Section 7 future work)",
        "PCAP-MS parks the disk in a 0.55 W low-power idle mode on "
        "every primary prediction, then spins down after the "
        "wait-window.");

    sim::Evaluation eval(bench::standardConfig());
    sim::SimParams params;

    TextTable table;
    table.setHeader({"app", "policy", "hit", "miss", "saved",
                     "low-power entries"});

    std::vector<double> saved_plain, saved_ms;
    for (const std::string &app : eval.appNames()) {
        const double base = eval.baseRun(app).energy.total();

        sim::PolicySession plain(sim::PolicyConfig::pcapBase());
        const sim::RunResult plain_run =
            sim::runGlobal(eval.inputs(app), plain, params);
        const double plain_saved =
            1.0 - plain_run.energy.total() / base;
        table.addRow({app, "PCAP",
                      percentString(
                          plain_run.accuracy.hitFraction()),
                      percentString(
                          plain_run.accuracy.missFraction()),
                      percentString(plain_saved), "-"});
        saved_plain.push_back(plain_saved);

        sim::PolicySession ms(sim::PolicyConfig::pcapBase());
        const sim::RunResult ms_run =
            sim::runGlobalMultiState(eval.inputs(app), ms, params);
        const double ms_saved = 1.0 - ms_run.energy.total() / base;
        table.addRow(
            {app, "PCAP-MS",
             percentString(ms_run.accuracy.hitFraction()),
             percentString(ms_run.accuracy.missFraction()),
             percentString(ms_saved), ""});
        saved_ms.push_back(ms_saved);
    }
    table.addRow({"AVERAGE", "PCAP", "", "",
                  percentString(bench::averageOf(saved_plain)), ""});
    table.addRow({"AVERAGE", "PCAP-MS", "", "",
                  percentString(bench::averageOf(saved_ms)), ""});
    table.print(std::cout);

    std::cout << "\nThe accuracy columns are identical by "
                 "construction — the extension changes only where "
                 "the wait-window is spent.\n";
    return 0;
}
