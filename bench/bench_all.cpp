/**
 * @file
 * bench_all — the whole evaluation suite in one process.
 *
 * Historically every table and figure was a separate binary, each
 * regenerating the six-application workload from seed before
 * simulating; a full EXPERIMENTS.md refresh paid that cost ~15
 * times. bench_all renders every report through one shared
 * ParallelEvaluation: the workload is generated (or loaded from the
 * on-disk cache) once, every (app x policy x mode) simulation cell
 * is computed once — reports overlap heavily in the cells they
 * query — and cells fan out across a thread pool where cores exist.
 *
 * Output: the same report text the standalone binaries print, plus
 * per-phase wall-clock timings and a machine-readable
 * BENCH_RESULTS.json for tools/compare_bench.py.
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/alerts.hpp"
#include "obs/export.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/tracing.hpp"
#include "reports.hpp"
#include "sim/cell_store.hpp"
#include "sim/trace_store.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/resource.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace pcap;

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

void
usage(std::ostream &os)
{
    os << "usage: bench_all [options]\n"
          "  -j, --jobs N      worker threads (default: hardware "
          "cores)\n"
          "      --no-cache    disable the on-disk workload cache\n"
          "      --cache-dir P workload cache directory (default: "
          "$PCAP_WORKLOAD_CACHE\n"
          "                    or <tmp>/pcap-workload-cache)\n"
          "      --json PATH   results file (default: "
          "BENCH_RESULTS.json; '-' disables)\n"
          "      --only NAMES  comma-separated report names to "
          "run\n"
          "                    (opt-in reports, e.g. idle_histogram, "
          "run only when named)\n"
          "      --report NAMES  alias of --only\n"
          "      --hosts N     fleet size for the opt-in fleet "
          "report\n"
          "                    (default: 128; see --report fleet)\n"
          "      --alerts PATH evaluate the pcap-alert-rules-v1 "
          "rules in\n"
          "                    PATH against the finished run; exit "
          "3 when a\n"
          "                    warn rule fires, 4 on critical\n"
          "      --drilldown-dir P  re-simulate MAD-flagged fleet "
          "outlier\n"
          "                    hosts with full instrumentation into "
          "directory\n"
          "                    P (requires --report fleet)\n"
          "      --trace-dir P write one per-idle-period JSONL "
          "trace per\n"
          "                    simulation cell into directory P\n"
          "      --provenance-dir P  record prediction provenance "
          "per policy\n"
          "                    cell into directory P (binary + "
          "JSONL; see\n"
          "                    tools/pcap_explain)\n"
          "      --timeline-dir P  write a simulated-time timeline "
          "per cell\n"
          "                    into directory P (pcap-timeline-v1 "
          "JSON + CSV;\n"
          "                    see tools/pcap_timeline.py)\n"
          "      --trace-profile PATH  record wall-clock phase "
          "spans and\n"
          "                    write a Chrome trace-event profile "
          "to PATH\n"
          "                    (load in Perfetto / "
          "chrome://tracing)\n"
          "      --perf        profile the run with hardware "
          "counters\n"
          "                    (perf_event_open: cycles, "
          "instructions,\n"
          "                    cache/branch misses); emits a "
          "pcap-perf-v1\n"
          "                    block, pcap_perf_* metrics, and "
          "per-span IPC\n"
          "                    when combined with --trace-profile. "
          "Falls\n"
          "                    back to a software backend (thread "
          "CPU time,\n"
          "                    marked backend=\"software\") where "
          "perf is\n"
          "                    unavailable; PCAP_PERF_BACKEND="
          "software\n"
          "                    forces the fallback\n"
          "      --metrics-out P  Prometheus text metrics file "
          "(default:\n"
          "                    <json>.prom; '-' disables)\n"
          "      --manifest P  run manifest file (default: "
          "<json>.manifest.json;\n"
          "                    '-' disables)\n"
          "      --no-metrics  disable metric collection "
          "entirely\n"
          "      --log-level L debug|info|warn|error|silent "
          "(default: info)\n"
          "      --list        list report names and exit\n"
          "  -h, --help        this text\n";
}

/** "<stem>.json" -> "<stem><suffix>"; otherwise append @p suffix. */
std::string
derivedPath(const std::string &json_path, const std::string &suffix)
{
    constexpr char kExt[] = ".json";
    const std::size_t ext = sizeof(kExt) - 1;
    if (json_path.size() > ext &&
        json_path.compare(json_path.size() - ext, ext, kExt) == 0)
        return json_path.substr(0, json_path.size() - ext) + suffix;
    return json_path + suffix;
}

/**
 * Process-wide wall metrics owned by bench_all itself: per-phase
 * timings and the thread-pool counters. All names contain "wall" or
 * "thread_pool", so tools/metrics_diff.py ignores them by default.
 */
void
recordBenchMetrics(obs::MetricsRegistry &registry, double inputs_ms,
                   double cells_ms, double total_ms)
{
    registry
        .timer("pcap_bench_phase_wall_seconds", {{"phase", "inputs"}})
        .addSeconds(inputs_ms / 1e3);
    registry
        .timer("pcap_bench_phase_wall_seconds",
               {{"phase", "simulation"}})
        .addSeconds(cells_ms / 1e3);
    registry
        .timer("pcap_bench_phase_wall_seconds", {{"phase", "total"}})
        .addSeconds(total_ms / 1e3);

    const ThreadPool::GlobalStats pool = ThreadPool::globalStats();
    registry.counter("pcap_thread_pool_tasks_submitted_total")
        .inc(pool.tasksSubmitted);
    registry.counter("pcap_thread_pool_tasks_executed_total")
        .inc(pool.tasksExecuted);
    registry.gauge("pcap_thread_pool_task_wall_seconds")
        .set(static_cast<double>(pool.taskNanos) * 1e-9);
    registry.gauge("pcap_thread_pool_peak_queue_depth")
        .set(static_cast<double>(pool.peakQueueDepth));
}

Json
linesJson(const std::string &text)
{
    Json lines = Json::array();
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        lines.push(line);
    return lines;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = ThreadPool::hardwareJobs();
    bool use_cache = true;
    bool use_metrics = true;
    std::string cache_dir;
    std::string json_path = "BENCH_RESULTS.json";
    std::string trace_dir;
    std::string provenance_dir;
    std::string timeline_dir;
    std::string trace_profile_path;
    std::string metrics_path;
    std::string manifest_path;
    std::vector<std::string> only;
    std::uint64_t fleet_hosts = 128;
    bool fleet_hosts_given = false;
    std::string alerts_path;
    std::string drilldown_dir;
    bool use_perf = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (++i >= argc) {
                error(std::string(flag) + " needs a value");
                std::exit(2);
            }
            return argv[i];
        };
        auto parseJobs = [](const std::string &text) -> unsigned {
            // stoul accepts "-3" (wrapping it to a huge value), so
            // insist on digits only and a sane upper bound.
            std::size_t used = 0;
            unsigned long parsed = 0;
            const bool digits =
                !text.empty() &&
                text.find_first_not_of("0123456789") ==
                    std::string::npos;
            if (digits) {
                try {
                    parsed = std::stoul(text, &used);
                } catch (const std::exception &) {
                    used = 0;
                }
            }
            if (!digits || used != text.size() || parsed > 4096) {
                error("--jobs needs an integer in [0, 4096], got '" +
                      text + "'");
                std::exit(2);
            }
            return static_cast<unsigned>(parsed);
        };
        if (arg == "-h" || arg == "--help") {
            usage(std::cout);
            return 0;
        } else if (arg == "--list") {
            for (const auto &report : bench::allReports())
                std::cout << report.name << "\n";
            return 0;
        } else if (arg == "-j" || arg == "--jobs") {
            jobs = parseJobs(value("--jobs"));
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
            jobs = parseJobs(arg.substr(2));
        } else if (arg == "--no-cache") {
            use_cache = false;
        } else if (arg == "--cache-dir") {
            cache_dir = value("--cache-dir");
        } else if (arg == "--json") {
            json_path = value("--json");
        } else if (arg == "--trace-dir") {
            trace_dir = value("--trace-dir");
        } else if (arg == "--provenance-dir") {
            provenance_dir = value("--provenance-dir");
        } else if (arg == "--timeline-dir") {
            timeline_dir = value("--timeline-dir");
        } else if (arg == "--trace-profile") {
            trace_profile_path = value("--trace-profile");
        } else if (arg == "--metrics-out") {
            metrics_path = value("--metrics-out");
        } else if (arg == "--manifest") {
            manifest_path = value("--manifest");
        } else if (arg == "--no-metrics") {
            use_metrics = false;
        } else if (arg == "--log-level") {
            const std::string name = value("--log-level");
            const auto level = logLevelFromName(name);
            if (!level) {
                error("--log-level needs one of debug|info|warn|"
                      "error|silent, got '" +
                      name + "'");
                return 2;
            }
            setLogLevel(*level);
        } else if (arg == "--only" || arg == "--report") {
            std::istringstream names(value(arg.c_str()));
            std::string name;
            const std::size_t before = only.size();
            while (std::getline(names, name, ','))
                if (!name.empty())
                    only.push_back(name);
            if (only.size() == before) {
                error(arg + " needs at least one report name "
                            "(see --list)");
                return 2;
            }
        } else if (arg == "--hosts") {
            const std::string text = value("--hosts");
            // Same digits-only discipline as --jobs; the bound only
            // guards against typos, fleets are O(1) memory anyway.
            std::size_t used = 0;
            unsigned long long parsed = 0;
            const bool digits =
                !text.empty() &&
                text.find_first_not_of("0123456789") ==
                    std::string::npos;
            if (digits) {
                try {
                    parsed = std::stoull(text, &used);
                } catch (const std::exception &) {
                    used = 0;
                }
            }
            if (!digits || used != text.size() || parsed == 0 ||
                parsed > 100000000ull) {
                error("--hosts needs an integer in [1, 1e8], "
                      "got '" +
                      text + "'");
                return 2;
            }
            fleet_hosts = parsed;
            fleet_hosts_given = true;
        } else if (arg == "--alerts") {
            alerts_path = value("--alerts");
        } else if (arg == "--drilldown-dir") {
            drilldown_dir = value("--drilldown-dir");
        } else if (arg == "--perf") {
            use_perf = true;
        } else {
            error("unknown option: " + arg);
            usage(std::cerr);
            return 2;
        }
    }

    // Derive the companion outputs from the results path; '-'
    // disables each individually.
    if (metrics_path.empty() && json_path != "-")
        metrics_path = derivedPath(json_path, ".prom");
    if (manifest_path.empty() && json_path != "-")
        manifest_path = derivedPath(json_path, ".manifest.json");
    if (!use_metrics)
        metrics_path = "-";

    obs::MetricsRegistry registry;

    // Alert rules load before any simulation runs: a malformed
    // rules file is a usage error, not a wasted benchmark.
    std::unique_ptr<obs::AlertEngine> alert_engine;
    if (!alerts_path.empty()) {
        obs::AlertRulesLoad load =
            obs::loadAlertRulesFile(alerts_path);
        if (!load.ok()) {
            error("--alerts: " + load.error);
            return 2;
        }
        alert_engine = std::make_unique<obs::AlertEngine>(
            std::move(load.rules));
        inform("alerts: " + std::to_string(
                                alert_engine->rules().size()) +
               " rules loaded from " + alerts_path);
    }

    // The span recorder (when requested) outlives every traced
    // scope, including pool-thread task hooks that may still fire
    // while the process winds down — so it is deliberately leaked.
    obs::TraceRecorder *trace_recorder = nullptr;
    if (!trace_profile_path.empty()) {
        trace_recorder = new obs::TraceRecorder();
        obs::setTraceRecorder(trace_recorder);
        obs::installThreadPoolTraceHook();
    }

    // Same lifetime discipline for the counter profiler: per-thread
    // groups may still be touched by winding-down pool threads.
    obs::PerfProfiler *perf_profiler = nullptr;
    if (use_perf) {
        perf_profiler = new obs::PerfProfiler();
        obs::setPerfProfiler(perf_profiler);
        inform(std::string("perf: ") +
               obs::perfBackendName(perf_profiler->backend()) +
               " backend (" + perf_profiler->backendDetail() + ")");
    }

    sim::ParallelOptions options;
    options.jobs = jobs;
    if (use_cache) {
        options.cacheDir = cache_dir.empty()
                               ? sim::WorkloadCache::defaultDirectory()
                               : cache_dir;
    }
    options.traceDir = trace_dir;
    options.provenanceDir = provenance_dir;
    options.timelineDir = timeline_dir;
    options.metrics = use_metrics ? &registry : nullptr;
    // Shared across the standard engine and every sweep engine the
    // reports build (ablation_cache): raw traces are generated once
    // per app, each configuration re-runs only the cache filter.
    options.traceStore = std::make_shared<sim::TraceStore>();
    // And finished cells: engines over an identical (config,
    // policy) pair replay each cell once between them.
    options.cellStore = std::make_shared<sim::CellStore>();
    if (use_metrics)
        options.traceStore->bindBytesGauge(
            &registry.gauge("pcap_trace_store_bytes"));

    sim::ParallelEvaluation eval(bench::standardConfig(), options);
    Json fleet_json;
    bench::ReportContext ctx{
        eval, [&options](const sim::ExperimentConfig &config) {
            return std::unique_ptr<sim::EvaluationApi>(
                new sim::ParallelEvaluation(config, options));
        }};
    ctx.fleet.hosts = fleet_hosts;
    ctx.fleet.jobs = options.jobs;
    ctx.fleet.metrics = options.metrics;
    ctx.fleet.alerts = alert_engine.get();
    ctx.fleet.drilldownDir = drilldown_dir;
    ctx.fleetJson = &fleet_json;
    ctx.traceStore = options.traceStore.get();

    std::vector<const bench::Report *> selected;
    for (const auto &report : bench::allReports()) {
        // Opt-in reports are skipped by the default selection and
        // must be named explicitly.
        bool wanted = only.empty() && !report.optIn;
        for (const std::string &name : only)
            wanted = wanted || name == report.name;
        if (wanted)
            selected.push_back(&report);
    }
    if (selected.empty()) {
        error("no matching reports (see --list)");
        return 2;
    }
    bool fleet_selected = false;
    for (const bench::Report *report : selected)
        fleet_selected = fleet_selected || report->name == "fleet";
    if (fleet_hosts_given && !fleet_selected)
        warn("--hosts only affects the fleet report "
             "(--report fleet)");
    if (!drilldown_dir.empty() && !fleet_selected)
        warn("--drilldown-dir only affects the fleet report "
             "(--report fleet)");

    const Clock::time_point total_start = Clock::now();

    // Phase 1: make every needed workload resident (cache or
    // generation), then fan the union of simulation cells across
    // the pool — reports afterwards only format memoized results.
    // A selection that queries no shared-engine cells (e.g.
    // `--report fleet`, which streams its own workload) skips the
    // materialization entirely, keeping peak memory bounded.
    std::vector<sim::Cell> cells;
    for (const bench::Report *report : selected) {
        const std::vector<sim::Cell> report_cells = report->cells();
        cells.insert(cells.end(), report_cells.begin(),
                     report_cells.end());
    }

    const Clock::time_point inputs_start = Clock::now();
    if (!cells.empty()) {
        obs::Span span("inputs");
        obs::PerfRegion perf("phase:inputs");
        eval.prefetchInputs();
    }
    const double inputs_ms = msSince(inputs_start);

    const Clock::time_point cells_start = Clock::now();
    {
        obs::Span span("simulation");
        obs::PerfRegion perf("phase:simulation");
        eval.prefetch(cells);
    }
    const double cells_ms = msSince(cells_start);

    // Phase 2: render every report, recording its residual cost
    // (cells not covered by the prefetch, plus formatting).
    Json report_json = Json::object();
    Json timing_json = Json::object();
    for (const bench::Report *report : selected) {
        const Clock::time_point start = Clock::now();
        std::ostringstream text;
        {
            obs::Span span("report", report->name);
            obs::PerfRegion perf("report:" +
                                 std::string(report->name));
            report->run(ctx, text);
        }
        const double ms = msSince(start);
        inform("report " + report->name + ": " +
               fixedString(ms / 1e3, 3) + " s wall, peak rss " +
               fixedString(static_cast<double>(peakRssBytes()) /
                               (1024.0 * 1024.0),
                           1) +
               " MiB");

        std::cout << text.str();
        Json &entry = report_json[report->name];
        entry = Json::object();
        entry["binary"] = report->binary;
        entry["ms"] = ms;
        entry["lines"] = linesJson(text.str());
        timing_json[report->name] = ms;
    }
    const double total_ms = msSince(total_start);

    std::cout << "\n== bench_all timings ==\n"
              << "jobs:             " << options.jobs << "\n"
              << "workload cache:   "
              << (eval.workloadCache().enabled()
                      ? eval.workloadCache().directory()
                      : std::string("disabled"))
              << " (" << eval.workloadCache().hits() << " hits, "
              << eval.workloadCache().misses() << " misses)\n"
              << "inputs phase:     " << fixedString(inputs_ms, 1)
              << " ms\n"
              << "simulation phase: " << fixedString(cells_ms, 1)
              << " ms (" << cells.size() << " cells)\n"
              << "total:            " << fixedString(total_ms, 1)
              << " ms\n";

    if (use_metrics) {
        // Workload-cache counters, labelled like the rest of the
        // wall-clock metrics family (cold/warm runs differ here by
        // design — metrics_diff ignores workload_cache by default).
        registry
            .counter("pcap_workload_cache_ops_total",
                     {{"op", "hit"}})
            .inc(eval.workloadCache().hits());
        registry
            .counter("pcap_workload_cache_ops_total",
                     {{"op", "miss"}})
            .inc(eval.workloadCache().misses());
        registry
            .counter("pcap_workload_cache_ops_total",
                     {{"op", "store"}})
            .inc(eval.workloadCache().stores());
        recordBenchMetrics(registry, inputs_ms, cells_ms, total_ms);
        if (perf_profiler)
            obs::recordPerfMetrics(*perf_profiler, registry);
        if (trace_recorder) {
            registry.counter("pcap_trace_profile_events_total")
                .inc(trace_recorder->totalEvents());
            registry.counter("pcap_trace_profile_dropped_total")
                .inc(trace_recorder->totalDropped());
            registry.gauge("pcap_trace_profile_threads")
                .set(static_cast<double>(
                    trace_recorder->threadCount()));
        }
    }

    // Alerts settle after every metric above has landed in the
    // registry — the snapshot finalize() takes is the same surface
    // the .prom export writes.
    if (alert_engine) {
        alert_engine->finalize(registry);
        if (use_metrics)
            alert_engine->recordMetrics(registry);
        alert_engine->printSummary(std::cout);
    }

    if (trace_recorder) {
        trace_recorder->writeChromeTrace(trace_profile_path);
        std::cout << "trace profile: " << trace_profile_path << " ("
                  << trace_recorder->totalEvents() << " spans";
        if (trace_recorder->totalDropped())
            std::cout << ", " << trace_recorder->totalDropped()
                      << " dropped";
        std::cout << ")\n";
    }

    if (perf_profiler) {
        std::cout << "perf: "
                  << obs::perfBackendName(perf_profiler->backend())
                  << " backend, "
                  << perf_profiler->regions().size()
                  << " regions\n";
    }

    if (json_path != "-") {
        Json root = Json::object();
        root["schema"] = "pcap-bench-results-v1";
        root["seed"] = bench::kBenchSeed;
        root["jobs"] = options.jobs;
        Json &cache = root["workload_cache"];
        cache = Json::object();
        cache["enabled"] = eval.workloadCache().enabled();
        cache["directory"] = eval.workloadCache().directory();
        cache["hits"] = eval.workloadCache().hits();
        cache["misses"] = eval.workloadCache().misses();
        cache["stores"] = eval.workloadCache().stores();
        cache["generated_apps"] = eval.generatedApps();
        Json &timings = root["timings_ms"];
        timings = Json::object();
        timings["inputs"] = inputs_ms;
        timings["simulation"] = cells_ms;
        timings["total"] = total_ms;
        timings["reports"] = std::move(timing_json);
        root["reports"] = std::move(report_json);
        if (fleet_selected)
            root["fleet"] = std::move(fleet_json);
        if (alert_engine)
            root["alerts"] = alert_engine->toJson();
        if (perf_profiler)
            root["perf"] = obs::perfToJson(*perf_profiler);
        if (use_metrics)
            root["metrics"] = obs::metricsToJson(registry);

        std::ofstream os(json_path);
        if (!os) {
            error("cannot write " + json_path);
            return 1;
        }
        root.dump(os);
        os << "\n";
        std::cout << "results: " << json_path << "\n";
    }

    if (use_metrics && metrics_path != "-") {
        std::ofstream os(metrics_path);
        if (!os) {
            error("cannot write " + metrics_path);
            return 1;
        }
        obs::writePrometheus(registry, os);
        if (!os) {
            error("write failed on " + metrics_path);
            return 1;
        }
        std::cout << "metrics: " << metrics_path << "\n";
    }

    if (manifest_path != "-" && !manifest_path.empty()) {
        obs::RunManifest manifest;
        manifest.createdAtUtc = obs::isoTimestampUtc();
        manifest.gitDescribe = obs::collectGitDescribe(".");
        for (int i = 0; i < argc; ++i) {
            if (i)
                manifest.command += ' ';
            manifest.command += argv[i];
        }
        manifest.seed = bench::kBenchSeed;
        manifest.jobs = options.jobs;
        manifest.maxExecutions = eval.config().maxExecutions;
        if (fleet_selected)
            manifest.fleetHosts = fleet_hosts;
        manifest.workloadCacheEnabled =
            eval.workloadCache().enabled();
        manifest.workloadCacheDir = eval.workloadCache().directory();
        for (const std::string &app : eval.appNames()) {
            manifest.inputKeys.emplace_back(
                app, eval.config().workloadKey(app).fileName());
        }
        manifest.phaseMs.emplace_back("inputs", inputs_ms);
        manifest.phaseMs.emplace_back("simulation", cells_ms);
        manifest.phaseMs.emplace_back("total", total_ms);
        for (const bench::Report *report : selected)
            manifest.reports.push_back(report->name);
        manifest.resultsPath = json_path == "-" ? "" : json_path;
        manifest.prometheusPath =
            (use_metrics && metrics_path != "-") ? metrics_path : "";
        manifest.build = obs::collectBuildInfo();
        manifest.perfRequested = use_perf;
        if (perf_profiler) {
            manifest.perfBackend =
                obs::perfBackendName(perf_profiler->backend());
            manifest.perfDetail = perf_profiler->backendDetail();
        } else {
            // Record the capability even when --perf is off: the
            // probe is one open+close, and knowing whether counters
            // *would* have been available attributes a missing perf
            // block to choice rather than environment.
            const obs::PerfCapability cap =
                obs::PerfCounterGroup::probe();
            manifest.perfBackend = cap.hardware ? "hardware"
                                                : "software";
            manifest.perfDetail = cap.detail;
        }

        const std::string problem =
            obs::writeManifest(manifest, manifest_path);
        if (!problem.empty()) {
            error("manifest: " + problem);
            return 1;
        }
        std::cout << "manifest: " << manifest_path << "\n";
    }
    // Fired alerts drive the exit code (0 clean, 3 warn, 4
    // critical) so CI can gate on run health directly.
    return alert_engine ? alert_engine->exitCode() : 0;
}
