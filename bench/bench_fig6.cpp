/**
 * @file
 * Figure 6 — local shutdown predictor accuracy.
 *
 * For every application, the Hit / Not-predicted / Miss fractions of
 * the timeout predictor (TP, 10 s), the Learning Tree (LT, history
 * 8) and PCAP, evaluated per process and normalized to the local
 * idle-period count.
 *
 * Paper reference (averages across applications): TP 52% hit / 3%
 * miss; LT 88% / 10%; PCAP 89% / 5%.
 */

#include <iostream>

#include "bench_common.hpp"

using namespace pcap;

int
main()
{
    bench::printHeader(
        "Figure 6: local shutdown predictor accuracy",
        "Paper averages: TP 52% hit / 3% miss; LT 88% / 10%; "
        "PCAP 89% / 5%.");

    sim::Evaluation eval(bench::standardConfig());
    const std::vector<sim::PolicyConfig> policies = {
        sim::PolicyConfig::timeoutPolicy(),
        sim::PolicyConfig::learningTree(),
        sim::PolicyConfig::pcapBase(),
    };

    TextTable table;
    table.setHeader({"app", "policy", "hit", "not-predicted", "miss",
                     "periods"});

    std::vector<std::vector<double>> hit(policies.size());
    std::vector<std::vector<double>> miss(policies.size());

    for (const std::string &app : eval.appNames()) {
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const sim::AccuracyStats stats =
                eval.localAccuracy(app, policies[p]);
            table.addRow({app, policies[p].label,
                          percentString(stats.hitFraction()),
                          percentString(stats.notPredictedFraction()),
                          percentString(stats.missFraction()),
                          std::to_string(stats.opportunities)});
            hit[p].push_back(stats.hitFraction());
            miss[p].push_back(stats.missFraction());
        }
    }
    for (std::size_t p = 0; p < policies.size(); ++p) {
        table.addRow({"AVERAGE", policies[p].label,
                      percentString(bench::averageOf(hit[p])), "",
                      percentString(bench::averageOf(miss[p])), ""});
    }
    table.print(std::cout);
    return 0;
}
