/**
 * @file
 * Figure 6 — local shutdown predictor accuracy.
 *
 * Thin wrapper: the report itself lives in reports.cpp so bench_all
 * can render it from a shared parallel experiment engine; this
 * binary keeps the historical one-report-per-process interface.
 */

#include "reports.hpp"

int
main()
{
    return pcap::bench::runReportStandalone("fig6");
}
