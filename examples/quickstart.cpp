/**
 * @file
 * Quickstart: the smallest end-to-end use of the library.
 *
 * Builds the paper's Figure 3 scenario by hand — an application that
 * reads a few files ({PC1, PC2, PC1}) and then goes idle for 20 s,
 * three times — runs PCAP on it, and prints what the predictor does
 * at every step: learn on the first occurrence, predict on the
 * second, and keep the disk spinning through the aliased suffix on
 * the third.
 *
 *   ./quickstart
 */

#include <cstdio>
#include <memory>

#include "core/pcap.hpp"
#include "pred/predictor.hpp"

using namespace pcap;

namespace {

const char *
describe(const pred::ShutdownDecision &decision, TimeUs now)
{
    if (decision.source == pred::DecisionSource::Primary)
        return "PCAP predicts a long idle period: shutdown "
               "scheduled after the wait-window";
    if (decision.earliest == kTimeNever)
        return "no shutdown will happen";
    return decision.earliest - now >= secondsUs(5)
               ? "no signature match: backup timeout armed"
               : "decision pending";
}

} // namespace

int
main()
{
    // One application-wide prediction table, shared by every process
    // of the application and across executions.
    auto table = std::make_shared<core::PredictionTable>();
    core::PcapPredictor pcap(core::PcapConfig{}, table);

    constexpr Address kPc1 = 0x08048010;
    constexpr Address kPc2 = 0x08048020;

    struct Step
    {
        double time_s;
        Address pc;
        const char *note;
    };
    // The exact access trace of Figure 3 (times in seconds).
    const Step steps[] = {
        {0.1, kPc1, "first sequence begins"},
        {0.2, kPc2, ""},
        {0.3, kPc1, "20 s idle period follows"},
        {20.1, kPc1, "second sequence begins"},
        {20.2, kPc2, ""},
        {20.3, kPc1, "the learned path repeats"},
        {40.1, kPc1, "third sequence begins"},
        {40.2, kPc2, ""},
        {40.3, kPc1, "prediction fires again..."},
        {40.4, kPc2, "...but PC2 arrives inside the wait-window"},
    };

    std::printf("PCAP on the paper's Figure 3 access trace\n");
    std::printf("%-8s %-10s %-10s %s\n", "time", "pc", "signature",
                "prediction");

    TimeUs prev = -1;
    for (const Step &step : steps) {
        const TimeUs now = secondsUs(step.time_s);
        pred::IoContext ctx;
        ctx.time = now;
        ctx.sincePrev = prev < 0 ? -1 : now - prev;
        ctx.pc = step.pc;
        ctx.fd = 3;
        const pred::ShutdownDecision decision = pcap.onIo(ctx);
        prev = now;

        std::printf("%6.1fs  PC%-8c 0x%08x %s%s%s\n", step.time_s,
                    step.pc == kPc1 ? '1' : '2', pcap.signature(),
                    describe(decision, now),
                    *step.note ? "  <- " : "", step.note);
    }

    std::printf("\ntrained signatures: %zu, predictions made: %llu, "
                "mispredictions: %llu\n",
                table->size(),
                static_cast<unsigned long long>(pcap.predictions()),
                static_cast<unsigned long long>(
                    pcap.mispredictionsObserved()));
    std::printf("(the wait-window absorbed the aliased suffix: no "
                "misprediction was charged)\n");
    return 0;
}
