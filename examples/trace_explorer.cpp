/**
 * @file
 * Trace explorer: generate an application's synthetic trace, push it
 * through the file cache, and inspect what the power manager will
 * actually see — event mix, per-process streams, the idle-period
 * length distribution (as an ASCII histogram around the wait-window
 * / breakeven / timeout thresholds), and cache statistics. Also
 * demonstrates saving the trace to disk in both text and binary
 * formats.
 *
 *   ./trace_explorer [app] [execution] [--save DIR]
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "cache/file_cache.hpp"
#include "sim/input.hpp"
#include "trace/io.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/app_model.hpp"

using namespace pcap;

namespace {

void
printHistogram(const SampleSet &gaps)
{
    struct Bucket
    {
        const char *label;
        double lo, hi;
    };
    const Bucket buckets[] = {
        {"< 0.1 s (burst internal)", 0.0, 0.1},
        {"0.1 - 1 s (wait-window filters)", 0.1, 1.0},
        {"1 - 5.43 s (medium: aliasing zone)", 1.0, 5.43},
        {"5.43 - 15.43 s (TP cannot profit)", 5.43, 15.43},
        {"15.43 - 60 s (everyone profits)", 15.43, 60.0},
        {"> 60 s (long user absences)", 60.0, 1e18},
    };
    std::cout << "\ndisk idle-gap distribution (" << gaps.count()
              << " gaps):\n";
    for (const Bucket &bucket : buckets) {
        const double fraction =
            gaps.fractionIn(bucket.lo, bucket.hi);
        const int bars = static_cast<int>(fraction * 50 + 0.5);
        std::cout << "  " << percentString(fraction, 1) << "  ";
        for (int i = 0; i < bars; ++i)
            std::cout << '#';
        std::cout << "  " << bucket.label << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "mozilla";
    const int execution = argc > 2 ? std::atoi(argv[2]) : 0;
    std::string save_dir;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--save") == 0)
            save_dir = argv[i + 1];
    }

    const auto model = workload::makeApp(app);
    if (!model) {
        error("unknown application '" + app + "'");
        return 1;
    }

    Rng rng(42 ^ hashString(app));
    const trace::Trace trace =
        model->generate(execution, rng.fork(execution));
    std::cout << "application: " << app << " (execution "
              << execution << ")\n"
              << model->info().summary << "\n\n";

    // --- Raw trace statistics.
    std::map<trace::EventType, std::uint64_t> mix;
    for (const auto &event : trace.events())
        ++mix[event.type];
    TextTable events;
    events.setHeader({"event type", "count"});
    for (const auto &[type, count] : mix)
        events.addRow({trace::eventTypeName(type),
                       std::to_string(count)});
    events.addRow({"total", std::to_string(trace.size())});
    events.print(std::cout);

    std::cout << "\nduration: "
              << fixedString(usToSeconds(trace.endTime() -
                                         trace.startTime()),
                             1)
              << " s, processes:";
    for (Pid pid : trace.pids())
        std::cout << ' ' << pid << " ("
                  << trace.eventsOf(pid).size() << " events)";
    std::cout << "\n";

    // --- Through the file cache.
    const sim::ExecutionInput input =
        sim::ExecutionInput::fromTrace(trace, cache::CacheParams{});
    std::cout << "\nafter the 256 KB file cache: "
              << input.accesses.size() << " disk accesses ("
              << percentString(input.cacheStats.hitRatio())
              << " cache hit ratio, "
              << input.cacheStats.writebackBlocks
              << " write-back blocks)\n";

    SampleSet gaps;
    TimeUs prev = -1;
    for (const auto &access : input.accesses) {
        if (prev >= 0)
            gaps.add(usToSeconds(access.time - prev));
        prev = access.time;
    }
    printHistogram(gaps);

    std::cout << "\nidle periods long enough to save energy "
                 "(> 5.43 s): global "
              << input.countGlobalOpportunities(secondsUs(5.43))
              << ", local "
              << input.countLocalOpportunities(secondsUs(5.43))
              << "\n";

    // --- Optional: persist the trace.
    if (!save_dir.empty()) {
        const std::string text_path =
            save_dir + "/" + app + ".trace";
        const std::string binary_path =
            save_dir + "/" + app + ".tracebin";
        std::string error = trace::saveTraceFile(trace, text_path);
        if (error.empty())
            error = trace::saveTraceFile(trace, binary_path);
        if (!error.empty()) {
            pcap::error("save failed: " + error);
            return 1;
        }
        std::cout << "\nsaved " << text_path << " and "
                  << binary_path << "\n";
    }
    return 0;
}
