/**
 * @file
 * Policy comparison on one application.
 *
 * Runs the whole policy zoo — TP, LT, every PCAP variant and the
 * no-reuse ablations — over the chosen application's workload and
 * prints accuracy, energy and table-size columns side by side.
 *
 *   ./policy_comparison [app] [executions]
 *
 * app defaults to mozilla (the paper's hardest case); executions
 * caps the run for quick experiments (0 = the paper's full count).
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "sim/experiment.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

using namespace pcap;

int
main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "mozilla";
    const int executions = argc > 2 ? std::atoi(argv[2]) : 0;

    sim::ExperimentConfig config;
    config.maxExecutions = executions;
    sim::Evaluation eval(config);

    bool known = false;
    for (const std::string &name : eval.appNames())
        known = known || name == app;
    if (!known) {
        std::string names;
        for (const std::string &name : eval.appNames())
            names += ' ' + name;
        error("unknown application '" + app + "'; pick one of:" +
              names);
        return 1;
    }

    const auto row = eval.table1(app);
    std::cout << "application: " << app << "\n"
              << "executions:  " << row.executions << "\n"
              << "global idle periods: " << row.globalIdlePeriods
              << "\n"
              << "local idle periods:  " << row.localIdlePeriods
              << "\n"
              << "traced I/Os:         " << row.totalIos << "\n\n";

    const double base_energy = eval.baseRun(app).energy.total();
    const double ideal_energy = eval.idealRun(app).energy.total();
    std::cout << "base energy (no power management): "
              << fixedString(base_energy, 1) << " J\n"
              << "ideal (oracle) savings:            "
              << percentString(1.0 - ideal_energy / base_energy)
              << "\n\n";

    const std::vector<sim::PolicyConfig> policies = {
        sim::PolicyConfig::timeoutPolicy(),
        sim::PolicyConfig::learningTree(),
        sim::PolicyConfig::learningTreeNoReuse(),
        sim::PolicyConfig::pcapBase(),
        sim::PolicyConfig::pcapHistory(),
        sim::PolicyConfig::pcapFd(),
        sim::PolicyConfig::pcapFdHistory(),
        sim::PolicyConfig::pcapNoReuse(),
    };

    TextTable table;
    table.setHeader({"policy", "hit", "miss", "not-predicted",
                     "saved", "shutdowns", "spin-ups", "entries"});
    for (const auto &policy : policies) {
        const auto outcome = eval.globalRun(app, policy);
        const auto &accuracy = outcome.run.accuracy;
        table.addRow(
            {policy.label, percentString(accuracy.hitFraction()),
             percentString(accuracy.missFraction()),
             percentString(accuracy.notPredictedFraction()),
             percentString(1.0 - outcome.run.energy.total() /
                                     base_energy),
             std::to_string(outcome.run.shutdowns),
             std::to_string(outcome.run.spinUps),
             std::to_string(outcome.tableEntries)});
    }
    table.print(std::cout);

    std::cout << "\nlocal (per-process) accuracy, Figure 6 style:\n";
    TextTable local;
    local.setHeader({"policy", "hit", "miss", "not-predicted"});
    for (const auto &policy : policies) {
        const sim::AccuracyStats stats =
            eval.localAccuracy(app, policy);
        local.addRow({policy.label,
                      percentString(stats.hitFraction()),
                      percentString(stats.missFraction()),
                      percentString(stats.notPredictedFraction())});
    }
    local.print(std::cout);
    return 0;
}
