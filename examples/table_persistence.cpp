/**
 * @file
 * Table persistence walk-through (Section 4.2 and Figure 10).
 *
 * Runs the nedit workload — the application with *no* repetitive
 * behaviour inside a single execution — twice: once with the
 * prediction table carried across executions, once discarding it.
 * Prints per-execution behaviour so the effect is visible execution
 * by execution: with reuse, every run after the first is predicted
 * by the primary predictor; without it, the backup timeout does all
 * the work forever.
 *
 *   ./table_persistence [app] [executions]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "sim/experiment.hpp"
#include "util/table.hpp"

using namespace pcap;

namespace {

void
runVariant(sim::Evaluation &eval, const std::string &app,
           const sim::PolicyConfig &policy)
{
    std::cout << "policy " << policy.label << " ("
              << (policy.reuseTables
                      ? "table kept across executions"
                      : "table discarded at every exit")
              << "):\n";

    // Replay execution by execution with one session so the table
    // state is visible between runs.
    sim::PolicySession session(policy);
    sim::SimParams params;

    TextTable table;
    table.setHeader({"execution", "entries before", "hit-primary",
                     "hit-backup", "not-predicted",
                     "entries after"});

    const auto &inputs = eval.inputs(app);
    for (const auto &input : inputs) {
        const std::size_t before = session.tableEntries();
        const sim::RunResult result =
            sim::runGlobal({input}, session, params);
        table.addRow({std::to_string(input.execution),
                      std::to_string(before),
                      std::to_string(result.accuracy.hitPrimary),
                      std::to_string(result.accuracy.hitBackup),
                      std::to_string(result.accuracy.notPredicted),
                      std::to_string(session.tableEntries())});
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "nedit";
    const int executions = argc > 2 ? std::atoi(argv[2]) : 8;

    sim::ExperimentConfig config;
    config.maxExecutions = executions;
    sim::Evaluation eval(config);

    std::cout << "Prediction-table reuse on '" << app << "' ("
              << executions << " executions)\n\n"
              << "The paper's point (Section 4.2): applications "
                 "rarely repeat enough within one execution\n"
              << "to train a sophisticated predictor, but their "
                 "paths are identical across executions.\n\n";

    runVariant(eval, app, sim::PolicyConfig::pcapBase());
    runVariant(eval, app, sim::PolicyConfig::pcapNoReuse());

    std::cout << "With reuse the first execution trains the table "
                 "and every later one is predicted\n"
              << "by the primary predictor; without reuse each "
                 "execution relearns from scratch and\n"
              << "the backup timeout makes every prediction "
                 "(Figure 10's PCAP vs PCAPa).\n";
    return 0;
}
