/**
 * @file
 * Online power manager demo: the OS-integration shape of PCAP.
 *
 * Drives the OnlineManager facade the way a syscall-interception
 * layer would — process lifecycle callbacks, per-I/O notifications,
 * and periodic polls — over two simulated "runs" of the same little
 * application. The prediction table persists to a directory between
 * the runs, so the second run predicts from its very first idle
 * period: the paper's table-reuse story, live.
 *
 *   ./online_power_manager [table-dir]
 */

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/online_manager.hpp"

using namespace pcap;

namespace {

constexpr Pid kEditor = 42;
constexpr Address kPcOpen = 0x08048010;
constexpr Address kPcRead = 0x08048020;
constexpr Address kPcSave = 0x08048030;

/** One "session": open, read, think, save, think, exit. */
void
runSession(core::OnlineManager &manager, int run)
{
    std::printf("--- run %d ---\n", run);
    TimeUs now = secondsUs(1);
    manager.processStart(kEditor, now);

    auto report = [&manager](const char *what, TimeUs at) {
        const TimeUs due = manager.pendingShutdownAt();
        std::printf("%7.2fs  %-28s disk=%-8s next spin-down: ",
                    usToSeconds(at), what,
                    power::diskStateName(manager.diskState()));
        if (due == kTimeNever)
            std::printf("none\n");
        else
            std::printf("%.2fs\n", usToSeconds(due));
    };

    // The open/read burst.
    manager.onIo(kEditor, now, kPcOpen, 3, 7, 1);
    now += millisUs(120);
    for (int chunk = 0; chunk < 4; ++chunk) {
        manager.onIo(kEditor, now, kPcRead, 3, 7, 4);
        now += millisUs(90);
    }
    report("after the open/read burst", now);

    // The user edits for 40 s; the host polls the manager like a
    // timer tick would.
    for (int tick = 0; tick < 8; ++tick) {
        now += secondsUs(5);
        if (manager.poll(now))
            report("poll: disk spun down", now);
    }

    // Save and leave.
    manager.onIo(kEditor, now, kPcSave, 3, 7, 8);
    report("after the save (spin-up if slept)", now);
    now += secondsUs(2);
    manager.processExit(kEditor, now);
    manager.finish(now + secondsUs(1));

    std::printf("run %d summary: %llu spin-downs, %llu spin-ups, "
                "%.1f J consumed, %zu trained signatures\n\n",
                run,
                static_cast<unsigned long long>(manager.shutdowns()),
                static_cast<unsigned long long>(manager.spinUps()),
                manager.energy().total(), manager.tableEntries());
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string dir =
        argc > 1 ? argv[1]
                 : (std::filesystem::temp_directory_path() /
                    "pcap_online_demo")
                       .string();
    std::filesystem::remove_all(dir);

    core::OnlineManagerConfig config;
    config.tableDirectory = dir;
    config.application = "toy-editor";

    std::printf("PCAP online power manager; tables persist in %s\n\n",
                dir.c_str());

    // Run 1: the predictor has never seen this application. The
    // 40 s edit pause is covered only by the backup timeout.
    {
        core::OnlineManager manager(config);
        runSession(manager, 1);
    }

    // Run 2: a fresh manager instance loads the trained table from
    // disk — the application's "initialization file" — and the same
    // pause is predicted immediately after the last read.
    {
        core::OnlineManager manager(config);
        runSession(manager, 2);
    }

    std::printf("note how run 2 spins the disk down ~9 s earlier: "
                "the signature trained in run 1 was reloaded.\n");
    return 0;
}
