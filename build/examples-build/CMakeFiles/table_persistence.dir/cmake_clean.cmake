file(REMOVE_RECURSE
  "../examples/table_persistence"
  "../examples/table_persistence.pdb"
  "CMakeFiles/table_persistence.dir/table_persistence.cpp.o"
  "CMakeFiles/table_persistence.dir/table_persistence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
