# Empty compiler generated dependencies file for table_persistence.
# This may be replaced when dependencies are built.
