file(REMOVE_RECURSE
  "../examples/online_power_manager"
  "../examples/online_power_manager.pdb"
  "CMakeFiles/online_power_manager.dir/online_power_manager.cpp.o"
  "CMakeFiles/online_power_manager.dir/online_power_manager.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_power_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
