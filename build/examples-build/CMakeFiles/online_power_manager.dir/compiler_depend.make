# Empty compiler generated dependencies file for online_power_manager.
# This may be replaced when dependencies are built.
