file(REMOVE_RECURSE
  "../examples/trace_explorer"
  "../examples/trace_explorer.pdb"
  "CMakeFiles/trace_explorer.dir/trace_explorer.cpp.o"
  "CMakeFiles/trace_explorer.dir/trace_explorer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
