file(REMOVE_RECURSE
  "CMakeFiles/test_table_store.dir/test_table_store.cpp.o"
  "CMakeFiles/test_table_store.dir/test_table_store.cpp.o.d"
  "test_table_store"
  "test_table_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
