# Empty dependencies file for test_table_store.
# This may be replaced when dependencies are built.
