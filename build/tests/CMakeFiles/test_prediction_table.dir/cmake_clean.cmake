file(REMOVE_RECURSE
  "CMakeFiles/test_prediction_table.dir/test_prediction_table.cpp.o"
  "CMakeFiles/test_prediction_table.dir/test_prediction_table.cpp.o.d"
  "test_prediction_table"
  "test_prediction_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prediction_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
