file(REMOVE_RECURSE
  "CMakeFiles/test_strace_parse.dir/test_strace_parse.cpp.o"
  "CMakeFiles/test_strace_parse.dir/test_strace_parse.cpp.o.d"
  "test_strace_parse"
  "test_strace_parse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strace_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
