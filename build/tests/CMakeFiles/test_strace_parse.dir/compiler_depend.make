# Empty compiler generated dependencies file for test_strace_parse.
# This may be replaced when dependencies are built.
