# Empty dependencies file for test_online_manager.
# This may be replaced when dependencies are built.
