file(REMOVE_RECURSE
  "CMakeFiles/test_online_manager.dir/test_online_manager.cpp.o"
  "CMakeFiles/test_online_manager.dir/test_online_manager.cpp.o.d"
  "test_online_manager"
  "test_online_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_online_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
