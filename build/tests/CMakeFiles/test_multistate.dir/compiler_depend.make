# Empty compiler generated dependencies file for test_multistate.
# This may be replaced when dependencies are built.
