file(REMOVE_RECURSE
  "CMakeFiles/test_multistate.dir/test_multistate.cpp.o"
  "CMakeFiles/test_multistate.dir/test_multistate.cpp.o.d"
  "test_multistate"
  "test_multistate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multistate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
