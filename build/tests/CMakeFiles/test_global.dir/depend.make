# Empty dependencies file for test_global.
# This may be replaced when dependencies are built.
