file(REMOVE_RECURSE
  "CMakeFiles/test_global.dir/test_global.cpp.o"
  "CMakeFiles/test_global.dir/test_global.cpp.o.d"
  "test_global"
  "test_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
