file(REMOVE_RECURSE
  "CMakeFiles/test_pred.dir/test_pred.cpp.o"
  "CMakeFiles/test_pred.dir/test_pred.cpp.o.d"
  "test_pred"
  "test_pred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
