# Empty dependencies file for test_pred.
# This may be replaced when dependencies are built.
