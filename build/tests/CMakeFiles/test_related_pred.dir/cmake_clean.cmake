file(REMOVE_RECURSE
  "CMakeFiles/test_related_pred.dir/test_related_pred.cpp.o"
  "CMakeFiles/test_related_pred.dir/test_related_pred.cpp.o.d"
  "test_related_pred"
  "test_related_pred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_related_pred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
