# Empty compiler generated dependencies file for test_related_pred.
# This may be replaced when dependencies are built.
