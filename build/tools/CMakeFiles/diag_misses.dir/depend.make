# Empty dependencies file for diag_misses.
# This may be replaced when dependencies are built.
