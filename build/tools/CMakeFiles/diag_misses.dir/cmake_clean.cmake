file(REMOVE_RECURSE
  "CMakeFiles/diag_misses.dir/diag_misses.cpp.o"
  "CMakeFiles/diag_misses.dir/diag_misses.cpp.o.d"
  "diag_misses"
  "diag_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
