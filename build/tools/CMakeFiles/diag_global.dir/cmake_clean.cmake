file(REMOVE_RECURSE
  "CMakeFiles/diag_global.dir/diag_global.cpp.o"
  "CMakeFiles/diag_global.dir/diag_global.cpp.o.d"
  "diag_global"
  "diag_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
