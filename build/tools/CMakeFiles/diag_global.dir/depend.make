# Empty dependencies file for diag_global.
# This may be replaced when dependencies are built.
