# Empty dependencies file for pcap_sim.
# This may be replaced when dependencies are built.
