file(REMOVE_RECURSE
  "libpcap_sim.a"
)
