file(REMOVE_RECURSE
  "CMakeFiles/pcap_sim.dir/experiment.cpp.o"
  "CMakeFiles/pcap_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/pcap_sim.dir/input.cpp.o"
  "CMakeFiles/pcap_sim.dir/input.cpp.o.d"
  "CMakeFiles/pcap_sim.dir/policy.cpp.o"
  "CMakeFiles/pcap_sim.dir/policy.cpp.o.d"
  "CMakeFiles/pcap_sim.dir/simulator.cpp.o"
  "CMakeFiles/pcap_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/pcap_sim.dir/stats.cpp.o"
  "CMakeFiles/pcap_sim.dir/stats.cpp.o.d"
  "libpcap_sim.a"
  "libpcap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
