file(REMOVE_RECURSE
  "libpcap_cache.a"
)
