# Empty compiler generated dependencies file for pcap_cache.
# This may be replaced when dependencies are built.
