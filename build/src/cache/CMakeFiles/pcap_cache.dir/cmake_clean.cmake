file(REMOVE_RECURSE
  "CMakeFiles/pcap_cache.dir/file_cache.cpp.o"
  "CMakeFiles/pcap_cache.dir/file_cache.cpp.o.d"
  "libpcap_cache.a"
  "libpcap_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
