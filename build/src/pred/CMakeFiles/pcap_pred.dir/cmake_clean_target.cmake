file(REMOVE_RECURSE
  "libpcap_pred.a"
)
