file(REMOVE_RECURSE
  "CMakeFiles/pcap_pred.dir/adaptive_timeout.cpp.o"
  "CMakeFiles/pcap_pred.dir/adaptive_timeout.cpp.o.d"
  "CMakeFiles/pcap_pred.dir/busy_ratio.cpp.o"
  "CMakeFiles/pcap_pred.dir/busy_ratio.cpp.o.d"
  "CMakeFiles/pcap_pred.dir/exp_average.cpp.o"
  "CMakeFiles/pcap_pred.dir/exp_average.cpp.o.d"
  "CMakeFiles/pcap_pred.dir/learning_tree.cpp.o"
  "CMakeFiles/pcap_pred.dir/learning_tree.cpp.o.d"
  "CMakeFiles/pcap_pred.dir/timeout.cpp.o"
  "CMakeFiles/pcap_pred.dir/timeout.cpp.o.d"
  "libpcap_pred.a"
  "libpcap_pred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_pred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
