
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pred/adaptive_timeout.cpp" "src/pred/CMakeFiles/pcap_pred.dir/adaptive_timeout.cpp.o" "gcc" "src/pred/CMakeFiles/pcap_pred.dir/adaptive_timeout.cpp.o.d"
  "/root/repo/src/pred/busy_ratio.cpp" "src/pred/CMakeFiles/pcap_pred.dir/busy_ratio.cpp.o" "gcc" "src/pred/CMakeFiles/pcap_pred.dir/busy_ratio.cpp.o.d"
  "/root/repo/src/pred/exp_average.cpp" "src/pred/CMakeFiles/pcap_pred.dir/exp_average.cpp.o" "gcc" "src/pred/CMakeFiles/pcap_pred.dir/exp_average.cpp.o.d"
  "/root/repo/src/pred/learning_tree.cpp" "src/pred/CMakeFiles/pcap_pred.dir/learning_tree.cpp.o" "gcc" "src/pred/CMakeFiles/pcap_pred.dir/learning_tree.cpp.o.d"
  "/root/repo/src/pred/timeout.cpp" "src/pred/CMakeFiles/pcap_pred.dir/timeout.cpp.o" "gcc" "src/pred/CMakeFiles/pcap_pred.dir/timeout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pcap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
