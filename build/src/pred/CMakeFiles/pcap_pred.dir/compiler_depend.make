# Empty compiler generated dependencies file for pcap_pred.
# This may be replaced when dependencies are built.
