# Empty compiler generated dependencies file for pcap_workload.
# This may be replaced when dependencies are built.
