file(REMOVE_RECURSE
  "CMakeFiles/pcap_workload.dir/actor.cpp.o"
  "CMakeFiles/pcap_workload.dir/actor.cpp.o.d"
  "CMakeFiles/pcap_workload.dir/app_model.cpp.o"
  "CMakeFiles/pcap_workload.dir/app_model.cpp.o.d"
  "CMakeFiles/pcap_workload.dir/apps/impress.cpp.o"
  "CMakeFiles/pcap_workload.dir/apps/impress.cpp.o.d"
  "CMakeFiles/pcap_workload.dir/apps/mozilla.cpp.o"
  "CMakeFiles/pcap_workload.dir/apps/mozilla.cpp.o.d"
  "CMakeFiles/pcap_workload.dir/apps/mplayer.cpp.o"
  "CMakeFiles/pcap_workload.dir/apps/mplayer.cpp.o.d"
  "CMakeFiles/pcap_workload.dir/apps/nedit.cpp.o"
  "CMakeFiles/pcap_workload.dir/apps/nedit.cpp.o.d"
  "CMakeFiles/pcap_workload.dir/apps/writer.cpp.o"
  "CMakeFiles/pcap_workload.dir/apps/writer.cpp.o.d"
  "CMakeFiles/pcap_workload.dir/apps/xemacs.cpp.o"
  "CMakeFiles/pcap_workload.dir/apps/xemacs.cpp.o.d"
  "libpcap_workload.a"
  "libpcap_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
