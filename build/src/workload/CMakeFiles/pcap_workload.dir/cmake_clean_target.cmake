file(REMOVE_RECURSE
  "libpcap_workload.a"
)
