
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/actor.cpp" "src/workload/CMakeFiles/pcap_workload.dir/actor.cpp.o" "gcc" "src/workload/CMakeFiles/pcap_workload.dir/actor.cpp.o.d"
  "/root/repo/src/workload/app_model.cpp" "src/workload/CMakeFiles/pcap_workload.dir/app_model.cpp.o" "gcc" "src/workload/CMakeFiles/pcap_workload.dir/app_model.cpp.o.d"
  "/root/repo/src/workload/apps/impress.cpp" "src/workload/CMakeFiles/pcap_workload.dir/apps/impress.cpp.o" "gcc" "src/workload/CMakeFiles/pcap_workload.dir/apps/impress.cpp.o.d"
  "/root/repo/src/workload/apps/mozilla.cpp" "src/workload/CMakeFiles/pcap_workload.dir/apps/mozilla.cpp.o" "gcc" "src/workload/CMakeFiles/pcap_workload.dir/apps/mozilla.cpp.o.d"
  "/root/repo/src/workload/apps/mplayer.cpp" "src/workload/CMakeFiles/pcap_workload.dir/apps/mplayer.cpp.o" "gcc" "src/workload/CMakeFiles/pcap_workload.dir/apps/mplayer.cpp.o.d"
  "/root/repo/src/workload/apps/nedit.cpp" "src/workload/CMakeFiles/pcap_workload.dir/apps/nedit.cpp.o" "gcc" "src/workload/CMakeFiles/pcap_workload.dir/apps/nedit.cpp.o.d"
  "/root/repo/src/workload/apps/writer.cpp" "src/workload/CMakeFiles/pcap_workload.dir/apps/writer.cpp.o" "gcc" "src/workload/CMakeFiles/pcap_workload.dir/apps/writer.cpp.o.d"
  "/root/repo/src/workload/apps/xemacs.cpp" "src/workload/CMakeFiles/pcap_workload.dir/apps/xemacs.cpp.o" "gcc" "src/workload/CMakeFiles/pcap_workload.dir/apps/xemacs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/pcap_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pcap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
