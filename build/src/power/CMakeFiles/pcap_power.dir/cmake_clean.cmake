file(REMOVE_RECURSE
  "CMakeFiles/pcap_power.dir/disk.cpp.o"
  "CMakeFiles/pcap_power.dir/disk.cpp.o.d"
  "CMakeFiles/pcap_power.dir/disk_params.cpp.o"
  "CMakeFiles/pcap_power.dir/disk_params.cpp.o.d"
  "CMakeFiles/pcap_power.dir/energy.cpp.o"
  "CMakeFiles/pcap_power.dir/energy.cpp.o.d"
  "libpcap_power.a"
  "libpcap_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
