# Empty compiler generated dependencies file for pcap_power.
# This may be replaced when dependencies are built.
