file(REMOVE_RECURSE
  "libpcap_power.a"
)
