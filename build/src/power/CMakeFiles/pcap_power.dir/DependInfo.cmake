
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/disk.cpp" "src/power/CMakeFiles/pcap_power.dir/disk.cpp.o" "gcc" "src/power/CMakeFiles/pcap_power.dir/disk.cpp.o.d"
  "/root/repo/src/power/disk_params.cpp" "src/power/CMakeFiles/pcap_power.dir/disk_params.cpp.o" "gcc" "src/power/CMakeFiles/pcap_power.dir/disk_params.cpp.o.d"
  "/root/repo/src/power/energy.cpp" "src/power/CMakeFiles/pcap_power.dir/energy.cpp.o" "gcc" "src/power/CMakeFiles/pcap_power.dir/energy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pcap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
