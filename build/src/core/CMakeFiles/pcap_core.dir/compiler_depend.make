# Empty compiler generated dependencies file for pcap_core.
# This may be replaced when dependencies are built.
