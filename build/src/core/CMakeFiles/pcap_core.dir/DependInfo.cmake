
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/global.cpp" "src/core/CMakeFiles/pcap_core.dir/global.cpp.o" "gcc" "src/core/CMakeFiles/pcap_core.dir/global.cpp.o.d"
  "/root/repo/src/core/online_manager.cpp" "src/core/CMakeFiles/pcap_core.dir/online_manager.cpp.o" "gcc" "src/core/CMakeFiles/pcap_core.dir/online_manager.cpp.o.d"
  "/root/repo/src/core/pcap.cpp" "src/core/CMakeFiles/pcap_core.dir/pcap.cpp.o" "gcc" "src/core/CMakeFiles/pcap_core.dir/pcap.cpp.o.d"
  "/root/repo/src/core/prediction_table.cpp" "src/core/CMakeFiles/pcap_core.dir/prediction_table.cpp.o" "gcc" "src/core/CMakeFiles/pcap_core.dir/prediction_table.cpp.o.d"
  "/root/repo/src/core/signature.cpp" "src/core/CMakeFiles/pcap_core.dir/signature.cpp.o" "gcc" "src/core/CMakeFiles/pcap_core.dir/signature.cpp.o.d"
  "/root/repo/src/core/table_store.cpp" "src/core/CMakeFiles/pcap_core.dir/table_store.cpp.o" "gcc" "src/core/CMakeFiles/pcap_core.dir/table_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/pcap_power.dir/DependInfo.cmake"
  "/root/repo/build/src/pred/CMakeFiles/pcap_pred.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pcap_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pcap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
