file(REMOVE_RECURSE
  "libpcap_core.a"
)
