file(REMOVE_RECURSE
  "CMakeFiles/pcap_core.dir/global.cpp.o"
  "CMakeFiles/pcap_core.dir/global.cpp.o.d"
  "CMakeFiles/pcap_core.dir/online_manager.cpp.o"
  "CMakeFiles/pcap_core.dir/online_manager.cpp.o.d"
  "CMakeFiles/pcap_core.dir/pcap.cpp.o"
  "CMakeFiles/pcap_core.dir/pcap.cpp.o.d"
  "CMakeFiles/pcap_core.dir/prediction_table.cpp.o"
  "CMakeFiles/pcap_core.dir/prediction_table.cpp.o.d"
  "CMakeFiles/pcap_core.dir/signature.cpp.o"
  "CMakeFiles/pcap_core.dir/signature.cpp.o.d"
  "CMakeFiles/pcap_core.dir/table_store.cpp.o"
  "CMakeFiles/pcap_core.dir/table_store.cpp.o.d"
  "libpcap_core.a"
  "libpcap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
