file(REMOVE_RECURSE
  "CMakeFiles/pcap_trace.dir/builder.cpp.o"
  "CMakeFiles/pcap_trace.dir/builder.cpp.o.d"
  "CMakeFiles/pcap_trace.dir/event.cpp.o"
  "CMakeFiles/pcap_trace.dir/event.cpp.o.d"
  "CMakeFiles/pcap_trace.dir/io.cpp.o"
  "CMakeFiles/pcap_trace.dir/io.cpp.o.d"
  "CMakeFiles/pcap_trace.dir/strace_parse.cpp.o"
  "CMakeFiles/pcap_trace.dir/strace_parse.cpp.o.d"
  "CMakeFiles/pcap_trace.dir/trace.cpp.o"
  "CMakeFiles/pcap_trace.dir/trace.cpp.o.d"
  "libpcap_trace.a"
  "libpcap_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
