# Empty compiler generated dependencies file for pcap_trace.
# This may be replaced when dependencies are built.
