file(REMOVE_RECURSE
  "libpcap_trace.a"
)
