file(REMOVE_RECURSE
  "libpcap_util.a"
)
