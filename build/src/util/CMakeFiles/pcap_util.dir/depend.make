# Empty dependencies file for pcap_util.
# This may be replaced when dependencies are built.
