file(REMOVE_RECURSE
  "CMakeFiles/pcap_util.dir/logging.cpp.o"
  "CMakeFiles/pcap_util.dir/logging.cpp.o.d"
  "CMakeFiles/pcap_util.dir/rng.cpp.o"
  "CMakeFiles/pcap_util.dir/rng.cpp.o.d"
  "CMakeFiles/pcap_util.dir/stats.cpp.o"
  "CMakeFiles/pcap_util.dir/stats.cpp.o.d"
  "CMakeFiles/pcap_util.dir/table.cpp.o"
  "CMakeFiles/pcap_util.dir/table.cpp.o.d"
  "libpcap_util.a"
  "libpcap_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
