file(REMOVE_RECURSE
  "../bench/bench_ablation_timeout"
  "../bench/bench_ablation_timeout.pdb"
  "CMakeFiles/bench_ablation_timeout.dir/bench_ablation_timeout.cpp.o"
  "CMakeFiles/bench_ablation_timeout.dir/bench_ablation_timeout.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_timeout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
