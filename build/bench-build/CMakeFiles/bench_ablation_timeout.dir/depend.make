# Empty dependencies file for bench_ablation_timeout.
# This may be replaced when dependencies are built.
