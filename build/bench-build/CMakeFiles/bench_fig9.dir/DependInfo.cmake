
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9.cpp" "bench-build/CMakeFiles/bench_fig9.dir/bench_fig9.cpp.o" "gcc" "bench-build/CMakeFiles/bench_fig9.dir/bench_fig9.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pcap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/pcap_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pcap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pcap_power.dir/DependInfo.cmake"
  "/root/repo/build/src/pred/CMakeFiles/pcap_pred.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pcap_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pcap_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pcap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
