file(REMOVE_RECURSE
  "../bench/bench_related"
  "../bench/bench_related.pdb"
  "CMakeFiles/bench_related.dir/bench_related.cpp.o"
  "CMakeFiles/bench_related.dir/bench_related.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
