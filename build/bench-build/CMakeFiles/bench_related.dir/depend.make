# Empty dependencies file for bench_related.
# This may be replaced when dependencies are built.
