# Empty compiler generated dependencies file for bench_ablation_unlearn.
# This may be replaced when dependencies are built.
