file(REMOVE_RECURSE
  "../bench/bench_ablation_unlearn"
  "../bench/bench_ablation_unlearn.pdb"
  "CMakeFiles/bench_ablation_unlearn.dir/bench_ablation_unlearn.cpp.o"
  "CMakeFiles/bench_ablation_unlearn.dir/bench_ablation_unlearn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_unlearn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
