file(REMOVE_RECURSE
  "../bench/bench_ablation_cache"
  "../bench/bench_ablation_cache.pdb"
  "CMakeFiles/bench_ablation_cache.dir/bench_ablation_cache.cpp.o"
  "CMakeFiles/bench_ablation_cache.dir/bench_ablation_cache.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
