# Empty dependencies file for bench_ablation_waitwindow.
# This may be replaced when dependencies are built.
