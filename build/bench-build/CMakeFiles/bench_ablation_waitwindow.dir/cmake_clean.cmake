file(REMOVE_RECURSE
  "../bench/bench_ablation_waitwindow"
  "../bench/bench_ablation_waitwindow.pdb"
  "CMakeFiles/bench_ablation_waitwindow.dir/bench_ablation_waitwindow.cpp.o"
  "CMakeFiles/bench_ablation_waitwindow.dir/bench_ablation_waitwindow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_waitwindow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
