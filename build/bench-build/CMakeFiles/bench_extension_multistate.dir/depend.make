# Empty dependencies file for bench_extension_multistate.
# This may be replaced when dependencies are built.
