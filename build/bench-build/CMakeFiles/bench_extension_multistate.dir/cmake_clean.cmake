file(REMOVE_RECURSE
  "../bench/bench_extension_multistate"
  "../bench/bench_extension_multistate.pdb"
  "CMakeFiles/bench_extension_multistate.dir/bench_extension_multistate.cpp.o"
  "CMakeFiles/bench_extension_multistate.dir/bench_extension_multistate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_multistate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
