/**
 * @file
 * pcap_explain — forensics over provenance flight-recorder logs.
 *
 * Reads the binary .prov.bin files written by bench_all
 * --provenance-dir (see obs/provenance.hpp for the format) and
 * renders, per input file: outcome totals, the per-signature
 * accuracy/energy attribution table, the top-K mispredicting
 * signatures, and every signature collision — distinct PC paths
 * (told apart by the order-sensitive full-path hash) that sum to the
 * same 4-byte arithmetic signature.
 *
 * Output is markdown on stdout; --md and --html write the same
 * report as files. Exit codes: 0 success, 1 read/write failure,
 * 2 usage error.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/provenance.hpp"

using namespace pcap;

namespace {

void
usage(std::ostream &os)
{
    os << "usage: pcap_explain [options] <file.prov.bin | dir>...\n"
          "  --top K     mispredicting signatures listed per input "
          "(default 10)\n"
          "  --md PATH   also write the report as markdown\n"
          "  --html PATH also write the report as HTML\n"
          "  -h, --help  this text\n"
          "Directories expand to every *.prov.bin inside, sorted.\n";
}

/** One input file and everything aggregated from it. */
struct FileReport
{
    std::string path;
    obs::ProvenanceForensics forensics;
};

std::string
hexSignature(std::uint32_t signature)
{
    std::ostringstream os;
    os << "0x" << std::hex << std::setw(8) << std::setfill('0')
       << signature;
    return os.str();
}

std::string
fixed1(double value)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(1) << value;
    return os.str();
}

/** "pc1>pc2>..." rendering of a record's trailing call sites. */
std::string
tailString(const obs::ProvenanceRecord &record)
{
    std::ostringstream os;
    for (std::uint8_t i = 0; i < record.pathTailLength; ++i) {
        if (i)
            os << '>';
        os << std::hex << record.pathTail[i];
    }
    if (record.pathLength > record.pathTailLength)
        os << " (+" << std::dec
           << record.pathLength - record.pathTailLength
           << " earlier)";
    return os.str();
}

/** A markdown table row; cells are pre-rendered strings. */
using Row = std::vector<std::string>;

struct Table
{
    Row header;
    std::vector<Row> rows;
};

Table
attributionTable(const obs::ProvenanceForensics &forensics,
                 std::size_t top)
{
    Table table;
    table.header = {"signature", "periods", "hits",   "misses",
                    "short",     "no-op",   "paths",  "net J"};
    for (const obs::SignatureSummary *s :
         forensics.topMispredictors(top)) {
        table.rows.push_back(
            {hexSignature(s->signature), std::to_string(s->periods),
             std::to_string(s->hits()), std::to_string(s->misses()),
             std::to_string(s->outcomes[obs::kOutcomeShort]),
             std::to_string(s->outcomes[obs::kOutcomeNotPredicted]),
             std::to_string(s->pathCounts.size()),
             fixed1(s->energyDeltaJ)});
    }
    return table;
}

Table
collisionTable(const obs::ProvenanceForensics &forensics)
{
    Table table;
    table.header = {"signature", "paths", "periods", "example paths"};
    for (const obs::SignatureSummary *s : forensics.collisions()) {
        std::string examples;
        std::size_t shown = 0;
        for (const auto &[hash, record] : s->pathExamples) {
            if (shown == 2) {
                examples += "; ...";
                break;
            }
            if (shown)
                examples += "; ";
            examples += tailString(record);
            ++shown;
        }
        table.rows.push_back({hexSignature(s->signature),
                              std::to_string(s->pathCounts.size()),
                              std::to_string(s->periods), examples});
    }
    return table;
}

Table
outcomeTable(const obs::ProvenanceForensics &forensics)
{
    Table table;
    table.header = {"outcome", "periods"};
    const auto &totals = forensics.outcomeTotals();
    for (std::size_t i = 0; i < totals.size(); ++i) {
        table.rows.push_back(
            {obs::provenanceOutcomeName(
                 static_cast<std::uint8_t>(i)),
             std::to_string(totals[i])});
    }
    return table;
}

void
markdownTable(std::ostream &os, const Table &table)
{
    auto row = [&os](const Row &cells) {
        os << '|';
        for (const std::string &cell : cells)
            os << ' ' << cell << " |";
        os << '\n';
    };
    row(table.header);
    Row rule(table.header.size(), "---");
    row(rule);
    for (const Row &cells : table.rows)
        row(cells);
    os << '\n';
}

void
htmlTable(std::ostream &os, const Table &table)
{
    auto escape = [](const std::string &text) {
        std::string out;
        for (char c : text) {
            switch (c) {
              case '<': out += "&lt;"; break;
              case '>': out += "&gt;"; break;
              case '&': out += "&amp;"; break;
              default: out += c;
            }
        }
        return out;
    };
    os << "<table>\n<tr>";
    for (const std::string &cell : table.header)
        os << "<th>" << escape(cell) << "</th>";
    os << "</tr>\n";
    for (const Row &cells : table.rows) {
        os << "<tr>";
        for (const std::string &cell : cells)
            os << "<td>" << escape(cell) << "</td>";
        os << "</tr>\n";
    }
    os << "</table>\n";
}

/** Render the whole report; @p html toggles the two formats. */
void
render(std::ostream &os, const std::vector<FileReport> &reports,
       std::size_t top, bool html)
{
    auto heading = [&](int level, const std::string &text) {
        if (html) {
            os << "<h" << level << ">" << text << "</h" << level
               << ">\n";
        } else {
            os << std::string(static_cast<std::size_t>(level), '#')
               << ' ' << text << "\n\n";
        }
    };
    auto paragraph = [&](const std::string &text) {
        if (html)
            os << "<p>" << text << "</p>\n";
        else
            os << text << "\n\n";
    };
    auto emit = [&](const Table &table) {
        if (html)
            htmlTable(os, table);
        else
            markdownTable(os, table);
    };

    if (html) {
        os << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
              "<title>pcap_explain</title>\n"
              "<style>body{font-family:monospace}table{border-"
              "collapse:collapse}td,th{border:1px solid #999;"
              "padding:2px 8px;text-align:right}th{background:#eee}"
              "</style></head><body>\n";
    }
    heading(1, "PCAP provenance forensics");
    for (const FileReport &report : reports) {
        const obs::ProvenanceForensics &f = report.forensics;
        heading(2, report.path);
        paragraph(std::to_string(f.records()) + " records (" +
                  std::to_string(f.noDecision()) +
                  " without a PCAP decision), " +
                  std::to_string(f.bySignature().size()) +
                  " distinct signatures, net energy delta " +
                  fixed1(f.energyDeltaJ()) + " J.");
        heading(3, "Outcome totals");
        emit(outcomeTable(f));
        heading(3, "Top mispredicting signatures");
        emit(attributionTable(f, top));
        heading(3, "Signature collisions");
        const Table collisions = collisionTable(f);
        if (collisions.rows.empty())
            paragraph("none");
        else
            emit(collisions);
    }
    if (html)
        os << "</body></html>\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t top = 10;
    std::string md_path;
    std::string html_path;
    std::vector<std::string> inputs;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (++i >= argc) {
                std::cerr << "pcap_explain: " << flag
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[i];
        };
        if (arg == "-h" || arg == "--help") {
            usage(std::cout);
            return 0;
        } else if (arg == "--top") {
            const std::string text = value("--top");
            try {
                top = std::stoul(text);
            } catch (const std::exception &) {
                std::cerr << "pcap_explain: --top needs an integer, "
                             "got '"
                          << text << "'\n";
                return 2;
            }
        } else if (arg == "--md") {
            md_path = value("--md");
        } else if (arg == "--html") {
            html_path = value("--html");
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "pcap_explain: unknown option " << arg
                      << "\n";
            usage(std::cerr);
            return 2;
        } else {
            inputs.push_back(arg);
        }
    }
    if (inputs.empty()) {
        usage(std::cerr);
        return 2;
    }

    // Expand directories to their .prov.bin files, sorted for a
    // deterministic report order.
    std::vector<std::string> files;
    for (const std::string &input : inputs) {
        if (std::filesystem::is_directory(input)) {
            std::vector<std::string> found;
            for (const auto &entry :
                 std::filesystem::directory_iterator(input)) {
                const std::string path = entry.path().string();
                if (path.size() >= 9 &&
                    path.compare(path.size() - 9, 9, ".prov.bin") ==
                        0)
                    found.push_back(path);
            }
            std::sort(found.begin(), found.end());
            files.insert(files.end(), found.begin(), found.end());
        } else {
            files.push_back(input);
        }
    }
    if (files.empty()) {
        std::cerr << "pcap_explain: no .prov.bin files found\n";
        return 1;
    }

    std::vector<FileReport> reports;
    for (const std::string &path : files) {
        std::vector<obs::ProvenanceRecord> records;
        const std::string problem =
            obs::readProvenanceFile(path, records);
        if (!problem.empty()) {
            std::cerr << "pcap_explain: " << problem << "\n";
            return 1;
        }
        FileReport report;
        report.path = path;
        for (const obs::ProvenanceRecord &record : records)
            report.forensics.add(record);
        reports.push_back(std::move(report));
    }

    render(std::cout, reports, top, /*html=*/false);

    if (!md_path.empty()) {
        std::ofstream os(md_path);
        if (!os) {
            std::cerr << "pcap_explain: cannot write " << md_path
                      << "\n";
            return 1;
        }
        render(os, reports, top, /*html=*/false);
        if (!os) {
            std::cerr << "pcap_explain: write failed on " << md_path
                      << "\n";
            return 1;
        }
    }
    if (!html_path.empty()) {
        std::ofstream os(html_path);
        if (!os) {
            std::cerr << "pcap_explain: cannot write " << html_path
                      << "\n";
            return 1;
        }
        render(os, reports, top, /*html=*/true);
        if (!os) {
            std::cerr << "pcap_explain: write failed on " << html_path
                      << "\n";
            return 1;
        }
    }
    return 0;
}
