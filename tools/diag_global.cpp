// Diagnostic: dump global mispredictions with attributed process/pc.
#include <cstdio>
#include <map>
#include <string>
#include <algorithm>

#include "core/global.hpp"
#include "sim/experiment.hpp"

using namespace pcap;

int main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "writer";
    sim::ExperimentConfig cfg;
    sim::Evaluation eval(cfg);
    const auto &execs = eval.inputs(app);
    sim::SimParams sp;
    const TimeUs be = sp.breakeven();
    sim::PolicySession session(sim::PolicyConfig::pcapBase());

    std::map<std::string, int> agg;
    int misses = 0, opps = 0;

    for (const auto &input : execs) {
        session.beginExecution();
        core::GlobalShutdownPredictor gsp(
            [&](Pid p, TimeUs t) { return session.makeLocal(p, t); });
        struct Ev { TimeUs t; int kind; Pid pid; size_t idx; };
        std::vector<Ev> events;
        for (auto &s : input.processes) {
            events.push_back({s.start, 0, s.pid, 0});
            events.push_back({s.end, 2, s.pid, 0});
        }
        for (size_t i = 0; i < input.accesses.size(); ++i)
            events.push_back({input.accesses[i].time, 1, input.accesses[i].pid, i});
        std::sort(events.begin(), events.end(), [](auto&a, auto&b){
            return a.t != b.t ? a.t < b.t : a.kind < b.kind; });

        TimeUs gapStart = -1, segStart = -1, shutAt = -1;
        Pid lastPid = -1; Address lastPc = 0;
        std::map<Pid, Address> lastPcOf;
        Pid shutPid = -1;

        auto check = [&](TimeUs until) {
            if (gapStart < 0 || shutAt >= 0) { segStart = until; return; }
            auto d = gsp.globalDecision();
            if (d.earliest != kTimeNever) {
                TimeUs cand = std::max(d.earliest, segStart);
                if (cand < until) { shutAt = cand; shutPid = lastPid; }
            }
            segStart = until;
        };
        for (auto &e : events) {
            check(e.t);
            if (e.kind == 0) gsp.processStart(e.pid, e.t);
            else if (e.kind == 2) gsp.processExit(e.pid, e.t);
            else {
                const auto &a = input.accesses[e.idx];
                if (gapStart >= 0) {
                    TimeUs gap = a.time - gapStart;
                    bool opp = gap > be;
                    if (opp) opps++;
                    if (shutAt >= 0) {
                        TimeUs off = a.time - shutAt;
                        if (!(opp && off >= be)) {
                            misses++;
                            char buf[160];
                            const char* bucket = gap < secondsUs(1.5) ? "<1.5" :
                                gap < secondsUs(3) ? "1.5-3" : gap < secondsUs(5.43) ? "3-5.4" :
                                gap < secondsUs(6.43) ? "5.4-6.4" : ">6.4";
                            snprintf(buf, sizeof buf, "lastpid=%d lastPc=0x%x waker=%d wakerPc=0x%x gap%s",
                                     lastPid, lastPc, a.pid, a.pc, bucket);
                            agg[buf]++;
                        }
                    }
                }
                gsp.onAccess(a);
                gapStart = a.time; segStart = a.time; shutAt = -1;
                lastPid = a.pid; lastPc = a.pc;
            }
        }
    }
    printf("app=%s global opps=%d misses=%d\n", app.c_str(), opps, misses);
    std::vector<std::pair<int,std::string>> v;
    for (auto &[k,c]: agg) v.push_back({c,k});
    std::sort(v.rbegin(), v.rend());
    for (auto &[c,k] : v) if (c >= 3) printf("%6d  %s\n", c, k.c_str());
    return 0;
}
