#!/usr/bin/env python3
"""Compare two metric dumps and gate on regressions.

Usage: metrics_diff.py BASE CANDIDATE [options]

Inputs may be full BENCH_RESULTS.json files (the metrics live under
the top-level "metrics" key) or bare pcap-metrics-v1 documents.
Every series is flattened to scalar samples -- counters and gauges to
their value, histograms to count/sum plus one sample per bucket,
timers to seconds/laps -- and compared pairwise.

A sample regresses when its relative change exceeds the allowed
delta (default 0%: the simulation is deterministic, so any change in
a deterministic metric is a finding). Wall-clock and cache-
effectiveness families are machine- and run-dependent and ignored by
default; see --ignore.

Exit status:
  0  no regressions
  1  regressions found (changed samples, or metric families present
     in the baseline but missing from the candidate)
  2  bad input (unreadable file, not a metrics document, wrong
     schema, or a malformed series missing required fields)

Examples:
  metrics_diff.py warm1.json warm2.json
  metrics_diff.py old.json new.json --max-delta-pct 5
  metrics_diff.py old.json new.json --rule 'pcap_energy_joules=0.5'
"""

import argparse
import json
import math
import re
import sys

# pcap_sim_batch_flush_seconds is a phase timer: its lap count (one
# per execution flush) is deterministic and stays compared, but the
# accumulated seconds are wall time.
DEFAULT_IGNORE = (
    r"wall|thread_pool|workload_cache|workload_generated"
    r"|trace_store"
    r"|pcap_sim_batch_flush_seconds.*/seconds"
    # Span-tracer volume depends on scheduling (pool-task spans, ring
    # drops); timelines are opt-in artifacts checked by
    # compare_bench.py --timeline-dir, not a metrics family to diff.
    r"|pcap_trace_profile|pcap_timeline"
    # Hardware-counter readings (--perf) are machine- and
    # scheduling-dependent by nature; compare_bench.py --check-perf
    # gates their schema instead.
    r"|pcap_perf"
)


def die(message):
    """Input error: print a diagnostic and exit with status 2."""
    print(f"metrics_diff: error: {message}", file=sys.stderr)
    sys.exit(2)


def family(key):
    """Family of a sample key: the metric name before '{'."""
    return key.partition("{")[0]


def load_series(path):
    """Return the series list of a metrics document or bench file."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as err:
        die(f"{path}: {err.strerror or err}")
    except json.JSONDecodeError as err:
        die(f"{path}: not valid JSON ({err})")
    if not isinstance(doc, dict):
        die(f"{path}: top level is {type(doc).__name__}, "
            f"expected an object")
    if "metrics" in doc:  # full BENCH_RESULTS.json
        doc = doc["metrics"]
    if "series" not in doc:
        die(f"{path}: no 'series' key (and no 'metrics' block) "
            f"-- not a metrics document")
    schema = doc.get("schema")
    if schema != "pcap-metrics-v1":
        die(f"{path}: unexpected metrics schema {schema!r}")
    return doc["series"]


def flatten(series_list, path):
    """Map 'name{label=value,...}[/part]' -> scalar sample.

    Malformed series (missing name/labels/type or the fields their
    type requires) are an input error: exit 2 naming the series and
    the missing field rather than tracing back with a KeyError.
    """
    samples = {}
    for i, s in enumerate(series_list):
        name = s.get("name", f"series #{i}")
        try:
            labels = ",".join(f"{k}={v}"
                              for k, v in sorted(s["labels"].items()))
            key = f"{s['name']}{{{labels}}}"
            kind = s["type"]
            if kind in ("counter", "gauge"):
                samples[key] = float(s["value"])
            elif kind == "histogram":
                samples[f"{key}/count"] = float(s["count"])
                samples[f"{key}/sum"] = float(s["sum"])
                for bucket in s["buckets"]:
                    samples[f"{key}/le={bucket['le']}"] = \
                        float(bucket["count"])
            elif kind == "timer":
                samples[f"{key}/seconds"] = float(s["seconds"])
                samples[f"{key}/laps"] = float(s["laps"])
            else:
                die(f"{path}: {name}: unknown series type {kind!r}")
        except KeyError as err:
            die(f"{path}: {name}: malformed series, missing field "
                f"{err.args[0]!r}")
        except (TypeError, ValueError) as err:
            die(f"{path}: {name}: malformed series ({err})")
    return samples


def delta_pct(base, cand):
    if base == cand:
        return 0.0
    scale = max(abs(base), abs(cand))
    if scale == 0.0:
        return 0.0
    return 100.0 * abs(cand - base) / scale


def parse_rule(text):
    name, sep, pct = text.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"rule must look like REGEX=PCT, got {text!r}")
    try:
        return re.compile(name), float(pct)
    except (re.error, ValueError) as err:
        raise argparse.ArgumentTypeError(f"bad rule {text!r}: {err}")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("base", help="baseline metrics/bench file")
    parser.add_argument("candidate", help="candidate metrics/bench file")
    parser.add_argument("--max-delta-pct", type=float, default=0.0,
                        help="allowed relative change in percent "
                             "(default: 0, exact)")
    parser.add_argument("--rule", type=parse_rule, action="append",
                        default=[], metavar="REGEX=PCT",
                        help="per-metric override of the allowed "
                             "delta; first matching rule wins")
    parser.add_argument("--ignore", default=DEFAULT_IGNORE,
                        help="regex of sample keys to skip entirely "
                             f"(default: {DEFAULT_IGNORE!r}; '' "
                             "disables)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="don't fail when a baseline sample is "
                             "missing from the candidate")
    args = parser.parse_args()

    base = flatten(load_series(args.base), args.base)
    cand = flatten(load_series(args.candidate), args.candidate)
    ignore = re.compile(args.ignore) if args.ignore else None

    cand_families = {family(k) for k in cand}
    regressions = []
    missing = []
    compared = ignored = 0
    for key in sorted(base):
        if ignore and ignore.search(key):
            ignored += 1
            continue
        if key not in cand:
            if not args.allow_missing:
                missing.append(key)
            continue
        compared += 1
        limit = args.max_delta_pct
        for pattern, pct in args.rule:
            if pattern.search(key):
                limit = pct
                break
        pct = delta_pct(base[key], cand[key])
        if pct > limit or math.isnan(pct):
            regressions.append(
                f"CHANGED  {key}: {base[key]:g} -> {cand[key]:g} "
                f"({pct:.3f}% > {limit:g}%)")

    # Group missing samples by metric family so a family that
    # vanished wholesale (a subsystem stopped reporting) reads as one
    # clear line instead of a wall of per-series noise.
    by_family = {}
    for key in missing:
        by_family.setdefault(family(key), []).append(key)
    for name in sorted(by_family):
        keys = by_family[name]
        if name not in cand_families:
            regressions.append(
                f"MISSING FAMILY  {name}: {len(keys)} series in "
                f"{args.base} but the family is absent from "
                f"{args.candidate}")
        else:
            for key in keys:
                regressions.append(
                    f"MISSING  {key}: present in {args.base}, "
                    f"absent from {args.candidate}")

    new = sorted(k for k in cand if k not in base
                 and not (ignore and ignore.search(k)))

    print(f"compared {compared} samples "
          f"({ignored} ignored, {len(new)} only in candidate)")
    for key in new[:10]:
        print(f"NEW      {key}")
    if len(new) > 10:
        print(f"... and {len(new) - 10} more new samples")

    if regressions:
        print(f"REGRESSIONS: {len(regressions)}")
        for line in regressions[:50]:
            print(line)
        if len(regressions) > 50:
            print(f"... and {len(regressions) - 50} more")
        return 1
    print("OK: zero regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
