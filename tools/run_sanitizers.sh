#!/usr/bin/env bash
# Build the whole tree with ASan + UBSan (the asan-ubsan CMake
# preset) and run the full ctest suite under the sanitizers.
#
# usage: tools/run_sanitizers.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

cmake --preset asan-ubsan
cmake --build build-sanitize -j "$JOBS"

# halt_on_error makes UBSan findings fail the test run instead of
# merely printing; leaks are reported by ASan's exit-time checker.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=1"

ctest --test-dir build-sanitize --output-on-failure
