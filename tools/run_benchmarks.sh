#!/usr/bin/env sh
# Build Release, run the test suite, run bench_all, and check the
# results against the committed reference.
#
# Gates, in order:
#   1. every report byte-identical to bench/reference (compare_bench)
#   2. two warm runs produce identical deterministic metrics
#      (metrics_diff, zero regressions allowed)
#   3. every report is checked against an enforced wall-time budget
#      (generous — the gate catches order-of-magnitude regressions,
#      not scheduler noise)
#   4. the second warm run records per-cell timelines and a span
#      profile; the timeline dumps are schema-gated and rendered to
#      HTML, proving the instrumentation does not perturb reports
#   5. the warm run re-evaluates bench/alerts/default_rules.json; a
#      fired warn rule is tolerated (exit 3), critical (4) fails
#   6. the fleet smoke drills its outlier hosts at two thread counts
#      and the drill-down bundles must be byte-identical
#   7. a hardware-counter run (--perf) must either deliver real
#      counters or fall back cleanly to the software backend — never
#      crash; its pcap-perf-v1 block is schema-gated (--check-perf)
#      and a PCAP_PERF_BACKEND=software run must mark the forced
#      fallback honestly
#   8. a timestamped BENCH_<tag>.json (+ .prom + manifest) lands at
#      the repo root as the artifact of record for this revision;
#      the published run carries the perf block.
#
# Usage: tools/run_benchmarks.sh [jobs] [tag]
#   jobs  worker threads for bench_all (default: hardware)
#   tag   artifact basename suffix: BENCH_<tag>.json; defaults to
#         $PCAP_BENCH_TAG, then the git short hash, then "local"
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build="$root/build"
jobs="${1:-0}"
tag="${2:-${PCAP_BENCH_TAG:-}}"
if [ -z "$tag" ]; then
    tag=$(git -C "$root" rev-parse --short HEAD 2>/dev/null || echo local)
fi

echo "== configure + build (Release) =="
cmake -B "$build" -S "$root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build" -j "$(nproc 2>/dev/null || echo 2)"

echo
echo "== tests =="
ctest --test-dir "$build" --output-on-failure

echo
echo "== bench_all (cold cache) =="
scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT
"$build/bench/bench_all" --jobs "$jobs" \
    --cache-dir "$scratch/cache" \
    --json "$scratch/cold.json" > /dev/null

echo
echo "== bench_all (warm cache, twice) =="
"$build/bench/bench_all" --jobs "$jobs" \
    --cache-dir "$scratch/cache" \
    --json "$scratch/warm.json" > /dev/null
"$build/bench/bench_all" --jobs "$jobs" \
    --cache-dir "$scratch/cache" \
    --json "$scratch/warm2.json" \
    --timeline-dir "$scratch/timeline" \
    --trace-profile "$scratch/trace-profile.json" > /dev/null

for run in cold warm warm2; do
    python3 - "$scratch/$run.json" "$run" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    results = json.load(f)
t = results["timings_ms"]
print(f"{sys.argv[2]}: inputs {t['inputs']} ms, "
      f"simulation {t['simulation']} ms, total {t['total']} ms")
EOF
done

echo
echo "== compare against bench/reference/BENCH_RESULTS.ref.json =="
python3 "$root/tools/compare_bench.py" \
    "$root/bench/reference/BENCH_RESULTS.ref.json" \
    "$scratch/warm.json" \
    --max-report-seconds ablation_cache=20 \
    --max-any-report-seconds 60

echo
echo "== metrics determinism (warm run vs warm run) =="
python3 "$root/tools/metrics_diff.py" \
    "$scratch/warm.json" "$scratch/warm2.json"

echo
echo "== timeline schema + HTML render (instrumented warm run) =="
python3 "$root/tools/compare_bench.py" \
    "$root/bench/reference/BENCH_RESULTS.ref.json" \
    "$scratch/warm2.json" \
    --timeline-dir "$scratch/timeline" \
    --max-report-seconds ablation_cache=20 \
    --max-any-report-seconds 60
python3 "$root/tools/pcap_timeline.py" "$scratch/timeline" \
    -o "$scratch/timeline/timeline.html"

echo
echo "== alert rules (bench/alerts/default_rules.json) =="
alert_status=0
"$build/bench/bench_all" --jobs "$jobs" \
    --cache-dir "$scratch/cache" \
    --json "$scratch/alerts.json" \
    --alerts "$root/bench/alerts/default_rules.json" > /dev/null \
    || alert_status=$?
case "$alert_status" in
    0) echo "alerts: clean" ;;
    3) echo "alerts: warn rule(s) fired (tolerated)" ;;
    *) echo "alerts: failed with exit $alert_status" >&2
       exit "$alert_status" ;;
esac
python3 "$root/tools/compare_bench.py" \
    "$root/bench/reference/BENCH_RESULTS.ref.json" \
    "$scratch/alerts.json" \
    --check-alerts \
    --max-report-seconds ablation_cache=20 \
    --max-any-report-seconds 60

echo
echo "== hardware counters (--perf, warm cache) =="
"$build/bench/bench_all" --jobs "$jobs" \
    --cache-dir "$scratch/cache" \
    --json "$scratch/perf.json" \
    --perf > /dev/null
python3 "$root/tools/compare_bench.py" \
    "$root/bench/reference/BENCH_RESULTS.ref.json" \
    "$scratch/perf.json" \
    --check-perf \
    --max-report-seconds ablation_cache=20 \
    --max-any-report-seconds 60
PCAP_PERF_BACKEND=software "$build/bench/bench_all" --jobs "$jobs" \
    --cache-dir "$scratch/cache" \
    --json "$scratch/perf-sw.json" \
    --perf > /dev/null
python3 - "$scratch/perf-sw.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
perf = doc["perf"]
assert perf["backend"] == "software", perf["backend"]
assert "PCAP_PERF_BACKEND" in perf["detail"], perf["detail"]
print("forced software fallback: marked honestly")
EOF

echo
echo "== fleet smoke (128 hosts, two thread counts, drill-down) =="
"$build/bench/bench_all" --report fleet --hosts 128 --jobs 1 \
    --cache-dir "$scratch/cache" \
    --json "$scratch/fleet-a.json" \
    --drilldown-dir "$scratch/drill-a" > /dev/null
"$build/bench/bench_all" --report fleet --hosts 128 --jobs 4 \
    --cache-dir "$scratch/cache" \
    --json "$scratch/fleet-b.json" \
    --drilldown-dir "$scratch/drill-b" > /dev/null
python3 "$root/tools/compare_bench.py" \
    "$scratch/fleet-a.json" "$scratch/fleet-b.json" \
    --max-any-report-seconds 300
diff -r "$scratch/drill-a" "$scratch/drill-b"
echo "drill-down bundles byte-identical across thread counts"
python3 "$root/tools/pcap_fleet_report.py" "$scratch/drill-a" \
    --fleet-json "$scratch/fleet-a.json" \
    -o "$scratch/drill-a/fleet_report.html"

echo
echo "== publish BENCH_$tag.json =="
# The perf run is the artifact of record: identical reports (gated
# above), plus the pcap-perf-v1 block and the capability record in
# its manifest.
cp "$scratch/perf.json" "$root/BENCH_$tag.json"
cp "$scratch/perf.prom" "$root/BENCH_$tag.prom"
cp "$scratch/perf.manifest.json" "$root/BENCH_$tag.manifest.json"
echo "wrote $root/BENCH_$tag.json (+ .prom, .manifest.json)"
