#!/usr/bin/env python3
"""Render a fleet drill-down bundle as a self-contained HTML report.

Usage: pcap_fleet_report.py DRILLDOWN_DIR [options]

Reads the drilldown.json index a `bench_all --report fleet
--drilldown-dir DIR` run wrote, plus the per-host timeline dumps
next to it, and renders one "fleet observatory" page: every drilled
outlier host gets a section with the pass-1 flags that selected it
(metric, value, fleet median, MAD score), its per-policy re-run
summary, and the instrumented timelines of the deterministic
re-simulation. With --fleet-json pointing at the run's
BENCH_RESULTS.json, the fleet-health percentile table and the
pcap-alerts-v1 verdicts are prepended.

SVG rendering is shared with pcap_timeline.py (imported as a
module); stdlib only, no external references in the output.

Exit status: 0 on success, 2 on bad input (missing index, unreadable
JSON, wrong schema).
"""

import argparse
import html
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import pcap_timeline  # noqa: E402  (sibling module, same dir)

INDEX_SCHEMA = "pcap-drilldown-v1"

EXTRA_CSS = """
.host { border: 1px solid #ccc; border-radius: 6px;
        padding: 0.8em 1em; margin-bottom: 1.5em; }
.host h3 { margin: 0 0 0.2em 0; font-size: 1.0em; }
.host .meta { color: #777; font-size: 0.8em;
              margin-bottom: 0.6em; }
.reason { background: #fcf3f2; }
.status-fired { color: #c0392b; font-weight: 600; }
.status-ok { color: #2d7a46; }
.status-pending { color: #b07d1a; }
.status-skipped { color: #999; }
"""


def fail(message):
    print(f"pcap_fleet_report.py: {message}", file=sys.stderr)
    sys.exit(2)


def load_index(drill_dir):
    root = pathlib.Path(drill_dir)
    path = root / "drilldown.json"
    if not path.is_file():
        fail(f"no drilldown.json in {drill_dir} (run bench_all "
             f"--report fleet --drilldown-dir {drill_dir})")
    try:
        index = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{path}: {err}")
    if index.get("schema") != INDEX_SCHEMA:
        fail(f"{path}: schema {index.get('schema')!r}, "
             f"want {INDEX_SCHEMA!r}")
    return index


def load_timeline(drill_dir, stem):
    path = pathlib.Path(drill_dir) / f"{stem}.timeline.json"
    if not path.is_file():
        return None
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{path}: {err}")
    if doc.get("schema") != pcap_timeline.SCHEMA:
        fail(f"{path}: schema {doc.get('schema')!r}, "
             f"want {pcap_timeline.SCHEMA!r}")
    return doc


def alerts_html(results):
    alerts = results.get("alerts")
    if not alerts:
        return ""
    parts = ["<h2>Alert verdicts</h2>",
             "<table><tr><th>rule</th><th>severity</th>"
             "<th>kind</th><th>condition</th><th>value</th>"
             "<th>evidence (sim s)</th><th>status</th></tr>"]
    for rule in alerts.get("rules", []):
        status = rule.get("status", "?")
        value = rule.get("value")
        parts.append(
            f'<tr><td>{html.escape(rule.get("name", "?"))}</td>'
            f'<td>{html.escape(rule.get("severity", "?"))}</td>'
            f'<td>{html.escape(rule.get("kind", "?"))}</td>'
            f'<td>{html.escape(rule.get("op", "?"))} '
            f'{rule.get("threshold", "?")}</td>'
            f'<td>{"-" if value is None else f"{value:.6g}"}</td>'
            f'<td>{rule.get("evidence_sim_seconds", 0):.0f}</td>'
            f'<td class="status-{html.escape(status)}">'
            f'{html.escape(status)}</td></tr>')
    parts.append("</table>")
    return "".join(parts)


def reasons_html(reasons):
    parts = ["<table class='reason'><tr><th>policy</th>"
             "<th>metric</th><th>value</th><th>fleet median</th>"
             "<th>score (MADs)</th></tr>"]
    for reason in reasons:
        parts.append(
            f'<tr><td>{html.escape(reason["policy"])}</td>'
            f'<td>{html.escape(reason["metric"])}</td>'
            f'<td>{reason["value"]:.1%}</td>'
            f'<td>{reason["median"]:.1%}</td>'
            f'<td>{reason["score"]:.1f}</td></tr>')
    parts.append("</table>")
    return "".join(parts)


def policies_html(entry):
    base = entry.get("base_energy_j", 0.0)
    parts = ["<table><tr><th>policy</th><th>energy (J)</th>"
             "<th>saved</th><th>hit</th><th>miss</th>"
             "<th>shutdowns</th><th>spin-ups</th>"
             "<th>table entries</th></tr>",
             f'<tr><td>base</td><td>{base:.1f}</td><td>-</td>'
             f'<td>-</td><td>-</td><td>-</td><td>-</td>'
             f'<td>-</td></tr>']
    for policy in entry.get("policies", []):
        parts.append(
            f'<tr><td>{html.escape(policy["policy"])}</td>'
            f'<td>{policy["energy_j"]:.1f}</td>'
            f'<td>{policy["saved_fraction"]:.1%}</td>'
            f'<td>{policy["hit_fraction"]:.1%}</td>'
            f'<td>{policy["miss_fraction"]:.1%}</td>'
            f'<td>{policy["shutdowns"]}</td>'
            f'<td>{policy["spin_ups"]}</td>'
            f'<td>{policy["table_entries"]}</td></tr>')
    parts.append("</table>")
    return "".join(parts)


def host_html(drill_dir, entry):
    host = entry["host"]
    span = pcap_timeline.fmt_span(entry.get("sim_span_us", 0))
    parts = [f'<div class="host"><h3>host {host}</h3>',
             f'<div class="meta">seed {entry.get("seed", "?")} '
             f'&middot; think-time scale '
             f'{entry.get("think_time_scale", 1.0):.2f} &middot; '
             f'{entry.get("executions", 0)} executions &middot; '
             f'{entry.get("accesses", 0)} disk accesses &middot; '
             f'span {span}</div>',
             "<h4>Why it was flagged</h4>",
             reasons_html(entry.get("reasons", [])),
             "<h4>Deterministic re-run</h4>",
             policies_html(entry)]
    timelines = []
    for policy in entry.get("policies", []):
        doc = load_timeline(drill_dir, policy["stem"])
        if doc is not None:
            timelines.append(pcap_timeline.cell_html(doc))
    if timelines:
        parts.append("<h4>Instrumented timelines</h4>")
        parts.extend(timelines)
    parts.append("</div>")
    return "".join(parts)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("drilldown_dir",
                        help="directory bench_all --drilldown-dir "
                             "wrote (contains drilldown.json)")
    parser.add_argument("-o", "--out", default="fleet_report.html",
                        help="output HTML path "
                             "(default: fleet_report.html)")
    parser.add_argument("--fleet-json",
                        help="BENCH_RESULTS.json of the fleet run, "
                             "for the health + alerts sections "
                             "(optional)")
    args = parser.parse_args()

    index = load_index(args.drilldown_dir)
    hosts = index.get("hosts", [])

    body = [f"<h1>pcap fleet observatory &mdash; "
            f"{len(hosts)} drilled hosts</h1>",
            f"<p>fleet seed {index.get('fleet_seed', '?')}. Every "
            f"host below was flagged by the k&middot;MAD outlier "
            f"test in pass 1 and re-simulated bit-identically with "
            f"full instrumentation in pass 2.</p>"]
    if args.fleet_json:
        try:
            results = json.loads(
                pathlib.Path(args.fleet_json).read_text())
        except (OSError, json.JSONDecodeError) as err:
            fail(f"{args.fleet_json}: {err}")
        body.append(alerts_html(results))
        body.append(pcap_timeline.fleet_html(args.fleet_json))
    if hosts:
        body.append("<h2>Drilled hosts</h2>")
        body.append(pcap_timeline.legend_html())
        body.extend(host_html(args.drilldown_dir, entry)
                    for entry in hosts)
    else:
        body.append("<p>No hosts were flagged — the fleet is "
                    "healthy at the configured MAD threshold.</p>")

    page = ("<!DOCTYPE html><html><head><meta charset='utf-8'>"
            "<title>pcap fleet observatory</title>"
            f"<style>{pcap_timeline.CSS}{EXTRA_CSS}</style>"
            f"</head><body>{''.join(body)}</body></html>")
    pathlib.Path(args.out).write_text(page)
    print(f"wrote {args.out}: {len(hosts)} drilled hosts")
    return 0


if __name__ == "__main__":
    sys.exit(main())
