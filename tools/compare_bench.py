#!/usr/bin/env python3
"""Compare two BENCH_RESULTS.json files for scientific equality.

Usage: compare_bench.py REFERENCE CANDIDATE [--tolerance REL]

By default report lines must match byte for byte -- the engine is
deterministic, so every figure number is expected to be identical.
Passing --tolerance switches to token-by-token comparison where
numeric tokens may differ within the given relative tolerance
(for cross-platform floating-point noise).

Timings, job counts, cache-effectiveness counters and the metrics
block are machine- and run-dependent, so they are ignored here (use
tools/metrics_diff.py to compare metrics); however, the candidate is
required to *carry* a metrics block unless --allow-missing-metrics
is given, so an instrumentation regression cannot slip through.

--max-report-seconds NAME=SECONDS (repeatable) additionally budgets
the candidate's wall time for one report (timings_ms.reports.NAME).
--max-any-report-seconds SECONDS applies one (generous) budget to
every report in the candidate. A blown budget is an error by
default; with --timing-warn-only it only warns -- use that on
shared/noisy runners where wall time is advisory.

When both files carry a top-level "fleet" block (bench_all --report
fleet) the generic key comparison requires it to be identical, and
the candidate's block is schema-checked (pcap-fleet-v1).

--timeline-dir DIR schema-checks every *.timeline.json the
candidate run wrote with bench_all --timeline-dir: pcap-timeline-v1
schema, positive bucket width, series lengths equal to the bucket
count, per-bucket state residency bounded by the bucket width, and
non-negative counts and energies (so cumulative energy is
non-decreasing over simulated time). An empty directory is an
error -- a timeline-instrumentation regression must not pass.

--check-perf requires and schema-checks the candidate's pcap-perf-v1
block (bench_all --perf): a known backend, non-empty regions with
the full counter field set, hardware backends showing real cycle and
instruction counts, software backends showing all-zero hardware
counters (the honest-fallback contract). Derived statistics -- IPC,
cache/branch miss rates, and cycles per simulated idle period when
the metrics block carries pcap_sim_idle_periods_total -- are printed,
and bounded only by warn-level budgets (--perf-min-ipc,
--perf-max-miss-rate): counter values are machine-dependent, so they
advise rather than gate.
"""

import argparse
import glob
import json
import os
import re
import sys

IGNORED_TOP_KEYS = {"jobs", "timings_ms", "workload_cache", "metrics",
                    "perf"}
NUMBER = re.compile(r"^[+-]?\d+(\.\d+)?([eE][+-]?\d+)?%?$")


def tokens(line):
    return line.split()


def compare_lines(name, index, ref, got, tolerance, errors):
    if tolerance is None:
        if ref != got:
            errors.append(f"{name} line {index + 1} differs\n"
                          f"  ref: {ref}\n  got: {got}")
        return
    ref_tokens = tokens(ref)
    got_tokens = tokens(got)
    if len(ref_tokens) != len(got_tokens):
        errors.append(f"{name} line {index + 1}: token count "
                      f"{len(got_tokens)} != {len(ref_tokens)}\n"
                      f"  ref: {ref}\n  got: {got}")
        return
    for a, b in zip(ref_tokens, got_tokens):
        if a == b:
            continue
        if NUMBER.match(a) and NUMBER.match(b):
            x = float(a.rstrip("%"))
            y = float(b.rstrip("%"))
            scale = max(abs(x), abs(y), 1.0)
            if abs(x - y) <= tolerance * scale:
                continue
        errors.append(f"{name} line {index + 1}: '{b}' != '{a}'\n"
                      f"  ref: {ref}\n  got: {got}")
        return


def check_metrics(got, errors):
    metrics = got.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("candidate has no 'metrics' block "
                      "(run without --no-metrics, or pass "
                      "--allow-missing-metrics)")
        return
    if metrics.get("schema") != "pcap-metrics-v1":
        errors.append(f"candidate metrics schema "
                      f"{metrics.get('schema')!r} != 'pcap-metrics-v1'")
        return
    if not metrics.get("series"):
        errors.append("candidate metrics block has no series")


def check_fleet(got, errors):
    """Schema of the candidate's fleet block, when present."""
    fleet = got.get("fleet")
    if fleet is None:
        return
    if not isinstance(fleet, dict):
        errors.append("fleet block is not an object")
        return
    if fleet.get("schema") != "pcap-fleet-v1":
        errors.append(f"fleet schema {fleet.get('schema')!r} "
                      f"!= 'pcap-fleet-v1'")
        return
    hosts = fleet.get("hosts")
    if not isinstance(hosts, (int, float)) or hosts < 1:
        errors.append(f"fleet hosts {hosts!r} is not >= 1")
    policies = fleet.get("policies")
    if not isinstance(policies, list) or not policies:
        errors.append("fleet block has no policies")
        return
    for policy in policies:
        label = policy.get("policy", "<unnamed>")
        for field in ("energy_j", "saved_fraction",
                      "hit_fraction", "miss_fraction"):
            percentiles = policy.get(field)
            if not isinstance(percentiles, dict) or not all(
                    q in percentiles for q in ("p50", "p90", "p99")):
                errors.append(f"fleet policy {label}: {field} lacks "
                              f"p50/p90/p99")
        outliers = policy.get("outliers")
        if not isinstance(outliers, list):
            errors.append(f"fleet policy {label}: no outliers list")
            continue
        for outlier in outliers:
            if not all(field in outlier
                       for field in ("host", "metric", "value",
                                     "median", "score")):
                errors.append(f"fleet policy {label}: outlier entry "
                              f"lacks host/metric/value/median/score")
                break


def check_alerts(got, errors):
    """Schema of the candidate's pcap-alerts-v1 block (--check-alerts).

    The block must exist (the run was started with --alerts), every
    rule must carry a settled verdict, and the summary counters and
    exit code must be consistent with the per-rule statuses -- an
    alert-evaluation regression must not pass as "no alerts".
    """
    checked_before = len(errors)
    alerts = got.get("alerts")
    if not isinstance(alerts, dict):
        errors.append("candidate has no 'alerts' block "
                      "(run with --alerts RULES.json)")
        return
    if alerts.get("schema") != "pcap-alerts-v1":
        errors.append(f"alerts schema {alerts.get('schema')!r} "
                      f"!= 'pcap-alerts-v1'")
        return
    rules = alerts.get("rules")
    if not isinstance(rules, list) or not rules:
        errors.append("alerts block has no rules")
        return
    statuses = {"ok", "skipped", "pending", "fired"}
    severities = {"warn", "critical"}
    fired = {"warn": 0, "critical": 0}
    names = set()
    for rule in rules:
        name = rule.get("name", "<unnamed>")
        if name in names:
            errors.append(f"alerts: duplicate rule name {name!r}")
        names.add(name)
        for field in ("name", "severity", "kind", "op",
                      "threshold", "status"):
            if field not in rule:
                errors.append(f"alerts rule {name}: missing "
                              f"'{field}'")
        if rule.get("status") not in statuses:
            errors.append(f"alerts rule {name}: status "
                          f"{rule.get('status')!r} not in "
                          f"{sorted(statuses)}")
            continue
        if rule.get("severity") not in severities:
            errors.append(f"alerts rule {name}: severity "
                          f"{rule.get('severity')!r} not in "
                          f"{sorted(severities)}")
            continue
        if rule["status"] == "fired":
            fired[rule["severity"]] += 1
        if rule["status"] in ("ok", "fired") and "value" not in rule:
            errors.append(f"alerts rule {name}: settled without an "
                          f"observed value")
    for severity, key in (("warn", "warn_fired"),
                          ("critical", "critical_fired")):
        if alerts.get(key) != fired[severity]:
            errors.append(f"alerts: {key} {alerts.get(key)!r} != "
                          f"{fired[severity]} fired rules")
    expected_exit = (4 if fired["critical"] else
                     3 if fired["warn"] else 0)
    if alerts.get("exit_code") != expected_exit:
        errors.append(f"alerts: exit_code {alerts.get('exit_code')!r}"
                      f" != {expected_exit}")
    if len(errors) == checked_before:
        print(f"alerts ok: {len(rules)} rules "
              f"({fired['warn']} warn, {fired['critical']} "
              f"critical fired)")


PERF_COUNT_FIELDS = ("cycles", "instructions", "cache_references",
                     "cache_misses", "branch_misses",
                     "task_clock_ns", "time_enabled_ns",
                     "time_running_ns")
PERF_DERIVED_FIELDS = ("ipc", "cache_miss_rate", "branch_miss_rate")


def total_idle_periods(got):
    """Sum of pcap_sim_idle_periods_total across the metrics block,
    or None when the series (or the block) is absent."""
    metrics = got.get("metrics")
    if not isinstance(metrics, dict):
        return None
    total = None
    for series in metrics.get("series", []):
        if series.get("name") == "pcap_sim_idle_periods_total":
            total = (total or 0) + series.get("value", 0)
    return total


def check_perf(got, min_ipc, max_miss_rate, errors):
    """Schema of the candidate's pcap-perf-v1 block (--check-perf).

    Counter *presence and shape* gate hard; counter *values* are
    machine-dependent and only drive warn-level advisories.
    """
    checked_before = len(errors)
    perf = got.get("perf")
    if not isinstance(perf, dict):
        errors.append("candidate has no 'perf' block "
                      "(run with --perf)")
        return
    if perf.get("schema") != "pcap-perf-v1":
        errors.append(f"perf schema {perf.get('schema')!r} "
                      f"!= 'pcap-perf-v1'")
        return
    backend = perf.get("backend")
    if backend not in ("hardware", "software"):
        errors.append(f"perf backend {backend!r} not in "
                      f"('hardware', 'software')")
        return
    regions = perf.get("regions")
    if not isinstance(regions, list) or not regions:
        errors.append("perf block has no regions")
        return
    for region in regions:
        name = region.get("region", "<unnamed>")
        for field in PERF_COUNT_FIELDS:
            value = region.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                errors.append(f"perf region {name}: {field} "
                              f"{value!r} is not a non-negative "
                              f"number")
        for field in PERF_DERIVED_FIELDS:
            if field not in region:
                errors.append(f"perf region {name}: missing "
                              f"derived '{field}'")
    if errors[checked_before:]:
        return

    # The fallback contract: a software backend must not fake
    # hardware numbers, a hardware backend must deliver them.
    if backend == "software":
        faked = [r["region"] for r in regions if r["cycles"] > 0]
        if faked:
            errors.append(f"perf: software backend reports nonzero "
                          f"cycles in {faked[:3]}")
    else:
        live = [r for r in regions
                if r["cycles"] > 0 and r["instructions"] > 0]
        if not live:
            errors.append("perf: hardware backend but no region "
                          "has nonzero cycles and instructions")

    if errors[checked_before:]:
        return

    # Derived statistics: printed always, budget-checked (warn-only)
    # on hardware backends where the counters are real.
    idle_periods = total_idle_periods(got)
    for region in regions:
        name = region["region"]
        line = (f"perf region {name}: ipc {region['ipc']:.3f}, "
                f"cache miss rate {region['cache_miss_rate']:.3f}, "
                f"branch miss rate "
                f"{region['branch_miss_rate']:.4f}")
        if idle_periods and name in ("phase:simulation",
                                     "cells:replay"):
            line += (f", {region['cycles'] / idle_periods:.0f} "
                     f"cycles/idle-period")
        print(line)
        if backend != "hardware":
            continue
        if region["cycles"] == 0:
            continue
        if region["ipc"] < min_ipc:
            print(f"WARNING: perf region {name}: ipc "
                  f"{region['ipc']:.3f} below advisory floor "
                  f"{min_ipc:g}")
        if region["cache_miss_rate"] > max_miss_rate:
            print(f"WARNING: perf region {name}: cache miss rate "
                  f"{region['cache_miss_rate']:.3f} above advisory "
                  f"ceiling {max_miss_rate:g}")
    print(f"perf ok: {backend} backend, {len(regions)} regions")


def check_timeline_doc(path, doc, errors):
    """Invariants of one pcap-timeline-v1 document."""
    name = os.path.basename(path)
    if doc.get("schema") != "pcap-timeline-v1":
        errors.append(f"{name}: schema {doc.get('schema')!r} "
                      f"!= 'pcap-timeline-v1'")
        return
    buckets = doc.get("buckets")
    width = doc.get("bucket_width_us")
    if not isinstance(buckets, int) or buckets < 2:
        errors.append(f"{name}: buckets {buckets!r} is not >= 2")
        return
    if not isinstance(width, (int, float)) or width <= 0:
        errors.append(f"{name}: bucket_width_us {width!r} "
                      f"is not > 0")
        return
    used = doc.get("used_buckets")
    if not isinstance(used, int) or not 0 <= used <= buckets:
        errors.append(f"{name}: used_buckets {used!r} outside "
                      f"[0, {buckets}]")
    series = doc.get("series")
    if not isinstance(series, dict):
        errors.append(f"{name}: no series object")
        return
    flat = {}
    for group in ("state_us", "outcomes", "energy_j"):
        members = series.get(group)
        if not isinstance(members, dict) or not members:
            errors.append(f"{name}: series.{group} missing or empty")
            return
        for key, values in members.items():
            flat[f"{group}.{key}"] = values
    for key in ("shutdowns", "spin_ups", "table_entries"):
        flat[key] = series.get(key)
    for key, values in flat.items():
        if not isinstance(values, list) or len(values) != buckets:
            errors.append(f"{name}: series {key} is not a list of "
                          f"{buckets} buckets")
            return
    for key, values in flat.items():
        # Every series is non-negative (table_entries uses -1 for
        # "not sampled"), so each cumulative sum -- energy over
        # simulated time in particular -- is non-decreasing.
        floor = -1 if key == "table_entries" else 0
        bad = [v for v in values if v < floor]
        if bad:
            errors.append(f"{name}: series {key} has value "
                          f"{bad[0]!r} < {floor}")
    for i in range(buckets):
        residency = sum(series["state_us"][state][i]
                        for state in series["state_us"])
        if residency > width:
            errors.append(f"{name}: bucket {i} residency "
                          f"{residency} us exceeds bucket width "
                          f"{width} us")
            break


def check_timeline(timeline_dir, errors):
    """Every timeline dump in the directory, at least one."""
    paths = sorted(glob.glob(
        os.path.join(timeline_dir, "*.timeline.json")))
    if not paths:
        errors.append(f"no *.timeline.json files in {timeline_dir}")
        return
    checked_before = len(errors)
    for path in paths:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            errors.append(f"{path}: {err}")
            continue
        check_timeline_doc(path, doc, errors)
    if len(errors) == checked_before:
        print(f"timeline ok: {len(paths)} dumps in {timeline_dir}")


def parse_budget(text):
    name, sep, seconds = text.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"budget must look like NAME=SECONDS, got {text!r}")
    try:
        value = float(seconds)
    except ValueError as err:
        raise argparse.ArgumentTypeError(
            f"bad budget {text!r}: {err}")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"budget {text!r} must be positive")
    return name, value


def check_budgets(got, budgets, any_budget, warn_only, errors):
    """Candidate report wall times against their budgets."""
    timings = got.get("timings_ms", {}).get("reports", {})
    if any_budget is not None:
        named = {name for name, _ in budgets}
        budgets = list(budgets) + [(name, any_budget)
                                   for name in sorted(timings)
                                   if name not in named]
    for name, seconds in budgets:
        if name not in timings:
            errors.append(f"timing budget for '{name}': report has "
                          f"no timing in candidate")
            continue
        spent = timings[name] / 1000.0
        if spent <= seconds:
            print(f"timing ok: {name} {spent:.3f}s "
                  f"<= budget {seconds:g}s")
            continue
        message = (f"timing budget blown: {name} took {spent:.3f}s "
                   f"> budget {seconds:g}s")
        if warn_only:
            print(f"WARNING: {message}")
        else:
            errors.append(message)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("reference")
    parser.add_argument("candidate")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="relative tolerance for numeric tokens "
                             "(default: byte-identical lines)")
    parser.add_argument("--allow-missing-metrics", action="store_true",
                        help="don't require the candidate to carry a "
                             "metrics block")
    parser.add_argument("--max-report-seconds", type=parse_budget,
                        action="append", default=[],
                        metavar="NAME=SECONDS",
                        help="wall-time budget for one candidate "
                             "report (repeatable)")
    parser.add_argument("--max-any-report-seconds", type=float,
                        default=None, metavar="SECONDS",
                        help="wall-time budget applied to every "
                             "candidate report not covered by a "
                             "named budget")
    parser.add_argument("--timing-warn-only", action="store_true",
                        help="blown timing budgets warn instead of "
                             "failing (shared/noisy runners)")
    parser.add_argument("--timeline-dir", metavar="DIR",
                        help="schema-check the candidate run's "
                             "*.timeline.json dumps in DIR")
    parser.add_argument("--check-alerts", action="store_true",
                        help="require and schema-check the "
                             "candidate's pcap-alerts-v1 block")
    parser.add_argument("--check-perf", action="store_true",
                        help="require and schema-check the "
                             "candidate's pcap-perf-v1 block")
    parser.add_argument("--perf-min-ipc", type=float, default=0.05,
                        metavar="IPC",
                        help="advisory IPC floor for hardware perf "
                             "regions (warn only; default: 0.05)")
    parser.add_argument("--perf-max-miss-rate", type=float,
                        default=0.95, metavar="RATE",
                        help="advisory cache-miss-rate ceiling for "
                             "hardware perf regions (warn only; "
                             "default: 0.95)")
    args = parser.parse_args()
    if (args.max_any_report_seconds is not None
            and args.max_any_report_seconds <= 0):
        parser.error("--max-any-report-seconds must be positive")

    with open(args.reference) as f:
        ref = json.load(f)
    with open(args.candidate) as f:
        got = json.load(f)

    errors = []
    for key in ref:
        if key in IGNORED_TOP_KEYS or key == "reports":
            continue
        if got.get(key) != ref[key]:
            errors.append(f"{key}: {got.get(key)!r} != {ref[key]!r}")

    if not args.allow_missing_metrics:
        check_metrics(got, errors)
    check_fleet(got, errors)
    if args.check_alerts:
        check_alerts(got, errors)
    if args.check_perf:
        check_perf(got, args.perf_min_ipc,
                   args.perf_max_miss_rate, errors)
    if args.timeline_dir:
        check_timeline(args.timeline_dir, errors)
    check_budgets(got, args.max_report_seconds,
                  args.max_any_report_seconds,
                  args.timing_warn_only, errors)

    ref_reports = ref.get("reports", {})
    got_reports = got.get("reports", {})
    for name in sorted(set(ref_reports) | set(got_reports)):
        if name not in got_reports:
            errors.append(f"report '{name}' missing from candidate")
            continue
        if name not in ref_reports:
            errors.append(f"report '{name}' not in reference")
            continue
        ref_lines = ref_reports[name]["lines"]
        got_lines = got_reports[name]["lines"]
        if len(ref_lines) != len(got_lines):
            errors.append(f"{name}: {len(got_lines)} lines != "
                          f"{len(ref_lines)}")
            continue
        for i, (a, b) in enumerate(zip(ref_lines, got_lines)):
            compare_lines(name, i, a, b, args.tolerance, errors)

    if errors:
        print(f"MISMATCH: {len(errors)} difference(s)")
        for error in errors[:20]:
            print(error)
        if len(errors) > 20:
            print(f"... and {len(errors) - 20} more")
        return 1
    mode = ("byte-identical" if args.tolerance is None
            else f"tolerance {args.tolerance:g}")
    print(f"OK: {len(ref_reports)} reports match ({mode})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
