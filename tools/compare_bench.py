#!/usr/bin/env python3
"""Compare two BENCH_RESULTS.json files for scientific equality.

Usage: compare_bench.py REFERENCE CANDIDATE [--tolerance REL]

By default report lines must match byte for byte -- the engine is
deterministic, so every figure number is expected to be identical.
Passing --tolerance switches to token-by-token comparison where
numeric tokens may differ within the given relative tolerance
(for cross-platform floating-point noise).

Timings, job counts, cache-effectiveness counters and the metrics
block are machine- and run-dependent, so they are ignored here (use
tools/metrics_diff.py to compare metrics); however, the candidate is
required to *carry* a metrics block unless --allow-missing-metrics
is given, so an instrumentation regression cannot slip through.

--max-report-seconds NAME=SECONDS (repeatable) additionally budgets
the candidate's wall time for one report (timings_ms.reports.NAME).
--max-any-report-seconds SECONDS applies one (generous) budget to
every report in the candidate. A blown budget is an error by
default; with --timing-warn-only it only warns -- use that on
shared/noisy runners where wall time is advisory.

When both files carry a top-level "fleet" block (bench_all --report
fleet) the generic key comparison requires it to be identical, and
the candidate's block is schema-checked (pcap-fleet-v1).
"""

import argparse
import json
import re
import sys

IGNORED_TOP_KEYS = {"jobs", "timings_ms", "workload_cache", "metrics"}
NUMBER = re.compile(r"^[+-]?\d+(\.\d+)?([eE][+-]?\d+)?%?$")


def tokens(line):
    return line.split()


def compare_lines(name, index, ref, got, tolerance, errors):
    if tolerance is None:
        if ref != got:
            errors.append(f"{name} line {index + 1} differs\n"
                          f"  ref: {ref}\n  got: {got}")
        return
    ref_tokens = tokens(ref)
    got_tokens = tokens(got)
    if len(ref_tokens) != len(got_tokens):
        errors.append(f"{name} line {index + 1}: token count "
                      f"{len(got_tokens)} != {len(ref_tokens)}\n"
                      f"  ref: {ref}\n  got: {got}")
        return
    for a, b in zip(ref_tokens, got_tokens):
        if a == b:
            continue
        if NUMBER.match(a) and NUMBER.match(b):
            x = float(a.rstrip("%"))
            y = float(b.rstrip("%"))
            scale = max(abs(x), abs(y), 1.0)
            if abs(x - y) <= tolerance * scale:
                continue
        errors.append(f"{name} line {index + 1}: '{b}' != '{a}'\n"
                      f"  ref: {ref}\n  got: {got}")
        return


def check_metrics(got, errors):
    metrics = got.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("candidate has no 'metrics' block "
                      "(run without --no-metrics, or pass "
                      "--allow-missing-metrics)")
        return
    if metrics.get("schema") != "pcap-metrics-v1":
        errors.append(f"candidate metrics schema "
                      f"{metrics.get('schema')!r} != 'pcap-metrics-v1'")
        return
    if not metrics.get("series"):
        errors.append("candidate metrics block has no series")


def check_fleet(got, errors):
    """Schema of the candidate's fleet block, when present."""
    fleet = got.get("fleet")
    if fleet is None:
        return
    if not isinstance(fleet, dict):
        errors.append("fleet block is not an object")
        return
    if fleet.get("schema") != "pcap-fleet-v1":
        errors.append(f"fleet schema {fleet.get('schema')!r} "
                      f"!= 'pcap-fleet-v1'")
        return
    hosts = fleet.get("hosts")
    if not isinstance(hosts, (int, float)) or hosts < 1:
        errors.append(f"fleet hosts {hosts!r} is not >= 1")
    policies = fleet.get("policies")
    if not isinstance(policies, list) or not policies:
        errors.append("fleet block has no policies")
        return
    for policy in policies:
        label = policy.get("policy", "<unnamed>")
        for field in ("energy_j", "saved_fraction",
                      "hit_fraction", "miss_fraction"):
            percentiles = policy.get(field)
            if not isinstance(percentiles, dict) or not all(
                    q in percentiles for q in ("p50", "p90", "p99")):
                errors.append(f"fleet policy {label}: {field} lacks "
                              f"p50/p90/p99")


def parse_budget(text):
    name, sep, seconds = text.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"budget must look like NAME=SECONDS, got {text!r}")
    try:
        value = float(seconds)
    except ValueError as err:
        raise argparse.ArgumentTypeError(
            f"bad budget {text!r}: {err}")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"budget {text!r} must be positive")
    return name, value


def check_budgets(got, budgets, any_budget, warn_only, errors):
    """Candidate report wall times against their budgets."""
    timings = got.get("timings_ms", {}).get("reports", {})
    if any_budget is not None:
        named = {name for name, _ in budgets}
        budgets = list(budgets) + [(name, any_budget)
                                   for name in sorted(timings)
                                   if name not in named]
    for name, seconds in budgets:
        if name not in timings:
            errors.append(f"timing budget for '{name}': report has "
                          f"no timing in candidate")
            continue
        spent = timings[name] / 1000.0
        if spent <= seconds:
            print(f"timing ok: {name} {spent:.3f}s "
                  f"<= budget {seconds:g}s")
            continue
        message = (f"timing budget blown: {name} took {spent:.3f}s "
                   f"> budget {seconds:g}s")
        if warn_only:
            print(f"WARNING: {message}")
        else:
            errors.append(message)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("reference")
    parser.add_argument("candidate")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="relative tolerance for numeric tokens "
                             "(default: byte-identical lines)")
    parser.add_argument("--allow-missing-metrics", action="store_true",
                        help="don't require the candidate to carry a "
                             "metrics block")
    parser.add_argument("--max-report-seconds", type=parse_budget,
                        action="append", default=[],
                        metavar="NAME=SECONDS",
                        help="wall-time budget for one candidate "
                             "report (repeatable)")
    parser.add_argument("--max-any-report-seconds", type=float,
                        default=None, metavar="SECONDS",
                        help="wall-time budget applied to every "
                             "candidate report not covered by a "
                             "named budget")
    parser.add_argument("--timing-warn-only", action="store_true",
                        help="blown timing budgets warn instead of "
                             "failing (shared/noisy runners)")
    args = parser.parse_args()
    if (args.max_any_report_seconds is not None
            and args.max_any_report_seconds <= 0):
        parser.error("--max-any-report-seconds must be positive")

    with open(args.reference) as f:
        ref = json.load(f)
    with open(args.candidate) as f:
        got = json.load(f)

    errors = []
    for key in ref:
        if key in IGNORED_TOP_KEYS or key == "reports":
            continue
        if got.get(key) != ref[key]:
            errors.append(f"{key}: {got.get(key)!r} != {ref[key]!r}")

    if not args.allow_missing_metrics:
        check_metrics(got, errors)
    check_fleet(got, errors)
    check_budgets(got, args.max_report_seconds,
                  args.max_any_report_seconds,
                  args.timing_warn_only, errors)

    ref_reports = ref.get("reports", {})
    got_reports = got.get("reports", {})
    for name in sorted(set(ref_reports) | set(got_reports)):
        if name not in got_reports:
            errors.append(f"report '{name}' missing from candidate")
            continue
        if name not in ref_reports:
            errors.append(f"report '{name}' not in reference")
            continue
        ref_lines = ref_reports[name]["lines"]
        got_lines = got_reports[name]["lines"]
        if len(ref_lines) != len(got_lines):
            errors.append(f"{name}: {len(got_lines)} lines != "
                          f"{len(ref_lines)}")
            continue
        for i, (a, b) in enumerate(zip(ref_lines, got_lines)):
            compare_lines(name, i, a, b, args.tolerance, errors)

    if errors:
        print(f"MISMATCH: {len(errors)} difference(s)")
        for error in errors[:20]:
            print(error)
        if len(errors) > 20:
            print(f"... and {len(errors) - 20} more")
        return 1
    mode = ("byte-identical" if args.tolerance is None
            else f"tolerance {args.tolerance:g}")
    print(f"OK: {len(ref_reports)} reports match ({mode})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
