#!/usr/bin/env python3
"""Compare two BENCH_RESULTS.json files for scientific equality.

Usage: compare_bench.py REFERENCE CANDIDATE [--tolerance REL]

Report lines are compared token by token: numeric tokens must agree
within a relative tolerance (default 1e-9, i.e. effectively exact —
the engine is deterministic), everything else must match exactly.
Timings, job counts and cache-effectiveness counters are machine- and
run-dependent, so they are ignored.
"""

import argparse
import json
import re
import sys

IGNORED_TOP_KEYS = {"jobs", "timings_ms", "workload_cache"}
NUMBER = re.compile(r"^[+-]?\d+(\.\d+)?([eE][+-]?\d+)?%?$")


def tokens(line):
    return line.split()


def compare_lines(name, index, ref, got, tolerance, errors):
    ref_tokens = tokens(ref)
    got_tokens = tokens(got)
    if len(ref_tokens) != len(got_tokens):
        errors.append(f"{name} line {index + 1}: token count "
                      f"{len(got_tokens)} != {len(ref_tokens)}\n"
                      f"  ref: {ref}\n  got: {got}")
        return
    for a, b in zip(ref_tokens, got_tokens):
        if a == b:
            continue
        if NUMBER.match(a) and NUMBER.match(b):
            x = float(a.rstrip("%"))
            y = float(b.rstrip("%"))
            scale = max(abs(x), abs(y), 1.0)
            if abs(x - y) <= tolerance * scale:
                continue
        errors.append(f"{name} line {index + 1}: '{b}' != '{a}'\n"
                      f"  ref: {ref}\n  got: {got}")
        return


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("reference")
    parser.add_argument("candidate")
    parser.add_argument("--tolerance", type=float, default=1e-9,
                        help="relative tolerance for numeric tokens")
    args = parser.parse_args()

    with open(args.reference) as f:
        ref = json.load(f)
    with open(args.candidate) as f:
        got = json.load(f)

    errors = []
    for key in ref:
        if key in IGNORED_TOP_KEYS or key == "reports":
            continue
        if got.get(key) != ref[key]:
            errors.append(f"{key}: {got.get(key)!r} != {ref[key]!r}")

    ref_reports = ref.get("reports", {})
    got_reports = got.get("reports", {})
    for name in sorted(set(ref_reports) | set(got_reports)):
        if name not in got_reports:
            errors.append(f"report '{name}' missing from candidate")
            continue
        if name not in ref_reports:
            errors.append(f"report '{name}' not in reference")
            continue
        ref_lines = ref_reports[name]["lines"]
        got_lines = got_reports[name]["lines"]
        if len(ref_lines) != len(got_lines):
            errors.append(f"{name}: {len(got_lines)} lines != "
                          f"{len(ref_lines)}")
            continue
        for i, (a, b) in enumerate(zip(ref_lines, got_lines)):
            compare_lines(name, i, a, b, args.tolerance, errors)

    if errors:
        print(f"MISMATCH: {len(errors)} difference(s)")
        for error in errors[:20]:
            print(error)
        if len(errors) > 20:
            print(f"... and {len(errors) - 20} more")
        return 1
    print(f"OK: {len(ref_reports)} reports match "
          f"(tolerance {args.tolerance:g})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
