#!/usr/bin/env python3
"""Render pcap-timeline-v1 dumps as a self-contained HTML report.

Usage: pcap_timeline.py TIMELINE_DIR [options]

Reads every *.timeline.json written by `bench_all --timeline-dir`
and renders one HTML page of small multiples -- per simulation cell,
an SVG stacked-area chart of disk power-state residency over
simulated time, with energy-by-category and idle-outcome sparklines
underneath. With --bench-results pointing at a BENCH_RESULTS.json
that contains a fleet block, a fleet-health section (percentile
table + outlier hosts) is appended.

Stdlib only; the output HTML has no external references, so it can
be archived as a CI artifact and opened anywhere.

Exit status: 0 on success, 2 on bad input (no timeline files,
unreadable JSON, wrong schema).
"""

import argparse
import html
import json
import pathlib
import sys

SCHEMA = "pcap-timeline-v1"

STATE_COLORS = {
    "active": "#d9534f",
    "idle": "#f0ad4e",
    "low_power": "#5bc0de",
    "standby": "#5cb85c",
}
FALLBACK_COLOR = "#999999"

CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif;
       margin: 1.5em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
.cell { display: inline-block; vertical-align: top;
        margin: 0 1.2em 1.2em 0; padding: 0.6em;
        border: 1px solid #ddd; border-radius: 4px; }
.cell .title { font-weight: 600; font-size: 0.85em; }
.cell .sub { color: #777; font-size: 0.75em; margin-bottom: 0.3em; }
.legend span { display: inline-block; margin-right: 0.8em;
               font-size: 0.75em; }
.legend i { display: inline-block; width: 0.8em; height: 0.8em;
            margin-right: 0.25em; border-radius: 2px; }
table { border-collapse: collapse; font-size: 0.85em; }
th, td { border: 1px solid #ddd; padding: 0.25em 0.6em;
         text-align: right; }
th:first-child, td:first-child { text-align: left; }
.spark-label { font-size: 0.7em; color: #777; }
"""


def fail(message):
    print(f"pcap_timeline.py: {message}", file=sys.stderr)
    sys.exit(2)


def load_timelines(timeline_dir):
    root = pathlib.Path(timeline_dir)
    if not root.is_dir():
        fail(f"not a directory: {timeline_dir}")
    docs = []
    for path in sorted(root.glob("*.timeline.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            fail(f"{path}: {err}")
        if doc.get("schema") != SCHEMA:
            fail(f"{path}: schema {doc.get('schema')!r}, "
                 f"want {SCHEMA!r}")
        docs.append(doc)
    if not docs:
        fail(f"no *.timeline.json files in {timeline_dir}")
    return docs


def polygon(points, color, opacity="1"):
    coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
    return (f'<polygon points="{coords}" fill="{color}" '
            f'fill-opacity="{opacity}"/>')


def residency_svg(doc, width=360, height=90):
    """Stacked-area of per-state residency fractions per bucket."""
    series = doc["series"]["state_us"]
    used = max(doc["used_buckets"], 1)
    bucket_w = doc["bucket_width_us"]
    names = doc.get("state_names") or list(series)
    xstep = width / used
    parts = [f'<svg width="{width}" height="{height}" '
             f'viewBox="0 0 {width} {height}">',
             f'<rect width="{width}" height="{height}" '
             f'fill="#fafafa"/>']
    # One polygon per state, stacked bottom-up on the cumulative
    # fraction of the bucket already covered by earlier states.
    base = [0.0] * used
    for name in names:
        values = series.get(name)
        if values is None:
            continue
        top = [base[i] + values[i] / bucket_w for i in range(used)]
        points = [(i * xstep, height * (1 - base[i]))
                  for i in range(used)]
        points.append(((used - 1) * xstep + xstep,
                       height * (1 - base[-1])))
        points.append(((used - 1) * xstep + xstep,
                       height * (1 - top[-1])))
        points.extend((i * xstep, height * (1 - top[i]))
                      for i in reversed(range(used)))
        color = STATE_COLORS.get(name, FALLBACK_COLOR)
        parts.append(polygon(points, color, "0.85"))
        base = top
    parts.append("</svg>")
    return "".join(parts)


def sparkline(values, width=360, height=24, color="#337ab7"):
    """Bar sparkline of one per-bucket series."""
    if not values:
        return ""
    peak = max(values) or 1
    xstep = width / len(values)
    bars = [f'<svg width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">']
    for i, v in enumerate(values):
        h = height * v / peak
        if h <= 0:
            continue
        bars.append(f'<rect x="{i * xstep:.1f}" '
                    f'y="{height - h:.1f}" '
                    f'width="{max(xstep - 0.5, 0.5):.1f}" '
                    f'height="{h:.1f}" fill="{color}"/>')
    bars.append("</svg>")
    return "".join(bars)


def fmt_span(span_us):
    seconds = span_us / 1e6
    if seconds >= 3600:
        return f"{seconds / 3600:.1f} h"
    if seconds >= 60:
        return f"{seconds / 60:.1f} min"
    return f"{seconds:.1f} s"


def cell_html(doc):
    used = doc["used_buckets"]
    series = doc["series"]
    energy = [sum(vals[i] for vals in series["energy_j"].values())
              for i in range(used)]
    misses = [series["outcomes"].get("miss_primary",
                                     [0] * used)[i] +
              series["outcomes"].get("miss_backup", [0] * used)[i]
              for i in range(used)]
    total_j = sum(sum(v) for v in series["energy_j"].values())
    title = html.escape(doc.get("cell", "?"))
    sub = (f'{html.escape(doc.get("mode", "?"))} / '
           f'{html.escape(doc.get("app", "?"))}'
           f' &middot; span {fmt_span(doc["span_us"])}'
           f' &middot; {total_j:.0f} J'
           f' &middot; {doc["rescales"]} rescales')
    return (f'<div class="cell"><div class="title">{title}</div>'
            f'<div class="sub">{sub}</div>'
            f'{residency_svg(doc)}'
            f'<div class="spark-label">energy (J / bucket)</div>'
            f'{sparkline(energy[:used])}'
            f'<div class="spark-label">mispredictions / bucket'
            f'</div>'
            f'{sparkline(misses, color="#d9534f")}'
            f'</div>')


def legend_html():
    spans = "".join(
        f'<span><i style="background:{color}"></i>{name}</span>'
        for name, color in STATE_COLORS.items())
    return f'<div class="legend">{spans}</div>'


def fleet_html(bench_results_path):
    try:
        doc = json.loads(
            pathlib.Path(bench_results_path).read_text())
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{bench_results_path}: {err}")
    fleet = doc.get("fleet")
    if not fleet:
        return ("<h2>Fleet health</h2><p>No fleet block in "
                f"{html.escape(str(bench_results_path))} (run "
                "bench_all --report fleet).</p>")
    parts = ["<h2>Fleet health</h2>",
             f'<p>{fleet["hosts"]} hosts, '
             f'{fleet["executions"]} executions.</p>',
             "<table><tr><th>policy</th><th>saved p50</th>"
             "<th>saved p90</th><th>saved p99</th>"
             "<th>saved median</th><th>saved MAD</th>"
             "<th>miss median</th><th>miss MAD</th>"
             "<th>outliers</th></tr>"]
    for policy in fleet.get("policies", []):
        saved = policy["saved_fraction"]
        parts.append(
            f'<tr><td>{html.escape(policy["policy"])}</td>'
            f'<td>{saved["p50"]:.1%}</td>'
            f'<td>{saved["p90"]:.1%}</td>'
            f'<td>{saved["p99"]:.1%}</td>'
            f'<td>{policy["saved_fraction_median"]:.1%}</td>'
            f'<td>{policy["saved_fraction_mad"]:.1%}</td>'
            f'<td>{policy["miss_fraction_median"]:.1%}</td>'
            f'<td>{policy["miss_fraction_mad"]:.1%}</td>'
            f'<td>{len(policy.get("outliers", []))}</td></tr>')
    parts.append("</table>")
    outliers = [(policy["policy"], o)
                for policy in fleet.get("policies", [])
                for o in policy.get("outliers", [])]
    if outliers:
        parts.append("<h2>Outlier hosts</h2>"
                     "<table><tr><th>policy</th><th>host</th>"
                     "<th>metric</th><th>value</th><th>median</th>"
                     "<th>score (MADs)</th></tr>")
        for name, o in outliers:
            parts.append(
                f'<tr><td>{html.escape(name)}</td>'
                f'<td>{o["host"]}</td>'
                f'<td>{html.escape(o["metric"])}</td>'
                f'<td>{o["value"]:.1%}</td>'
                f'<td>{o["median"]:.1%}</td>'
                f'<td>{o["score"]:.1f}</td></tr>')
        parts.append("</table>")
    return "".join(parts)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("timeline_dir",
                        help="directory of *.timeline.json dumps")
    parser.add_argument("-o", "--out", default="timeline.html",
                        help="output HTML path "
                             "(default: timeline.html)")
    parser.add_argument("--bench-results",
                        help="BENCH_RESULTS.json to read the fleet "
                             "block from (optional)")
    args = parser.parse_args()

    docs = load_timelines(args.timeline_dir)
    docs.sort(key=lambda d: (d.get("app", ""), d.get("mode", ""),
                             d.get("policy", "")))

    body = [f"<h1>pcap timelines &mdash; {len(docs)} cells</h1>",
            legend_html()]
    body.extend(cell_html(doc) for doc in docs)
    if args.bench_results:
        body.append(fleet_html(args.bench_results))

    page = ("<!DOCTYPE html><html><head><meta charset='utf-8'>"
            "<title>pcap timelines</title>"
            f"<style>{CSS}</style></head><body>"
            f"{''.join(body)}</body></html>")
    pathlib.Path(args.out).write_text(page)
    print(f"wrote {args.out}: {len(docs)} cells")
    return 0


if __name__ == "__main__":
    sys.exit(main())
