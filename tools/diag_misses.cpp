// Diagnostic: dump PCAP local mispredictions with context.
#include <cstdio>
#include <map>
#include <string>

#include "core/pcap.hpp"
#include "sim/experiment.hpp"

using namespace pcap;

int main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "mozilla";
    sim::ExperimentConfig cfg;
    sim::Evaluation eval(cfg);
    const auto &execs = eval.inputs(app);
    sim::SimParams sp;
    const TimeUs be = sp.breakeven();

    auto table = std::make_shared<core::PredictionTable>();
    core::PcapConfig pc;
    std::map<std::string, int> byPc;  // last-pc -> miss count
    int misses = 0, opps = 0;

    for (const auto &input : execs) {
        struct Ctx {
            std::unique_ptr<core::PcapPredictor> pred;
            TimeUs prev = -1;
            pred::ShutdownDecision d;
            Address lastPc = 0;
            std::uint32_t sig = 0;
        };
        std::map<Pid, Ctx> ctxs;
        for (const auto &span : input.processes) {
            if (span.pid == kFlushDaemonPid) continue;
            Ctx c; c.pred = std::make_unique<core::PcapPredictor>(pc, table, span.start);
            c.d = pred::initialConsent(span.start);
            ctxs.emplace(span.pid, std::move(c));
        }
        for (const auto &a : input.accesses) {
            auto it = ctxs.find(a.pid);
            if (it == ctxs.end()) continue;
            auto &c = it->second;
            if (c.prev >= 0) {
                TimeUs gap = a.time - c.prev;
                bool opp = gap > be;
                if (opp) opps++;
                bool shut = c.d.earliest != kTimeNever && c.d.earliest < a.time;
                if (shut) {
                    TimeUs off = a.time - std::max(c.d.earliest, c.prev);
                    if (!(opp && off >= be) && c.d.source == pred::DecisionSource::Primary) {
                        misses++;
                        char buf[128];
                        snprintf(buf, sizeof buf, "pid=%d lastPc=0x%x gap=%.2fs",
                                 a.pid, c.lastPc, usToSeconds(gap));
                        byPc[buf]++;
                    }
                }
            }
            pred::IoContext io{a.time, c.prev >= 0 ? a.time - c.prev : -1,
                               a.pc, a.fd, a.file, a.isWrite};
            c.d = c.pred->onIo(io);
            c.lastPc = a.pc; c.sig = c.pred->signature();
            c.prev = a.time;
        }
    }
    printf("app=%s opportunities=%d primary misses=%d\n", app.c_str(), opps, misses);
    // aggregate by pc only
    std::map<std::string, int> agg;
    for (auto &[k, v] : byPc) {
        auto p1 = k.find("lastPc=");
        auto p2 = k.find(" gap=");
        double gap = atof(k.c_str() + p2 + 5);
        std::string pcs = k.substr(p1, p2 - p1);
        char bucket[16];
        snprintf(bucket, sizeof bucket, "%s", gap < 1.5 ? "<1.5" : gap < 3 ? "1.5-3" : gap < 5.43 ? "3-5.4" : ">5.4");
        agg[pcs + " gap" + bucket] += v;
    }
    for (auto &[k, v] : agg) printf("%6d  %s\n", v, k.c_str());
    return 0;
}
