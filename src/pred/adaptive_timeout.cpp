#include "pred/adaptive_timeout.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace pcap::pred {

AdaptiveTimeoutPredictor::AdaptiveTimeoutPredictor(
    const AdaptiveTimeoutConfig &config, TimeUs start_time)
    : config_(config), startTime_(start_time),
      timeout_(config.initialTimeout),
      decision_(initialConsent(start_time))
{
    if (config.minTimeout <= 0 ||
        config.maxTimeout < config.minTimeout ||
        config.initialTimeout < config.minTimeout ||
        config.initialTimeout > config.maxTimeout) {
        fatal("AdaptiveTimeoutPredictor: inconsistent timeout "
              "bounds");
    }
    if (config.decreaseFactor <= 0.0 ||
        config.decreaseFactor >= 1.0 ||
        config.increaseFactor <= 1.0) {
        fatal("AdaptiveTimeoutPredictor: factors must shrink/grow");
    }
}

void
AdaptiveTimeoutPredictor::adapt(TimeUs idle_period)
{
    if (idle_period <= previousTimeout_)
        return; // the timer never expired: no spin-down to judge
    const TimeUs off_time = idle_period - previousTimeout_;
    double scaled = static_cast<double>(timeout_);
    if (off_time >= config_.breakeven) {
        // Correct spin-down: be more aggressive next time.
        scaled *= config_.decreaseFactor;
    } else {
        // The disk was woken almost immediately: back off.
        scaled *= config_.increaseFactor;
    }
    timeout_ = std::clamp(static_cast<TimeUs>(scaled),
                          config_.minTimeout, config_.maxTimeout);
}

ShutdownDecision
AdaptiveTimeoutPredictor::onIo(const IoContext &ctx)
{
    if (ctx.sincePrev >= 0)
        adapt(ctx.sincePrev);
    previousTimeout_ = timeout_;
    decision_ = {ctx.time + timeout_, DecisionSource::Primary};
    return decision_;
}

void
AdaptiveTimeoutPredictor::resetExecution()
{
    timeout_ = config_.initialTimeout;
    previousTimeout_ = 0;
    decision_ = initialConsent(startTime_);
}

} // namespace pcap::pred
