#include "pred/timeout.hpp"

#include "util/logging.hpp"

namespace pcap::pred {

const char *
decisionSourceName(DecisionSource source)
{
    switch (source) {
      case DecisionSource::None: return "none";
      case DecisionSource::Primary: return "primary";
      case DecisionSource::Backup: return "backup";
    }
    return "unknown";
}

TimeoutPredictor::TimeoutPredictor(TimeUs timeout, TimeUs start_time)
    : timeout_(timeout), startTime_(start_time),
      decision_(initialConsent(start_time))
{
    if (timeout <= 0)
        fatal("TimeoutPredictor: timeout must be positive");
}

ShutdownDecision
TimeoutPredictor::onIo(const IoContext &ctx)
{
    // For the standalone TP the timer itself is the primary
    // mechanism.
    decision_ = {ctx.time + timeout_, DecisionSource::Primary};
    return decision_;
}

void
TimeoutPredictor::resetExecution()
{
    decision_ = initialConsent(startTime_);
}

} // namespace pcap::pred
