#include "pred/learning_tree.hpp"

#include "util/logging.hpp"

namespace pcap::pred {

LtTree::LtTree(const LtConfig &config)
    : config_(config)
{
    if (config.historyLength < 1 || config.historyLength > 16)
        fatal("LtTree: history length must be in [1, 16]");
}

std::uint32_t
LtTree::key(std::uint32_t bits, int len)
{
    const std::uint32_t mask = (1u << len) - 1;
    return (static_cast<std::uint32_t>(len) << 16) | (bits & mask);
}

void
LtTree::train(std::uint32_t bits, int len, bool long_idle)
{
    const int limit = len < config_.historyLength
                          ? len
                          : config_.historyLength;
    for (int suffix = 1; suffix <= limit; ++suffix) {
        auto [it, inserted] = nodes_.try_emplace(
            key(bits, suffix), Node{SaturatingCounter(
                                        config_.counterMax),
                                    0});
        Node &node = it->second;
        if (long_idle)
            node.longConfidence.increment();
        else
            node.longConfidence.decrement();
        ++node.updates;
    }
}

std::optional<bool>
LtTree::predict(std::uint32_t bits, int len) const
{
    const int limit = len < config_.historyLength
                          ? len
                          : config_.historyLength;
    for (int suffix = limit; suffix >= 1; --suffix) {
        auto it = nodes_.find(key(bits, suffix));
        if (it != nodes_.end() &&
            it->second.updates >= config_.minTrainings) {
            return it->second.longConfidence.isConfident();
        }
    }
    return std::nullopt;
}

LtPredictor::LtPredictor(const LtConfig &config,
                         std::shared_ptr<LtTree> tree,
                         TimeUs start_time)
    : config_(config), tree_(std::move(tree)), startTime_(start_time),
      decision_(initialConsent(start_time))
{
    if (!tree_)
        fatal("LtPredictor: tree must not be null");
}

ShutdownDecision
LtPredictor::onIo(const IoContext &ctx)
{
    // A completed idle period at least as long as the wait-window is
    // an observation; shorter gaps are filtered at run time
    // (Section 4.1.1) and never reach the tree.
    if (ctx.sincePrev >= config_.waitWindow) {
        const bool long_idle = ctx.sincePrev > config_.breakeven;
        tree_->train(historyBits_, historyLen_, long_idle);
        historyBits_ = (historyBits_ << 1) |
                       (long_idle ? 1u : 0u);
        if (historyLen_ < config_.historyLength)
            ++historyLen_;
    }

    const std::optional<bool> predicted_long =
        tree_->predict(historyBits_, historyLen_);

    if (predicted_long.value_or(false)) {
        decision_ = {ctx.time + config_.waitWindow,
                     DecisionSource::Primary};
    } else if (config_.backupEnabled) {
        decision_ = {ctx.time + config_.timeout,
                     DecisionSource::Backup};
    } else {
        decision_ = {kTimeNever, DecisionSource::None};
    }
    return decision_;
}

void
LtPredictor::resetExecution()
{
    historyBits_ = 0;
    historyLen_ = 0;
    decision_ = initialConsent(startTime_);
}

} // namespace pcap::pred
