/**
 * @file
 * Predictor framework shared by the baselines (timeout, Learning
 * Tree) and PCAP.
 *
 * Every local predictor observes the disk accesses of one process and
 * maintains a *standing decision*: the earliest future time at which
 * it consents to spinning the disk down, plus where that consent came
 * from (the primary predictor or the backup timeout). This single
 * abstraction expresses all the mechanisms of the paper:
 *
 *  - the timeout predictor returns lastIo + timeout;
 *  - a primary predictor that predicts a long idle period returns
 *    lastIo + waitWindow — the sliding wait-window filter of Section
 *    4.1.1 falls out naturally, because any access arriving inside
 *    the window supersedes the decision before it fires;
 *  - a primary predictor in training defers to the backup timeout
 *    (Section 4.3), returning lastIo + timeout with Backup source;
 *  - the global predictor of Section 5 is the maximum of the standing
 *    decisions over all live processes.
 */

#ifndef PCAP_PRED_PREDICTOR_HPP
#define PCAP_PRED_PREDICTOR_HPP

#include <cstdint>

#include "util/types.hpp"

namespace pcap::pred {

/** Which mechanism produced a shutdown decision. */
enum class DecisionSource : std::uint8_t {
    None,    ///< no mechanism consents (e.g. backup disabled)
    Primary, ///< the primary predictor (LT pattern / PCAP signature)
    Backup,  ///< the backup timeout
};

/** Human-readable source name. */
const char *decisionSourceName(DecisionSource source);

/**
 * A standing shutdown decision: the disk may be spun down at any time
 * >= earliest, unless a newer access supersedes this decision first.
 */
struct ShutdownDecision
{
    TimeUs earliest = kTimeNever;
    DecisionSource source = DecisionSource::None;

    bool operator==(const ShutdownDecision &o) const = default;
};

/**
 * What a local predictor sees about one disk access of its process.
 */
struct IoContext
{
    TimeUs time = 0;  ///< arrival time of the access
    /**
     * Idle time since this process's previous disk access, or -1 for
     * the first access of the process. The caller (simulator or
     * online power manager) computes this, so predictors never keep
     * their own clocks.
     */
    TimeUs sincePrev = -1;
    Address pc = 0;   ///< call site that triggered the access
    Fd fd = -1;       ///< file descriptor of the triggering I/O
    FileId file = 0;  ///< file accessed
    bool isWrite = false;
};

/**
 * Interface of a per-process shutdown predictor.
 */
class ShutdownPredictor
{
  public:
    virtual ~ShutdownPredictor() = default;

    /**
     * Observe one disk access of the owning process and return the
     * new standing decision. Implementations train on ctx.sincePrev
     * (the just-completed idle period) before predicting.
     */
    virtual ShutdownDecision onIo(const IoContext &ctx) = 0;

    /** The current standing decision (as returned by the last onIo,
     * or the initial consent-from-start before any I/O). */
    virtual ShutdownDecision decision() const = 0;

    /**
     * Start a new execution of the application: clear per-execution
     * state (paths, histories, last-access times). Learned state
     * (prediction tables, trees) survives — table reuse, Section 4.2.
     */
    virtual void resetExecution() = 0;

    /** Short name for reports ("TP", "LT", "PCAP", ...). */
    virtual const char *name() const = 0;
};

/**
 * Decision a process holds before it performs any I/O: it consents to
 * shutdown from its start time (an I/O-less process never keeps the
 * disk spinning).
 */
inline ShutdownDecision
initialConsent(TimeUs start_time)
{
    return {start_time, DecisionSource::None};
}

} // namespace pcap::pred

#endif // PCAP_PRED_PREDICTOR_HPP
