#include "pred/exp_average.hpp"

#include "util/logging.hpp"

namespace pcap::pred {

ExpAveragePredictor::ExpAveragePredictor(
    const ExpAverageConfig &config, TimeUs start_time)
    : config_(config), startTime_(start_time),
      decision_(initialConsent(start_time))
{
    if (config.alpha < 0.0 || config.alpha > 1.0)
        fatal("ExpAveragePredictor: alpha must be in [0, 1]");
}

ShutdownDecision
ExpAveragePredictor::onIo(const IoContext &ctx)
{
    // Fold the just-completed idle period into the estimate; periods
    // below the wait-window are filtered at run time.
    if (ctx.sincePrev >= config_.waitWindow) {
        predictedIdle_ = static_cast<TimeUs>(
            config_.alpha * static_cast<double>(ctx.sincePrev) +
            (1.0 - config_.alpha) *
                static_cast<double>(predictedIdle_));
    }

    if (predictedIdle_ > config_.breakeven) {
        decision_ = {ctx.time + config_.waitWindow,
                     DecisionSource::Primary};
    } else if (config_.backupEnabled) {
        decision_ = {ctx.time + config_.timeout,
                     DecisionSource::Backup};
    } else {
        decision_ = {kTimeNever, DecisionSource::None};
    }
    return decision_;
}

void
ExpAveragePredictor::resetExecution()
{
    predictedIdle_ = 0;
    decision_ = initialConsent(startTime_);
}

} // namespace pcap::pred
