/**
 * @file
 * Busy-period ("L-shape") predictor — reconstruction of Srivastava,
 * Chandrakasan and Brodersen's regression policy (IEEE TVLSI 1996),
 * discussed in the paper's Section 2: "the length of an idle period
 * could be predicted by the length of the previous busy period. A
 * long idle period often followed a short busy period."
 */

#ifndef PCAP_PRED_BUSY_RATIO_HPP
#define PCAP_PRED_BUSY_RATIO_HPP

#include "pred/predictor.hpp"

namespace pcap::pred {

/** Configuration of the busy-period predictor. */
struct BusyRatioConfig
{
    /** A busy period at most this long predicts a long idle period
     * (the vertical arm of the L-shaped scatter plot). */
    TimeUs busyThreshold = secondsUs(2.0);

    /** Accesses closer than this belong to the same busy period. */
    TimeUs burstGap = secondsUs(1.0);

    TimeUs waitWindow = secondsUs(1.0);
    TimeUs timeout = secondsUs(10.0); ///< backup timer
    bool backupEnabled = true;
};

/**
 * Tracks the current busy period (a run of accesses separated by
 * less than burstGap) and, after every access, consents to an
 * immediate shutdown when the busy period so far is still short —
 * the "short busy, long idle" correlation. Long busy periods defer
 * to the backup timeout.
 */
class BusyRatioPredictor : public ShutdownPredictor
{
  public:
    explicit BusyRatioPredictor(const BusyRatioConfig &config,
                                TimeUs start_time = 0);

    ShutdownDecision onIo(const IoContext &ctx) override;
    ShutdownDecision decision() const override { return decision_; }
    void resetExecution() override;
    const char *name() const override { return "SB"; }

    /** Length of the current busy period (testing hook). */
    TimeUs currentBusyLength() const { return busyLength_; }

  private:
    BusyRatioConfig config_;
    TimeUs startTime_;
    TimeUs busyLength_ = 0;
    ShutdownDecision decision_;
};

} // namespace pcap::pred

#endif // PCAP_PRED_BUSY_RATIO_HPP
