/**
 * @file
 * Exponential-average idle-period predictor — reconstruction of
 * Hwang and Wu's predictive system shutdown (ACM TODAES 2000),
 * discussed in the paper's Section 2: "the length of an idle period
 * could be predicted using a weighted average of the predicted and
 * the actual lengths of the previous idle period".
 */

#ifndef PCAP_PRED_EXP_AVERAGE_HPP
#define PCAP_PRED_EXP_AVERAGE_HPP

#include "pred/predictor.hpp"

namespace pcap::pred {

/** Configuration of the exponential-average predictor. */
struct ExpAverageConfig
{
    /** Weight of the last *actual* idle length; the remainder goes
     * to the previous prediction. Hwang and Wu use 0.5. */
    double alpha = 0.5;

    TimeUs waitWindow = secondsUs(1.0); ///< shared filter (§4.1.1)
    TimeUs timeout = secondsUs(10.0);   ///< backup timer
    TimeUs breakeven = secondsUs(5.43);
    bool backupEnabled = true;
};

/**
 * Predicts the next idle period as
 *   I[n+1] = alpha * actual[n] + (1 - alpha) * I[n]
 * and consents to an immediate (post-wait-window) shutdown whenever
 * the prediction exceeds the breakeven time. Periods below the
 * wait-window are filtered like in every other dynamic predictor of
 * the evaluation.
 */
class ExpAveragePredictor : public ShutdownPredictor
{
  public:
    explicit ExpAveragePredictor(const ExpAverageConfig &config,
                                 TimeUs start_time = 0);

    ShutdownDecision onIo(const IoContext &ctx) override;
    ShutdownDecision decision() const override { return decision_; }
    void resetExecution() override;
    const char *name() const override { return "EA"; }

    /** Current idle-length estimate (testing hook). */
    TimeUs predictedIdle() const { return predictedIdle_; }

  private:
    ExpAverageConfig config_;
    TimeUs startTime_;
    TimeUs predictedIdle_ = 0;
    ShutdownDecision decision_;
};

} // namespace pcap::pred

#endif // PCAP_PRED_EXP_AVERAGE_HPP
