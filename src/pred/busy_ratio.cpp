#include "pred/busy_ratio.hpp"

#include "util/logging.hpp"

namespace pcap::pred {

BusyRatioPredictor::BusyRatioPredictor(const BusyRatioConfig &config,
                                       TimeUs start_time)
    : config_(config), startTime_(start_time),
      decision_(initialConsent(start_time))
{
    if (config.busyThreshold <= 0 || config.burstGap <= 0)
        fatal("BusyRatioPredictor: thresholds must be positive");
}

ShutdownDecision
BusyRatioPredictor::onIo(const IoContext &ctx)
{
    if (ctx.sincePrev < 0 || ctx.sincePrev >= config_.burstGap) {
        // A new busy period begins with this access.
        busyLength_ = 0;
    } else {
        busyLength_ += ctx.sincePrev;
    }

    if (busyLength_ <= config_.busyThreshold) {
        // Short busy period so far: the L-shape predicts a long
        // idle period will follow it.
        decision_ = {ctx.time + config_.waitWindow,
                     DecisionSource::Primary};
    } else if (config_.backupEnabled) {
        decision_ = {ctx.time + config_.timeout,
                     DecisionSource::Backup};
    } else {
        decision_ = {kTimeNever, DecisionSource::None};
    }
    return decision_;
}

void
BusyRatioPredictor::resetExecution()
{
    busyLength_ = 0;
    decision_ = initialConsent(startTime_);
}

} // namespace pcap::pred
