/**
 * @file
 * Learning Tree (LT) predictor — reconstruction of the adaptive
 * learning tree of Chung, Benini and De Micheli (ICCAD 1999), the
 * strongest prior dynamic predictor the paper compares against.
 *
 * Idle periods are discretized into classes (the paper's evaluation
 * uses two: shorter vs longer than the breakeven time, Figure 2). The
 * tree stores, for every recently-seen sequence of idle classes, a
 * saturating confidence counter for "the next idle period will be
 * long". On each I/O the predictor walks the tree along the current
 * history — longest matching suffix first, falling back to shorter
 * ones, which is the "adaptive" part — and predicts a shutdown when
 * the matched node is confident. The paper runs LT with a history
 * length of eight, a one-second sliding wait-window, and the timeout
 * predictor as a backup during training (Section 6.1).
 */

#ifndef PCAP_PRED_LEARNING_TREE_HPP
#define PCAP_PRED_LEARNING_TREE_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "pred/predictor.hpp"
#include "obs/counter.hpp"

namespace pcap::pred {

/** Configuration of the Learning Tree predictor. */
struct LtConfig
{
    int historyLength = 8;           ///< paper Section 6.1
    TimeUs waitWindow = secondsUs(1.0);
    TimeUs timeout = secondsUs(10.0); ///< backup timer
    TimeUs breakeven = secondsUs(5.43);
    bool backupEnabled = true;
    std::uint8_t counterMax = 3;     ///< confidence counter range
    std::uint32_t minTrainings = 2;  ///< updates before a node is
                                     ///< trusted
};

/**
 * The tree itself: shared by all processes of one application and —
 * with table reuse, Section 4.2 — by all executions of it. Nodes are
 * keyed by (suffix length, packed class bits), which is exactly a
 * path from the root of a binary tree of depth historyLength.
 */
class LtTree
{
  public:
    explicit LtTree(const LtConfig &config);

    /**
     * Record that history @p bits (length @p len, most recent class
     * in bit 0) was followed by an idle period of class @p long_idle.
     * Updates every suffix node along the tree path.
     */
    void train(std::uint32_t bits, int len, bool long_idle);

    /**
     * Predict the class of the next idle period for the given
     * history, using the longest trained suffix.
     * @return nullopt while untrained (backup takes over).
     */
    std::optional<bool> predict(std::uint32_t bits, int len) const;

    /** Number of tree nodes currently allocated. */
    std::size_t size() const { return nodes_.size(); }

    /** Forget everything (LTa: tables discarded between runs). */
    void clear() { nodes_.clear(); }

  private:
    struct Node
    {
        SaturatingCounter longConfidence;
        std::uint32_t updates = 0;
    };

    static std::uint32_t key(std::uint32_t bits, int len);

    LtConfig config_;
    std::unordered_map<std::uint32_t, Node> nodes_;
};

/**
 * Per-process LT predictor: keeps the process's idle-class history
 * and consults the shared tree.
 */
class LtPredictor : public ShutdownPredictor
{
  public:
    /**
     * @param config Predictor parameters.
     * @param tree Shared tree (one per application).
     * @param start_time Process start, for the initial consent.
     */
    LtPredictor(const LtConfig &config, std::shared_ptr<LtTree> tree,
                TimeUs start_time = 0);

    ShutdownDecision onIo(const IoContext &ctx) override;
    ShutdownDecision decision() const override { return decision_; }
    void resetExecution() override;
    const char *name() const override { return "LT"; }

    /** Packed history bits (testing hook). */
    std::uint32_t historyBits() const { return historyBits_; }

    /** Number of classes currently in the history. */
    int historyLength() const { return historyLen_; }

  private:
    LtConfig config_;
    std::shared_ptr<LtTree> tree_;
    TimeUs startTime_;
    std::uint32_t historyBits_ = 0;
    int historyLen_ = 0;
    ShutdownDecision decision_;
};

} // namespace pcap::pred

#endif // PCAP_PRED_LEARNING_TREE_HPP
