/**
 * @file
 * Adaptive timeout predictor — reconstruction of the feedback
 * policies of Douglis, Krishnan and Bershad (USENIX 1995) and
 * Golding et al. (USENIX 1995), discussed in the paper's Section 2:
 * "Both methods used feedback to enlarge or to reduce the timeout
 * based on whether the previous prediction was correct. If it was
 * correct, the timeout was reduced; otherwise, it was enlarged."
 */

#ifndef PCAP_PRED_ADAPTIVE_TIMEOUT_HPP
#define PCAP_PRED_ADAPTIVE_TIMEOUT_HPP

#include "pred/predictor.hpp"

namespace pcap::pred {

/** Configuration of the adaptive timeout predictor. */
struct AdaptiveTimeoutConfig
{
    TimeUs initialTimeout = secondsUs(10.0);
    TimeUs minTimeout = secondsUs(1.0);
    TimeUs maxTimeout = secondsUs(60.0);
    /** Multiplicative decrease after a correct spin-down. */
    double decreaseFactor = 0.9;
    /** Multiplicative increase after a premature spin-down. */
    double increaseFactor = 1.6;
    TimeUs breakeven = secondsUs(5.43);
};

/**
 * A timeout whose value adapts by feedback. After every idle period
 * the predictor judges its own previous decision: a spin-down whose
 * off-time reached the breakeven was correct (shrink the timer); a
 * spin-down followed too quickly by an access was premature (grow
 * the timer); periods the timer never caught leave it unchanged.
 */
class AdaptiveTimeoutPredictor : public ShutdownPredictor
{
  public:
    explicit AdaptiveTimeoutPredictor(
        const AdaptiveTimeoutConfig &config, TimeUs start_time = 0);

    ShutdownDecision onIo(const IoContext &ctx) override;
    ShutdownDecision decision() const override { return decision_; }
    void resetExecution() override;
    const char *name() const override { return "ATP"; }

    /** The current (adapted) timeout value. */
    TimeUs currentTimeout() const { return timeout_; }

  private:
    void adapt(TimeUs idle_period);

    AdaptiveTimeoutConfig config_;
    TimeUs startTime_;
    TimeUs timeout_;
    TimeUs previousTimeout_ = 0; ///< timer active in the last gap
    ShutdownDecision decision_;
};

} // namespace pcap::pred

#endif // PCAP_PRED_ADAPTIVE_TIMEOUT_HPP
