/**
 * @file
 * The timeout predictor (TP): the classic policy implemented by
 * operating systems since the early 1990s. After every access it
 * consents to a shutdown once a fixed timer expires.
 */

#ifndef PCAP_PRED_TIMEOUT_HPP
#define PCAP_PRED_TIMEOUT_HPP

#include "pred/predictor.hpp"

namespace pcap::pred {

/**
 * Timeout predictor. The paper's evaluation uses a 10-second timer
 * (Section 6.1) and also examines setting the timer to the breakeven
 * time (Section 6.3). The same class serves as the backup predictor
 * embedded in LT and PCAP.
 */
class TimeoutPredictor : public ShutdownPredictor
{
  public:
    /**
     * @param timeout Idle time after which the disk is spun down.
     * @param start_time When the owning process came to life, for
     *        the initial consent-from-start decision.
     */
    explicit TimeoutPredictor(TimeUs timeout, TimeUs start_time = 0);

    ShutdownDecision onIo(const IoContext &ctx) override;
    ShutdownDecision decision() const override { return decision_; }
    void resetExecution() override;
    const char *name() const override { return "TP"; }

    /** The configured timeout. */
    TimeUs timeout() const { return timeout_; }

  private:
    TimeUs timeout_;
    TimeUs startTime_;
    ShutdownDecision decision_;
};

} // namespace pcap::pred

#endif // PCAP_PRED_TIMEOUT_HPP
