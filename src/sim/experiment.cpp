#include "sim/experiment.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "workload/app_model.hpp"

namespace pcap::sim {

Evaluation::Evaluation(ExperimentConfig config)
    : config_(std::move(config)),
      appNames_(workload::standardAppNames())
{
}

const std::vector<ExecutionInput> &
Evaluation::inputs(const std::string &app)
{
    auto it = inputs_.find(app);
    if (it != inputs_.end())
        return it->second;

    const auto model = workload::makeApp(app);
    if (!model)
        fatal("Evaluation: unknown application '" + app + "'");

    int executions = model->info().executions;
    if (config_.maxExecutions > 0)
        executions = std::min(executions, config_.maxExecutions);

    std::vector<ExecutionInput> result;
    result.reserve(executions);
    Rng app_rng(config_.seed ^ hashString(app));
    for (int execution = 0; execution < executions; ++execution) {
        const trace::Trace trace = model->generate(
            execution,
            app_rng.fork(static_cast<std::uint64_t>(execution)));
        result.push_back(
            ExecutionInput::fromTrace(trace, config_.cache));
    }
    return inputs_.emplace(app, std::move(result)).first->second;
}

Evaluation::Table1Row
Evaluation::table1(const std::string &app)
{
    const auto &execs = inputs(app);
    Table1Row row;
    row.executions = static_cast<int>(execs.size());
    for (const auto &input : execs) {
        row.globalIdlePeriods +=
            input.countGlobalOpportunities(config_.sim.breakeven());
        row.localIdlePeriods +=
            input.countLocalOpportunities(config_.sim.breakeven());
        row.totalIos += input.tracedIos;
    }
    return row;
}

AccuracyStats
Evaluation::localAccuracy(const std::string &app,
                          const PolicyConfig &policy)
{
    PolicySession session(policy);
    return runLocal(inputs(app), session, config_.sim);
}

Evaluation::GlobalOutcome
Evaluation::globalRun(const std::string &app,
                      const PolicyConfig &policy)
{
    PolicySession session(policy);
    GlobalOutcome outcome;
    outcome.run = runGlobal(inputs(app), session, config_.sim);
    outcome.tableEntries = session.tableEntries();
    return outcome;
}

const RunResult &
Evaluation::baseRun(const std::string &app)
{
    auto it = baseRuns_.find(app);
    if (it == baseRuns_.end()) {
        it = baseRuns_
                 .emplace(app, runBase(inputs(app), config_.sim))
                 .first;
    }
    return it->second;
}

const RunResult &
Evaluation::idealRun(const std::string &app)
{
    auto it = idealRuns_.find(app);
    if (it == idealRuns_.end()) {
        it = idealRuns_
                 .emplace(app, runIdeal(inputs(app), config_.sim))
                 .first;
    }
    return it->second;
}

} // namespace pcap::sim
