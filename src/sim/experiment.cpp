#include "sim/experiment.hpp"

#include <algorithm>
#include <filesystem>
#include <iomanip>
#include <sstream>

#include "sim/drivers.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "workload/app_model.hpp"

namespace pcap::sim {

namespace {

/**
 * Generate every execution of @p app from seed, exactly as the
 * original serial loop did: the per-execution RNGs are forked
 * sequentially from the app RNG, so results do not depend on how
 * many workers later expand the traces.
 *
 * @p scope receives the pcap_workload_generated_* counters (a
 * disabled scope records nothing).
 */
std::vector<ExecutionInput>
generateInputs(const ExperimentConfig &config, const std::string &app,
               unsigned jobs, const obs::ScopedMetrics &scope)
{
    const auto model = workload::makeApp(app);
    if (!model)
        fatal("Evaluation: unknown application '" + app + "'");

    int executions = model->info().executions;
    if (config.maxExecutions > 0)
        executions = std::min(executions, config.maxExecutions);

    std::vector<Rng> rngs;
    rngs.reserve(executions);
    Rng app_rng(config.seed ^ hashString(app));
    for (int execution = 0; execution < executions; ++execution)
        rngs.push_back(
            app_rng.fork(static_cast<std::uint64_t>(execution)));

    std::vector<ExecutionInput> result(executions);
    pcap::parallelFor(
        jobs, static_cast<std::size_t>(executions),
        [&](std::size_t i) {
            const trace::Trace trace =
                model->generate(static_cast<int>(i), rngs[i]);
            workload::recordTraceMetrics(trace, scope);
            result[i] =
                ExecutionInput::fromTrace(trace, config.cache);
        });
    return result;
}

/** 16-hex-digit rendering of @p hash (trace-file and label style). */
std::string
hex16(std::uint64_t hash)
{
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << hash;
    return os.str();
}

/**
 * Canonical serialization of every ExperimentConfig field that can
 * alter simulation output — the basis of the "config" metric label,
 * which keeps ablation evaluations (custom cache or disk parameters)
 * from colliding with the paper-default one in a shared registry.
 */
std::string
configCacheKey(const ExperimentConfig &config)
{
    const cache::CacheParams &c = config.cache;
    const power::DiskParams &d = config.sim.disk;
    std::ostringstream os;
    os << "seed=" << config.seed
       << "|maxExec=" << config.maxExecutions;
    os << "|cache=" << c.capacityBytes << ',' << c.blockSize << ','
       << c.flushInterval << ',' << c.flushCheckPeriod;
    os << "|disk=" << d.busyPowerW << ',' << d.idlePowerW << ','
       << d.standbyPowerW << ',' << d.spinUpEnergyJ << ','
       << d.shutdownEnergyJ << ',' << d.spinUpTime << ','
       << d.shutdownTime << ',' << d.breakevenTime << ','
       << d.serviceTimePerBlock << ',' << d.lowPowerIdleW << ','
       << d.lowPowerExitEnergyJ << ',' << d.lowPowerExitTime;
    return os.str();
}

} // namespace

WorkloadKey
ExperimentConfig::workloadKey(const std::string &app) const
{
    WorkloadKey key;
    key.seed = seed;
    key.cache = cache;
    key.app = app;
    key.maxExecutions = maxExecutions;
    return key;
}

std::string
policyCacheKey(const PolicyConfig &policy)
{
    std::ostringstream os;
    os << "kind=" << static_cast<int>(policy.kind)
       << "|label=" << policy.label << "|timeout=" << policy.timeout
       << "|reuse=" << policy.reuseTables;
    os << "|lt=" << policy.lt.historyLength << ','
       << policy.lt.waitWindow << ',' << policy.lt.timeout << ','
       << policy.lt.breakeven << ',' << policy.lt.backupEnabled << ','
       << static_cast<int>(policy.lt.counterMax) << ','
       << policy.lt.minTrainings;
    os << "|pcap=" << policy.pcap.useHistory << ','
       << policy.pcap.useFd << ',' << policy.pcap.historyLength << ','
       << policy.pcap.waitWindow << ',' << policy.pcap.timeout << ','
       << policy.pcap.breakeven << ',' << policy.pcap.backupEnabled
       << ',' << policy.pcap.unlearnOnMisprediction;
    os << "|ea=" << policy.expAverage.alpha << ','
       << policy.expAverage.waitWindow << ','
       << policy.expAverage.timeout << ','
       << policy.expAverage.breakeven << ','
       << policy.expAverage.backupEnabled;
    os << "|sb=" << policy.busyRatio.busyThreshold << ','
       << policy.busyRatio.burstGap << ','
       << policy.busyRatio.waitWindow << ','
       << policy.busyRatio.timeout << ','
       << policy.busyRatio.backupEnabled;
    os << "|atp=" << policy.adaptive.initialTimeout << ','
       << policy.adaptive.minTimeout << ','
       << policy.adaptive.maxTimeout << ','
       << policy.adaptive.decreaseFactor << ','
       << policy.adaptive.increaseFactor << ','
       << policy.adaptive.breakeven;
    return os.str();
}

// ---------------------------------------------------------------
// Serial Evaluation
// ---------------------------------------------------------------

Evaluation::Evaluation(ExperimentConfig config)
    : config_(std::move(config)),
      appNames_(workload::standardAppNames())
{
}

const std::vector<ExecutionInput> &
Evaluation::inputs(const std::string &app)
{
    auto it = inputs_.find(app);
    if (it != inputs_.end())
        return it->second;
    return inputs_
        .emplace(app, generateInputs(config_, app, 1, {}))
        .first->second;
}

sim::Table1Row
Evaluation::table1(const std::string &app)
{
    const auto &execs = inputs(app);
    sim::Table1Row row;
    row.executions = static_cast<int>(execs.size());
    for (const auto &input : execs) {
        row.globalIdlePeriods +=
            input.countGlobalOpportunities(config_.sim.breakeven());
        row.localIdlePeriods +=
            input.countLocalOpportunities(config_.sim.breakeven());
        row.totalIos += input.tracedIos;
    }
    return row;
}

AccuracyStats
Evaluation::localAccuracy(const std::string &app,
                          const PolicyConfig &policy)
{
    PolicySession session(policy);
    LocalDriver driver(session);
    SimulationKernel kernel(config_.sim);
    return kernel.run(inputs(app), driver).accuracy;
}

sim::GlobalOutcome
Evaluation::globalRun(const std::string &app,
                      const PolicyConfig &policy)
{
    PolicySession session(policy);
    GlobalDriver driver(session);
    SimulationKernel kernel(config_.sim);
    sim::GlobalOutcome outcome;
    outcome.run = kernel.run(inputs(app), driver);
    outcome.tableEntries = session.tableEntries();
    return outcome;
}

sim::GlobalOutcome
Evaluation::multiStateRun(const std::string &app,
                          const PolicyConfig &policy)
{
    PolicySession session(policy);
    GlobalDriver driver(session, {.multiState = true});
    SimulationKernel kernel(config_.sim);
    sim::GlobalOutcome outcome;
    outcome.run = kernel.run(inputs(app), driver);
    outcome.tableEntries = session.tableEntries();
    return outcome;
}

const RunResult &
Evaluation::baseRun(const std::string &app)
{
    auto it = baseRuns_.find(app);
    if (it == baseRuns_.end()) {
        BaseDriver driver;
        SimulationKernel kernel(config_.sim);
        it = baseRuns_
                 .emplace(app, kernel.run(inputs(app), driver))
                 .first;
    }
    return it->second;
}

const RunResult &
Evaluation::idealRun(const std::string &app)
{
    auto it = idealRuns_.find(app);
    if (it == idealRuns_.end()) {
        OracleDriver driver;
        SimulationKernel kernel(config_.sim);
        it = idealRuns_
                 .emplace(app, kernel.run(inputs(app), driver))
                 .first;
    }
    return it->second;
}

// ---------------------------------------------------------------
// ParallelEvaluation
// ---------------------------------------------------------------

ParallelEvaluation::ParallelEvaluation(ExperimentConfig config,
                                       ParallelOptions options)
    : config_(std::move(config)), options_(options),
      appNames_(workload::standardAppNames()),
      cache_(options.cacheDir),
      configHash_(hex16(hashString(configCacheKey(config_))))
{
    if (options_.jobs == 0)
        options_.jobs = ThreadPool::hardwareJobs();
    if (!options_.traceDir.empty())
        std::filesystem::create_directories(options_.traceDir);
    if (!options_.provenanceDir.empty())
        std::filesystem::create_directories(options_.provenanceDir);
}

std::string
ParallelEvaluation::cellFileStem(const char *mode,
                                 const std::string &app,
                                 const PolicyConfig *policy) const
{
    std::string name = std::string(mode) + "-" + app;
    if (policy) {
        name += "-" + policy->label + "-" +
                hex16(hashString(policyCacheKey(*policy)));
    }
    return name;
}

std::unique_ptr<SimObserver>
ParallelEvaluation::traceObserver(const char *mode,
                                  const std::string &app,
                                  const PolicyConfig *policy) const
{
    if (options_.traceDir.empty())
        return nullptr;
    return std::make_unique<JsonlTraceObserver>(
        options_.traceDir + "/" + cellFileStem(mode, app, policy) +
        ".jsonl");
}

obs::ScopedMetrics
ParallelEvaluation::cellScope(const char *mode,
                              const std::string &app,
                              const PolicyConfig *policy) const
{
    if (!options_.metrics)
        return {};
    obs::Labels labels = {{"config", configHash_},
                          {"mode", mode},
                          {"app", app}};
    if (policy) {
        labels.emplace_back("policy", policy->label);
        labels.emplace_back(
            "policy_hash",
            hex16(hashString(policyCacheKey(*policy))));
    }
    return obs::ScopedMetrics(options_.metrics, std::move(labels));
}

obs::ScopedMetrics
ParallelEvaluation::appScope(const std::string &app) const
{
    if (!options_.metrics)
        return {};
    return obs::ScopedMetrics(
        options_.metrics, {{"config", configHash_}, {"app", app}});
}

/** One cell's observer stack; observer is what the kernel sees. */
struct ParallelEvaluation::CellInstruments
{
    obs::ScopedMetrics scope;
    std::unique_ptr<SimObserver> trace;
    std::unique_ptr<MetricsObserver> metrics;
    std::unique_ptr<obs::ProvenanceRecorder> provRecorder;
    std::unique_ptr<obs::BinaryProvenanceWriter> provBinary;
    std::unique_ptr<obs::JsonlProvenanceWriter> provJsonl;
    std::unique_ptr<ProvenanceObserver> provenance;
    std::unique_ptr<TeeObserver> tee;
    SimObserver *observer = nullptr;

    /** Bind the session to the recorder; no-op with provenance off. */
    void
    attachSession(PolicySession &session) const
    {
        if (provenance)
            session.setProvenanceTap(provenance.get());
    }

    /** Drain and close the provenance sinks after the run. */
    void
    finishProvenance() const
    {
        if (provRecorder)
            provRecorder->close();
    }
};

ParallelEvaluation::CellInstruments
ParallelEvaluation::instrument(const char *mode,
                               const std::string &app,
                               const PolicyConfig *policy,
                               bool trackDisk) const
{
    CellInstruments inst;
    inst.scope = cellScope(mode, app, policy);
    inst.trace = traceObserver(mode, app, policy);
    if (options_.metrics) {
        inst.metrics = std::make_unique<MetricsObserver>(
            inst.scope, config_.sim.breakeven(), trackDisk);
    }
    if (!options_.provenanceDir.empty() && policy) {
        const std::string stem = cellFileStem(mode, app, policy);
        const std::string base = options_.provenanceDir + "/" + stem;
        inst.provRecorder =
            std::make_unique<obs::ProvenanceRecorder>();
        inst.provBinary = std::make_unique<obs::BinaryProvenanceWriter>(
            base + ".prov.bin");
        inst.provJsonl = std::make_unique<obs::JsonlProvenanceWriter>(
            base + ".prov.jsonl", stem);
        inst.provRecorder->addSink(inst.provBinary.get());
        inst.provRecorder->addSink(inst.provJsonl.get());
        inst.provenance = std::make_unique<ProvenanceObserver>(
            *inst.provRecorder, config_.sim.disk);
    }
    std::vector<SimObserver *> children;
    if (inst.trace)
        children.push_back(inst.trace.get());
    if (inst.metrics)
        children.push_back(inst.metrics.get());
    if (inst.provenance)
        children.push_back(inst.provenance.get());
    if (children.size() > 1) {
        inst.tee = std::make_unique<TeeObserver>(std::move(children));
        inst.observer = inst.tee.get();
    } else if (children.size() == 1) {
        inst.observer = children.front();
    } else {
        inst.observer = &nullObserver();
    }
    return inst;
}

template <typename T>
std::shared_ptr<ParallelEvaluation::Memo<T>>
ParallelEvaluation::slot(
    std::map<std::string, std::shared_ptr<Memo<T>>> &map,
    const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &entry = map[key];
    if (!entry)
        entry = std::make_shared<Memo<T>>();
    return entry;
}

const std::vector<ExecutionInput> &
ParallelEvaluation::inputs(const std::string &app)
{
    auto memo = slot(inputs_, app);
    std::call_once(memo->once, [&] {
        const obs::ScopedMetrics scope = appScope(app);
        const WorkloadKey key = config_.workloadKey(app);
        const bool loaded = cache_.load(key, memo->value);
        scope
            .counter("pcap_workload_cache_loads_total",
                     {{"result", loaded ? "hit" : "miss"}})
            .inc();
        if (!loaded) {
            memo->value =
                generateInputs(config_, app, options_.jobs, scope);
            ++generated_;
            cache_.store(key, memo->value);
        }

        // Input-level metrics: identical whether the inputs were
        // generated or deserialized, because the cache statistics
        // travel inside the cached file.
        cache::CacheStats stats;
        std::uint64_t accesses = 0, tracedIos = 0, spanUs = 0;
        for (const ExecutionInput &input : memo->value) {
            stats.merge(input.cacheStats);
            accesses += input.accesses.size();
            tracedIos += input.tracedIos;
            spanUs += static_cast<std::uint64_t>(input.endTime);
        }
        cache::recordCacheMetrics(stats, scope);
        scope.gauge("pcap_sim_input_executions")
            .set(static_cast<double>(memo->value.size()));
        scope.counter("pcap_sim_input_disk_accesses_total")
            .inc(accesses);
        scope.counter("pcap_sim_input_traced_ios_total")
            .inc(tracedIos);
        scope.counter("pcap_sim_input_span_us_total").inc(spanUs);
    });
    return memo->value;
}

sim::Table1Row
ParallelEvaluation::table1(const std::string &app)
{
    // Cheap relative to a run; recomputed from the cached inputs.
    const auto &execs = inputs(app);
    sim::Table1Row row;
    row.executions = static_cast<int>(execs.size());
    for (const auto &input : execs) {
        row.globalIdlePeriods +=
            input.countGlobalOpportunities(config_.sim.breakeven());
        row.localIdlePeriods +=
            input.countLocalOpportunities(config_.sim.breakeven());
        row.totalIos += input.tracedIos;
    }
    return row;
}

AccuracyStats
ParallelEvaluation::localAccuracy(const std::string &app,
                                  const PolicyConfig &policy)
{
    auto memo =
        slot(locals_, app + "\x1f" + policyCacheKey(policy));
    std::call_once(memo->once, [&] {
        auto inst =
            instrument("local", app, &policy, /*trackDisk=*/false);
        PolicySession session(policy);
        inst.attachSession(session);
        LocalDriver driver(session);
        SimulationKernel kernel(config_.sim, *inst.observer);
        auto lap =
            inst.scope.timer("pcap_cell_wall_seconds").measure();
        memo->value = kernel.run(inputs(app), driver).accuracy;
        inst.finishProvenance();
        recordSessionMetrics(session, inst.scope);
    });
    return memo->value;
}

sim::GlobalOutcome
ParallelEvaluation::globalRun(const std::string &app,
                              const PolicyConfig &policy)
{
    auto memo =
        slot(globals_, "g\x1f" + app + "\x1f" + policyCacheKey(policy));
    std::call_once(memo->once, [&] {
        auto inst =
            instrument("global", app, &policy, /*trackDisk=*/true);
        PolicySession session(policy);
        inst.attachSession(session);
        GlobalDriver driver(session);
        if (inst.provenance) {
            inst.provenance->bindDecisionPid(
                [&driver] { return driver.decisionPid(); });
        }
        SimulationKernel kernel(config_.sim, *inst.observer);
        auto lap =
            inst.scope.timer("pcap_cell_wall_seconds").measure();
        memo->value.run = kernel.run(inputs(app), driver);
        memo->value.tableEntries = session.tableEntries();
        inst.finishProvenance();
        recordSessionMetrics(session, inst.scope);
    });
    return memo->value;
}

sim::GlobalOutcome
ParallelEvaluation::multiStateRun(const std::string &app,
                                  const PolicyConfig &policy)
{
    auto memo =
        slot(globals_, "m\x1f" + app + "\x1f" + policyCacheKey(policy));
    std::call_once(memo->once, [&] {
        auto inst = instrument("multistate", app, &policy,
                               /*trackDisk=*/true);
        PolicySession session(policy);
        inst.attachSession(session);
        GlobalDriver driver(session, {.multiState = true});
        if (inst.provenance) {
            inst.provenance->bindDecisionPid(
                [&driver] { return driver.decisionPid(); });
        }
        SimulationKernel kernel(config_.sim, *inst.observer);
        auto lap =
            inst.scope.timer("pcap_cell_wall_seconds").measure();
        memo->value.run = kernel.run(inputs(app), driver);
        memo->value.tableEntries = session.tableEntries();
        inst.finishProvenance();
        recordSessionMetrics(session, inst.scope);
    });
    return memo->value;
}

const RunResult &
ParallelEvaluation::baseRun(const std::string &app)
{
    auto memo = slot(runs_, "base\x1f" + app);
    std::call_once(memo->once, [&] {
        auto inst =
            instrument("base", app, nullptr, /*trackDisk=*/true);
        BaseDriver driver;
        SimulationKernel kernel(config_.sim, *inst.observer);
        auto lap =
            inst.scope.timer("pcap_cell_wall_seconds").measure();
        memo->value = kernel.run(inputs(app), driver);
    });
    return memo->value;
}

const RunResult &
ParallelEvaluation::idealRun(const std::string &app)
{
    auto memo = slot(runs_, "ideal\x1f" + app);
    std::call_once(memo->once, [&] {
        auto inst =
            instrument("ideal", app, nullptr, /*trackDisk=*/true);
        OracleDriver driver;
        SimulationKernel kernel(config_.sim, *inst.observer);
        auto lap =
            inst.scope.timer("pcap_cell_wall_seconds").measure();
        memo->value = kernel.run(inputs(app), driver);
    });
    return memo->value;
}

void
ParallelEvaluation::computeCell(const Cell &cell)
{
    switch (cell.mode) {
    case CellMode::Table1:
        table1(cell.app);
        break;
    case CellMode::Local:
        localAccuracy(cell.app, cell.policy);
        break;
    case CellMode::Global:
        globalRun(cell.app, cell.policy);
        break;
    case CellMode::MultiState:
        multiStateRun(cell.app, cell.policy);
        break;
    case CellMode::Base:
        baseRun(cell.app);
        break;
    case CellMode::Ideal:
        idealRun(cell.app);
        break;
    }
}

void
ParallelEvaluation::prefetch(const std::vector<Cell> &cells)
{
    // Make inputs resident first: cell workers would otherwise
    // serialize on the per-app call_once, and generation has its
    // own inner parallelism to exploit.
    for (const Cell &cell : cells)
        inputs(cell.app);

    pcap::parallelFor(options_.jobs, cells.size(),
                      [&](std::size_t i) { computeCell(cells[i]); });
}

void
ParallelEvaluation::prefetchInputs()
{
    pcap::parallelFor(options_.jobs, appNames_.size(),
                      [&](std::size_t i) { inputs(appNames_[i]); });
}

} // namespace pcap::sim
