/**
 * @file
 * The trace simulator (Section 6): replays post-cache disk access
 * streams against a power-management policy, classifies every idle
 * period (hit / miss / not-predicted) and accounts energy by driving
 * the power-managed disk model.
 *
 * Two evaluation modes match the paper's two accuracy figures:
 *
 *  - runLocal(): every process's stream is judged by its own local
 *    predictor in isolation, normalized to per-process idle periods
 *    (Figure 6);
 *  - runGlobal(): the full multiprocess simulation — the Global
 *    Shutdown Predictor combines the per-process decisions, fork and
 *    exit events add and remove constraints mid-gap, and the disk
 *    model accumulates the energy breakdown (Figures 7 and 8).
 *
 * runBase() and runIdeal() provide the two energy bounds of
 * Figure 8.
 */

#ifndef PCAP_SIM_SIMULATOR_HPP
#define PCAP_SIM_SIMULATOR_HPP

#include <vector>

#include "power/disk.hpp"
#include "sim/input.hpp"
#include "sim/policy.hpp"
#include "sim/stats.hpp"

namespace pcap::sim {

/** Parameters shared by every simulation run. */
struct SimParams
{
    power::DiskParams disk;

    /** The breakeven time used for idle-period classification. */
    TimeUs breakeven() const { return disk.breakevenTime; }
};

/** Outcome of one policy over a set of executions. */
struct RunResult
{
    AccuracyStats accuracy;
    power::EnergyLedger energy;
    std::uint64_t shutdowns = 0;   ///< spin-downs actually performed
    std::uint64_t spinUps = 0;     ///< on-demand spin-ups
    std::uint64_t ignoredShutdowns = 0; ///< orders the disk refused
    TimeUs totalSpinUpDelay = 0;   ///< latency added by spin-ups

    /** Fold another run (e.g. another execution) into this one. */
    void merge(const RunResult &other);
};

/**
 * Local-predictor evaluation (Figure 6): per-process streams, fresh
 * local predictors each execution, shared learned state via
 * @p session. The flush daemon participates like any process — it
 * runs a local predictor of its own in the global scheme.
 */
AccuracyStats runLocal(const std::vector<ExecutionInput> &executions,
                       PolicySession &session,
                       const SimParams &params);

/**
 * Full multiprocess simulation with the Global Shutdown Predictor
 * (Figures 7-10): accuracy on global idle periods plus the energy
 * ledger from the disk model.
 */
RunResult runGlobal(const std::vector<ExecutionInput> &executions,
                    PolicySession &session, const SimParams &params);

/**
 * Extension (the paper's Section 7 future work): like runGlobal(),
 * but on a primary prediction the disk drops into the low-power
 * idle mode the moment it goes idle, and only fully spins down once
 * the wait-window elapses. Mispredictions then cost a cheap
 * head-load instead of a full spin-up.
 */
RunResult
runGlobalMultiState(const std::vector<ExecutionInput> &executions,
                    PolicySession &session, const SimParams &params);

/** No power management: the disk never spins down (Figure 8 "Base"). */
RunResult runBase(const std::vector<ExecutionInput> &executions,
                  const SimParams &params);

/**
 * Oracle with future knowledge: spins down at the start of exactly
 * the idle periods long enough to pay off (Figure 8 "Ideal").
 */
RunResult runIdeal(const std::vector<ExecutionInput> &executions,
                   const SimParams &params);

} // namespace pcap::sim

#endif // PCAP_SIM_SIMULATOR_HPP
