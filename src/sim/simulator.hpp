/**
 * @file
 * Compatibility façade over the replay kernel (Section 6).
 *
 * Historically this header owned five hand-rolled replay loops; the
 * replay itself now lives in kernel.hpp (SimulationKernel) and the
 * per-mode behaviour in drivers.hpp (PolicyDriver strategies). The
 * free functions below construct the matching driver and delegate,
 * keeping the original entry points for callers and tests:
 *
 *  - runLocal(): every process's stream is judged by its own local
 *    predictor in isolation, normalized to per-process idle periods
 *    (Figure 6);
 *  - runGlobal(): the full multiprocess simulation — the Global
 *    Shutdown Predictor combines the per-process decisions, fork and
 *    exit events add and remove constraints mid-gap, and the disk
 *    model accumulates the energy breakdown (Figures 7 and 8).
 *
 * runBase() and runIdeal() provide the two energy bounds of
 * Figure 8.
 */

#ifndef PCAP_SIM_SIMULATOR_HPP
#define PCAP_SIM_SIMULATOR_HPP

#include <vector>

#include "sim/input.hpp"
#include "sim/kernel.hpp"
#include "sim/policy.hpp"
#include "sim/stats.hpp"

namespace pcap::sim {

/**
 * Local-predictor evaluation (Figure 6): per-process streams, fresh
 * local predictors each execution, shared learned state via
 * @p session. The flush daemon participates like any process — it
 * runs a local predictor of its own in the global scheme.
 */
AccuracyStats runLocal(const std::vector<ExecutionInput> &executions,
                       PolicySession &session,
                       const SimParams &params);

/**
 * Full multiprocess simulation with the Global Shutdown Predictor
 * (Figures 7-10): accuracy on global idle periods plus the energy
 * ledger from the disk model.
 */
RunResult runGlobal(const std::vector<ExecutionInput> &executions,
                    PolicySession &session, const SimParams &params);

/**
 * Extension (the paper's Section 7 future work): like runGlobal(),
 * but on a primary prediction the disk drops into the low-power
 * idle mode the moment it goes idle, and only fully spins down once
 * the wait-window elapses. Mispredictions then cost a cheap
 * head-load instead of a full spin-up.
 */
RunResult
runGlobalMultiState(const std::vector<ExecutionInput> &executions,
                    PolicySession &session, const SimParams &params);

/** No power management: the disk never spins down (Figure 8 "Base"). */
RunResult runBase(const std::vector<ExecutionInput> &executions,
                  const SimParams &params);

/**
 * Oracle with future knowledge: spins down at the start of exactly
 * the idle periods long enough to pay off (Figure 8 "Ideal").
 */
RunResult runIdeal(const std::vector<ExecutionInput> &executions,
                   const SimParams &params);

} // namespace pcap::sim

#endif // PCAP_SIM_SIMULATOR_HPP
