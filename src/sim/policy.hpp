/**
 * @file
 * Policy configurations and sessions.
 *
 * A PolicyConfig names one power-management policy of the paper's
 * evaluation (TP, LT, PCAP and its variants, plus the LTa/PCAPa
 * no-table-reuse ablations). A PolicySession owns the learned state
 * an application accumulates across executions — the PCAP prediction
 * table or the LT tree — and manufactures the per-process local
 * predictors for the global predictor.
 */

#ifndef PCAP_SIM_POLICY_HPP
#define PCAP_SIM_POLICY_HPP

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pcap.hpp"
#include "core/prediction_table.hpp"
#include "core/provenance_tap.hpp"
#include "obs/metrics.hpp"
#include "pred/adaptive_timeout.hpp"
#include "pred/busy_ratio.hpp"
#include "pred/exp_average.hpp"
#include "pred/learning_tree.hpp"
#include "pred/predictor.hpp"
#include "pred/timeout.hpp"

namespace pcap::sim {

/** Which predictor family a policy uses. */
enum class PolicyKind {
    Timeout,         ///< plain TP
    LearningTree,    ///< LT (with backup TP + wait-window)
    Pcap,            ///< PCAP family (with backup TP + wait-window)
    ExpAverage,      ///< Hwang & Wu exponential average (Section 2)
    BusyRatio,       ///< Srivastava et al. L-shape (Section 2)
    AdaptiveTimeout, ///< Douglis / Golding feedback (Section 2)
};

/** Full description of one policy under evaluation. */
struct PolicyConfig
{
    PolicyKind kind = PolicyKind::Timeout;
    std::string label = "TP";

    /** TP timer, and the backup timer inside LT / PCAP. */
    TimeUs timeout = secondsUs(10.0);

    /** Keep learned tables across executions (Section 4.2). False
     * gives the LTa / PCAPa ablations of Figure 10. */
    bool reuseTables = true;

    pred::LtConfig lt;      ///< used when kind == LearningTree
    core::PcapConfig pcap;  ///< used when kind == Pcap
    pred::ExpAverageConfig expAverage; ///< kind == ExpAverage
    pred::BusyRatioConfig busyRatio;   ///< kind == BusyRatio
    pred::AdaptiveTimeoutConfig adaptive; ///< kind ==
                                          ///< AdaptiveTimeout

    // -- Named factories for the paper's configurations. -----------

    /** TP with the given timer (paper default 10 s). */
    static PolicyConfig timeoutPolicy(TimeUs timer = secondsUs(10.0));

    /** LT: history 8, wait-window 1 s, backup 10 s. */
    static PolicyConfig learningTree();

    /** LTa: LT without table reuse. */
    static PolicyConfig learningTreeNoReuse();

    /** Base PCAP. */
    static PolicyConfig pcapBase();

    /** PCAPh: idle-history context, length 6. */
    static PolicyConfig pcapHistory();

    /** PCAPf: file-descriptor context. */
    static PolicyConfig pcapFd();

    /** PCAPfh: both contexts. */
    static PolicyConfig pcapFdHistory();

    /** PCAPa: base PCAP without table reuse. */
    static PolicyConfig pcapNoReuse();

    /** EA: Hwang & Wu exponential-average predictor. */
    static PolicyConfig expAveragePolicy();

    /** SB: Srivastava et al. short-busy/long-idle predictor. */
    static PolicyConfig busyRatioPolicy();

    /** ATP: feedback-adapted timeout. */
    static PolicyConfig adaptiveTimeoutPolicy();
};

// -- Policy registry -------------------------------------------

/**
 * Labels of every registered policy, in registry (paper) order:
 * TP, LT, LTa, PCAP, PCAPh, PCAPf, PCAPfh, PCAPa, EA, SB, ATP.
 * Benchmarks and the CLI select policies by these names instead of
 * hardcoding factory lists.
 */
const std::vector<std::string> &policyNames();

/** Look up a policy by label; std::nullopt when unknown. */
std::optional<PolicyConfig> findPolicy(const std::string &name);

/** Look up a policy by label; exits with a diagnostic listing the
 * known labels when @p name is not registered. */
PolicyConfig policyByName(const std::string &name);

/**
 * Learned state of one (application, policy) pair plus the local
 * predictor factory. Create one session per application, call
 * beginExecution() before each execution, and use makeLocal as the
 * GlobalShutdownPredictor factory.
 */
class PolicySession
{
  public:
    explicit PolicySession(const PolicyConfig &config);

    /** Configuration this session runs. */
    const PolicyConfig &config() const { return config_; }

    /** Start a new execution: drop learned state unless the policy
     * reuses tables. */
    void beginExecution();

    /** Create the local predictor for a new process. */
    std::unique_ptr<pred::ShutdownPredictor>
    makeLocal(Pid pid, TimeUs start_time);

    /**
     * Entries currently learned: PCAP prediction-table entries or LT
     * tree nodes; 0 for TP (Table 3).
     */
    std::size_t tableEntries() const;

    /** LRU evictions of the PCAP table so far; 0 for non-PCAP. */
    std::uint64_t tableEvictions() const;

    /**
     * Attach the provenance tap: PCAP local predictors created by
     * makeLocal from now on report their decisions and trainings to
     * @p tap, and the shared table reports LRU evictions. Null
     * detaches. The tap must outlive every predictor made while it
     * is attached.
     */
    void setProvenanceTap(core::ProvenanceTap *tap);

    /** The PCAP table (null unless kind == Pcap); for persistence
     * demos and tests. */
    std::shared_ptr<core::PredictionTable> table() { return table_; }

  private:
    PolicyConfig config_;
    std::shared_ptr<core::PredictionTable> table_; // PCAP state
    std::shared_ptr<pred::LtTree> tree_;           // LT state
    core::ProvenanceTap *tap_ = nullptr;
};

/**
 * Export the session's learned-state gauges —
 * pcap_predictor_table_entries and pcap_predictor_table_evictions —
 * into @p scope. No-op when metrics are disabled.
 */
void recordSessionMetrics(const PolicySession &session,
                          const obs::ScopedMetrics &scope);

} // namespace pcap::sim

#endif // PCAP_SIM_POLICY_HPP
