/**
 * @file
 * Cross-engine memoization of replay cells.
 *
 * The TraceStore (trace_store.hpp) shares raw *traces* between
 * evaluations; the CellStore closes the PR6 leftover and shares
 * finished *results*. An ablation sweep that instantiates several
 * engines over an identical (config, policy) pair — or a standalone
 * run rebuilt next to the shared engine — replays the cell once and
 * every other engine gets a lookup.
 *
 * Keys are full canonical strings (configCacheKey + mode + app +
 * policyCacheKey), never hashes, so distinct configurations can
 * never collide into one slot. The store follows the call_once memo
 * idiom of TraceStore: thread-safe, compute-once, immutable values.
 *
 * A store hit skips the replay — and with it the cell's metric,
 * trace and provenance side effects. ParallelEvaluation therefore
 * bypasses the store whenever per-cell artifacts were requested
 * (traceDir/provenanceDir); plain metric registries accept that a
 * reused cell records its series only in the engine that computed it.
 */

#ifndef PCAP_SIM_CELL_STORE_HPP
#define PCAP_SIM_CELL_STORE_HPP

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "sim/experiment.hpp"

namespace pcap::sim {

/** Thread-safe memo of finished simulation cells, shared between
 * evaluation engines (via ParallelOptions::cellStore). */
class CellStore
{
  public:
    /** Local-accuracy cell: compute once per key, then share. */
    AccuracyStats
    localAccuracy(const std::string &key,
                  const std::function<AccuracyStats()> &compute);

    /** Global (or multi-state) run cell. */
    GlobalOutcome
    globalOutcome(const std::string &key,
                  const std::function<GlobalOutcome()> &compute);

    /** Base/ideal run cell. */
    RunResult runResult(const std::string &key,
                        const std::function<RunResult()> &compute);

    /** Lookups satisfied without replaying. */
    std::uint64_t hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }

    /** Cells actually replayed (first request per key). */
    std::uint64_t computed() const
    {
        return computed_.load(std::memory_order_relaxed);
    }

  private:
    template <typename T> struct Memo
    {
        std::once_flag once;
        T value{};
    };

    template <typename T>
    T memoized(std::map<std::string, std::shared_ptr<Memo<T>>> &map,
               const std::string &key,
               const std::function<T()> &compute);

    std::mutex mutex_; ///< guards the maps (not the memos)
    std::map<std::string, std::shared_ptr<Memo<AccuracyStats>>>
        locals_;
    std::map<std::string, std::shared_ptr<Memo<GlobalOutcome>>>
        globals_;
    std::map<std::string, std::shared_ptr<Memo<RunResult>>> runs_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> computed_{0};
};

} // namespace pcap::sim

#endif // PCAP_SIM_CELL_STORE_HPP
