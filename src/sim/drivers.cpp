#include "sim/drivers.hpp"

#include <algorithm>
#include <string>

#include "util/logging.hpp"

namespace pcap::sim {

namespace {

/**
 * Shutdown semantics of a standing local decision over a gap ending
 * at @p gap_end: the spin-down fires at decision.earliest when that
 * falls inside the gap. @return the shutdown time or -1.
 */
TimeUs
localShutdownTime(const pred::ShutdownDecision &decision,
                  TimeUs gap_start, TimeUs gap_end)
{
    if (decision.earliest == kTimeNever)
        return -1;
    const TimeUs at = std::max(decision.earliest, gap_start);
    return at < gap_end ? at : -1;
}

} // namespace

// -- GlobalDriver ----------------------------------------------

GlobalDriver::GlobalDriver(PolicySession &session)
    : GlobalDriver(session, Options{})
{
}

GlobalDriver::GlobalDriver(PolicySession &session, Options options)
    : session_(session), options_(options)
{
}

void
GlobalDriver::beginExecution(const ExecutionInput &input)
{
    (void)input;
    session_.beginExecution();
    gsp_.emplace([this](Pid pid, TimeUs start) {
        return session_.makeLocal(pid, start);
    });
    park_ = false;
}

void
GlobalDriver::processStart(Pid pid, TimeUs time)
{
    gsp_->processStart(pid, time);
}

void
GlobalDriver::processExit(Pid pid, TimeUs time, IdleSink &sink)
{
    (void)sink;
    gsp_->processExit(pid, time);
}

pred::ShutdownDecision
GlobalDriver::standingDecision() const
{
    return gsp_->globalDecision();
}

void
GlobalDriver::onAccess(const trace::DiskAccess &access,
                       TimeUs completion, IdleSink &sink)
{
    (void)completion;
    (void)sink;
    const pred::ShutdownDecision d = gsp_->onAccess(access);
    park_ = options_.multiState &&
            d.source == pred::DecisionSource::Primary;
}

// -- LocalDriver -----------------------------------------------

LocalDriver::LocalDriver(PolicySession &session) : session_(session)
{
}

void
LocalDriver::beginExecution(const ExecutionInput &input)
{
    session_.beginExecution();
    contexts_.clear();
    warnedUnknownPid_ = false;
    contexts_.reserve(input.processes.size());
    for (const auto &span : input.processes) {
        Ctx ctx;
        ctx.predictor = session_.makeLocal(span.pid, span.start);
        ctx.decision = pred::initialConsent(span.start);
        ctx.spanEnd = span.end;
        contexts_.emplace(span.pid, std::move(ctx));
    }
}

void
LocalDriver::onAccess(const trace::DiskAccess &access,
                      TimeUs completion, IdleSink &sink)
{
    (void)completion;
    auto it = contexts_.find(access.pid);
    if (it == contexts_.end()) {
        // Malformed input: an access from a pid with no process
        // span. Historically dropped silently; make it visible
        // (once per execution) without changing the outcome.
        if (!warnedUnknownPid_) {
            warn("LocalDriver: dropping access from pid " +
                 std::to_string(access.pid) +
                 " with no process span (reported once per "
                 "execution)");
            warnedUnknownPid_ = true;
        }
        return;
    }
    Ctx &ctx = it->second;

    if (ctx.prev >= 0) {
        sink.classify(access.pid, ctx.prev, access.time,
                      localShutdownTime(ctx.decision, ctx.prev,
                                        access.time),
                      ctx.decision.source);
    }

    pred::IoContext io;
    io.time = access.time;
    io.sincePrev = ctx.prev >= 0 ? access.time - ctx.prev : -1;
    io.pc = access.pc;
    io.fd = access.fd;
    io.file = access.file;
    io.isWrite = access.isWrite;
    ctx.decision = ctx.predictor->onIo(io);
    ctx.prev = access.time;
}

void
LocalDriver::endExecution(const ExecutionInput &input, IdleSink &sink)
{
    // Trailing idle period of each process, to its exit — iterated
    // over the pid-sorted span list so observers see a
    // deterministic record order.
    for (const auto &span : input.processes) {
        auto it = contexts_.find(span.pid);
        if (it == contexts_.end())
            continue;
        Ctx &ctx = it->second;
        if (ctx.prev < 0 || ctx.spanEnd <= ctx.prev)
            continue;
        sink.classify(span.pid, ctx.prev, ctx.spanEnd,
                      localShutdownTime(ctx.decision, ctx.prev,
                                        ctx.spanEnd),
                      ctx.decision.source);
    }
}

// -- OracleDriver ----------------------------------------------

void
OracleDriver::beginExecution(const ExecutionInput &input)
{
    input_ = &input;
    index_ = 0;
    decision_ = {kTimeNever, pred::DecisionSource::None};
}

void
OracleDriver::onAccess(const trace::DiskAccess &access,
                       TimeUs completion, IdleSink &sink)
{
    (void)access;
    const TimeUs next = index_ + 1 < input_->accesses.size()
                            ? input_->accesses[index_ + 1].time
                            : input_->endTime;
    ++index_;
    // With future knowledge, spin down the moment the disk goes
    // idle — but only when the off-time pays off.
    if (next - completion >= sink.breakeven())
        decision_ = {completion, pred::DecisionSource::Primary};
    else
        decision_ = {kTimeNever, pred::DecisionSource::None};
}

} // namespace pcap::sim
