/**
 * @file
 * Experiment driver: ties the workload models, the file cache and
 * the simulator together, so every bench binary and integration test
 * asks one object for the paper's numbers.
 */

#ifndef PCAP_SIM_EXPERIMENT_HPP
#define PCAP_SIM_EXPERIMENT_HPP

#include <map>
#include <string>
#include <vector>

#include "sim/input.hpp"
#include "sim/policy.hpp"
#include "sim/simulator.hpp"

namespace pcap::sim {

/** Configuration of a whole evaluation. */
struct ExperimentConfig
{
    std::uint64_t seed = 42;     ///< workload master seed
    cache::CacheParams cache;    ///< paper defaults (256 KB, 30 s)
    SimParams sim;               ///< Fujitsu MHF 2043AT disk

    /**
     * When positive, cap each application at this many executions
     * (fast integration tests); 0 runs the paper's Table 1 counts.
     */
    int maxExecutions = 0;
};

/**
 * Lazily generates, caches and evaluates the workload. Inputs are
 * deterministic functions of the config seed, so every bench binary
 * reproduces identical numbers.
 */
class Evaluation
{
  public:
    explicit Evaluation(ExperimentConfig config = {});

    /** The configuration in use. */
    const ExperimentConfig &config() const { return config_; }

    /** The six application names of Table 1. */
    const std::vector<std::string> &appNames() const
    {
        return appNames_;
    }

    /** Post-cache inputs of every execution of @p app (cached). */
    const std::vector<ExecutionInput> &inputs(const std::string &app);

    /** One row of Table 1. */
    struct Table1Row
    {
        int executions = 0;
        std::uint64_t globalIdlePeriods = 0;
        std::uint64_t localIdlePeriods = 0;
        std::uint64_t totalIos = 0;
    };

    /** Compute Table 1 for @p app from the generated workload. */
    Table1Row table1(const std::string &app);

    /** Figure 6: local accuracy of @p policy on @p app. */
    AccuracyStats localAccuracy(const std::string &app,
                                const PolicyConfig &policy);

    /** Result of a global run plus the learned-state size. */
    struct GlobalOutcome
    {
        RunResult run;
        std::size_t tableEntries = 0; ///< Table 3
    };

    /** Figures 7-10: global run of @p policy on @p app. */
    GlobalOutcome globalRun(const std::string &app,
                            const PolicyConfig &policy);

    /** Figure 8 "Base": no power management (cached). */
    const RunResult &baseRun(const std::string &app);

    /** Figure 8 "Ideal": the oracle (cached). */
    const RunResult &idealRun(const std::string &app);

  private:
    ExperimentConfig config_;
    std::vector<std::string> appNames_;
    std::map<std::string, std::vector<ExecutionInput>> inputs_;
    std::map<std::string, RunResult> baseRuns_;
    std::map<std::string, RunResult> idealRuns_;
};

} // namespace pcap::sim

#endif // PCAP_SIM_EXPERIMENT_HPP
