/**
 * @file
 * Experiment driver: ties the workload models, the file cache and
 * the simulator together, so every bench binary and integration test
 * asks one object for the paper's numbers.
 *
 * Two implementations share the EvaluationApi interface:
 *
 *  - Evaluation: the original strictly serial driver; the reference
 *    for every number in EXPERIMENTS.md.
 *  - ParallelEvaluation: the experiment engine behind bench_all.
 *    Generates each application's inputs exactly once behind a
 *    thread-safe memoized cache (optionally persisted on disk, see
 *    input_cache.hpp), memoizes every (app x policy x mode) cell,
 *    and can prefetch a batch of cells across a thread pool. Each
 *    cell owns a private PolicySession, so results are identical to
 *    the serial path no matter the thread count.
 */

#ifndef PCAP_SIM_EXPERIMENT_HPP
#define PCAP_SIM_EXPERIMENT_HPP

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/input.hpp"
#include "sim/input_cache.hpp"
#include "sim/policy.hpp"
#include "sim/simulator.hpp"

namespace pcap::sim {

struct Cell;
class TraceStore;
class CellStore;

/** Configuration of a whole evaluation. */
struct ExperimentConfig
{
    std::uint64_t seed = 42;     ///< workload master seed
    cache::CacheParams cache;    ///< paper defaults (256 KB, 30 s)
    SimParams sim;               ///< Fujitsu MHF 2043AT disk

    /**
     * When positive, cap each application at this many executions
     * (fast integration tests); 0 runs the paper's Table 1 counts.
     */
    int maxExecutions = 0;

    /** The workload-cache identity of one application's inputs. */
    WorkloadKey workloadKey(const std::string &app) const;
};

/** One row of Table 1. */
struct Table1Row
{
    int executions = 0;
    std::uint64_t globalIdlePeriods = 0;
    std::uint64_t localIdlePeriods = 0;
    std::uint64_t totalIos = 0;
};

/** Result of a global run plus the learned-state size. */
struct GlobalOutcome
{
    RunResult run;
    std::size_t tableEntries = 0; ///< Table 3
};

/**
 * Stable identity of a PolicyConfig for result memoization: every
 * field that can alter simulation output, canonically serialized.
 */
std::string policyCacheKey(const PolicyConfig &policy);

/**
 * What every experiment driver can answer. All methods are
 * deterministic functions of (config, arguments); implementations
 * may cache aggressively.
 */
class EvaluationApi
{
  public:
    virtual ~EvaluationApi() = default;

    /** The configuration in use. */
    virtual const ExperimentConfig &config() const = 0;

    /** The six application names of Table 1. */
    virtual const std::vector<std::string> &appNames() const = 0;

    /** Post-cache inputs of every execution of @p app (cached). */
    virtual const std::vector<ExecutionInput> &
    inputs(const std::string &app) = 0;

    /** Compute Table 1 for @p app from the generated workload. */
    virtual Table1Row table1(const std::string &app) = 0;

    /** Figure 6: local accuracy of @p policy on @p app. */
    virtual AccuracyStats
    localAccuracy(const std::string &app,
                  const PolicyConfig &policy) = 0;

    /** Figures 7-10: global run of @p policy on @p app. */
    virtual GlobalOutcome globalRun(const std::string &app,
                                    const PolicyConfig &policy) = 0;

    /** Section 7 extension: multi-state global run. */
    virtual GlobalOutcome
    multiStateRun(const std::string &app,
                  const PolicyConfig &policy) = 0;

    /** Figure 8 "Base": no power management (cached). */
    virtual const RunResult &baseRun(const std::string &app) = 0;

    /** Figure 8 "Ideal": the oracle (cached). */
    virtual const RunResult &idealRun(const std::string &app) = 0;

    /**
     * Hint that @p cells are about to be queried: parallel
     * implementations compute them across their worker pool so the
     * subsequent accessor calls are cheap lookups. The serial
     * default is a no-op — every cell is computed (and memoized) on
     * first access anyway.
     */
    virtual void prefetchCells(const std::vector<Cell> &cells)
    {
        (void)cells;
    }
};

/**
 * Lazily generates, caches and evaluates the workload — strictly
 * serially, on the calling thread. Inputs are deterministic
 * functions of the config seed, so every bench binary reproduces
 * identical numbers.
 */
class Evaluation : public EvaluationApi
{
  public:
    /**
     * @p traceStore optionally shares raw workload traces with
     * other evaluations (see trace_store.hpp): an ablation sweep
     * over cache or disk parameters generates each application's
     * traces once and re-runs only the file-cache filter per
     * configuration. Inputs are bit-identical either way.
     */
    explicit Evaluation(ExperimentConfig config = {},
                        std::shared_ptr<TraceStore> traceStore = {});

    // Compatibility aliases: these used to be nested types.
    using Table1Row = sim::Table1Row;
    using GlobalOutcome = sim::GlobalOutcome;

    const ExperimentConfig &config() const override
    {
        return config_;
    }

    const std::vector<std::string> &appNames() const override
    {
        return appNames_;
    }

    const std::vector<ExecutionInput> &
    inputs(const std::string &app) override;

    sim::Table1Row table1(const std::string &app) override;

    AccuracyStats localAccuracy(const std::string &app,
                                const PolicyConfig &policy) override;

    sim::GlobalOutcome globalRun(const std::string &app,
                                 const PolicyConfig &policy) override;

    sim::GlobalOutcome
    multiStateRun(const std::string &app,
                  const PolicyConfig &policy) override;

    const RunResult &baseRun(const std::string &app) override;

    const RunResult &idealRun(const std::string &app) override;

  private:
    ExperimentConfig config_;
    std::vector<std::string> appNames_;
    std::shared_ptr<TraceStore> traceStore_;
    std::map<std::string, std::vector<ExecutionInput>> inputs_;
    std::map<std::string, RunResult> baseRuns_;
    std::map<std::string, RunResult> idealRuns_;
};

/** How one simulation cell evaluates its inputs. */
enum class CellMode {
    Table1,     ///< workload statistics only
    Local,      ///< per-process accuracy (Figure 6)
    Global,     ///< full multiprocess run (Figures 7-10)
    MultiState, ///< Section 7 extension
    Base,       ///< no power management
    Ideal,      ///< oracle
};

/** One independent unit of work for ParallelEvaluation::prefetch. */
struct Cell
{
    CellMode mode = CellMode::Global;
    std::string app;
    PolicyConfig policy; ///< ignored by Table1/Base/Ideal cells
};

/** Options of the parallel experiment engine. */
struct ParallelOptions
{
    /** Worker threads for prefetch() and generation; 1 = inline. */
    unsigned jobs = 1;

    /**
     * On-disk workload cache directory; empty disables persistence
     * (inputs are still memoized in memory).
     */
    std::string cacheDir;

    /**
     * When non-empty, every simulation cell writes a per-idle-period
     * JSONL trace into this directory (created if needed), one file
     * per (mode, app, policy) cell. Empty disables tracing.
     */
    std::string traceDir;

    /**
     * When non-empty, every policy cell runs with the provenance
     * flight recorder attached and serializes its records into this
     * directory (created if needed): a compact binary file plus a
     * pcap-provenance-v1 JSONL mirror per (mode, app, policy) cell,
     * named <mode>-<app>-<label>-<hash>.prov.{bin,jsonl}. Empty
     * disables provenance entirely (the default path is untouched).
     */
    std::string provenanceDir;

    /**
     * When non-empty, every simulation cell folds its replay into a
     * simulated-time sim::TimelineObserver and writes the result
     * into this directory (created if needed): a pcap-timeline-v1
     * JSON document plus a CSV mirror per (mode, app, policy) cell,
     * named <stem>.timeline.{json,csv}. Empty disables timelines
     * (the default path is untouched).
     */
    std::string timelineDir;

    /**
     * Registry every layer records into, or null to disable
     * instrumentation. Each cell writes through a ScopedMetrics
     * labelled {config, mode, app, policy, policy_hash}, so parallel
     * cells touch disjoint series; the registry must outlive the
     * evaluation.
     */
    obs::MetricsRegistry *metrics = nullptr;

    /**
     * Shared raw-trace memo (see trace_store.hpp), or null to
     * generate traces privately. Evaluations over different cache
     * or disk configurations share one store so an ablation sweep
     * generates each application's traces once; inputs are
     * bit-identical either way because generation depends only on
     * (seed, app, maxExecutions).
     */
    std::shared_ptr<TraceStore> traceStore;

    /**
     * Shared finished-cell memo (see cell_store.hpp), or null to
     * compute cells privately. Engines over an *identical* config
     * then replay each (mode, app, policy) cell once between them —
     * the keys embed the full canonical config string, so distinct
     * configurations never collide. Ignored while traceDir,
     * provenanceDir or timelineDir is set: a store hit skips the
     * replay and with it the cell's file artifacts, which those
     * options promise.
     */
    std::shared_ptr<CellStore> cellStore;
};

/**
 * The parallel experiment engine. Thread-safe: any method may be
 * called from any thread; equal queries are computed once and
 * memoized. prefetch() fans a batch of cells across a thread pool
 * and joins — afterwards the plain accessors are cheap lookups.
 *
 * Results are bit-identical to Evaluation's: inputs are the same
 * deterministic function of the seed (whether generated, memoized or
 * deserialized from the workload cache), and each cell runs the same
 * serial simulator on a private PolicySession.
 */
class ParallelEvaluation : public EvaluationApi
{
  public:
    explicit ParallelEvaluation(ExperimentConfig config = {},
                                ParallelOptions options = {});

    const ExperimentConfig &config() const override
    {
        return config_;
    }

    const std::vector<std::string> &appNames() const override
    {
        return appNames_;
    }

    const std::vector<ExecutionInput> &
    inputs(const std::string &app) override;

    sim::Table1Row table1(const std::string &app) override;

    AccuracyStats localAccuracy(const std::string &app,
                                const PolicyConfig &policy) override;

    sim::GlobalOutcome globalRun(const std::string &app,
                                 const PolicyConfig &policy) override;

    sim::GlobalOutcome
    multiStateRun(const std::string &app,
                  const PolicyConfig &policy) override;

    const RunResult &baseRun(const std::string &app) override;

    const RunResult &idealRun(const std::string &app) override;

    /**
     * Compute every cell (and the inputs they need) across the
     * worker pool, then join. Duplicate cells cost nothing extra.
     */
    void prefetch(const std::vector<Cell> &cells);

    void prefetchCells(const std::vector<Cell> &cells) override
    {
        prefetch(cells);
    }

    /** Make every application's inputs resident, in parallel. */
    void prefetchInputs();

    /** The engine's workload cache (for hit/miss reporting). */
    const WorkloadCache &workloadCache() const { return cache_; }

    /** Applications generated from seed (disk-cache misses). */
    std::uint64_t generatedApps() const { return generated_; }

  private:
    template <typename T> struct Memo
    {
        std::once_flag once;
        T value{};
    };

    /** Memo slot for @p key in @p map, created under the lock. */
    template <typename T>
    std::shared_ptr<Memo<T>>
    slot(std::map<std::string, std::shared_ptr<Memo<T>>> &map,
         const std::string &key);

    void computeCell(const Cell &cell);

    /**
     * File stem identifying one cell:
     * <mode>-<app>[-<label>-<policy hash>]; the hash disambiguates
     * sweep variants sharing a label.
     */
    std::string cellFileStem(const char *mode, const std::string &app,
                             const PolicyConfig *policy) const;

    /** The JSONL observer of one cell, or null when tracing is
     * off. */
    std::unique_ptr<SimObserver>
    traceObserver(const char *mode, const std::string &app,
                  const PolicyConfig *policy) const;

    /** The tracing + metrics observers of one cell, assembled. */
    struct CellInstruments;

    /**
     * Build one cell's observer stack: the JSONL tracer (when
     * tracing is on), a MetricsObserver (when a registry is
     * attached), both behind a tee, or the shared NullObserver.
     * @p trackDisk is false for diskless (local-accuracy) replays.
     */
    CellInstruments instrument(const char *mode,
                               const std::string &app,
                               const PolicyConfig *policy,
                               bool trackDisk) const;

    /** Scope labelled {config, mode, app[, policy, policy_hash]};
     * disabled when no registry is attached. */
    obs::ScopedMetrics cellScope(const char *mode,
                                 const std::string &app,
                                 const PolicyConfig *policy) const;

    /** Scope labelled {config, app} for input-level metrics. */
    obs::ScopedMetrics appScope(const std::string &app) const;

    /** True when results may round-trip through the shared
     * CellStore (attached, and no per-cell file artifacts). */
    bool cellStoreUsable() const;

    ExperimentConfig config_;
    ParallelOptions options_;
    std::vector<std::string> appNames_;
    WorkloadCache cache_;
    /** Canonical serialization of every config field that can alter
     * results — the CellStore key prefix. */
    std::string configKey_;
    /** 16-hex digest of configKey_ — the "config" label value
     * separating ablation evaluations from the paper-default one in
     * the shared registry. */
    std::string configHash_;

    std::mutex mutex_; ///< guards the maps below (not the memos)
    std::map<std::string,
             std::shared_ptr<Memo<std::vector<ExecutionInput>>>>
        inputs_;
    std::map<std::string, std::shared_ptr<Memo<AccuracyStats>>>
        locals_;
    std::map<std::string, std::shared_ptr<Memo<sim::GlobalOutcome>>>
        globals_;
    std::map<std::string, std::shared_ptr<Memo<RunResult>>> runs_;
    std::atomic<std::uint64_t> generated_{0};
};

} // namespace pcap::sim

#endif // PCAP_SIM_EXPERIMENT_HPP
