/**
 * @file
 * The replay kernel: one event loop for every evaluation mode.
 *
 * Historically the simulator grew five hand-rolled replay loops
 * (local, global, multi-state global, base, ideal), each duplicating
 * event replay, idle-gap classification and disk accounting. The
 * kernel collapses them: it walks an ExecutionInput's merged
 * SimEvent schedule exactly once and delegates every policy decision
 * to a PolicyDriver strategy — so classifyGap (now IdleSink),
 * shutdown issuance and RunResult assembly exist in one place, and a
 * new evaluation mode is a new driver, not a sixth loop.
 *
 * A SimObserver (observer.hpp) can be attached for per-idle-period
 * instrumentation; the default NullObserver costs one virtual call
 * per classified period and nothing else.
 */

#ifndef PCAP_SIM_KERNEL_HPP
#define PCAP_SIM_KERNEL_HPP

#include <vector>

#include "power/disk.hpp"
#include "pred/predictor.hpp"
#include "sim/input.hpp"
#include "sim/observer.hpp"
#include "sim/stats.hpp"

namespace pcap::sim {

class ExecutionSource;

/** Parameters shared by every simulation run. */
struct SimParams
{
    power::DiskParams disk;

    /** The breakeven time used for idle-period classification. */
    TimeUs breakeven() const { return disk.breakevenTime; }
};

/** Outcome of one policy over a set of executions. */
struct RunResult
{
    AccuracyStats accuracy;
    power::EnergyLedger energy;
    std::uint64_t shutdowns = 0;   ///< spin-downs actually performed
    std::uint64_t spinUps = 0;     ///< on-demand spin-ups
    std::uint64_t ignoredShutdowns = 0; ///< orders the disk refused
    TimeUs totalSpinUpDelay = 0;   ///< latency added by spin-ups

    /** Fold another run (e.g. another execution) into this one. */
    void merge(const RunResult &other);
};

/** Pid tag of the merged (whole-system) stream in idle-period
 * records; real processes use their own pid. */
constexpr Pid kMergedStreamPid = -1;

/**
 * The one place an idle period is classified and tallied
 * (previously the classifyGap free function, duplicated
 * per-stream). Tallies into AccuracyStats and emits one
 * IdlePeriodRecord per period to the observer — including Short
 * periods, which AccuracyStats ignores.
 *
 * When the observer is the shared NullObserver, classification runs
 * a stats-only fast path: no IdlePeriodRecord is built and no
 * virtual call is made per period. The tallies are identical either
 * way, so results never depend on instrumentation.
 */
class IdleSink
{
  public:
    IdleSink(TimeUs breakeven, AccuracyStats &stats,
             SimObserver &observer)
        : breakeven_(breakeven), stats_(stats), observer_(observer),
          instrumented_(&observer != &nullObserver())
    {
    }

    /**
     * Classify the idle period [gap_start, gap_end) of stream @p pid
     * given the shutdown (if any) that happened inside it.
     *
     * @param shutdown_at Time the disk was spun down, or -1 for none.
     * @param source      Attribution of the standing decision behind
     *                    the shutdown; a consent without a mechanism
     *                    behind it (DecisionSource::None with a
     *                    shutdown) counts as backup.
     */
    void classify(Pid pid, TimeUs gap_start, TimeUs gap_end,
                  TimeUs shutdown_at, pred::DecisionSource source)
    {
        const TimeUs gap = gap_end - gap_start;
        const bool opportunity = gap > breakeven_;
        if (opportunity)
            ++stats_.opportunities;

        if (shutdown_at >= 0) {
            // A consent without a mechanism behind it (a process
            // that never performed I/O holding the latest decision)
            // counts as backup: no primary predictor claimed it.
            const pred::DecisionSource effective =
                source == pred::DecisionSource::None
                    ? pred::DecisionSource::Backup
                    : source;
            const bool hit =
                opportunity && gap_end - shutdown_at >= breakeven_;
            if (hit)
                stats_.recordHit(effective);
            else
                stats_.recordMiss(effective);
            if (instrumented_) {
                const bool primary =
                    effective == pred::DecisionSource::Primary;
                emit(pid, gap_start, gap_end, shutdown_at, effective,
                     hit ? (primary ? IdleOutcome::HitPrimary
                                    : IdleOutcome::HitBackup)
                         : (primary ? IdleOutcome::MissPrimary
                                    : IdleOutcome::MissBackup));
            }
        } else if (opportunity) {
            ++stats_.notPredicted;
            if (instrumented_) {
                emit(pid, gap_start, gap_end, shutdown_at,
                     pred::DecisionSource::None,
                     IdleOutcome::NotPredicted);
            }
        } else if (instrumented_) {
            emit(pid, gap_start, gap_end, shutdown_at,
                 pred::DecisionSource::None, IdleOutcome::Short);
        }
    }

    TimeUs breakeven() const { return breakeven_; }

  private:
    /** Instrumented tail: build the record, virtual-dispatch it. */
    void emit(Pid pid, TimeUs gap_start, TimeUs gap_end,
              TimeUs shutdown_at, pred::DecisionSource source,
              IdleOutcome outcome);

    TimeUs breakeven_;
    AccuracyStats &stats_;
    SimObserver &observer_;
    bool instrumented_;
};

/**
 * Which access order a driver replays.
 *
 * The merged schedule orders same-time events (start < access <
 * exit, then by pid); the trace order is the access array exactly as
 * the file cache emitted it. The two differ only in the relative
 * order of equal-timestamp accesses — but that order is observable:
 * processes sharing a prediction table train it in feed order, and
 * the historical per-mode loops disagreed on it. Schedule preserves
 * the global modes' behaviour, Trace the local/base/ideal modes'.
 */
enum class ReplayOrder {
    Schedule, ///< accesses in merged-schedule order
    Trace,    ///< accesses in trace (array) order
};

/**
 * Strategy interface the kernel delegates policy decisions to. One
 * driver instance replays any number of executions; beginExecution
 * resets per-execution state. Everything except beginExecution and
 * onAccess has a no-op (or never-consent) default, so minimal
 * drivers stay minimal.
 */
class PolicyDriver
{
  public:
    virtual ~PolicyDriver() = default;

    /** Whether the kernel should drive the disk model and classify
     * merged-stream gaps (false: the driver classifies its own
     * streams through the sink, e.g. per-process local replay). */
    virtual bool usesDisk() const = 0;

    /** Which access order this driver expects (see ReplayOrder). */
    virtual ReplayOrder replayOrder() const = 0;

    /** A new execution starts; reset per-execution state. */
    virtual void beginExecution(const ExecutionInput &input) = 0;

    /** A process joins (initial process or fork). */
    virtual void processStart(Pid pid, TimeUs time);

    /** A process exits; its constraint disappears. */
    virtual void processExit(Pid pid, TimeUs time, IdleSink &sink);

    /**
     * The standing shutdown decision the kernel checks before every
     * event (disk drivers only). Defaults to never-consent.
     */
    virtual pred::ShutdownDecision standingDecision() const;

    /**
     * One disk access was replayed. For disk drivers, @p completion
     * is the service completion time the disk reported; diskless
     * drivers receive 0. Called after the kernel classified the
     * preceding merged-stream gap and issued any pending shutdown.
     */
    virtual void onAccess(const trace::DiskAccess &access,
                          TimeUs completion, IdleSink &sink) = 0;

    /** Whether the access just replayed parked the disk in the
     * low-power mode (the multi-state extension). */
    virtual bool parkLowPower() const;

    /** The execution's events are exhausted (before results are
     * assembled); classify trailing per-stream gaps here. */
    virtual void endExecution(const ExecutionInput &input,
                              IdleSink &sink);
};

/**
 * Which replay loop SimulationKernel::runExecution uses. Both walk
 * the same schedule in the same order and produce bit-identical
 * RunResults and observer callback sequences (enforced by the
 * KernelPathParity tests); Scalar exists as the readable reference
 * the batched loop is checked against.
 */
enum class KernelPath {
    Batched, ///< SoA batch loop, null-observer fast path (default)
    Scalar,  ///< per-event loop over the AoS SimEvent schedule
};

/** Events per batch of the batched replay loop (and the unit of
 * SimObserver::onBatchFlush notifications). */
constexpr std::size_t kKernelBatchEvents = 256;

/**
 * Replays executions against a driver, owning the disk model, the
 * merged-stream gap state machine and shutdown issuance. Results
 * are bit-identical to the historical per-mode loops.
 *
 * The default Batched path walks the ExecutionInput's SoA event
 * arrays in kKernelBatchEvents-sized batches; when the attached
 * observer is the shared NullObserver the whole replay is compiled
 * with instrumentation statically off — no observer virtual calls,
 * no IdlePeriodRecord construction, a disk model without
 * notifications (<3 ns per classified period, see bench_overhead).
 */
class SimulationKernel
{
  public:
    explicit SimulationKernel(const SimParams &params,
                              SimObserver &observer = nullObserver(),
                              KernelPath path = KernelPath::Batched)
        : params_(params), observer_(observer), path_(path)
    {
    }

    /** Replay one execution. */
    RunResult runExecution(const ExecutionInput &input,
                           PolicyDriver &driver);

    /** Replay every execution in order and merge the results. */
    RunResult run(const std::vector<ExecutionInput> &executions,
                  PolicyDriver &driver);

    /**
     * Pull executions from @p source until it drains, replaying and
     * merging each — the streaming entry point (execution_source.hpp).
     * The vector overload above is this loop over a
     * MaterializedSource, so both paths produce identical results.
     */
    RunResult run(ExecutionSource &source, PolicyDriver &driver);

    const SimParams &params() const { return params_; }

    KernelPath path() const { return path_; }

  private:
    /** The batched SoA loop; Instrumented compiles observer
     * dispatch in or out (chosen once per execution, not per
     * event). */
    template <bool Instrumented>
    RunResult runExecutionBatched(const ExecutionInput &input,
                                  PolicyDriver &driver);

    /** The historical per-event reference loop. */
    RunResult runExecutionScalar(const ExecutionInput &input,
                                 PolicyDriver &driver);

    SimParams params_;
    SimObserver &observer_;
    KernelPath path_;
};

} // namespace pcap::sim

#endif // PCAP_SIM_KERNEL_HPP
