#include "sim/simulator.hpp"

#include "sim/drivers.hpp"

namespace pcap::sim {

AccuracyStats
runLocal(const std::vector<ExecutionInput> &executions,
         PolicySession &session, const SimParams &params)
{
    LocalDriver driver(session);
    SimulationKernel kernel(params);
    return kernel.run(executions, driver).accuracy;
}

RunResult
runGlobal(const std::vector<ExecutionInput> &executions,
          PolicySession &session, const SimParams &params)
{
    GlobalDriver driver(session);
    SimulationKernel kernel(params);
    return kernel.run(executions, driver);
}

RunResult
runGlobalMultiState(const std::vector<ExecutionInput> &executions,
                    PolicySession &session, const SimParams &params)
{
    GlobalDriver driver(session, {.multiState = true});
    SimulationKernel kernel(params);
    return kernel.run(executions, driver);
}

RunResult
runBase(const std::vector<ExecutionInput> &executions,
        const SimParams &params)
{
    BaseDriver driver;
    SimulationKernel kernel(params);
    return kernel.run(executions, driver);
}

RunResult
runIdeal(const std::vector<ExecutionInput> &executions,
         const SimParams &params)
{
    OracleDriver driver;
    SimulationKernel kernel(params);
    return kernel.run(executions, driver);
}

} // namespace pcap::sim
