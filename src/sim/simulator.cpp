#include "sim/simulator.hpp"

#include <algorithm>
#include <map>

#include "core/global.hpp"
#include "util/logging.hpp"

namespace pcap::sim {

namespace {

/**
 * Classify one idle period [gap_start, gap_end) given the shutdown
 * (if any) that happened inside it, and tally it.
 *
 * @param shutdown_at Time the disk was spun down, or -1 for none.
 */
void
classifyGap(TimeUs gap_start, TimeUs gap_end, TimeUs shutdown_at,
            pred::DecisionSource source, TimeUs breakeven,
            AccuracyStats &stats)
{
    const TimeUs gap = gap_end - gap_start;
    const bool opportunity = gap > breakeven;
    if (opportunity)
        ++stats.opportunities;

    if (shutdown_at >= 0) {
        // A consent without a mechanism behind it (a process that
        // never performed I/O holding the latest decision) counts as
        // backup: no primary predictor claimed it.
        const pred::DecisionSource effective =
            source == pred::DecisionSource::None
                ? pred::DecisionSource::Backup
                : source;
        const TimeUs off_time = gap_end - shutdown_at;
        if (opportunity && off_time >= breakeven)
            stats.recordHit(effective);
        else
            stats.recordMiss(effective);
    } else if (opportunity) {
        ++stats.notPredicted;
    }
}

/**
 * Shutdown semantics of a standing local decision over a gap ending
 * at @p gap_end: the spin-down fires at decision.earliest when that
 * falls inside the gap. @return the shutdown time or -1.
 */
TimeUs
localShutdownTime(const pred::ShutdownDecision &decision,
                  TimeUs gap_start, TimeUs gap_end)
{
    if (decision.earliest == kTimeNever)
        return -1;
    const TimeUs at = std::max(decision.earliest, gap_start);
    return at < gap_end ? at : -1;
}

/**
 * One execution of the global simulation. With @p multi_state, a
 * primary prediction parks the disk in the low-power idle mode
 * immediately (Section 7's future-work extension).
 */
RunResult
runGlobalExecution(const ExecutionInput &input, PolicySession &session,
                   const SimParams &params, bool multi_state = false)
{
    session.beginExecution();
    core::GlobalShutdownPredictor gsp(
        [&session](Pid pid, TimeUs start) {
            return session.makeLocal(pid, start);
        });
    power::PowerManagedDisk disk(params.disk);
    RunResult result;

    TimeUs gap_start = -1;  ///< arrival of the last access
    TimeUs seg_start = -1;  ///< earliest instant not yet checked
    TimeUs shutdown_at = -1;
    pred::DecisionSource shutdown_source = pred::DecisionSource::None;
    TimeUs last_completion = 0; ///< when the disk last went idle

    // Issue the pending spin-down to the disk. The power manager's
    // order stands from shutdown_at on; if the disk is still busy
    // then (e.g. finishing a post-spin-up service), it spins down as
    // soon as it goes idle — provided that still happens before the
    // gap ends.
    bool low_power_pending = false;

    auto issue_shutdown = [&](TimeUs gap_end) {
        if (low_power_pending) {
            // The prediction parked the disk in low-power mode as
            // soon as it went idle.
            const TimeUs at = std::max(last_completion, gap_start);
            if (at < gap_end)
                disk.enterLowPower(at);
            low_power_pending = false;
        }
        if (shutdown_at < 0)
            return;
        const TimeUs at = std::max(shutdown_at, last_completion);
        if (at >= gap_end || !disk.shutdown(at))
            ++result.ignoredShutdowns;
    };

    // Decide whether the standing global decision fires a shutdown
    // inside [seg_start, until); constraints may have changed at
    // process starts/exits, so this runs before every event.
    auto check_shutdown = [&](TimeUs until) {
        if (gap_start < 0 || shutdown_at >= 0) {
            seg_start = until;
            return;
        }
        const pred::ShutdownDecision d = gsp.globalDecision();
        if (d.earliest != kTimeNever) {
            const TimeUs candidate = std::max(d.earliest, seg_start);
            if (candidate < until) {
                shutdown_at = candidate;
                shutdown_source = d.source;
            }
        }
        seg_start = until;
    };

    // The merged schedule is precomputed once per input and shared
    // by every policy run replaying it (see ExecutionInput::finalize).
    for (const SimEvent &event : input.simEvents()) {
        check_shutdown(event.time);
        switch (event.kind) {
          case SimEventKind::ProcessStart:
            gsp.processStart(event.pid, event.time);
            break;
          case SimEventKind::ProcessExit:
            gsp.processExit(event.pid, event.time);
            break;
          case SimEventKind::Access: {
            const trace::DiskAccess &access =
                input.accesses[event.accessIndex];
            if (gap_start >= 0) {
                classifyGap(gap_start, access.time, shutdown_at,
                            shutdown_source, params.breakeven(),
                            result.accuracy);
            }
            issue_shutdown(access.time);
            last_completion =
                disk.request(access.time, access.blocks);
            const pred::ShutdownDecision d = gsp.onAccess(access);
            low_power_pending =
                multi_state &&
                d.source == pred::DecisionSource::Primary;
            gap_start = access.time;
            seg_start = access.time;
            shutdown_at = -1;
            shutdown_source = pred::DecisionSource::None;
            break;
          }
        }
    }

    // Trailing idle period to the end of the execution.
    check_shutdown(input.endTime);
    if (gap_start >= 0) {
        classifyGap(gap_start, input.endTime, shutdown_at,
                    shutdown_source, params.breakeven(),
                    result.accuracy);
        issue_shutdown(input.endTime);
    }
    disk.finish(input.endTime);

    result.energy = disk.ledger();
    result.shutdowns = disk.shutdownCount();
    result.spinUps = disk.spinUpCount();
    result.totalSpinUpDelay = disk.totalSpinUpDelay();
    return result;
}

} // namespace

void
RunResult::merge(const RunResult &other)
{
    accuracy.merge(other.accuracy);
    energy.merge(other.energy);
    shutdowns += other.shutdowns;
    spinUps += other.spinUps;
    ignoredShutdowns += other.ignoredShutdowns;
    totalSpinUpDelay += other.totalSpinUpDelay;
}

AccuracyStats
runLocal(const std::vector<ExecutionInput> &executions,
         PolicySession &session, const SimParams &params)
{
    AccuracyStats total;

    for (const ExecutionInput &input : executions) {
        session.beginExecution();

        struct LocalCtx
        {
            std::unique_ptr<pred::ShutdownPredictor> predictor;
            TimeUs prev = -1;
            pred::ShutdownDecision decision;
            TimeUs spanEnd = 0;
        };
        std::map<Pid, LocalCtx> contexts;
        for (const auto &span : input.processes) {
            LocalCtx ctx;
            ctx.predictor = session.makeLocal(span.pid, span.start);
            ctx.decision = pred::initialConsent(span.start);
            ctx.spanEnd = span.end;
            contexts.emplace(span.pid, std::move(ctx));
        }

        // Feed accesses in global time order so processes sharing a
        // prediction table train it in the order it would really
        // fill.
        for (const auto &access : input.accesses) {
            auto it = contexts.find(access.pid);
            if (it == contexts.end())
                continue;
            LocalCtx &ctx = it->second;

            if (ctx.prev >= 0) {
                classifyGap(ctx.prev, access.time,
                            localShutdownTime(ctx.decision, ctx.prev,
                                              access.time),
                            ctx.decision.source, params.breakeven(),
                            total);
            }

            pred::IoContext io;
            io.time = access.time;
            io.sincePrev =
                ctx.prev >= 0 ? access.time - ctx.prev : -1;
            io.pc = access.pc;
            io.fd = access.fd;
            io.file = access.file;
            io.isWrite = access.isWrite;
            ctx.decision = ctx.predictor->onIo(io);
            ctx.prev = access.time;
        }

        // Trailing idle period of each process, to its exit.
        for (auto &[pid, ctx] : contexts) {
            if (ctx.prev < 0 || ctx.spanEnd <= ctx.prev)
                continue;
            classifyGap(ctx.prev, ctx.spanEnd,
                        localShutdownTime(ctx.decision, ctx.prev,
                                          ctx.spanEnd),
                        ctx.decision.source, params.breakeven(),
                        total);
        }
    }
    return total;
}

RunResult
runGlobal(const std::vector<ExecutionInput> &executions,
          PolicySession &session, const SimParams &params)
{
    RunResult total;
    for (const ExecutionInput &input : executions)
        total.merge(runGlobalExecution(input, session, params));
    return total;
}

RunResult
runGlobalMultiState(const std::vector<ExecutionInput> &executions,
                    PolicySession &session, const SimParams &params)
{
    RunResult total;
    for (const ExecutionInput &input : executions) {
        total.merge(
            runGlobalExecution(input, session, params, true));
    }
    return total;
}

RunResult
runBase(const std::vector<ExecutionInput> &executions,
        const SimParams &params)
{
    RunResult total;
    for (const ExecutionInput &input : executions) {
        power::PowerManagedDisk disk(params.disk);
        RunResult result;
        for (const auto &access : input.accesses)
            disk.request(access.time, access.blocks);
        disk.finish(input.endTime);
        result.energy = disk.ledger();
        result.accuracy.opportunities =
            input.countGlobalOpportunities(params.breakeven());
        result.accuracy.notPredicted =
            result.accuracy.opportunities;
        total.merge(result);
    }
    return total;
}

RunResult
runIdeal(const std::vector<ExecutionInput> &executions,
         const SimParams &params)
{
    RunResult total;
    for (const ExecutionInput &input : executions) {
        power::PowerManagedDisk disk(params.disk);
        RunResult result;

        for (std::size_t i = 0; i < input.accesses.size(); ++i) {
            const auto &access = input.accesses[i];
            const TimeUs completion =
                disk.request(access.time, access.blocks);
            const TimeUs next = i + 1 < input.accesses.size()
                                    ? input.accesses[i + 1].time
                                    : input.endTime;
            const TimeUs gap = next - access.time;
            if (gap > params.breakeven())
                ++result.accuracy.opportunities;
            // With future knowledge, spin down the moment the disk
            // goes idle — but only when the off-time pays off.
            if (next - completion >= params.breakeven() &&
                disk.shutdown(completion)) {
                result.accuracy.recordHit(
                    pred::DecisionSource::Primary);
            } else if (gap > params.breakeven()) {
                ++result.accuracy.notPredicted;
            }
        }
        disk.finish(input.endTime);
        result.energy = disk.ledger();
        result.shutdowns = disk.shutdownCount();
        result.spinUps = disk.spinUpCount();
        result.totalSpinUpDelay = disk.totalSpinUpDelay();
        total.merge(result);
    }
    return total;
}

} // namespace pcap::sim
