#include "sim/execution_source.hpp"

#include <utility>

namespace pcap::sim {

HostExecutionSource::HostExecutionSource(
    workload::HostProfile profile, cache::CacheParams cacheParams)
    : stream_(std::move(profile)), cacheParams_(cacheParams)
{
}

const ExecutionInput *
HostExecutionSource::next()
{
    std::optional<trace::Trace> trace = stream_.next();
    if (!trace)
        return nullptr;
    // fromTrace runs the cache filter and finalizes the replay
    // schedule — identical to the materialized pipeline's per-trace
    // step, so a pure single-app profile streams bit-equal inputs.
    slot_ = ExecutionInput::fromTrace(*trace, cacheParams_);
    return &slot_;
}

} // namespace pcap::sim
