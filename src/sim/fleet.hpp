/**
 * @file
 * Fleet driver: N independent power-managed host cells, streamed.
 *
 * Each host cell owns its full simulation state — a kernel, one
 * PolicySession + GlobalDriver per evaluated policy, and the
 * no-power-management baseline — and replays its HostProfile's
 * workload through a HostExecutionSource: traces are generated,
 * filtered, replayed and discarded one execution at a time, so peak
 * memory is O(jobs) ExecutionInputs plus O(shards) aggregation
 * state no matter the fleet size.
 *
 * Aggregation streams too: hosts fold into fixed-size shard
 * accumulators (integer counts, obs::LogSketch quantile sketches,
 * bounded extreme-value candidate lists) the moment their cell
 * finishes, and shards merge in index order on the calling thread —
 * so across-hosts percentiles are bit-identical for every thread
 * count without ever materializing a per-host vector. The shard
 * width is a fixed constant (not derived from jobs) for the same
 * reason. The headline output is the across-hosts distribution —
 * energy and accuracy percentiles plus per-host outliers — rather
 * than the paper's per-app means.
 */

#ifndef PCAP_SIM_FLEET_HPP
#define PCAP_SIM_FLEET_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/sketch.hpp"
#include "sim/kernel.hpp"
#include "sim/policy.hpp"
#include "workload/host_profile.hpp"

namespace pcap::obs {
class AlertEngine;
}

namespace pcap::sim {

/** Hosts folded into one shard accumulator. Fixed (independent of
 * the thread count) so shard boundaries — and therefore the merge
 * order and every double sum — never depend on jobs. */
constexpr std::size_t kFleetHostsPerShard = 16;

/** Extreme per-host values kept per distribution tail as outlier
 * candidates; the k·MAD filter runs over these after the merge. A
 * fleet with more than this many true outliers in one tail reports
 * the most deviant kFleetOutlierCandidates of them. */
constexpr std::size_t kFleetOutlierCandidates = 32;

/** Percentiles of a per-host distribution (p50/p90/p99). */
struct FleetPercentiles
{
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
};

/** Nearest-rank percentiles (p50/p90/p99) of @p values; all zeros
 * for an empty vector. Sorts a copy — deterministic by construction.
 * The exact reference the sketch percentiles are tested against. */
FleetPercentiles percentilesOf(std::vector<double> values);

/** Percentiles read from a quantile sketch (within the sketch's
 * relative accuracy of the nearest-rank answer). */
FleetPercentiles percentilesOf(const obs::LogSketch &sketch);

/** One host flagged as unhealthy for one distribution. */
struct FleetOutlier
{
    std::uint64_t host = 0;
    std::string metric; ///< "saved_fraction" or "miss_fraction"
    double value = 0.0;
    double median = 0.0; ///< distribution median at flag time
    /** |value - median| in MAD units (the k of the k·MAD test). */
    double score = 0.0;
};

/** One extreme-value candidate: a host and its metric value. */
struct FleetHostValue
{
    std::uint64_t host = 0;
    double value = 0.0;
};

/**
 * Flag candidates whose |value - median| exceeds
 * @p madThreshold · max(@p mad, epsilon), labelled @p metric.
 * Returns flagged outliers sorted most-deviant first (score
 * descending, host ascending on ties); duplicate hosts keep one
 * entry. Pure — unit-testable without running a fleet.
 */
std::vector<FleetOutlier>
flagOutliers(const std::string &metric,
             const std::vector<FleetHostValue> &candidates,
             double median, double mad, double madThreshold);

/** Everything one host cell produced. */
struct HostCellResult
{
    std::uint64_t host = 0;
    std::uint64_t executions = 0;
    std::uint64_t accesses = 0; ///< post-cache disk accesses replayed
    std::uint64_t simSpanUs = 0; ///< replayed simulated span (µs)
    double thinkTimeScale = 1.0;

    RunResult base; ///< no power management (the energy baseline)

    /** One merged run per evaluated policy, in request order. */
    std::vector<RunResult> policyRuns;

    /** Learned-state size per policy after the host's last
     * execution, parallel to policyRuns. */
    std::vector<std::size_t> tableEntries;
};

/** Across-hosts aggregate of one policy. */
struct FleetPolicyReport
{
    std::string policy;

    FleetPercentiles energyJ;       ///< per-host total energy
    FleetPercentiles savedFraction; ///< 1 - energy/base, per host
    FleetPercentiles hitFraction;
    FleetPercentiles missFraction;

    double meanEnergyJ = 0.0;
    double meanSavedFraction = 0.0;

    /** Center/spread of the outlier-tested distributions. */
    double medianSavedFraction = 0.0;
    double madSavedFraction = 0.0;
    double medianMissFraction = 0.0;
    double madMissFraction = 0.0;

    std::uint64_t shutdowns = 0; ///< fleet total
    std::uint64_t spinUps = 0;   ///< fleet total

    /** Hosts whose savings or miss rate sit more than
     * FleetOptions::outlierMadThreshold MADs from the fleet median,
     * most deviant first. */
    std::vector<FleetOutlier> outliers;
};

/** Why a host was re-simulated: one pass-1 outlier flag. */
struct DrilldownReason
{
    std::string policy; ///< policy whose distribution flagged it
    std::string metric; ///< "saved_fraction" or "miss_fraction"
    double value = 0.0;
    double median = 0.0;
    double score = 0.0; ///< |value - median| in MAD units
};

/** One policy's drilled re-run of an outlier host. */
struct DrilldownPolicy
{
    std::string policy;
    std::string stem; ///< artifact basename (no directory/extension)
    double energyJ = 0.0;
    double savedFraction = 0.0; ///< vs. the host's base run
    double hitFraction = 0.0;
    double missFraction = 0.0;
    std::uint64_t shutdowns = 0;
    std::uint64_t spinUps = 0;
    std::size_t tableEntries = 0;

    /** Hardware-counter delta over this policy's drilled replay;
     * only populated (hasPerf) when a PerfProfiler was installed
     * for the run, so default drill-downs stay byte-identical. */
    obs::PerfCounts perf;
    bool hasPerf = false;
};

/**
 * The pass-2 re-simulation of one flagged host, fully instrumented:
 * per policy one idle-period trace (.jsonl), one provenance pair
 * (.prov.bin/.prov.jsonl) and one timeline (.timeline.json/.csv),
 * all named <stem>.<ext> inside the drill-down directory.
 */
struct HostDrilldown
{
    std::uint64_t host = 0;
    std::uint64_t seed = 0; ///< the host's derived workload seed
    double thinkTimeScale = 1.0;
    std::uint64_t executions = 0;
    std::uint64_t accesses = 0;
    std::uint64_t simSpanUs = 0;
    double baseEnergyJ = 0.0;
    std::vector<DrilldownReason> reasons; ///< pass-1 outlier flags
    std::vector<DrilldownPolicy> policies;
};

/** The fleet run's aggregate output. */
struct FleetReport
{
    std::uint64_t hosts = 0;
    std::uint64_t executions = 0;
    std::uint64_t accesses = 0;
    std::uint64_t opportunities = 0; ///< breakeven-exceeding periods
    std::uint64_t simSpanUs = 0;     ///< fleet-total simulated span

    FleetPercentiles baseEnergyJ;
    double meanBaseEnergyJ = 0.0;

    std::vector<FleetPolicyReport> policies;

    /** Per-host cells, only with FleetOptions::keepHostResults (the
     * default drops them — a 10k-host report stays small). */
    std::vector<HostCellResult> hostResults;

    /** Flagged hosts re-simulated with full instrumentation, in
     * host order; only with FleetOptions::drilldownDir. */
    std::vector<HostDrilldown> drilldowns;
};

/** Knobs of a fleet run. */
struct FleetOptions
{
    /** Worker threads host shards spread across; 1 = inline, 0 =
     * the hardware count. */
    unsigned jobs = 1;

    /** Registry the aggregate fleet metrics are recorded into
     * (labelled {mode="fleet"}), or null to disable. Recording
     * happens after the parallel phase, on the calling thread, so
     * series are deterministic for every thread count. */
    obs::MetricsRegistry *metrics = nullptr;

    /** Retain every HostCellResult in FleetReport::hostResults
     * (tests, forensics). Off by default: memory then stays bounded
     * regardless of fleet size. */
    bool keepHostResults = false;

    /** A host is an outlier when its value sits more than this many
     * MADs from the fleet median (the robust z-score cut; 3.5 is
     * the conventional Iglewicz-Hoaglin threshold). */
    double outlierMadThreshold = 3.5;

    /**
     * Alert engine fed the fleet's quantile distributions, or null.
     * Each shard's sketches land via addQuantileEvidence in shard
     * order during the serial merge, the fleet-level merged sketches
     * via setQuantileValue — all on the calling thread, so verdicts
     * are deterministic for every thread count. The caller still
     * owns finalize().
     */
    obs::AlertEngine *alerts = nullptr;

    /**
     * When non-empty: after aggregation, re-simulate every
     * MAD-flagged outlier host with full instrumentation (idle
     * trace + provenance + timeline per policy) into this
     * directory — the deterministic drill-down pass. Re-runs are
     * bit-identical to pass 1 because a HostProfile is a pure
     * function of (fleet config, host index) and observers never
     * influence the replay.
     */
    std::string drilldownDir;
};

/**
 * Runs a whole fleet. Deterministic: the report is a pure function
 * of (fleet config, sim params, cache params, policies, options
 * other than jobs) — never of jobs.
 */
class FleetDriver
{
  public:
    FleetDriver(workload::FleetConfig fleet, SimParams sim,
                cache::CacheParams cacheParams,
                FleetOptions options = {});

    /**
     * Simulate every host against each of @p policies (each policy a
     * GlobalDriver with private session state per host) plus the
     * Base baseline, and aggregate across hosts.
     */
    FleetReport run(const std::vector<PolicyConfig> &policies) const;

    /**
     * One host cell, streamed generate-replay-discard. Public for
     * parity tests: a pure single-app profile with scale 1.0 must be
     * RunResult-field-equal to the materialized Evaluation path.
     */
    HostCellResult
    runHost(const workload::HostProfile &profile,
            const std::vector<PolicyConfig> &policies) const;

    /**
     * Re-simulate one host with full instrumentation, writing one
     * idle-period trace, provenance pair and timeline per policy
     * into @p dir (stems "host<id>-<policy>-<hash16>"). The replay
     * is bit-identical to runHost's — observers are passive — so a
     * drilled host's artifacts answer "why was pass 1's number what
     * it was". Public for the drill-down determinism tests.
     */
    HostDrilldown
    drillHost(const workload::HostProfile &profile,
              const std::vector<PolicyConfig> &policies,
              const std::string &dir) const;

    const workload::FleetConfig &fleet() const { return fleet_; }

  private:
    void recordMetrics(const FleetReport &report,
                       const std::vector<PolicyConfig> &policies)
        const;

    workload::FleetConfig fleet_;
    SimParams sim_;
    cache::CacheParams cacheParams_;
    FleetOptions options_;
};

} // namespace pcap::sim

#endif // PCAP_SIM_FLEET_HPP
