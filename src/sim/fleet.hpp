/**
 * @file
 * Fleet driver: N independent power-managed host cells, streamed.
 *
 * Each host cell owns its full simulation state — a kernel, one
 * PolicySession + GlobalDriver per evaluated policy, and the
 * no-power-management baseline — and replays its HostProfile's
 * workload through a HostExecutionSource: traces are generated,
 * filtered, replayed and discarded one execution at a time, so peak
 * memory is O(jobs) ExecutionInputs plus O(hosts) small summaries no
 * matter the fleet size.
 *
 * Host cells shard across the PR1 ThreadPool positionally (worker i
 * writes only slot i), so fleet results are bit-identical for every
 * thread count. The headline output is the across-hosts distribution
 * — energy and accuracy percentiles — rather than the paper's
 * per-app means.
 */

#ifndef PCAP_SIM_FLEET_HPP
#define PCAP_SIM_FLEET_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/kernel.hpp"
#include "sim/policy.hpp"
#include "workload/host_profile.hpp"

namespace pcap::sim {

/** Nearest-rank percentiles of a per-host distribution. */
struct FleetPercentiles
{
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
};

/** Nearest-rank percentiles (p50/p90/p99) of @p values; all zeros
 * for an empty vector. Sorts a copy — deterministic by construction. */
FleetPercentiles percentilesOf(std::vector<double> values);

/** Everything one host cell produced. */
struct HostCellResult
{
    std::uint64_t host = 0;
    std::uint64_t executions = 0;
    std::uint64_t accesses = 0; ///< post-cache disk accesses replayed
    double thinkTimeScale = 1.0;

    RunResult base; ///< no power management (the energy baseline)

    /** One merged run per evaluated policy, in request order. */
    std::vector<RunResult> policyRuns;

    /** Learned-state size per policy after the host's last
     * execution, parallel to policyRuns. */
    std::vector<std::size_t> tableEntries;
};

/** Across-hosts aggregate of one policy. */
struct FleetPolicyReport
{
    std::string policy;

    FleetPercentiles energyJ;       ///< per-host total energy
    FleetPercentiles savedFraction; ///< 1 - energy/base, per host
    FleetPercentiles hitFraction;
    FleetPercentiles missFraction;

    double meanEnergyJ = 0.0;
    double meanSavedFraction = 0.0;

    std::uint64_t shutdowns = 0; ///< fleet total
    std::uint64_t spinUps = 0;   ///< fleet total
};

/** The fleet run's aggregate output. */
struct FleetReport
{
    std::uint64_t hosts = 0;
    std::uint64_t executions = 0;
    std::uint64_t accesses = 0;
    std::uint64_t opportunities = 0; ///< breakeven-exceeding periods

    FleetPercentiles baseEnergyJ;
    double meanBaseEnergyJ = 0.0;

    std::vector<FleetPolicyReport> policies;

    /** Per-host cells, only with FleetOptions::keepHostResults (the
     * default drops them — a 10k-host report stays small). */
    std::vector<HostCellResult> hostResults;
};

/** Knobs of a fleet run. */
struct FleetOptions
{
    /** Worker threads host cells shard across; 1 = inline, 0 = the
     * hardware count. */
    unsigned jobs = 1;

    /** Registry the aggregate fleet metrics are recorded into
     * (labelled {mode="fleet"}), or null to disable. Recording
     * happens after the parallel phase, on the calling thread, so
     * series are deterministic for every thread count. */
    obs::MetricsRegistry *metrics = nullptr;

    /** Retain every HostCellResult in FleetReport::hostResults
     * (tests, forensics). Off by default: memory then stays bounded
     * regardless of fleet size. */
    bool keepHostResults = false;
};

/**
 * Runs a whole fleet. Deterministic: the report is a pure function
 * of (fleet config, sim params, cache params, policies) — never of
 * jobs.
 */
class FleetDriver
{
  public:
    FleetDriver(workload::FleetConfig fleet, SimParams sim,
                cache::CacheParams cacheParams,
                FleetOptions options = {});

    /**
     * Simulate every host against each of @p policies (each policy a
     * GlobalDriver with private session state per host) plus the
     * Base baseline, and aggregate across hosts.
     */
    FleetReport run(const std::vector<PolicyConfig> &policies) const;

    /**
     * One host cell, streamed generate-replay-discard. Public for
     * parity tests: a pure single-app profile with scale 1.0 must be
     * RunResult-field-equal to the materialized Evaluation path.
     */
    HostCellResult
    runHost(const workload::HostProfile &profile,
            const std::vector<PolicyConfig> &policies) const;

    const workload::FleetConfig &fleet() const { return fleet_; }

  private:
    void recordMetrics(const FleetReport &report,
                       const std::vector<PolicyConfig> &policies)
        const;

    workload::FleetConfig fleet_;
    SimParams sim_;
    cache::CacheParams cacheParams_;
    FleetOptions options_;
};

} // namespace pcap::sim

#endif // PCAP_SIM_FLEET_HPP
