/**
 * @file
 * The built-in policy drivers: one per evaluation mode of the paper.
 *
 *  - GlobalDriver: the full multiprocess simulation — the Global
 *    Shutdown Predictor combines per-process decisions (Figures
 *    7-10); Options::multiState adds the Section 7 low-power parking
 *    extension.
 *  - LocalDriver: every process's stream judged by its own local
 *    predictor in isolation, diskless (Figure 6).
 *  - BaseDriver: no power management (Figure 8 "Base").
 *  - OracleDriver: future knowledge — spin down at the start of
 *    exactly the idle periods long enough to pay off (Figure 8
 *    "Ideal").
 */

#ifndef PCAP_SIM_DRIVERS_HPP
#define PCAP_SIM_DRIVERS_HPP

#include <memory>
#include <optional>
#include <unordered_map>

#include "core/global.hpp"
#include "sim/kernel.hpp"
#include "sim/policy.hpp"

namespace pcap::sim {

/** Full multiprocess replay behind the Global Shutdown Predictor. */
class GlobalDriver final : public PolicyDriver
{
  public:
    struct Options
    {
        /** Park the disk in the low-power idle mode on every
         * primary prediction (the multi-state extension). */
        bool multiState = false;
    };

    explicit GlobalDriver(PolicySession &session);
    GlobalDriver(PolicySession &session, Options options);

    bool usesDisk() const override { return true; }
    ReplayOrder replayOrder() const override
    {
        return ReplayOrder::Schedule;
    }
    void beginExecution(const ExecutionInput &input) override;
    void processStart(Pid pid, TimeUs time) override;
    void processExit(Pid pid, TimeUs time, IdleSink &sink) override;
    pred::ShutdownDecision standingDecision() const override;
    void onAccess(const trace::DiskAccess &access, TimeUs completion,
                  IdleSink &sink) override;
    bool parkLowPower() const override { return park_; }

    /** Pid holding the current global decision — the provenance
     * recorder's attribution query (see bindDecisionPid). */
    Pid decisionPid() const
    {
        return gsp_ ? gsp_->globalDecisionDetailed().pid : -1;
    }

  private:
    PolicySession &session_;
    Options options_;
    std::optional<core::GlobalShutdownPredictor> gsp_;
    bool park_ = false;
};

/**
 * Diskless per-process replay: each process's accesses feed a
 * private local predictor, and each per-process idle period is
 * classified through the sink. Accesses are fed in trace order so
 * processes sharing a prediction table train it in the order it
 * would really fill.
 */
class LocalDriver final : public PolicyDriver
{
  public:
    explicit LocalDriver(PolicySession &session);

    bool usesDisk() const override { return false; }
    ReplayOrder replayOrder() const override
    {
        return ReplayOrder::Trace;
    }
    void beginExecution(const ExecutionInput &input) override;
    void onAccess(const trace::DiskAccess &access, TimeUs completion,
                  IdleSink &sink) override;
    void endExecution(const ExecutionInput &input,
                      IdleSink &sink) override;

  private:
    struct Ctx
    {
        std::unique_ptr<pred::ShutdownPredictor> predictor;
        TimeUs prev = -1;
        pred::ShutdownDecision decision;
        TimeUs spanEnd = 0;
    };

    PolicySession &session_;
    std::unordered_map<Pid, Ctx> contexts_;
    bool warnedUnknownPid_ = false;
};

/** No power management: the disk never spins down. */
class BaseDriver final : public PolicyDriver
{
  public:
    bool usesDisk() const override { return true; }
    ReplayOrder replayOrder() const override
    {
        return ReplayOrder::Trace;
    }
    void beginExecution(const ExecutionInput &input) override
    {
        (void)input;
    }
    void onAccess(const trace::DiskAccess &access, TimeUs completion,
                  IdleSink &sink) override
    {
        (void)access;
        (void)completion;
        (void)sink;
    }
};

/**
 * Oracle with future knowledge: after each access it peeks at the
 * next access time and consents to a spin-down at the service
 * completion exactly when the off-time would pay off.
 */
class OracleDriver final : public PolicyDriver
{
  public:
    bool usesDisk() const override { return true; }
    ReplayOrder replayOrder() const override
    {
        return ReplayOrder::Trace;
    }
    void beginExecution(const ExecutionInput &input) override;
    pred::ShutdownDecision standingDecision() const override
    {
        return decision_;
    }
    void onAccess(const trace::DiskAccess &access, TimeUs completion,
                  IdleSink &sink) override;

  private:
    const ExecutionInput *input_ = nullptr;
    std::size_t index_ = 0; ///< trace index of the next access
    pred::ShutdownDecision decision_;
};

} // namespace pcap::sim

#endif // PCAP_SIM_DRIVERS_HPP
