#include "sim/trace_store.hpp"

#include <algorithm>
#include <sstream>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "workload/app_model.hpp"

namespace pcap::sim {

std::vector<trace::Trace>
generateTraces(std::uint64_t seed, const std::string &app,
               int maxExecutions, unsigned jobs,
               const obs::ScopedMetrics &scope)
{
    const auto model = workload::makeApp(app);
    if (!model)
        fatal("TraceStore: unknown application '" + app + "'");

    int executions = model->info().executions;
    if (maxExecutions > 0)
        executions = std::min(executions, maxExecutions);

    // Fork the per-execution RNGs sequentially before the parallel
    // expansion — trace content must not depend on worker count.
    std::vector<Rng> rngs;
    rngs.reserve(executions);
    Rng app_rng(seed ^ hashString(app));
    for (int execution = 0; execution < executions; ++execution)
        rngs.push_back(
            app_rng.fork(static_cast<std::uint64_t>(execution)));

    std::vector<trace::Trace> traces(executions);
    pcap::parallelFor(jobs, static_cast<std::size_t>(executions),
                      [&](std::size_t i) {
                          traces[i] = model->generate(
                              static_cast<int>(i), rngs[i]);
                          workload::recordTraceMetrics(traces[i],
                                                       scope);
                      });
    return traces;
}

std::vector<ExecutionInput>
inputsFromTraces(const std::vector<trace::Trace> &traces,
                 const cache::CacheParams &params, unsigned jobs)
{
    std::vector<ExecutionInput> result(traces.size());
    pcap::parallelFor(jobs, traces.size(), [&](std::size_t i) {
        result[i] = ExecutionInput::fromTrace(traces[i], params);
    });
    return result;
}

std::shared_ptr<const std::vector<trace::Trace>>
TraceStore::traces(std::uint64_t seed, const std::string &app,
                   int maxExecutions, unsigned jobs,
                   const obs::ScopedMetrics &scope)
{
    std::ostringstream key;
    key << seed << '\x1f' << app << '\x1f' << maxExecutions;

    std::shared_ptr<Memo> memo;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto &entry = memos_[key.str()];
        if (!entry)
            entry = std::make_shared<Memo>();
        memo = entry;
    }
    bool generatedHere = false;
    std::call_once(memo->once, [&] {
        memo->value =
            std::make_shared<const std::vector<trace::Trace>>(
                generateTraces(seed, app, maxExecutions, jobs,
                               scope));
        std::uint64_t bytes = 0;
        for (const trace::Trace &trace : *memo->value) {
            bytes += sizeof(trace::Trace) +
                     trace.events().size() *
                         sizeof(trace::TraceEvent);
        }
        memo->bytes = bytes;
        generated_.fetch_add(1, std::memory_order_relaxed);
        generatedHere = true;
    });
    if (generatedHere) {
        // Publish the entry's residency under the lock — but only
        // if the key still maps to this memo. A retention scope may
        // have expired mid-generation; the vector then lives solely
        // with its callers and was never resident here.
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = memos_.find(key.str());
        if (it != memos_.end() && it->second == memo) {
            memo->ready = true;
            adjustBytes(static_cast<std::int64_t>(memo->bytes));
        }
    }
    return memo->value;
}

void
TraceStore::bindBytesGauge(obs::Gauge *gauge)
{
    std::lock_guard<std::mutex> lock(mutex_);
    bytesGauge_ = gauge;
    if (bytesGauge_)
        bytesGauge_->set(static_cast<double>(
            bytes_.load(std::memory_order_relaxed)));
}

void
TraceStore::retain()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++retentions_;
}

void
TraceStore::release()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (--retentions_ > 0)
        return;
    // The last scope closed: drop every published entry. In-flight
    // generations (not yet ready) stay — erasing them would let a
    // concurrent request regenerate the same key twice.
    for (auto it = memos_.begin(); it != memos_.end();) {
        if (it->second->ready) {
            adjustBytes(
                -static_cast<std::int64_t>(it->second->bytes));
            evicted_.fetch_add(1, std::memory_order_relaxed);
            it = memos_.erase(it);
        } else {
            ++it;
        }
    }
}

void
TraceStore::adjustBytes(std::int64_t delta)
{
    const std::uint64_t updated =
        bytes_.load(std::memory_order_relaxed) +
        static_cast<std::uint64_t>(delta);
    bytes_.store(updated, std::memory_order_relaxed);
    if (bytesGauge_)
        bytesGauge_->set(static_cast<double>(updated));
}

} // namespace pcap::sim
