#include "sim/observer.hpp"

#include <algorithm>

#include "sim/input.hpp"
#include "util/logging.hpp"

namespace pcap::sim {

const char *
idleOutcomeName(IdleOutcome outcome)
{
    switch (outcome) {
      case IdleOutcome::Short: return "short";
      case IdleOutcome::NotPredicted: return "not_predicted";
      case IdleOutcome::HitPrimary: return "hit_primary";
      case IdleOutcome::HitBackup: return "hit_backup";
      case IdleOutcome::MissPrimary: return "miss_primary";
      case IdleOutcome::MissBackup: return "miss_backup";
    }
    return "unknown";
}

SimObserver &
nullObserver()
{
    static NullObserver observer;
    return observer;
}

// ---------------------------------------------------------------
// JsonlTraceObserver
// ---------------------------------------------------------------

JsonlTraceObserver::JsonlTraceObserver(const std::string &path)
    : os_(path)
{
    if (!os_)
        fatal("JsonlTraceObserver: cannot write " + path);
}

void
JsonlTraceObserver::onExecutionBegin(const ExecutionInput &input)
{
    app_ = input.app;
    execution_ = input.execution;
}

void
JsonlTraceObserver::onIdlePeriod(const IdlePeriodRecord &record)
{
    // App names are plain identifiers, so no string escaping is
    // needed for a valid JSON line.
    os_ << "{\"app\":\"" << app_
        << "\",\"execution\":" << execution_
        << ",\"pid\":" << record.pid
        << ",\"start_us\":" << record.start
        << ",\"end_us\":" << record.end
        << ",\"length_us\":" << record.length()
        << ",\"shutdown_us\":" << record.shutdownAt
        << ",\"source\":\"" << pred::decisionSourceName(record.source)
        << "\",\"outcome\":\"" << idleOutcomeName(record.outcome)
        << "\"}\n";
    ++records_;
}

// ---------------------------------------------------------------
// IdleHistogramObserver
// ---------------------------------------------------------------

std::uint64_t
IdleHistogramObserver::Bucket::total() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t count : byOutcome)
        sum += count;
    return sum;
}

IdleHistogramObserver::IdleHistogramObserver(
    std::vector<TimeUs> boundaries)
{
    TimeUs previous = -1;
    for (TimeUs upper : boundaries) {
        if (upper <= previous) {
            fatal("IdleHistogramObserver: boundaries must be "
                  "strictly ascending");
        }
        previous = upper;
        Bucket bucket;
        bucket.upper = upper;
        buckets_.push_back(bucket);
    }
    buckets_.push_back(Bucket{}); // open top bucket
}

std::vector<TimeUs>
IdleHistogramObserver::defaultBoundaries(TimeUs breakeven)
{
    return {millisUs(10.0),  millisUs(100.0), secondsUs(1.0),
            breakeven,       secondsUs(10.0), secondsUs(30.0),
            secondsUs(60.0), secondsUs(300.0)};
}

void
IdleHistogramObserver::onIdlePeriod(const IdlePeriodRecord &record)
{
    const TimeUs length = record.length();
    std::size_t index = 0;
    while (index + 1 < buckets_.size() &&
           length > buckets_[index].upper)
        ++index;
    ++buckets_[index]
          .byOutcome[static_cast<std::size_t>(record.outcome)];
    ++periods_;
}

} // namespace pcap::sim
