#include "sim/observer.hpp"

#include <algorithm>

#include "sim/input.hpp"
#include "sim/kernel.hpp"
#include "util/logging.hpp"

namespace pcap::sim {

const char *
idleOutcomeName(IdleOutcome outcome)
{
    switch (outcome) {
      case IdleOutcome::Short: return "short";
      case IdleOutcome::NotPredicted: return "not_predicted";
      case IdleOutcome::HitPrimary: return "hit_primary";
      case IdleOutcome::HitBackup: return "hit_backup";
      case IdleOutcome::MissPrimary: return "miss_primary";
      case IdleOutcome::MissBackup: return "miss_backup";
    }
    return "unknown";
}

SimObserver &
nullObserver()
{
    static NullObserver observer;
    return observer;
}

// ---------------------------------------------------------------
// JsonlTraceObserver
// ---------------------------------------------------------------

JsonlTraceObserver::JsonlTraceObserver(const std::string &path)
    : os_(path), path_(path)
{
    if (!os_)
        fatal("JsonlTraceObserver: cannot write " + path);
}

void
JsonlTraceObserver::onExecutionBegin(const ExecutionInput &input)
{
    app_ = input.app;
    execution_ = input.execution;
}

void
JsonlTraceObserver::onExecutionEnd(const ExecutionInput &input,
                                   const RunResult &result)
{
    (void)input;
    (void)result;
    // Push buffered records to the OS now so a full disk or revoked
    // permission surfaces here, attributed to the file — not as a
    // silently truncated trace discovered days later.
    os_.flush();
    if (!os_) {
        fatal("JsonlTraceObserver: write failed on " + path_ +
              " after " + std::to_string(records_) + " records");
    }
}

void
JsonlTraceObserver::onIdlePeriod(const IdlePeriodRecord &record)
{
    // App names are plain identifiers, so no string escaping is
    // needed for a valid JSON line.
    os_ << "{\"app\":\"" << app_
        << "\",\"execution\":" << execution_
        << ",\"pid\":" << record.pid
        << ",\"start_us\":" << record.start
        << ",\"end_us\":" << record.end
        << ",\"length_us\":" << record.length()
        << ",\"shutdown_us\":" << record.shutdownAt
        << ",\"source\":\"" << pred::decisionSourceName(record.source)
        << "\",\"outcome\":\"" << idleOutcomeName(record.outcome)
        << "\"}\n";
    if (!os_) {
        fatal("JsonlTraceObserver: write failed on " + path_ +
              " after " + std::to_string(records_) + " records");
    }
    ++records_;
}

// ---------------------------------------------------------------
// TeeObserver
// ---------------------------------------------------------------

TeeObserver::TeeObserver(std::vector<SimObserver *> observers)
    : observers_(std::move(observers))
{
    for (SimObserver *observer : observers_) {
        if (!observer)
            panic("TeeObserver: null observer");
    }
}

void
TeeObserver::onExecutionBegin(const ExecutionInput &input)
{
    for (SimObserver *observer : observers_)
        observer->onExecutionBegin(input);
}

void
TeeObserver::onExecutionEnd(const ExecutionInput &input,
                            const RunResult &result)
{
    for (SimObserver *observer : observers_)
        observer->onExecutionEnd(input, result);
}

void
TeeObserver::onIdlePeriod(const IdlePeriodRecord &record)
{
    for (SimObserver *observer : observers_)
        observer->onIdlePeriod(record);
}

void
TeeObserver::onShutdownLatched(TimeUs at, pred::DecisionSource source)
{
    for (SimObserver *observer : observers_)
        observer->onShutdownLatched(at, source);
}

void
TeeObserver::onShutdownIssued(TimeUs at)
{
    for (SimObserver *observer : observers_)
        observer->onShutdownIssued(at);
}

void
TeeObserver::onShutdownIgnored(TimeUs at)
{
    for (SimObserver *observer : observers_)
        observer->onShutdownIgnored(at);
}

void
TeeObserver::onBatchFlush(std::size_t eventCount)
{
    for (SimObserver *observer : observers_)
        observer->onBatchFlush(eventCount);
}

void
TeeObserver::onDiskStateChange(TimeUs time, power::DiskState from,
                               power::DiskState to)
{
    for (SimObserver *observer : observers_)
        observer->onDiskStateChange(time, from, to);
}

void
TeeObserver::onSpinUpServed(TimeUs time, TimeUs delay)
{
    for (SimObserver *observer : observers_)
        observer->onSpinUpServed(time, delay);
}

// ---------------------------------------------------------------
// ProvenanceObserver
// ---------------------------------------------------------------

static_assert(obs::kProvenancePathTail == core::kProvenancePathDepth,
              "provenance record and core tap disagree on the path "
              "tail depth");

ProvenanceObserver::ProvenanceObserver(
    obs::ProvenanceRecorder &recorder, const power::DiskParams &disk)
    : recorder_(recorder), disk_(disk)
{
}

void
ProvenanceObserver::bindDecisionPid(std::function<Pid()> query)
{
    decisionPid_ = std::move(query);
}

void
ProvenanceObserver::onExecutionBegin(const ExecutionInput &input)
{
    latest_.clear();
    latchValid_ = false;
    latchHasEvent_ = false;
    execution_ = input.execution;
    execEnd_ = input.endTime;
}

void
ProvenanceObserver::onPcapDecision(Pid pid,
                                   const core::PcapDecisionEvent &event)
{
    latest_[pid] = event;
}

void
ProvenanceObserver::onPcapTraining(Pid pid,
                                   const core::PcapTrainEvent &event)
{
    (void)pid;
    (void)event;
    ++trainings_;
}

void
ProvenanceObserver::onTableEviction(const core::TableKey &key)
{
    (void)key;
    ++evictions_;
}

void
ProvenanceObserver::onShutdownLatched(TimeUs at,
                                      pred::DecisionSource source)
{
    (void)at;
    (void)source;
    latchValid_ = true;
    latchPid_ = decisionPid_ ? decisionPid_() : -1;
    latchHasEvent_ = false;
    auto it = latest_.find(latchPid_);
    if (it != latest_.end()) {
        latchEvent_ = it->second;
        latchHasEvent_ = true;
    }
}

void
ProvenanceObserver::fillDecision(obs::ProvenanceRecord &out,
                                 const core::PcapDecisionEvent &event)
{
    out.flags |= obs::kProvHasDecision;
    out.signature = event.signature;
    out.pathHash = event.pathHash;
    out.pathLength = event.pathLength;
    out.pathTail = event.pathTail;
    out.pathTailLength = event.pathTailLength;
    out.decisionTimeUs = event.time;
    out.decisionEarliestUs = event.decision.earliest == kTimeNever
                                 ? -1
                                 : event.decision.earliest;
    if (event.predicted)
        out.flags |= obs::kProvPredicted;
    if (event.entryPresent) {
        out.flags |= obs::kProvEntryPresent;
        out.entryHitsBefore = event.entryHitsBefore;
        out.entryTrainingsBefore = event.entryTrainingsBefore;
        out.entryHitsAfter = event.entryHitsAfter;
        out.entryTrainingsAfter = event.entryTrainingsAfter;
    }
}

void
ProvenanceObserver::onIdlePeriod(const IdlePeriodRecord &record)
{
    obs::ProvenanceRecord out;
    out.startUs = record.start;
    out.endUs = record.end;
    out.shutdownUs = record.shutdownAt;
    out.execution = execution_;
    out.outcome = static_cast<std::uint8_t>(record.outcome);
    out.source = static_cast<std::uint8_t>(record.source);

    Pid pid = record.pid;
    const core::PcapDecisionEvent *event = nullptr;
    if (record.pid != kMergedStreamPid) {
        // Per-process stream: the stored event is still the
        // gap-opening one (classification precedes the predictor
        // update for the terminating access).
        auto it = latest_.find(pid);
        if (it != latest_.end())
            event = &it->second;
    } else if (latchValid_) {
        pid = latchPid_;
        if (latchHasEvent_)
            event = &latchEvent_;
    } else if (decisionPid_) {
        // No shutdown latched in this gap: attribute to the live
        // holder of the global decision.
        pid = decisionPid_();
        auto it = latest_.find(pid);
        if (it != latest_.end())
            event = &it->second;
    }
    latchValid_ = false;

    out.pid = pid;
    if (event)
        fillDecision(out, *event);

    if (record.shutdownAt >= 0) {
        const double off_sec =
            usToSeconds(record.end - record.shutdownAt);
        double cost = disk_.shutdownEnergyJ +
                      disk_.standbyPowerW * off_sec;
        // The trailing gap of an execution ends with the disk still
        // down: no spin-up is charged against it.
        if (record.end != execEnd_)
            cost += disk_.spinUpEnergyJ;
        out.energyDeltaJ = disk_.idlePowerW * off_sec - cost;
    }
    recorder_.append(out);
}

// ---------------------------------------------------------------
// MetricsObserver
// ---------------------------------------------------------------

namespace {

/**
 * Idle-length bucket bounds in simulated µs, matching
 * IdleHistogramObserver::defaultBoundaries. Sorted and deduplicated
 * because an ablated breakeven may coincide with (or cross) the
 * fixed decades.
 */
std::vector<double>
idleLengthUppers(TimeUs breakeven)
{
    std::vector<double> uppers;
    for (TimeUs upper : IdleHistogramObserver::defaultBoundaries(
             breakeven))
        uppers.push_back(static_cast<double>(upper));
    std::sort(uppers.begin(), uppers.end());
    uppers.erase(std::unique(uppers.begin(), uppers.end()),
                 uppers.end());
    return uppers;
}

} // namespace

MetricsObserver::MetricsObserver(obs::ScopedMetrics scope,
                                 TimeUs breakeven, bool trackDisk)
    : scope_(std::move(scope)), trackDisk_(trackDisk),
      executions_(scope_.counter("pcap_sim_executions_total")),
      idleLength_(scope_.histogram("pcap_sim_idle_period_us",
                                   idleLengthUppers(breakeven))),
      shutdownsIssued_(scope_.counter(
          "pcap_sim_shutdown_orders_total", {{"status", "issued"}})),
      shutdownsIgnored_(scope_.counter(
          "pcap_sim_shutdown_orders_total", {{"status", "ignored"}})),
      spinUps_(scope_.counter("pcap_disk_spin_ups_total")),
      spinUpDelayUs_(
          scope_.counter("pcap_disk_spin_up_delay_us_total")),
      stateTransitions_(
          scope_.counter("pcap_disk_state_transitions_total")),
      batches_(scope_.counter("pcap_sim_kernel_batches_total")),
      batchEvents_(
          scope_.counter("pcap_sim_kernel_batch_events_total")),
      batchFlush_(scope_.timer("pcap_sim_batch_flush_seconds")),
      uppers_(idleLengthUppers(breakeven)),
      localBuckets_(uppers_.size() + 1, 0)
{
    for (std::size_t i = 0; i < idlePeriods_.size(); ++i) {
        idlePeriods_[i] = &scope_.counter(
            "pcap_sim_idle_periods_total",
            {{"outcome",
              idleOutcomeName(static_cast<IdleOutcome>(i))}});
    }
    static constexpr power::DiskState kStates[] = {
        power::DiskState::Active,
        power::DiskState::Idle,
        power::DiskState::LowPower,
        power::DiskState::Standby,
    };
    for (std::size_t i = 0; i < stateUs_.size(); ++i) {
        stateUs_[i] = &scope_.counter(
            "pcap_disk_state_us_total",
            {{"state", power::diskStateName(kStates[i])}});
    }
}

void
MetricsObserver::flush()
{
    // One lap per execution flush: the lap count is deterministic
    // and diffed by tools/metrics_diff.py; the seconds are wall time
    // and ignored there.
    const obs::PhaseTimer::Scope lap = batchFlush_.measure();
    for (std::size_t i = 0; i < localOutcomes_.size(); ++i) {
        if (localOutcomes_[i]) {
            idlePeriods_[i]->inc(localOutcomes_[i]);
            localOutcomes_[i] = 0;
        }
    }
    if (localIdleCount_) {
        idleLength_.merge(localBuckets_, localIdleCount_,
                          localIdleSum_);
        std::fill(localBuckets_.begin(), localBuckets_.end(), 0);
        localIdleCount_ = 0;
        localIdleSum_ = 0.0;
    }
    shutdownsIssued_.inc(localIssued_);
    shutdownsIgnored_.inc(localIgnored_);
    spinUps_.inc(localSpinUps_);
    spinUpDelayUs_.inc(localSpinUpDelay_);
    stateTransitions_.inc(localTransitions_);
    localIssued_ = localIgnored_ = 0;
    localSpinUps_ = localSpinUpDelay_ = localTransitions_ = 0;
    for (std::size_t i = 0; i < localStateUs_.size(); ++i) {
        if (localStateUs_[i]) {
            stateUs_[i]->inc(localStateUs_[i]);
            localStateUs_[i] = 0;
        }
    }
    if (localBatches_) {
        batches_.inc(localBatches_);
        batchEvents_.inc(localBatchEvents_);
        localBatches_ = localBatchEvents_ = 0;
    }
}

void
MetricsObserver::onExecutionBegin(const ExecutionInput &input)
{
    (void)input;
    executions_.inc();
    // A fresh PowerManagedDisk starts Idle at time zero.
    lastState_ = power::DiskState::Idle;
    lastChange_ = 0;
}

void
MetricsObserver::onExecutionEnd(const ExecutionInput &input,
                                const RunResult &result)
{
    if (trackDisk_ && input.endTime > lastChange_) {
        // No transition fires at finish; close the residency of the
        // final state by hand.
        localStateUs_[static_cast<std::size_t>(lastState_)] +=
            static_cast<std::uint64_t>(input.endTime - lastChange_);
    }
    flush();
    power::recordLedgerMetrics(result.energy, scope_);
}

void
MetricsObserver::onIdlePeriod(const IdlePeriodRecord &record)
{
    ++localOutcomes_[static_cast<std::size_t>(record.outcome)];
    const double length = static_cast<double>(record.length());
    std::size_t index = 0;
    while (index < uppers_.size() && length > uppers_[index])
        ++index;
    ++localBuckets_[index];
    ++localIdleCount_;
    localIdleSum_ += length;
}

void
MetricsObserver::onBatchFlush(std::size_t eventCount)
{
    ++localBatches_;
    localBatchEvents_ += static_cast<std::uint64_t>(eventCount);
}

void
MetricsObserver::onShutdownIssued(TimeUs at)
{
    (void)at;
    ++localIssued_;
}

void
MetricsObserver::onShutdownIgnored(TimeUs at)
{
    (void)at;
    ++localIgnored_;
}

void
MetricsObserver::onDiskStateChange(TimeUs time, power::DiskState from,
                                   power::DiskState to)
{
    (void)from;
    if (!trackDisk_)
        return;
    ++localTransitions_;
    if (time > lastChange_) {
        localStateUs_[static_cast<std::size_t>(lastState_)] +=
            static_cast<std::uint64_t>(time - lastChange_);
    }
    lastState_ = to;
    lastChange_ = time;
}

void
MetricsObserver::onSpinUpServed(TimeUs time, TimeUs delay)
{
    (void)time;
    ++localSpinUps_;
    localSpinUpDelay_ += static_cast<std::uint64_t>(delay);
}

// ---------------------------------------------------------------
// TimelineObserver
// ---------------------------------------------------------------

static_assert(obs::kTimelineStates == 4,
              "timeline state rows must cover power::DiskState");
static_assert(obs::kTimelineOutcomes == 6,
              "timeline outcome rows must cover sim::IdleOutcome");

namespace {

/** Power draw of @p state in watts. */
double
stateDrawW(const power::DiskParams &disk, power::DiskState state)
{
    switch (state) {
      case power::DiskState::Active: return disk.busyPowerW;
      case power::DiskState::Idle: return disk.idlePowerW;
      case power::DiskState::LowPower: return disk.lowPowerIdleW;
      case power::DiskState::Standby: return disk.standbyPowerW;
    }
    return 0.0;
}

} // namespace

TimelineObserver::TimelineObserver(const power::DiskParams &disk,
                                   bool trackDisk,
                                   std::size_t buckets)
    : timeline_(buckets), disk_(disk), trackDisk_(trackDisk)
{
}

void
TimelineObserver::bindTableSize(std::function<std::size_t()> query)
{
    tableSize_ = std::move(query);
}

obs::TimelineMeta
TimelineObserver::makeMeta(std::string cell, std::string mode,
                           std::string app, std::string policy)
{
    obs::TimelineMeta meta;
    meta.cell = std::move(cell);
    meta.mode = std::move(mode);
    meta.app = std::move(app);
    meta.policy = std::move(policy);
    meta.stateNames = {"active", "idle", "low_power", "standby"};
    for (std::size_t i = 0; i < obs::kTimelineOutcomes; ++i) {
        meta.outcomeNames.push_back(
            idleOutcomeName(static_cast<IdleOutcome>(i)));
    }
    // Energy rows: per-state draw in DiskState order, plus the
    // spin-down/spin-up/head-load transition costs.
    meta.energyNames = {"active", "idle", "low_power", "standby",
                        "transition"};
    return meta;
}

void
TimelineObserver::accrue(power::DiskState state, TimeUs startUs,
                         TimeUs endUs)
{
    if (endUs <= startUs)
        return;
    const std::size_t row = static_cast<std::size_t>(state);
    timeline_.addStateResidency(row, startUs, endUs);
    timeline_.addEnergy(row, startUs, endUs,
                        stateDrawW(disk_, state) *
                            usToSeconds(endUs - startUs));
}

void
TimelineObserver::sampleTable(TimeUs atUs)
{
    if (tableSize_)
        timeline_.sampleTable(atUs, tableSize_());
}

void
TimelineObserver::onExecutionBegin(const ExecutionInput &input)
{
    (void)input;
    // A fresh PowerManagedDisk starts Idle at time zero.
    lastState_ = power::DiskState::Idle;
    lastChange_ = 0;
    sampleTable(offset_);
}

void
TimelineObserver::onExecutionEnd(const ExecutionInput &input,
                                 const RunResult &result)
{
    (void)result;
    if (trackDisk_) {
        // No transition fires at finish; close the final state's
        // residency by hand, as MetricsObserver does.
        accrue(lastState_, offset_ + lastChange_,
               offset_ + input.endTime);
    }
    offset_ += input.endTime;
    sampleTable(offset_ > 0 ? offset_ - 1 : 0);
}

void
TimelineObserver::onIdlePeriod(const IdlePeriodRecord &record)
{
    timeline_.countOutcome(
        static_cast<std::size_t>(record.outcome),
        offset_ + record.end);
    sampleTable(offset_ + record.end);
}

void
TimelineObserver::onShutdownIssued(TimeUs at)
{
    timeline_.countShutdown(offset_ + at);
}

void
TimelineObserver::onDiskStateChange(TimeUs time,
                                    power::DiskState from,
                                    power::DiskState to)
{
    if (!trackDisk_)
        return;
    accrue(lastState_, offset_ + lastChange_, offset_ + time);
    // Transition costs land at the instant of the change: entering
    // standby pays the spin-down, leaving it pays the spin-up, and
    // re-loading the heads out of low power pays the exit energy.
    double transitionJ = 0.0;
    if (to == power::DiskState::Standby)
        transitionJ += disk_.shutdownEnergyJ;
    if (from == power::DiskState::Standby)
        transitionJ += disk_.spinUpEnergyJ;
    if (from == power::DiskState::LowPower &&
        to != power::DiskState::Standby)
        transitionJ += disk_.lowPowerExitEnergyJ;
    if (transitionJ > 0.0) {
        timeline_.addEnergy(obs::kTimelineEnergyTransition,
                            offset_ + time, offset_ + time,
                            transitionJ);
    }
    lastState_ = to;
    lastChange_ = time;
}

void
TimelineObserver::onSpinUpServed(TimeUs time, TimeUs delay)
{
    (void)delay;
    timeline_.countSpinUp(offset_ + time);
}

// ---------------------------------------------------------------
// IdleHistogramObserver
// ---------------------------------------------------------------

std::uint64_t
IdleHistogramObserver::Bucket::total() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t count : byOutcome)
        sum += count;
    return sum;
}

IdleHistogramObserver::IdleHistogramObserver(
    std::vector<TimeUs> boundaries)
{
    TimeUs previous = -1;
    for (TimeUs upper : boundaries) {
        if (upper <= previous) {
            fatal("IdleHistogramObserver: boundaries must be "
                  "strictly ascending");
        }
        previous = upper;
        Bucket bucket;
        bucket.upper = upper;
        buckets_.push_back(bucket);
    }
    buckets_.push_back(Bucket{}); // open top bucket
}

std::vector<TimeUs>
IdleHistogramObserver::defaultBoundaries(TimeUs breakeven)
{
    return {millisUs(10.0),  millisUs(100.0), secondsUs(1.0),
            breakeven,       secondsUs(10.0), secondsUs(30.0),
            secondsUs(60.0), secondsUs(300.0)};
}

void
IdleHistogramObserver::onIdlePeriod(const IdlePeriodRecord &record)
{
    const TimeUs length = record.length();
    std::size_t index = 0;
    while (index + 1 < buckets_.size() &&
           length > buckets_[index].upper)
        ++index;
    ++buckets_[index]
          .byOutcome[static_cast<std::size_t>(record.outcome)];
    ++periods_;
}

} // namespace pcap::sim
