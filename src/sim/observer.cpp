#include "sim/observer.hpp"

#include <algorithm>

#include "sim/input.hpp"
#include "sim/kernel.hpp"
#include "util/logging.hpp"

namespace pcap::sim {

const char *
idleOutcomeName(IdleOutcome outcome)
{
    switch (outcome) {
      case IdleOutcome::Short: return "short";
      case IdleOutcome::NotPredicted: return "not_predicted";
      case IdleOutcome::HitPrimary: return "hit_primary";
      case IdleOutcome::HitBackup: return "hit_backup";
      case IdleOutcome::MissPrimary: return "miss_primary";
      case IdleOutcome::MissBackup: return "miss_backup";
    }
    return "unknown";
}

SimObserver &
nullObserver()
{
    static NullObserver observer;
    return observer;
}

// ---------------------------------------------------------------
// JsonlTraceObserver
// ---------------------------------------------------------------

JsonlTraceObserver::JsonlTraceObserver(const std::string &path)
    : os_(path), path_(path)
{
    if (!os_)
        fatal("JsonlTraceObserver: cannot write " + path);
}

void
JsonlTraceObserver::onExecutionBegin(const ExecutionInput &input)
{
    app_ = input.app;
    execution_ = input.execution;
}

void
JsonlTraceObserver::onExecutionEnd(const ExecutionInput &input,
                                   const RunResult &result)
{
    (void)input;
    (void)result;
    // Push buffered records to the OS now so a full disk or revoked
    // permission surfaces here, attributed to the file — not as a
    // silently truncated trace discovered days later.
    os_.flush();
    if (!os_) {
        fatal("JsonlTraceObserver: write failed on " + path_ +
              " after " + std::to_string(records_) + " records");
    }
}

void
JsonlTraceObserver::onIdlePeriod(const IdlePeriodRecord &record)
{
    // App names are plain identifiers, so no string escaping is
    // needed for a valid JSON line.
    os_ << "{\"app\":\"" << app_
        << "\",\"execution\":" << execution_
        << ",\"pid\":" << record.pid
        << ",\"start_us\":" << record.start
        << ",\"end_us\":" << record.end
        << ",\"length_us\":" << record.length()
        << ",\"shutdown_us\":" << record.shutdownAt
        << ",\"source\":\"" << pred::decisionSourceName(record.source)
        << "\",\"outcome\":\"" << idleOutcomeName(record.outcome)
        << "\"}\n";
    if (!os_) {
        fatal("JsonlTraceObserver: write failed on " + path_ +
              " after " + std::to_string(records_) + " records");
    }
    ++records_;
}

// ---------------------------------------------------------------
// TeeObserver
// ---------------------------------------------------------------

TeeObserver::TeeObserver(std::vector<SimObserver *> observers)
    : observers_(std::move(observers))
{
    for (SimObserver *observer : observers_) {
        if (!observer)
            panic("TeeObserver: null observer");
    }
}

void
TeeObserver::onExecutionBegin(const ExecutionInput &input)
{
    for (SimObserver *observer : observers_)
        observer->onExecutionBegin(input);
}

void
TeeObserver::onExecutionEnd(const ExecutionInput &input,
                            const RunResult &result)
{
    for (SimObserver *observer : observers_)
        observer->onExecutionEnd(input, result);
}

void
TeeObserver::onIdlePeriod(const IdlePeriodRecord &record)
{
    for (SimObserver *observer : observers_)
        observer->onIdlePeriod(record);
}

void
TeeObserver::onShutdownIssued(TimeUs at)
{
    for (SimObserver *observer : observers_)
        observer->onShutdownIssued(at);
}

void
TeeObserver::onShutdownIgnored(TimeUs at)
{
    for (SimObserver *observer : observers_)
        observer->onShutdownIgnored(at);
}

void
TeeObserver::onDiskStateChange(TimeUs time, power::DiskState from,
                               power::DiskState to)
{
    for (SimObserver *observer : observers_)
        observer->onDiskStateChange(time, from, to);
}

void
TeeObserver::onSpinUpServed(TimeUs time, TimeUs delay)
{
    for (SimObserver *observer : observers_)
        observer->onSpinUpServed(time, delay);
}

// ---------------------------------------------------------------
// MetricsObserver
// ---------------------------------------------------------------

namespace {

/**
 * Idle-length bucket bounds in simulated µs, matching
 * IdleHistogramObserver::defaultBoundaries. Sorted and deduplicated
 * because an ablated breakeven may coincide with (or cross) the
 * fixed decades.
 */
std::vector<double>
idleLengthUppers(TimeUs breakeven)
{
    std::vector<double> uppers;
    for (TimeUs upper : IdleHistogramObserver::defaultBoundaries(
             breakeven))
        uppers.push_back(static_cast<double>(upper));
    std::sort(uppers.begin(), uppers.end());
    uppers.erase(std::unique(uppers.begin(), uppers.end()),
                 uppers.end());
    return uppers;
}

} // namespace

MetricsObserver::MetricsObserver(obs::ScopedMetrics scope,
                                 TimeUs breakeven, bool trackDisk)
    : scope_(std::move(scope)), trackDisk_(trackDisk),
      executions_(scope_.counter("pcap_sim_executions_total")),
      idleLength_(scope_.histogram("pcap_sim_idle_period_us",
                                   idleLengthUppers(breakeven))),
      shutdownsIssued_(scope_.counter(
          "pcap_sim_shutdown_orders_total", {{"status", "issued"}})),
      shutdownsIgnored_(scope_.counter(
          "pcap_sim_shutdown_orders_total", {{"status", "ignored"}})),
      spinUps_(scope_.counter("pcap_disk_spin_ups_total")),
      spinUpDelayUs_(
          scope_.counter("pcap_disk_spin_up_delay_us_total")),
      stateTransitions_(
          scope_.counter("pcap_disk_state_transitions_total")),
      uppers_(idleLengthUppers(breakeven)),
      localBuckets_(uppers_.size() + 1, 0)
{
    for (std::size_t i = 0; i < idlePeriods_.size(); ++i) {
        idlePeriods_[i] = &scope_.counter(
            "pcap_sim_idle_periods_total",
            {{"outcome",
              idleOutcomeName(static_cast<IdleOutcome>(i))}});
    }
    static constexpr power::DiskState kStates[] = {
        power::DiskState::Active,
        power::DiskState::Idle,
        power::DiskState::LowPower,
        power::DiskState::Standby,
    };
    for (std::size_t i = 0; i < stateUs_.size(); ++i) {
        stateUs_[i] = &scope_.counter(
            "pcap_disk_state_us_total",
            {{"state", power::diskStateName(kStates[i])}});
    }
}

void
MetricsObserver::flush()
{
    for (std::size_t i = 0; i < localOutcomes_.size(); ++i) {
        if (localOutcomes_[i]) {
            idlePeriods_[i]->inc(localOutcomes_[i]);
            localOutcomes_[i] = 0;
        }
    }
    if (localIdleCount_) {
        idleLength_.merge(localBuckets_, localIdleCount_,
                          localIdleSum_);
        std::fill(localBuckets_.begin(), localBuckets_.end(), 0);
        localIdleCount_ = 0;
        localIdleSum_ = 0.0;
    }
    shutdownsIssued_.inc(localIssued_);
    shutdownsIgnored_.inc(localIgnored_);
    spinUps_.inc(localSpinUps_);
    spinUpDelayUs_.inc(localSpinUpDelay_);
    stateTransitions_.inc(localTransitions_);
    localIssued_ = localIgnored_ = 0;
    localSpinUps_ = localSpinUpDelay_ = localTransitions_ = 0;
    for (std::size_t i = 0; i < localStateUs_.size(); ++i) {
        if (localStateUs_[i]) {
            stateUs_[i]->inc(localStateUs_[i]);
            localStateUs_[i] = 0;
        }
    }
}

void
MetricsObserver::onExecutionBegin(const ExecutionInput &input)
{
    (void)input;
    executions_.inc();
    // A fresh PowerManagedDisk starts Idle at time zero.
    lastState_ = power::DiskState::Idle;
    lastChange_ = 0;
}

void
MetricsObserver::onExecutionEnd(const ExecutionInput &input,
                                const RunResult &result)
{
    if (trackDisk_ && input.endTime > lastChange_) {
        // No transition fires at finish; close the residency of the
        // final state by hand.
        localStateUs_[static_cast<std::size_t>(lastState_)] +=
            static_cast<std::uint64_t>(input.endTime - lastChange_);
    }
    flush();
    power::recordLedgerMetrics(result.energy, scope_);
}

void
MetricsObserver::onIdlePeriod(const IdlePeriodRecord &record)
{
    ++localOutcomes_[static_cast<std::size_t>(record.outcome)];
    const double length = static_cast<double>(record.length());
    std::size_t index = 0;
    while (index < uppers_.size() && length > uppers_[index])
        ++index;
    ++localBuckets_[index];
    ++localIdleCount_;
    localIdleSum_ += length;
}

void
MetricsObserver::onShutdownIssued(TimeUs at)
{
    (void)at;
    ++localIssued_;
}

void
MetricsObserver::onShutdownIgnored(TimeUs at)
{
    (void)at;
    ++localIgnored_;
}

void
MetricsObserver::onDiskStateChange(TimeUs time, power::DiskState from,
                                   power::DiskState to)
{
    (void)from;
    if (!trackDisk_)
        return;
    ++localTransitions_;
    if (time > lastChange_) {
        localStateUs_[static_cast<std::size_t>(lastState_)] +=
            static_cast<std::uint64_t>(time - lastChange_);
    }
    lastState_ = to;
    lastChange_ = time;
}

void
MetricsObserver::onSpinUpServed(TimeUs time, TimeUs delay)
{
    (void)time;
    ++localSpinUps_;
    localSpinUpDelay_ += static_cast<std::uint64_t>(delay);
}

// ---------------------------------------------------------------
// IdleHistogramObserver
// ---------------------------------------------------------------

std::uint64_t
IdleHistogramObserver::Bucket::total() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t count : byOutcome)
        sum += count;
    return sum;
}

IdleHistogramObserver::IdleHistogramObserver(
    std::vector<TimeUs> boundaries)
{
    TimeUs previous = -1;
    for (TimeUs upper : boundaries) {
        if (upper <= previous) {
            fatal("IdleHistogramObserver: boundaries must be "
                  "strictly ascending");
        }
        previous = upper;
        Bucket bucket;
        bucket.upper = upper;
        buckets_.push_back(bucket);
    }
    buckets_.push_back(Bucket{}); // open top bucket
}

std::vector<TimeUs>
IdleHistogramObserver::defaultBoundaries(TimeUs breakeven)
{
    return {millisUs(10.0),  millisUs(100.0), secondsUs(1.0),
            breakeven,       secondsUs(10.0), secondsUs(30.0),
            secondsUs(60.0), secondsUs(300.0)};
}

void
IdleHistogramObserver::onIdlePeriod(const IdlePeriodRecord &record)
{
    const TimeUs length = record.length();
    std::size_t index = 0;
    while (index + 1 < buckets_.size() &&
           length > buckets_[index].upper)
        ++index;
    ++buckets_[index]
          .byOutcome[static_cast<std::size_t>(record.outcome)];
    ++periods_;
}

} // namespace pcap::sim
