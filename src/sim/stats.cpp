#include "sim/stats.hpp"

namespace pcap::sim {

void
AccuracyStats::merge(const AccuracyStats &other)
{
    opportunities += other.opportunities;
    hitPrimary += other.hitPrimary;
    hitBackup += other.hitBackup;
    missPrimary += other.missPrimary;
    missBackup += other.missBackup;
    notPredicted += other.notPredicted;
}

} // namespace pcap::sim
