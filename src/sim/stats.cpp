#include "sim/stats.hpp"

namespace pcap::sim {

void
AccuracyStats::merge(const AccuracyStats &other)
{
    opportunities += other.opportunities;
    hitPrimary += other.hitPrimary;
    hitBackup += other.hitBackup;
    missPrimary += other.missPrimary;
    missBackup += other.missBackup;
    notPredicted += other.notPredicted;
}

void
AccuracyStats::recordHit(pred::DecisionSource source)
{
    if (source == pred::DecisionSource::Primary)
        ++hitPrimary;
    else
        ++hitBackup;
}

void
AccuracyStats::recordMiss(pred::DecisionSource source)
{
    if (source == pred::DecisionSource::Primary)
        ++missPrimary;
    else
        ++missBackup;
}

} // namespace pcap::sim
