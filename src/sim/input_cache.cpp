#include "sim/input_cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "trace/io.hpp"
#include "util/logging.hpp"

namespace pcap::sim {

namespace {

constexpr char kMagic[4] = {'P', 'C', 'I', 'C'};
constexpr std::uint32_t kFormatVersion = 1;

} // namespace

std::string
WorkloadKey::canonical() const
{
    std::ostringstream os;
    os << "tag=" << kWorkloadCodeTag << "|fmt=" << kFormatVersion
       << "|seed=" << seed << "|app=" << app
       << "|maxExecutions=" << maxExecutions
       << "|cacheBytes=" << cache.capacityBytes
       << "|blockSize=" << cache.blockSize
       << "|flushInterval=" << cache.flushInterval
       << "|flushCheckPeriod=" << cache.flushCheckPeriod;
    return os.str();
}

std::uint64_t
WorkloadKey::hash() const
{
    // FNV-1a, same construction as hashString() but local so the
    // cache address never changes under util refactors.
    std::uint64_t h = 1469598103934665603ull;
    for (char c : canonical()) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

std::string
WorkloadKey::fileName() const
{
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(hash()));
    return app + "-" + hex + ".pcin";
}

void
writeExecutionInputs(const std::vector<ExecutionInput> &inputs,
                     const WorkloadKey &key, std::ostream &os)
{
    os.write(kMagic, sizeof(kMagic));
    trace::putLe<std::uint32_t>(os, kFormatVersion);
    trace::putString(os, key.canonical());
    trace::putLe<std::uint64_t>(os, inputs.size());
    for (const ExecutionInput &input : inputs) {
        trace::putString(os, input.app);
        trace::putLe<std::int32_t>(os, input.execution);
        trace::putLe<std::int64_t>(os, input.endTime);
        trace::putLe<std::uint64_t>(os, input.tracedIos);
        trace::putLe<std::uint64_t>(os, input.cacheStats.lookups);
        trace::putLe<std::uint64_t>(os, input.cacheStats.hits);
        trace::putLe<std::uint64_t>(os, input.cacheStats.misses);
        trace::putLe<std::uint64_t>(os, input.cacheStats.evictions);
        trace::putLe<std::uint64_t>(os,
                                    input.cacheStats.writebackBlocks);
        trace::putLe<std::uint64_t>(os, input.cacheStats.flushRuns);
        trace::writeDiskAccesses(input.accesses, os);
        trace::putLe<std::uint64_t>(os, input.processes.size());
        for (const ProcessSpan &span : input.processes) {
            trace::putLe<std::int32_t>(os, span.pid);
            trace::putLe<std::int64_t>(os, span.start);
            trace::putLe<std::int64_t>(os, span.end);
        }
    }
}

std::string
readExecutionInputs(std::istream &is, const WorkloadKey &key,
                    std::vector<ExecutionInput> &out)
{
    char magic[4];
    if (!is.read(magic, sizeof(magic)) ||
        std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
        return "bad magic";
    }
    std::uint32_t version = 0;
    if (!trace::getLe(is, version) || version != kFormatVersion)
        return "unsupported version";
    std::string echoed;
    if (!trace::getString(is, echoed))
        return "truncated key echo";
    if (echoed != key.canonical())
        return "key mismatch: " + echoed;

    std::uint64_t count = 0;
    if (!trace::getLe(is, count) || count > (1u << 20))
        return "bad execution count";
    out.clear();
    out.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        ExecutionInput input;
        if (!trace::getString(is, input.app))
            return "truncated app name";
        if (!trace::getLe(is, input.execution) ||
            !trace::getLe(is, input.endTime) ||
            !trace::getLe(is, input.tracedIos) ||
            !trace::getLe(is, input.cacheStats.lookups) ||
            !trace::getLe(is, input.cacheStats.hits) ||
            !trace::getLe(is, input.cacheStats.misses) ||
            !trace::getLe(is, input.cacheStats.evictions) ||
            !trace::getLe(is, input.cacheStats.writebackBlocks) ||
            !trace::getLe(is, input.cacheStats.flushRuns)) {
            return "truncated header of execution " +
                   std::to_string(i);
        }
        const std::string problem =
            trace::readDiskAccesses(is, input.accesses);
        if (!problem.empty())
            return "execution " + std::to_string(i) + ": " + problem;
        std::uint64_t spans = 0;
        if (!trace::getLe(is, spans) || spans > (1u << 20))
            return "bad span count of execution " + std::to_string(i);
        input.processes.reserve(spans);
        for (std::uint64_t s = 0; s < spans; ++s) {
            ProcessSpan span;
            if (!trace::getLe(is, span.pid) ||
                !trace::getLe(is, span.start) ||
                !trace::getLe(is, span.end)) {
                return "truncated span of execution " +
                       std::to_string(i);
            }
            input.processes.push_back(span);
        }
        input.finalize();
        out.push_back(std::move(input));
    }
    return {};
}

WorkloadCache::WorkloadCache(std::string directory)
    : directory_(std::move(directory))
{
}

std::string
WorkloadCache::defaultDirectory()
{
    if (const char *env = std::getenv("PCAP_WORKLOAD_CACHE"))
        return env;
    std::error_code ec;
    const auto tmp = std::filesystem::temp_directory_path(ec);
    if (ec)
        return {};
    return (tmp / "pcap-workload-cache").string();
}

bool
WorkloadCache::load(const WorkloadKey &key,
                    std::vector<ExecutionInput> &out) const
{
    if (!enabled())
        return false;
    const std::filesystem::path path =
        std::filesystem::path(directory_) / key.fileName();
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        ++misses_;
        return false;
    }
    const std::string problem = readExecutionInputs(is, key, out);
    if (!problem.empty()) {
        warn("workload cache: ignoring " + path.string() + ": " +
             problem);
        out.clear();
        ++misses_;
        return false;
    }
    ++hits_;
    return true;
}

void
WorkloadCache::store(const WorkloadKey &key,
                     const std::vector<ExecutionInput> &inputs) const
{
    if (!enabled())
        return;
    std::error_code ec;
    std::filesystem::create_directories(directory_, ec);
    if (ec)
        return;
    const std::filesystem::path path =
        std::filesystem::path(directory_) / key.fileName();
    // Write to a private temp name then rename, so a concurrent
    // bench invocation never observes a half-written entry.
    const std::filesystem::path tmp =
        path.string() + ".tmp" +
        std::to_string(static_cast<unsigned long>(::getpid()));
    {
        std::ofstream os(tmp, std::ios::binary);
        if (!os)
            return;
        writeExecutionInputs(inputs, key, os);
        if (!os)
            return;
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
    else
        ++stores_;
}

} // namespace pcap::sim
