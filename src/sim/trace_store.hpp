/**
 * @file
 * Shared raw-trace memoization across evaluations.
 *
 * Workload generation is a deterministic function of (seed, app,
 * maxExecutions) alone — the file-cache parameters only matter to
 * the filter pass that turns a trace into an ExecutionInput. An
 * ablation sweep over cache sizes therefore regenerated the exact
 * same traces once per configuration; the TraceStore splits the two
 * stages so the sweep generates each application's traces once and
 * re-runs only the (cheap) filter per configuration.
 *
 * The store is thread-safe and memoizes by content key, mirroring
 * ParallelEvaluation's call_once slot pattern: concurrent requests
 * for the same key generate once and share the resulting immutable
 * vector.
 *
 * Entries used to live for the store's whole lifetime; a sweep's
 * worth of raw traces stayed resident long after every evaluation
 * had filtered them into inputs. Retention scopes fix that: a sweep
 * opens a TraceStore::Retention around its prefetch, and when the
 * last open scope closes the store drops every published entry
 * (consumers still holding a shared_ptr keep their vector alive;
 * later requests simply regenerate). Resident bytes are tracked and
 * exported through the pcap_trace_store_bytes gauge.
 */

#ifndef PCAP_SIM_TRACE_STORE_HPP
#define PCAP_SIM_TRACE_STORE_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cache/file_cache.hpp"
#include "obs/metrics.hpp"
#include "sim/input.hpp"
#include "trace/trace.hpp"

namespace pcap::sim {

/**
 * Generate every execution of @p app from @p seed, exactly as the
 * historical fused generation loop did: per-execution RNGs are
 * forked sequentially from the app RNG before the parallel
 * expansion, so results do not depend on @p jobs.
 *
 * @p maxExecutions caps the paper's execution count when positive
 * (0 runs the full Table 1 count). @p scope receives the
 * pcap_workload_generated_* counters (a disabled scope records
 * nothing).
 */
std::vector<trace::Trace>
generateTraces(std::uint64_t seed, const std::string &app,
               int maxExecutions, unsigned jobs,
               const obs::ScopedMetrics &scope);

/**
 * The cache-dependent half of input generation: filter each trace
 * through a cold file cache with @p params and finalize the replay
 * schedule. Bit-identical to the fused path for equal traces.
 */
std::vector<ExecutionInput>
inputsFromTraces(const std::vector<trace::Trace> &traces,
                 const cache::CacheParams &params, unsigned jobs);

/**
 * Thread-safe memo of generated traces, shared between evaluations
 * (via ParallelOptions::traceStore). Traces are immutable once
 * published; callers hold them by shared_ptr so the store can be
 * queried concurrently with ongoing generation.
 */
class TraceStore
{
  public:
    /**
     * RAII retention scope. While any scope is open, published
     * entries stay resident; when the last one closes, every entry
     * is evicted. A store that never sees a scope keeps entries
     * forever (the pre-eviction behaviour — correct for the
     * standard engine, whose inputs are memoized above the store
     * anyway).
     */
    class Retention
    {
      public:
        explicit Retention(TraceStore &store) : store_(&store)
        {
            store_->retain();
        }
        Retention(const Retention &) = delete;
        Retention &operator=(const Retention &) = delete;
        ~Retention() { store_->release(); }

      private:
        TraceStore *store_;
    };

    /**
     * The traces of (seed, app, maxExecutions), generating them on
     * first request. Later requests — any thread, any evaluation —
     * share the same vector. Only the generating call records
     * workload metrics into its @p scope. A request after eviction
     * regenerates (deterministically, so results never change).
     */
    std::shared_ptr<const std::vector<trace::Trace>>
    traces(std::uint64_t seed, const std::string &app,
           int maxExecutions, unsigned jobs,
           const obs::ScopedMetrics &scope);

    /** Trace-set generations performed (one per distinct key;
     * regeneration after eviction counts again). */
    std::uint64_t generatedSets() const
    {
        return generated_.load(std::memory_order_relaxed);
    }

    /** Entries dropped by retention-scope expiry. */
    std::uint64_t evictedSets() const
    {
        return evicted_.load(std::memory_order_relaxed);
    }

    /** Approximate bytes of resident trace data (event payloads). */
    std::uint64_t bytesResident() const
    {
        return bytes_.load(std::memory_order_relaxed);
    }

    /**
     * Mirror bytesResident() into @p gauge on every publish/evict
     * (pcap_trace_store_bytes in bench_all); null detaches. The
     * gauge must outlive the store's last mutation.
     */
    void bindBytesGauge(obs::Gauge *gauge);

  private:
    struct Memo
    {
        std::once_flag once;
        std::shared_ptr<const std::vector<trace::Trace>> value;
        std::uint64_t bytes = 0;
        /** Publication handshake, guarded by the store mutex: only
         * ready entries are safe for release() to account/evict. */
        bool ready = false;
    };

    void retain();
    void release();

    /** Update bytes_ by @p delta and mirror into the bound gauge.
     * Callers hold mutex_. */
    void adjustBytes(std::int64_t delta);

    std::mutex mutex_; ///< guards the map (not the memos)
    std::map<std::string, std::shared_ptr<Memo>> memos_;
    int retentions_ = 0; ///< open Retention scopes (under mutex_)
    obs::Gauge *bytesGauge_ = nullptr; // under mutex_
    std::atomic<std::uint64_t> generated_{0};
    std::atomic<std::uint64_t> evicted_{0};
    std::atomic<std::uint64_t> bytes_{0};
};

} // namespace pcap::sim

#endif // PCAP_SIM_TRACE_STORE_HPP
