/**
 * @file
 * Shared raw-trace memoization across evaluations.
 *
 * Workload generation is a deterministic function of (seed, app,
 * maxExecutions) alone — the file-cache parameters only matter to
 * the filter pass that turns a trace into an ExecutionInput. An
 * ablation sweep over cache sizes therefore regenerated the exact
 * same traces once per configuration; the TraceStore splits the two
 * stages so the sweep generates each application's traces once and
 * re-runs only the (cheap) filter per configuration.
 *
 * The store is thread-safe and memoizes by content key, mirroring
 * ParallelEvaluation's call_once slot pattern: concurrent requests
 * for the same key generate once and share the resulting immutable
 * vector.
 */

#ifndef PCAP_SIM_TRACE_STORE_HPP
#define PCAP_SIM_TRACE_STORE_HPP

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cache/file_cache.hpp"
#include "obs/metrics.hpp"
#include "sim/input.hpp"
#include "trace/trace.hpp"

namespace pcap::sim {

/**
 * Generate every execution of @p app from @p seed, exactly as the
 * historical fused generation loop did: per-execution RNGs are
 * forked sequentially from the app RNG before the parallel
 * expansion, so results do not depend on @p jobs.
 *
 * @p maxExecutions caps the paper's execution count when positive
 * (0 runs the full Table 1 count). @p scope receives the
 * pcap_workload_generated_* counters (a disabled scope records
 * nothing).
 */
std::vector<trace::Trace>
generateTraces(std::uint64_t seed, const std::string &app,
               int maxExecutions, unsigned jobs,
               const obs::ScopedMetrics &scope);

/**
 * The cache-dependent half of input generation: filter each trace
 * through a cold file cache with @p params and finalize the replay
 * schedule. Bit-identical to the fused path for equal traces.
 */
std::vector<ExecutionInput>
inputsFromTraces(const std::vector<trace::Trace> &traces,
                 const cache::CacheParams &params, unsigned jobs);

/**
 * Thread-safe memo of generated traces, shared between evaluations
 * (via ParallelOptions::traceStore). Traces are immutable once
 * published; callers hold them by shared_ptr so the store can be
 * queried concurrently with ongoing generation.
 */
class TraceStore
{
  public:
    /**
     * The traces of (seed, app, maxExecutions), generating them on
     * first request. Later requests — any thread, any evaluation —
     * share the same vector. Only the generating call records
     * workload metrics into its @p scope.
     */
    std::shared_ptr<const std::vector<trace::Trace>>
    traces(std::uint64_t seed, const std::string &app,
           int maxExecutions, unsigned jobs,
           const obs::ScopedMetrics &scope);

    /** Trace-set generations performed (one per distinct key). */
    std::uint64_t generatedSets() const
    {
        return generated_.load(std::memory_order_relaxed);
    }

  private:
    struct Memo
    {
        std::once_flag once;
        std::shared_ptr<const std::vector<trace::Trace>> value;
    };

    std::mutex mutex_; ///< guards the map (not the memos)
    std::map<std::string, std::shared_ptr<Memo>> memos_;
    std::atomic<std::uint64_t> generated_{0};
};

} // namespace pcap::sim

#endif // PCAP_SIM_TRACE_STORE_HPP
