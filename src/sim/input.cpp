#include "sim/input.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace pcap::sim {

ExecutionInput
ExecutionInput::fromTrace(const trace::Trace &trace,
                          const cache::CacheParams &params)
{
    const std::string problem = trace.validate();
    if (!problem.empty()) {
        panic("ExecutionInput: invalid trace for " + trace.app() +
              " execution " +
              std::to_string(trace.execution()) + ": " + problem);
    }

    ExecutionInput input;
    input.app = trace.app();
    input.execution = trace.execution();
    input.endTime = trace.endTime();
    input.tracedIos = trace.ioCount();
    input.accesses =
        cache::filterTrace(trace, params, &input.cacheStats);

    // Extract process spans from the fork/exit events. The initial
    // process is the pid of the first event.
    std::map<Pid, ProcessSpan> spans;
    bool first = true;
    for (const auto &event : trace.events()) {
        if (first) {
            spans[event.pid] =
                ProcessSpan{event.pid, event.time, event.time};
            first = false;
        }
        switch (event.type) {
          case trace::EventType::Fork: {
            const Pid child = static_cast<Pid>(event.fd);
            spans[child] = ProcessSpan{child, event.time, event.time};
            break;
          }
          case trace::EventType::Exit:
            spans[event.pid].end = event.time;
            break;
          default:
            break;
        }
    }

    // The flush daemon lives for the whole execution.
    spans[kFlushDaemonPid] =
        ProcessSpan{kFlushDaemonPid, 0, input.endTime};

    for (const auto &[pid, span] : spans)
        input.processes.push_back(span);
    input.finalize();
    return input;
}

void
ExecutionInput::finalize()
{
    accessesByPid_.clear();
    for (const auto &access : accesses)
        accessesByPid_[access.pid].push_back(access);

    simEvents_.clear();
    simEvents_.reserve(accesses.size() + 2 * processes.size());
    for (const auto &span : processes) {
        simEvents_.push_back(
            {span.start, SimEventKind::ProcessStart, span.pid, 0});
        simEvents_.push_back(
            {span.end, SimEventKind::ProcessExit, span.pid, 0});
    }
    for (std::size_t i = 0; i < accesses.size(); ++i) {
        simEvents_.push_back({accesses[i].time, SimEventKind::Access,
                              accesses[i].pid, i});
    }
    std::sort(simEvents_.begin(), simEvents_.end());

    // SoA mirror of the sorted schedule for the batched kernel: the
    // hot loop reads times and kinds as dense sequential streams
    // instead of striding over 24-byte SimEvent records.
    const std::size_t events = simEvents_.size();
    eventTimes_.resize(events);
    eventKinds_.resize(events);
    eventPids_.resize(events);
    eventAccessIndex_.resize(events);
    for (std::size_t i = 0; i < events; ++i) {
        const SimEvent &event = simEvents_[i];
        eventTimes_[i] = event.time;
        eventKinds_[i] = static_cast<std::uint8_t>(event.kind);
        eventPids_[i] = event.pid;
        eventAccessIndex_[i] =
            static_cast<std::uint32_t>(event.accessIndex);
    }
    accessBlocks_.resize(accesses.size());
    for (std::size_t i = 0; i < accesses.size(); ++i)
        accessBlocks_[i] = accesses[i].blocks;
    finalized_ = true;
}

void
ExecutionInput::ensureFinalized() const
{
    if (!finalized_)
        const_cast<ExecutionInput *>(this)->finalize();
}

const std::vector<trace::DiskAccess> &
ExecutionInput::accessesOf(Pid pid) const
{
    static const std::vector<trace::DiskAccess> kEmpty;
    ensureFinalized();
    const auto it = accessesByPid_.find(pid);
    return it == accessesByPid_.end() ? kEmpty : it->second;
}

const ProcessSpan &
ExecutionInput::spanOf(Pid pid) const
{
    for (const auto &span : processes) {
        if (span.pid == pid)
            return span;
    }
    panic("ExecutionInput: unknown pid " + std::to_string(pid));
}

std::uint64_t
ExecutionInput::countGlobalOpportunities(TimeUs breakeven) const
{
    std::uint64_t count = 0;
    TimeUs prev = -1;
    for (const auto &access : accesses) {
        if (prev >= 0 && access.time - prev > breakeven)
            ++count;
        prev = access.time;
    }
    if (prev >= 0 && endTime - prev > breakeven)
        ++count;
    return count;
}

std::uint64_t
ExecutionInput::countLocalOpportunities(TimeUs breakeven) const
{
    std::uint64_t count = 0;
    for (const auto &span : processes) {
        TimeUs prev = -1;
        for (const auto &access : accessesOf(span.pid)) {
            if (prev >= 0 && access.time - prev > breakeven)
                ++count;
            prev = access.time;
        }
        if (prev >= 0 && span.end - prev > breakeven)
            ++count;
    }
    return count;
}

bool
ExecutionInput::sameContentAs(const ExecutionInput &other) const
{
    return app == other.app && execution == other.execution &&
           endTime == other.endTime &&
           tracedIos == other.tracedIos &&
           cacheStats == other.cacheStats &&
           accesses == other.accesses &&
           processes == other.processes;
}

} // namespace pcap::sim
