#include "sim/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <filesystem>
#include <iomanip>
#include <iterator>
#include <map>
#include <sstream>
#include <utility>

#include "obs/alerts.hpp"
#include "obs/provenance.hpp"
#include "obs/timeline.hpp"
#include "obs/tracing.hpp"
#include "sim/drivers.hpp"
#include "sim/execution_source.hpp"
#include "sim/experiment.hpp"
#include "sim/observer.hpp"
#include "util/thread_pool.hpp"

namespace pcap::sim {

namespace {

/** 16-hex policy hash, matching ParallelEvaluation's label style. */
std::string
policyHashLabel(const PolicyConfig &policy)
{
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0')
       << hashString(policyCacheKey(policy));
    return os.str();
}

/** Ascending (value, host) — a total order, so every sort below is
 * deterministic even across equal values. */
bool
byValueThenHost(const FleetHostValue &a, const FleetHostValue &b)
{
    if (a.value != b.value)
        return a.value < b.value;
    return a.host < b.host;
}

/**
 * Bounded candidate lists for one distribution's two tails. Hosts
 * append as they finish; trim() keeps the kFleetOutlierCandidates
 * most extreme per tail. The global top-K per tail is always a
 * subset of the union of per-shard top-Ks, so shard-local trims
 * lose nothing.
 */
struct TailCandidates
{
    std::vector<FleetHostValue> low;
    std::vector<FleetHostValue> high;

    void add(std::uint64_t host, double value)
    {
        low.push_back({host, value});
        high.push_back({host, value});
    }

    void mergeFrom(TailCandidates &&other)
    {
        low.insert(low.end(), other.low.begin(), other.low.end());
        high.insert(high.end(), other.high.begin(),
                    other.high.end());
        // Trim on every merge so the candidate lists stay O(K)
        // however many shards fold in.
        trim();
    }

    void trim()
    {
        std::sort(low.begin(), low.end(), byValueThenHost);
        if (low.size() > kFleetOutlierCandidates)
            low.resize(kFleetOutlierCandidates);
        std::sort(high.begin(), high.end(), byValueThenHost);
        if (high.size() > kFleetOutlierCandidates) {
            high.erase(high.begin(),
                       high.end() - static_cast<std::ptrdiff_t>(
                                        kFleetOutlierCandidates));
        }
    }

    /** Both tails as one candidate list (may repeat a host; the
     * k·MAD filter dedups). */
    std::vector<FleetHostValue> candidates() const
    {
        std::vector<FleetHostValue> all = low;
        all.insert(all.end(), high.begin(), high.end());
        return all;
    }
};

/** Streaming across-hosts aggregate of one policy. */
struct PolicyAccum
{
    obs::LogSketch energy;
    obs::LogSketch saved;
    obs::LogSketch hit;
    obs::LogSketch miss;
    double energySum = 0.0;
    double savedSum = 0.0;
    std::uint64_t shutdowns = 0;
    std::uint64_t spinUps = 0;
    TailCandidates savedTails;
    TailCandidates missTails;

    void mergeFrom(PolicyAccum &&other)
    {
        energy.merge(other.energy);
        saved.merge(other.saved);
        hit.merge(other.hit);
        miss.merge(other.miss);
        energySum += other.energySum;
        savedSum += other.savedSum;
        shutdowns += other.shutdowns;
        spinUps += other.spinUps;
        savedTails.mergeFrom(std::move(other.savedTails));
        missTails.mergeFrom(std::move(other.missTails));
    }
};

/** Everything one shard accumulates; folded host by host in index
 * order, merged across shards in shard order. */
struct ShardAccum
{
    std::uint64_t executions = 0;
    std::uint64_t accesses = 0;
    std::uint64_t opportunities = 0;
    std::uint64_t simSpanUs = 0;
    obs::LogSketch baseEnergy;
    double baseSum = 0.0;
    std::vector<PolicyAccum> policies;

    explicit ShardAccum(std::size_t policyCount = 0)
        : policies(policyCount)
    {
    }

    void foldHost(const HostCellResult &cell)
    {
        executions += cell.executions;
        accesses += cell.accesses;
        simSpanUs += cell.simSpanUs;
        // Idle opportunities are a property of the host's access
        // stream, identical across drivers; count them once, from
        // the baseline run.
        opportunities += cell.base.accuracy.opportunities;
        const double baseJoules = cell.base.energy.total();
        baseEnergy.add(baseJoules);
        baseSum += baseJoules;

        for (std::size_t p = 0; p < policies.size(); ++p) {
            PolicyAccum &accum = policies[p];
            const RunResult &run = cell.policyRuns[p];
            const double joules = run.energy.total();
            const double savedFraction =
                baseJoules > 0.0 ? 1.0 - joules / baseJoules : 0.0;
            const double missFraction =
                run.accuracy.missFraction();
            accum.energy.add(joules);
            accum.saved.add(savedFraction);
            accum.hit.add(run.accuracy.hitFraction());
            accum.miss.add(missFraction);
            accum.energySum += joules;
            accum.savedSum += savedFraction;
            accum.shutdowns += run.shutdowns;
            accum.spinUps += run.spinUps;
            accum.savedTails.add(cell.host, savedFraction);
            accum.missTails.add(cell.host, missFraction);
        }
    }

    void mergeFrom(ShardAccum &&other)
    {
        executions += other.executions;
        accesses += other.accesses;
        opportunities += other.opportunities;
        simSpanUs += other.simSpanUs;
        baseEnergy.merge(other.baseEnergy);
        baseSum += other.baseSum;
        for (std::size_t p = 0; p < policies.size(); ++p)
            policies[p].mergeFrom(std::move(other.policies[p]));
    }
};

/**
 * Feed one accumulator's distribution sketches to the alert engine:
 * as shard evidence (@p fleetLevel false, during the serial merge)
 * or as the fleet-level headline values (@p fleetLevel true, after
 * it). One place, so the distribution names cannot drift between
 * the two calls.
 */
void
feedAlertSketches(obs::AlertEngine &alerts, const ShardAccum &accum,
                  const std::vector<PolicyConfig> &policies,
                  bool fleetLevel)
{
    const double spanSeconds =
        static_cast<double>(accum.simSpanUs) / 1e6;
    auto feed = [&](const std::string &distribution,
                    const std::string &policy,
                    const obs::LogSketch &sketch) {
        if (fleetLevel)
            alerts.setQuantileValue(distribution, policy, sketch);
        else
            alerts.addQuantileEvidence(distribution, policy, sketch,
                                       spanSeconds);
    };
    feed("base_energy_j", "base", accum.baseEnergy);
    for (std::size_t p = 0; p < policies.size(); ++p) {
        const PolicyAccum &policyAccum = accum.policies[p];
        const std::string &label = policies[p].label;
        feed("energy_j", label, policyAccum.energy);
        feed("saved_fraction", label, policyAccum.saved);
        feed("hit_fraction", label, policyAccum.hit);
        feed("miss_fraction", label, policyAccum.miss);
    }
}

/** "mozilla+netscape": the host's app mix as one label. */
std::string
appMixLabel(const workload::HostProfile &profile)
{
    std::string label;
    for (const workload::AppShare &share : profile.appMix) {
        if (!label.empty())
            label += "+";
        label += share.app;
    }
    return label;
}

} // namespace

FleetPercentiles
percentilesOf(std::vector<double> values)
{
    FleetPercentiles result;
    if (values.empty())
        return result;
    std::sort(values.begin(), values.end());
    const auto n = values.size();
    auto rank = [&](double q) {
        // Nearest-rank: the smallest value with at least q of the
        // distribution at or below it. Integer-exact, so fleet
        // reports never depend on interpolation rounding.
        std::size_t index = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(n)));
        if (index > 0)
            --index;
        return values[std::min(index, n - 1)];
    };
    result.p50 = rank(0.50);
    result.p90 = rank(0.90);
    result.p99 = rank(0.99);
    return result;
}

FleetPercentiles
percentilesOf(const obs::LogSketch &sketch)
{
    FleetPercentiles result;
    result.p50 = sketch.quantile(0.50);
    result.p90 = sketch.quantile(0.90);
    result.p99 = sketch.quantile(0.99);
    return result;
}

std::vector<FleetOutlier>
flagOutliers(const std::string &metric,
             const std::vector<FleetHostValue> &candidates,
             double median, double mad, double madThreshold)
{
    // A zero MAD (half the fleet sitting exactly on the median)
    // still has a meaningful center: any distinct value is then
    // infinitely deviant, so the epsilon floor flags it.
    const double unit = std::max(mad, 1e-12);
    std::map<std::uint64_t, FleetOutlier> byHost;
    for (const FleetHostValue &candidate : candidates) {
        const double score =
            std::abs(candidate.value - median) / unit;
        if (score <= madThreshold)
            continue;
        FleetOutlier outlier;
        outlier.host = candidate.host;
        outlier.metric = metric;
        outlier.value = candidate.value;
        outlier.median = median;
        outlier.score = score;
        auto [it, inserted] =
            byHost.emplace(candidate.host, outlier);
        if (!inserted && score > it->second.score)
            it->second = outlier;
    }
    std::vector<FleetOutlier> flagged;
    flagged.reserve(byHost.size());
    for (auto &[host, outlier] : byHost)
        flagged.push_back(std::move(outlier));
    std::sort(flagged.begin(), flagged.end(),
              [](const FleetOutlier &a, const FleetOutlier &b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  return a.host < b.host;
              });
    return flagged;
}

FleetDriver::FleetDriver(workload::FleetConfig fleet, SimParams sim,
                         cache::CacheParams cacheParams,
                         FleetOptions options)
    : fleet_(std::move(fleet)), sim_(sim),
      cacheParams_(cacheParams), options_(options)
{
    if (options_.jobs == 0)
        options_.jobs = ThreadPool::hardwareJobs();
}

HostCellResult
FleetDriver::runHost(const workload::HostProfile &profile,
                     const std::vector<PolicyConfig> &policies) const
{
    HostCellResult cell;
    cell.host = profile.host;
    cell.thinkTimeScale = profile.thinkTimeScale;
    cell.policyRuns.resize(policies.size());
    cell.tableEntries.resize(policies.size());

    // The cell owns all learned state: one session + driver per
    // policy, living across the host's whole execution stream (the
    // kernel itself is stateless between executions). deques: the
    // drivers hold references into sessions, so neither may relocate.
    std::deque<PolicySession> sessions;
    std::deque<GlobalDriver> drivers;
    for (const PolicyConfig &policy : policies) {
        sessions.emplace_back(policy);
        drivers.emplace_back(sessions.back());
    }
    BaseDriver base;
    SimulationKernel kernel(sim_); // null observer: the fast path

    HostExecutionSource source(profile, cacheParams_);
    while (const ExecutionInput *input = source.next()) {
        ++cell.executions;
        cell.accesses += input->accesses.size();
        cell.simSpanUs += static_cast<std::uint64_t>(input->endTime);
        for (std::size_t p = 0; p < policies.size(); ++p)
            cell.policyRuns[p].merge(
                kernel.runExecution(*input, drivers[p]));
        cell.base.merge(kernel.runExecution(*input, base));
    }
    for (std::size_t p = 0; p < policies.size(); ++p)
        cell.tableEntries[p] = sessions[p].tableEntries();
    return cell;
}

HostDrilldown
FleetDriver::drillHost(const workload::HostProfile &profile,
                       const std::vector<PolicyConfig> &policies,
                       const std::string &dir) const
{
    obs::Span span("fleet-drilldown",
                   "host " + std::to_string(profile.host));
    obs::PerfRegion perfRegion("fleet:drilldown");
    std::filesystem::create_directories(dir);

    HostDrilldown drill;
    drill.host = profile.host;
    drill.seed = profile.seed;
    drill.thinkTimeScale = profile.thinkTimeScale;

    /** One policy's fully-instrumented cell: the same observer
     * stack ParallelEvaluation::instrument assembles, bound to the
     * host cell's persistent session. Fields initialize in
     * declaration order — the tee and kernel come last because they
     * hold references into the earlier members. */
    struct DrillCell
    {
        std::string stem;
        PolicySession session;
        GlobalDriver driver;
        JsonlTraceObserver trace;
        obs::ProvenanceRecorder provRecorder;
        obs::BinaryProvenanceWriter provBinary;
        obs::JsonlProvenanceWriter provJsonl;
        ProvenanceObserver provenance;
        TimelineObserver timeline;
        TeeObserver tee;
        SimulationKernel kernel;

        DrillCell(std::string cellStem, const PolicyConfig &policy,
                  const SimParams &sim, const std::string &dir)
            : stem(std::move(cellStem)), session(policy),
              driver(session), trace(dir + "/" + stem + ".jsonl"),
              provBinary(dir + "/" + stem + ".prov.bin"),
              provJsonl(dir + "/" + stem + ".prov.jsonl", stem),
              provenance(provRecorder, sim.disk),
              timeline(sim.disk),
              tee({&trace, &provenance, &timeline}),
              kernel(sim, tee)
        {
            provRecorder.addSink(&provBinary);
            provRecorder.addSink(&provJsonl);
            session.setProvenanceTap(&provenance);
            provenance.bindDecisionPid(
                [this] { return driver.decisionPid(); });
            timeline.bindTableSize(
                [this] { return session.tableEntries(); });
        }
    };

    // deque: cells hold internal references, so they must not move.
    std::deque<DrillCell> cells;
    for (const PolicyConfig &policy : policies) {
        cells.emplace_back("host" + std::to_string(profile.host) +
                               "-" + policy.label + "-" +
                               policyHashLabel(policy),
                           policy, sim_, dir);
    }
    BaseDriver base;
    SimulationKernel baseKernel(sim_); // uninstrumented baseline

    std::vector<RunResult> runs(policies.size());
    // Per-policy counter deltas over the drilled replay: which
    // policy's simulation is cycle-hungry, and how its IPC compares
    // across policies on the same host workload. Zero-cost when no
    // profiler is installed.
    std::vector<obs::PerfCounts> perfTotals(policies.size());
    RunResult baseRun;
    HostExecutionSource source(profile, cacheParams_);
    while (const ExecutionInput *input = source.next()) {
        ++drill.executions;
        drill.accesses += input->accesses.size();
        drill.simSpanUs +=
            static_cast<std::uint64_t>(input->endTime);
        for (std::size_t p = 0; p < policies.size(); ++p) {
            obs::PerfRegion perf(&perfTotals[p]);
            runs[p].merge(
                cells[p].kernel.runExecution(*input, cells[p].driver));
        }
        baseRun.merge(baseKernel.runExecution(*input, base));
    }
    drill.baseEnergyJ = baseRun.energy.total();

    const std::string app = appMixLabel(profile);
    for (std::size_t p = 0; p < policies.size(); ++p) {
        DrillCell &cell = cells[p];
        cell.provRecorder.close();
        const obs::TimelineMeta meta = TimelineObserver::makeMeta(
            cell.stem, "fleet", app, policies[p].label);
        obs::writeTimelineJson(cell.timeline.timeline(), meta,
                               dir + "/" + cell.stem +
                                   ".timeline.json");
        obs::writeTimelineCsv(cell.timeline.timeline(), meta,
                              dir + "/" + cell.stem +
                                  ".timeline.csv");

        DrilldownPolicy summary;
        summary.policy = policies[p].label;
        summary.stem = cell.stem;
        summary.energyJ = runs[p].energy.total();
        summary.savedFraction =
            drill.baseEnergyJ > 0.0
                ? 1.0 - summary.energyJ / drill.baseEnergyJ
                : 0.0;
        summary.hitFraction = runs[p].accuracy.hitFraction();
        summary.missFraction = runs[p].accuracy.missFraction();
        summary.shutdowns = runs[p].shutdowns;
        summary.spinUps = runs[p].spinUps;
        summary.tableEntries = cell.session.tableEntries();
        if (obs::perfEnabled()) {
            summary.perf = perfTotals[p];
            summary.hasPerf = true;
        }
        drill.policies.push_back(std::move(summary));
    }
    return drill;
}

FleetReport
FleetDriver::run(const std::vector<PolicyConfig> &policies) const
{
    const auto hosts = static_cast<std::size_t>(fleet_.hosts);
    const std::size_t shards =
        (hosts + kFleetHostsPerShard - 1) / kFleetHostsPerShard;

    // Fixed-width shards, positionally owned: worker s writes only
    // accums[s], and folds its hosts in index order. Shard
    // boundaries depend on kFleetHostsPerShard alone — never on
    // jobs — so every double accumulation happens in the same
    // order at every thread count.
    std::vector<ShardAccum> accums(
        shards, ShardAccum(policies.size()));
    std::vector<HostCellResult> kept(
        options_.keepHostResults ? hosts : 0);
    pcap::parallelFor(options_.jobs, shards, [&](std::size_t s) {
        const std::size_t first = s * kFleetHostsPerShard;
        const std::size_t last =
            std::min(hosts, first + kFleetHostsPerShard);
        obs::Span span("fleet-shard",
                       "hosts " + std::to_string(first) + "-" +
                           std::to_string(last - 1));
        obs::PerfRegion perf("fleet:shard");
        for (std::size_t i = first; i < last; ++i) {
            HostCellResult cell = runHost(
                workload::hostProfile(
                    fleet_, static_cast<std::uint64_t>(i)),
                policies);
            accums[s].foldHost(cell);
            if (options_.keepHostResults)
                kept[i] = std::move(cell);
        }
    });

    // Serial merge in shard order: deterministic and cheap — O(K)
    // sketch buckets and candidates per shard, not O(hosts). Each
    // shard's sketches feed the alert engine as firing evidence just
    // before the merge consumes them, still in shard order.
    ShardAccum total(policies.size());
    for (ShardAccum &shard : accums) {
        if (options_.alerts)
            feedAlertSketches(*options_.alerts, shard, policies,
                              /*fleetLevel=*/false);
        total.mergeFrom(std::move(shard));
    }
    accums.clear();
    if (options_.alerts)
        feedAlertSketches(*options_.alerts, total, policies,
                          /*fleetLevel=*/true);

    FleetReport report;
    report.hosts = fleet_.hosts;
    report.executions = total.executions;
    report.accesses = total.accesses;
    report.opportunities = total.opportunities;
    report.simSpanUs = total.simSpanUs;
    report.baseEnergyJ = percentilesOf(total.baseEnergy);
    report.meanBaseEnergyJ =
        hosts ? total.baseSum / static_cast<double>(hosts) : 0.0;

    for (std::size_t p = 0; p < policies.size(); ++p) {
        PolicyAccum &accum = total.policies[p];
        FleetPolicyReport policyReport;
        policyReport.policy = policies[p].label;
        policyReport.energyJ = percentilesOf(accum.energy);
        policyReport.savedFraction = percentilesOf(accum.saved);
        policyReport.hitFraction = percentilesOf(accum.hit);
        policyReport.missFraction = percentilesOf(accum.miss);
        policyReport.meanEnergyJ =
            hosts ? accum.energySum / static_cast<double>(hosts)
                  : 0.0;
        policyReport.meanSavedFraction =
            hosts ? accum.savedSum / static_cast<double>(hosts)
                  : 0.0;
        policyReport.shutdowns = accum.shutdowns;
        policyReport.spinUps = accum.spinUps;

        policyReport.medianSavedFraction =
            accum.saved.quantile(0.5);
        policyReport.madSavedFraction =
            accum.saved.medianAbsDeviation();
        policyReport.medianMissFraction =
            accum.miss.quantile(0.5);
        policyReport.madMissFraction =
            accum.miss.medianAbsDeviation();

        policyReport.outliers = flagOutliers(
            "saved_fraction", accum.savedTails.candidates(),
            policyReport.medianSavedFraction,
            policyReport.madSavedFraction,
            options_.outlierMadThreshold);
        std::vector<FleetOutlier> missOutliers = flagOutliers(
            "miss_fraction", accum.missTails.candidates(),
            policyReport.medianMissFraction,
            policyReport.madMissFraction,
            options_.outlierMadThreshold);
        policyReport.outliers.insert(
            policyReport.outliers.end(),
            std::make_move_iterator(missOutliers.begin()),
            std::make_move_iterator(missOutliers.end()));
        std::sort(policyReport.outliers.begin(),
                  policyReport.outliers.end(),
                  [](const FleetOutlier &a, const FleetOutlier &b) {
                      if (a.score != b.score)
                          return a.score > b.score;
                      if (a.host != b.host)
                          return a.host < b.host;
                      return a.metric < b.metric;
                  });

        report.policies.push_back(std::move(policyReport));
    }

    if (options_.keepHostResults)
        report.hostResults = std::move(kept);

    if (!options_.drilldownDir.empty()) {
        // Pass 2: re-simulate every flagged host, instrumented.
        // Flags dedup into one ascending host list; slot ownership
        // is positional, so the drilled vector is host-ordered and
        // thread-count independent like everything else here.
        std::vector<std::uint64_t> flagged;
        for (const FleetPolicyReport &policy : report.policies)
            for (const FleetOutlier &outlier : policy.outliers)
                flagged.push_back(outlier.host);
        std::sort(flagged.begin(), flagged.end());
        flagged.erase(
            std::unique(flagged.begin(), flagged.end()),
            flagged.end());

        report.drilldowns.resize(flagged.size());
        pcap::parallelFor(
            options_.jobs, flagged.size(), [&](std::size_t i) {
                report.drilldowns[i] = drillHost(
                    workload::hostProfile(fleet_, flagged[i]),
                    policies, options_.drilldownDir);
            });
        for (HostDrilldown &drill : report.drilldowns) {
            for (const FleetPolicyReport &policy : report.policies)
                for (const FleetOutlier &outlier : policy.outliers)
                    if (outlier.host == drill.host)
                        drill.reasons.push_back(
                            {policy.policy, outlier.metric,
                             outlier.value, outlier.median,
                             outlier.score});
        }
    }

    recordMetrics(report, policies);
    return report;
}

void
FleetDriver::recordMetrics(
    const FleetReport &report,
    const std::vector<PolicyConfig> &policies) const
{
    if (!options_.metrics)
        return;
    // Recorded post-aggregation on the calling thread: series values
    // are deterministic for every thread count.
    obs::ScopedMetrics scope(options_.metrics, {{"mode", "fleet"}});
    scope.gauge("pcap_fleet_hosts")
        .set(static_cast<double>(report.hosts));
    scope.counter("pcap_fleet_executions_total")
        .inc(report.executions);
    scope.counter("pcap_fleet_disk_accesses_total")
        .inc(report.accesses);
    scope.counter("pcap_fleet_idle_opportunities_total")
        .inc(report.opportunities);
    scope.counter("pcap_fleet_sim_span_us_total")
        .inc(report.simSpanUs);
    if (!options_.drilldownDir.empty())
        scope.gauge("pcap_fleet_drilldown_hosts")
            .set(static_cast<double>(report.drilldowns.size()));

    auto quantiles = [](const obs::ScopedMetrics &where,
                        const std::string &name,
                        const FleetPercentiles &p) {
        where.gauge(name, {{"quantile", "0.5"}}).set(p.p50);
        where.gauge(name, {{"quantile", "0.9"}}).set(p.p90);
        where.gauge(name, {{"quantile", "0.99"}}).set(p.p99);
    };
    quantiles(scope.with({{"policy", "base"}}),
              "pcap_fleet_energy_joules", report.baseEnergyJ);

    for (std::size_t p = 0; p < report.policies.size(); ++p) {
        const FleetPolicyReport &policy = report.policies[p];
        const obs::ScopedMetrics policyScope = scope.with(
            {{"policy", policy.policy},
             {"policy_hash", policyHashLabel(policies[p])}});
        quantiles(policyScope, "pcap_fleet_energy_joules",
                  policy.energyJ);
        quantiles(policyScope, "pcap_fleet_saved_fraction",
                  policy.savedFraction);
        quantiles(policyScope, "pcap_fleet_hit_fraction",
                  policy.hitFraction);
        quantiles(policyScope, "pcap_fleet_miss_fraction",
                  policy.missFraction);
        policyScope.counter("pcap_fleet_shutdowns_total")
            .inc(policy.shutdowns);
        policyScope.counter("pcap_fleet_spin_ups_total")
            .inc(policy.spinUps);
        policyScope.gauge("pcap_fleet_saved_fraction_median")
            .set(policy.medianSavedFraction);
        policyScope.gauge("pcap_fleet_saved_fraction_mad")
            .set(policy.madSavedFraction);
        policyScope.gauge("pcap_fleet_miss_fraction_median")
            .set(policy.medianMissFraction);
        policyScope.gauge("pcap_fleet_miss_fraction_mad")
            .set(policy.madMissFraction);
        policyScope.gauge("pcap_fleet_outlier_hosts")
            .set(static_cast<double>(policy.outliers.size()));
    }
}

} // namespace pcap::sim
