#include "sim/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <iomanip>
#include <sstream>
#include <utility>

#include "sim/drivers.hpp"
#include "sim/execution_source.hpp"
#include "sim/experiment.hpp"
#include "util/thread_pool.hpp"

namespace pcap::sim {

namespace {

/** 16-hex policy hash, matching ParallelEvaluation's label style. */
std::string
policyHashLabel(const PolicyConfig &policy)
{
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0')
       << hashString(policyCacheKey(policy));
    return os.str();
}

} // namespace

FleetPercentiles
percentilesOf(std::vector<double> values)
{
    FleetPercentiles result;
    if (values.empty())
        return result;
    std::sort(values.begin(), values.end());
    const auto n = values.size();
    auto rank = [&](double q) {
        // Nearest-rank: the smallest value with at least q of the
        // distribution at or below it. Integer-exact, so fleet
        // reports never depend on interpolation rounding.
        std::size_t index = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(n)));
        if (index > 0)
            --index;
        return values[std::min(index, n - 1)];
    };
    result.p50 = rank(0.50);
    result.p90 = rank(0.90);
    result.p99 = rank(0.99);
    return result;
}

FleetDriver::FleetDriver(workload::FleetConfig fleet, SimParams sim,
                         cache::CacheParams cacheParams,
                         FleetOptions options)
    : fleet_(std::move(fleet)), sim_(sim),
      cacheParams_(cacheParams), options_(options)
{
    if (options_.jobs == 0)
        options_.jobs = ThreadPool::hardwareJobs();
}

HostCellResult
FleetDriver::runHost(const workload::HostProfile &profile,
                     const std::vector<PolicyConfig> &policies) const
{
    HostCellResult cell;
    cell.host = profile.host;
    cell.thinkTimeScale = profile.thinkTimeScale;
    cell.policyRuns.resize(policies.size());
    cell.tableEntries.resize(policies.size());

    // The cell owns all learned state: one session + driver per
    // policy, living across the host's whole execution stream (the
    // kernel itself is stateless between executions). deques: the
    // drivers hold references into sessions, so neither may relocate.
    std::deque<PolicySession> sessions;
    std::deque<GlobalDriver> drivers;
    for (const PolicyConfig &policy : policies) {
        sessions.emplace_back(policy);
        drivers.emplace_back(sessions.back());
    }
    BaseDriver base;
    SimulationKernel kernel(sim_); // null observer: the fast path

    HostExecutionSource source(profile, cacheParams_);
    while (const ExecutionInput *input = source.next()) {
        ++cell.executions;
        cell.accesses += input->accesses.size();
        for (std::size_t p = 0; p < policies.size(); ++p)
            cell.policyRuns[p].merge(
                kernel.runExecution(*input, drivers[p]));
        cell.base.merge(kernel.runExecution(*input, base));
    }
    for (std::size_t p = 0; p < policies.size(); ++p)
        cell.tableEntries[p] = sessions[p].tableEntries();
    return cell;
}

FleetReport
FleetDriver::run(const std::vector<PolicyConfig> &policies) const
{
    const auto hosts = static_cast<std::size_t>(fleet_.hosts);

    // Positional sharding: worker i writes only cells[i], so the
    // result is identical for every thread count.
    std::vector<HostCellResult> cells(hosts);
    pcap::parallelFor(options_.jobs, hosts, [&](std::size_t i) {
        cells[i] = runHost(
            workload::hostProfile(fleet_,
                                  static_cast<std::uint64_t>(i)),
            policies);
    });

    FleetReport report;
    report.hosts = fleet_.hosts;

    std::vector<double> baseEnergy;
    baseEnergy.reserve(hosts);
    for (const HostCellResult &cell : cells) {
        report.executions += cell.executions;
        report.accesses += cell.accesses;
        // Idle opportunities are a property of the host's access
        // stream, identical across drivers; count them once, from
        // the baseline run.
        report.opportunities += cell.base.accuracy.opportunities;
        baseEnergy.push_back(cell.base.energy.total());
    }
    double baseTotal = 0.0;
    for (double j : baseEnergy)
        baseTotal += j;
    report.baseEnergyJ = percentilesOf(baseEnergy);
    report.meanBaseEnergyJ =
        hosts ? baseTotal / static_cast<double>(hosts) : 0.0;

    for (std::size_t p = 0; p < policies.size(); ++p) {
        FleetPolicyReport policyReport;
        policyReport.policy = policies[p].label;
        std::vector<double> energy, saved, hit, miss;
        energy.reserve(hosts);
        saved.reserve(hosts);
        hit.reserve(hosts);
        miss.reserve(hosts);
        double energyTotal = 0.0, savedTotal = 0.0;
        for (const HostCellResult &cell : cells) {
            const RunResult &run = cell.policyRuns[p];
            const double joules = run.energy.total();
            const double baseJoules = cell.base.energy.total();
            const double savedFraction =
                baseJoules > 0.0 ? 1.0 - joules / baseJoules : 0.0;
            energy.push_back(joules);
            saved.push_back(savedFraction);
            hit.push_back(run.accuracy.hitFraction());
            miss.push_back(run.accuracy.missFraction());
            energyTotal += joules;
            savedTotal += savedFraction;
            policyReport.shutdowns += run.shutdowns;
            policyReport.spinUps += run.spinUps;
        }
        policyReport.energyJ = percentilesOf(std::move(energy));
        policyReport.savedFraction =
            percentilesOf(std::move(saved));
        policyReport.hitFraction = percentilesOf(std::move(hit));
        policyReport.missFraction = percentilesOf(std::move(miss));
        policyReport.meanEnergyJ =
            hosts ? energyTotal / static_cast<double>(hosts) : 0.0;
        policyReport.meanSavedFraction =
            hosts ? savedTotal / static_cast<double>(hosts) : 0.0;
        report.policies.push_back(std::move(policyReport));
    }

    if (options_.keepHostResults)
        report.hostResults = std::move(cells);

    recordMetrics(report, policies);
    return report;
}

void
FleetDriver::recordMetrics(
    const FleetReport &report,
    const std::vector<PolicyConfig> &policies) const
{
    if (!options_.metrics)
        return;
    // Recorded post-aggregation on the calling thread: series values
    // are deterministic for every thread count.
    obs::ScopedMetrics scope(options_.metrics, {{"mode", "fleet"}});
    scope.gauge("pcap_fleet_hosts")
        .set(static_cast<double>(report.hosts));
    scope.counter("pcap_fleet_executions_total")
        .inc(report.executions);
    scope.counter("pcap_fleet_disk_accesses_total")
        .inc(report.accesses);
    scope.counter("pcap_fleet_idle_opportunities_total")
        .inc(report.opportunities);

    auto quantiles = [](const obs::ScopedMetrics &where,
                        const std::string &name,
                        const FleetPercentiles &p) {
        where.gauge(name, {{"quantile", "0.5"}}).set(p.p50);
        where.gauge(name, {{"quantile", "0.9"}}).set(p.p90);
        where.gauge(name, {{"quantile", "0.99"}}).set(p.p99);
    };
    quantiles(scope.with({{"policy", "base"}}),
              "pcap_fleet_energy_joules", report.baseEnergyJ);

    for (std::size_t p = 0; p < report.policies.size(); ++p) {
        const FleetPolicyReport &policy = report.policies[p];
        const obs::ScopedMetrics policyScope = scope.with(
            {{"policy", policy.policy},
             {"policy_hash", policyHashLabel(policies[p])}});
        quantiles(policyScope, "pcap_fleet_energy_joules",
                  policy.energyJ);
        quantiles(policyScope, "pcap_fleet_saved_fraction",
                  policy.savedFraction);
        quantiles(policyScope, "pcap_fleet_hit_fraction",
                  policy.hitFraction);
        quantiles(policyScope, "pcap_fleet_miss_fraction",
                  policy.missFraction);
        policyScope.counter("pcap_fleet_shutdowns_total")
            .inc(policy.shutdowns);
        policyScope.counter("pcap_fleet_spin_ups_total")
            .inc(policy.spinUps);
    }
}

} // namespace pcap::sim
