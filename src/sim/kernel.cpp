#include "sim/kernel.hpp"

#include <algorithm>

namespace pcap::sim {

void
RunResult::merge(const RunResult &other)
{
    accuracy.merge(other.accuracy);
    energy.merge(other.energy);
    shutdowns += other.shutdowns;
    spinUps += other.spinUps;
    ignoredShutdowns += other.ignoredShutdowns;
    totalSpinUpDelay += other.totalSpinUpDelay;
}

void
IdleSink::classify(Pid pid, TimeUs gap_start, TimeUs gap_end,
                   TimeUs shutdown_at, pred::DecisionSource source)
{
    const TimeUs gap = gap_end - gap_start;
    const bool opportunity = gap > breakeven_;
    if (opportunity)
        ++stats_.opportunities;

    IdlePeriodRecord record;
    record.pid = pid;
    record.start = gap_start;
    record.end = gap_end;
    record.shutdownAt = shutdown_at;

    if (shutdown_at >= 0) {
        // A consent without a mechanism behind it (a process that
        // never performed I/O holding the latest decision) counts as
        // backup: no primary predictor claimed it.
        const pred::DecisionSource effective =
            source == pred::DecisionSource::None
                ? pred::DecisionSource::Backup
                : source;
        const bool primary =
            effective == pred::DecisionSource::Primary;
        const TimeUs off_time = gap_end - shutdown_at;
        if (opportunity && off_time >= breakeven_) {
            stats_.recordHit(effective);
            record.outcome = primary ? IdleOutcome::HitPrimary
                                     : IdleOutcome::HitBackup;
        } else {
            stats_.recordMiss(effective);
            record.outcome = primary ? IdleOutcome::MissPrimary
                                     : IdleOutcome::MissBackup;
        }
        record.source = effective;
    } else if (opportunity) {
        ++stats_.notPredicted;
        record.outcome = IdleOutcome::NotPredicted;
    } else {
        record.outcome = IdleOutcome::Short;
    }
    observer_.onIdlePeriod(record);
}

// -- PolicyDriver defaults -------------------------------------

void
PolicyDriver::processStart(Pid pid, TimeUs time)
{
    (void)pid;
    (void)time;
}

void
PolicyDriver::processExit(Pid pid, TimeUs time, IdleSink &sink)
{
    (void)pid;
    (void)time;
    (void)sink;
}

pred::ShutdownDecision
PolicyDriver::standingDecision() const
{
    return {kTimeNever, pred::DecisionSource::None};
}

bool
PolicyDriver::parkLowPower() const
{
    return false;
}

void
PolicyDriver::endExecution(const ExecutionInput &input,
                           IdleSink &sink)
{
    (void)input;
    (void)sink;
}

// -- SimulationKernel ------------------------------------------

RunResult
SimulationKernel::runExecution(const ExecutionInput &input,
                               PolicyDriver &driver)
{
    driver.beginExecution(input);
    observer_.onExecutionBegin(input);

    const bool with_disk = driver.usesDisk();
    const bool trace_order =
        driver.replayOrder() == ReplayOrder::Trace;

    power::PowerManagedDisk disk(params_.disk, &observer_);
    RunResult result;
    IdleSink sink(params_.breakeven(), result.accuracy, observer_);

    TimeUs gap_start = -1;  ///< arrival of the last access
    TimeUs seg_start = -1;  ///< earliest instant not yet checked
    TimeUs shutdown_at = -1;
    pred::DecisionSource shutdown_source = pred::DecisionSource::None;
    TimeUs last_completion = 0; ///< when the disk last went idle
    bool low_power_pending = false;
    std::size_t access_cursor = 0;

    // Issue the pending spin-down to the disk. The power manager's
    // order stands from shutdown_at on; if the disk is still busy
    // then (e.g. finishing a post-spin-up service), it spins down as
    // soon as it goes idle — provided that still happens before the
    // gap ends.
    auto issue_shutdown = [&](TimeUs gap_end) {
        if (low_power_pending) {
            // The prediction parked the disk in low-power mode as
            // soon as it went idle.
            const TimeUs at = std::max(last_completion, gap_start);
            if (at < gap_end)
                disk.enterLowPower(at);
            low_power_pending = false;
        }
        if (shutdown_at < 0)
            return;
        const TimeUs at = std::max(shutdown_at, last_completion);
        if (at >= gap_end || !disk.shutdown(at)) {
            ++result.ignoredShutdowns;
            observer_.onShutdownIgnored(at);
        } else {
            observer_.onShutdownIssued(at);
        }
    };

    // Decide whether the driver's standing decision fires a shutdown
    // inside [seg_start, until); constraints may have changed at
    // process starts/exits, so this runs before every event.
    auto check_shutdown = [&](TimeUs until) {
        if (gap_start < 0 || shutdown_at >= 0) {
            seg_start = until;
            return;
        }
        const pred::ShutdownDecision d = driver.standingDecision();
        if (d.earliest != kTimeNever) {
            const TimeUs candidate = std::max(d.earliest, seg_start);
            if (candidate < until) {
                shutdown_at = candidate;
                shutdown_source = d.source;
                observer_.onShutdownLatched(candidate, d.source);
            }
        }
        seg_start = until;
    };

    // The merged schedule is precomputed once per input and shared
    // by every policy run replaying it (see ExecutionInput::finalize).
    for (const SimEvent &event : input.simEvents()) {
        if (with_disk)
            check_shutdown(event.time);
        switch (event.kind) {
          case SimEventKind::ProcessStart:
            driver.processStart(event.pid, event.time);
            break;
          case SimEventKind::ProcessExit:
            driver.processExit(event.pid, event.time, sink);
            break;
          case SimEventKind::Access: {
            // Trace-order drivers take the k-th access of the trace
            // at the k-th access event: both sequences are sorted by
            // time, so the substitution is time-identical — it only
            // restores the trace's relative order of equal-timestamp
            // accesses, which these modes historically replayed.
            const trace::DiskAccess &access =
                trace_order ? input.accesses[access_cursor]
                            : input.accesses[event.accessIndex];
            ++access_cursor;
            if (with_disk) {
                if (gap_start >= 0) {
                    sink.classify(kMergedStreamPid, gap_start,
                                  access.time, shutdown_at,
                                  shutdown_source);
                }
                issue_shutdown(access.time);
                last_completion =
                    disk.request(access.time, access.blocks);
            }
            driver.onAccess(access, last_completion, sink);
            low_power_pending = with_disk && driver.parkLowPower();
            gap_start = access.time;
            seg_start = access.time;
            shutdown_at = -1;
            shutdown_source = pred::DecisionSource::None;
            break;
          }
        }
    }

    if (with_disk) {
        // Trailing idle period to the end of the execution.
        check_shutdown(input.endTime);
        if (gap_start >= 0) {
            sink.classify(kMergedStreamPid, gap_start, input.endTime,
                          shutdown_at, shutdown_source);
            issue_shutdown(input.endTime);
        }
        disk.finish(input.endTime);

        result.energy = disk.ledger();
        result.shutdowns = disk.shutdownCount();
        result.spinUps = disk.spinUpCount();
        result.totalSpinUpDelay = disk.totalSpinUpDelay();
    }
    driver.endExecution(input, sink);
    observer_.onExecutionEnd(input, result);
    return result;
}

RunResult
SimulationKernel::run(const std::vector<ExecutionInput> &executions,
                      PolicyDriver &driver)
{
    RunResult total;
    for (const ExecutionInput &input : executions)
        total.merge(runExecution(input, driver));
    return total;
}

} // namespace pcap::sim
