#include "sim/kernel.hpp"

#include "sim/execution_source.hpp"

#include <algorithm>

namespace pcap::sim {

void
RunResult::merge(const RunResult &other)
{
    accuracy.merge(other.accuracy);
    energy.merge(other.energy);
    shutdowns += other.shutdowns;
    spinUps += other.spinUps;
    ignoredShutdowns += other.ignoredShutdowns;
    totalSpinUpDelay += other.totalSpinUpDelay;
}

void
IdleSink::emit(Pid pid, TimeUs gap_start, TimeUs gap_end,
               TimeUs shutdown_at, pred::DecisionSource source,
               IdleOutcome outcome)
{
    IdlePeriodRecord record;
    record.pid = pid;
    record.start = gap_start;
    record.end = gap_end;
    record.shutdownAt = shutdown_at;
    record.source = source;
    record.outcome = outcome;
    observer_.onIdlePeriod(record);
}

// -- PolicyDriver defaults -------------------------------------

void
PolicyDriver::processStart(Pid pid, TimeUs time)
{
    (void)pid;
    (void)time;
}

void
PolicyDriver::processExit(Pid pid, TimeUs time, IdleSink &sink)
{
    (void)pid;
    (void)time;
    (void)sink;
}

pred::ShutdownDecision
PolicyDriver::standingDecision() const
{
    return {kTimeNever, pred::DecisionSource::None};
}

bool
PolicyDriver::parkLowPower() const
{
    return false;
}

void
PolicyDriver::endExecution(const ExecutionInput &input,
                           IdleSink &sink)
{
    (void)input;
    (void)sink;
}

// -- SimulationKernel ------------------------------------------

RunResult
SimulationKernel::runExecution(const ExecutionInput &input,
                               PolicyDriver &driver)
{
    if (path_ == KernelPath::Scalar)
        return runExecutionScalar(input, driver);
    // The template parameter hoists every observer dispatch out of
    // the replay loop: against the shared NullObserver the whole
    // execution runs with instrumentation compiled out.
    if (&observer_ == &nullObserver())
        return runExecutionBatched<false>(input, driver);
    return runExecutionBatched<true>(input, driver);
}

template <bool Instrumented>
RunResult
SimulationKernel::runExecutionBatched(const ExecutionInput &input,
                                      PolicyDriver &driver)
{
    driver.beginExecution(input);
    if constexpr (Instrumented)
        observer_.onExecutionBegin(input);

    const bool with_disk = driver.usesDisk();
    const bool trace_order =
        driver.replayOrder() == ReplayOrder::Trace;

    power::PowerManagedDisk disk(params_.disk,
                                 Instrumented ? &observer_ : nullptr);
    RunResult result;
    IdleSink sink(params_.breakeven(), result.accuracy, observer_);

    TimeUs gap_start = -1;  ///< arrival of the last access
    TimeUs seg_start = -1;  ///< earliest instant not yet checked
    TimeUs shutdown_at = -1;
    pred::DecisionSource shutdown_source = pred::DecisionSource::None;
    TimeUs last_completion = 0; ///< when the disk last went idle
    bool low_power_pending = false;
    std::size_t access_cursor = 0;

    // Identical semantics to the scalar loop's lambdas; see
    // runExecutionScalar for the commentary. Observer notifications
    // are compiled out of the uninstrumented instantiation.
    auto issue_shutdown = [&](TimeUs gap_end) {
        if (low_power_pending) {
            const TimeUs at = std::max(last_completion, gap_start);
            if (at < gap_end)
                disk.enterLowPower(at);
            low_power_pending = false;
        }
        if (shutdown_at < 0)
            return;
        const TimeUs at = std::max(shutdown_at, last_completion);
        if (at >= gap_end || !disk.shutdown(at)) {
            ++result.ignoredShutdowns;
            if constexpr (Instrumented)
                observer_.onShutdownIgnored(at);
        } else {
            if constexpr (Instrumented)
                observer_.onShutdownIssued(at);
        }
    };

    auto check_shutdown = [&](TimeUs until) {
        if (gap_start < 0 || shutdown_at >= 0) {
            seg_start = until;
            return;
        }
        const pred::ShutdownDecision d = driver.standingDecision();
        if (d.earliest != kTimeNever) {
            const TimeUs candidate = std::max(d.earliest, seg_start);
            if (candidate < until) {
                shutdown_at = candidate;
                shutdown_source = d.source;
                if constexpr (Instrumented)
                    observer_.onShutdownLatched(candidate, d.source);
            }
        }
        seg_start = until;
    };

    // The SoA mirror of the merged schedule: the batch loop streams
    // dense time/kind arrays instead of striding over SimEvent
    // records, and the batch boundary is where instrumented runs
    // get their onBatchFlush notification.
    const std::vector<trace::DiskAccess> &accesses = input.accesses;
    const std::vector<TimeUs> &times = input.eventTimes();
    const std::vector<std::uint8_t> &kinds = input.eventKinds();
    const std::vector<Pid> &pids = input.eventPids();
    const std::vector<std::uint32_t> &access_index =
        input.eventAccessIndex();
    const std::vector<std::uint32_t> &blocks = input.accessBlocks();
    const std::size_t events = times.size();
    constexpr auto kAccess =
        static_cast<std::uint8_t>(SimEventKind::Access);
    constexpr auto kStart =
        static_cast<std::uint8_t>(SimEventKind::ProcessStart);

    for (std::size_t base = 0; base < events;
         base += kKernelBatchEvents) {
        const std::size_t batch_end =
            std::min(events, base + kKernelBatchEvents);
        for (std::size_t i = base; i < batch_end; ++i) {
            const TimeUs time = times[i];
            if (with_disk)
                check_shutdown(time);
            const std::uint8_t kind = kinds[i];
            if (kind == kAccess) {
                // Same trace-order substitution as the scalar loop:
                // the k-th trace access stands in at the k-th access
                // event, and both sequences are sorted by time, so
                // times[i] equals the substituted access's time.
                const std::size_t index =
                    trace_order ? access_cursor : access_index[i];
                ++access_cursor;
                if (with_disk) {
                    if (gap_start >= 0) {
                        sink.classify(kMergedStreamPid, gap_start,
                                      time, shutdown_at,
                                      shutdown_source);
                    }
                    issue_shutdown(time);
                    last_completion = disk.request(time, blocks[index]);
                }
                driver.onAccess(accesses[index], last_completion,
                                sink);
                low_power_pending = with_disk && driver.parkLowPower();
                gap_start = time;
                seg_start = time;
                shutdown_at = -1;
                shutdown_source = pred::DecisionSource::None;
            } else if (kind == kStart) {
                driver.processStart(pids[i], time);
            } else {
                driver.processExit(pids[i], time, sink);
            }
        }
        if constexpr (Instrumented)
            observer_.onBatchFlush(batch_end - base);
    }

    if (with_disk) {
        // Trailing idle period to the end of the execution.
        check_shutdown(input.endTime);
        if (gap_start >= 0) {
            sink.classify(kMergedStreamPid, gap_start, input.endTime,
                          shutdown_at, shutdown_source);
            issue_shutdown(input.endTime);
        }
        disk.finish(input.endTime);

        result.energy = disk.ledger();
        result.shutdowns = disk.shutdownCount();
        result.spinUps = disk.spinUpCount();
        result.totalSpinUpDelay = disk.totalSpinUpDelay();
    }
    driver.endExecution(input, sink);
    if constexpr (Instrumented)
        observer_.onExecutionEnd(input, result);
    return result;
}

RunResult
SimulationKernel::runExecutionScalar(const ExecutionInput &input,
                                     PolicyDriver &driver)
{
    driver.beginExecution(input);
    observer_.onExecutionBegin(input);

    const bool with_disk = driver.usesDisk();
    const bool trace_order =
        driver.replayOrder() == ReplayOrder::Trace;

    power::PowerManagedDisk disk(params_.disk, &observer_);
    RunResult result;
    IdleSink sink(params_.breakeven(), result.accuracy, observer_);

    TimeUs gap_start = -1;  ///< arrival of the last access
    TimeUs seg_start = -1;  ///< earliest instant not yet checked
    TimeUs shutdown_at = -1;
    pred::DecisionSource shutdown_source = pred::DecisionSource::None;
    TimeUs last_completion = 0; ///< when the disk last went idle
    bool low_power_pending = false;
    std::size_t access_cursor = 0;

    // Issue the pending spin-down to the disk. The power manager's
    // order stands from shutdown_at on; if the disk is still busy
    // then (e.g. finishing a post-spin-up service), it spins down as
    // soon as it goes idle — provided that still happens before the
    // gap ends.
    auto issue_shutdown = [&](TimeUs gap_end) {
        if (low_power_pending) {
            // The prediction parked the disk in low-power mode as
            // soon as it went idle.
            const TimeUs at = std::max(last_completion, gap_start);
            if (at < gap_end)
                disk.enterLowPower(at);
            low_power_pending = false;
        }
        if (shutdown_at < 0)
            return;
        const TimeUs at = std::max(shutdown_at, last_completion);
        if (at >= gap_end || !disk.shutdown(at)) {
            ++result.ignoredShutdowns;
            observer_.onShutdownIgnored(at);
        } else {
            observer_.onShutdownIssued(at);
        }
    };

    // Decide whether the driver's standing decision fires a shutdown
    // inside [seg_start, until); constraints may have changed at
    // process starts/exits, so this runs before every event.
    auto check_shutdown = [&](TimeUs until) {
        if (gap_start < 0 || shutdown_at >= 0) {
            seg_start = until;
            return;
        }
        const pred::ShutdownDecision d = driver.standingDecision();
        if (d.earliest != kTimeNever) {
            const TimeUs candidate = std::max(d.earliest, seg_start);
            if (candidate < until) {
                shutdown_at = candidate;
                shutdown_source = d.source;
                observer_.onShutdownLatched(candidate, d.source);
            }
        }
        seg_start = until;
    };

    // The merged schedule is precomputed once per input and shared
    // by every policy run replaying it (see ExecutionInput::finalize).
    for (const SimEvent &event : input.simEvents()) {
        if (with_disk)
            check_shutdown(event.time);
        switch (event.kind) {
          case SimEventKind::ProcessStart:
            driver.processStart(event.pid, event.time);
            break;
          case SimEventKind::ProcessExit:
            driver.processExit(event.pid, event.time, sink);
            break;
          case SimEventKind::Access: {
            // Trace-order drivers take the k-th access of the trace
            // at the k-th access event: both sequences are sorted by
            // time, so the substitution is time-identical — it only
            // restores the trace's relative order of equal-timestamp
            // accesses, which these modes historically replayed.
            const trace::DiskAccess &access =
                trace_order ? input.accesses[access_cursor]
                            : input.accesses[event.accessIndex];
            ++access_cursor;
            if (with_disk) {
                if (gap_start >= 0) {
                    sink.classify(kMergedStreamPid, gap_start,
                                  access.time, shutdown_at,
                                  shutdown_source);
                }
                issue_shutdown(access.time);
                last_completion =
                    disk.request(access.time, access.blocks);
            }
            driver.onAccess(access, last_completion, sink);
            low_power_pending = with_disk && driver.parkLowPower();
            gap_start = access.time;
            seg_start = access.time;
            shutdown_at = -1;
            shutdown_source = pred::DecisionSource::None;
            break;
          }
        }
    }

    if (with_disk) {
        // Trailing idle period to the end of the execution.
        check_shutdown(input.endTime);
        if (gap_start >= 0) {
            sink.classify(kMergedStreamPid, gap_start, input.endTime,
                          shutdown_at, shutdown_source);
            issue_shutdown(input.endTime);
        }
        disk.finish(input.endTime);

        result.energy = disk.ledger();
        result.shutdowns = disk.shutdownCount();
        result.spinUps = disk.spinUpCount();
        result.totalSpinUpDelay = disk.totalSpinUpDelay();
    }
    driver.endExecution(input, sink);
    observer_.onExecutionEnd(input, result);
    return result;
}

RunResult
SimulationKernel::run(const std::vector<ExecutionInput> &executions,
                      PolicyDriver &driver)
{
    MaterializedSource source(executions);
    return run(source, driver);
}

RunResult
SimulationKernel::run(ExecutionSource &source, PolicyDriver &driver)
{
    RunResult total;
    while (const ExecutionInput *input = source.next())
        total.merge(runExecution(*input, driver));
    return total;
}

} // namespace pcap::sim
