/**
 * @file
 * Statistics the trace simulator collects: the hit / miss /
 * not-predicted taxonomy of Figures 6, 7, 9 and 10, split by the
 * primary-vs-backup source of each shutdown.
 */

#ifndef PCAP_SIM_STATS_HPP
#define PCAP_SIM_STATS_HPP

#include <cstdint>

#include "pred/predictor.hpp"
#include "util/types.hpp"

namespace pcap::sim {

/**
 * Shutdown-prediction accuracy over a set of idle periods.
 *
 * An *opportunity* is an idle period longer than the breakeven time
 * (the "Num. of idle periods" of Table 1). A shutdown whose
 * device-off time reaches the breakeven time is a *hit*; a shutdown
 * that leaves the disk off for less than the breakeven time costs
 * more energy than it saves and is a *miss* — whether it happened
 * inside a short gap (the dynamic-predictor failure mode) or too
 * late in a long one (the timeout failure mode). An opportunity with
 * no shutdown at all is *not predicted*. All fractions are
 * normalized to the opportunity count, exactly like the figures in
 * the paper (so the stacked fractions may exceed 100%: misses in
 * short gaps are "additional shutdowns ... normalized to the number
 * of idle periods for direct comparison", Section 6.1).
 */
struct AccuracyStats
{
    std::uint64_t opportunities = 0;
    std::uint64_t hitPrimary = 0;
    std::uint64_t hitBackup = 0;
    std::uint64_t missPrimary = 0;
    std::uint64_t missBackup = 0;
    std::uint64_t notPredicted = 0;

    /** All correctly predicted shutdowns. */
    std::uint64_t hits() const { return hitPrimary + hitBackup; }

    /** All mispredicted shutdowns. */
    std::uint64_t misses() const { return missPrimary + missBackup; }

    /** Coverage: hits / opportunities (0 when no opportunities). */
    double hitFraction() const { return ratio(hits()); }

    /** Mispredicted shutdowns / opportunities. */
    double missFraction() const { return ratio(misses()); }

    /** Unexploited opportunities / opportunities. */
    double notPredictedFraction() const { return ratio(notPredicted); }

    /** hits-by-primary / opportunities. */
    double hitPrimaryFraction() const { return ratio(hitPrimary); }

    /** hits-by-backup / opportunities. */
    double hitBackupFraction() const { return ratio(hitBackup); }

    /** misses-by-primary / opportunities. */
    double missPrimaryFraction() const { return ratio(missPrimary); }

    /** misses-by-backup / opportunities. */
    double missBackupFraction() const { return ratio(missBackup); }

    /** Fold another tally into this one. */
    void merge(const AccuracyStats &other);

    /** Record one classified idle period. Inline: these sit on the
     * kernel's per-period fast path (see IdleSink::classify). */
    void
    recordHit(pred::DecisionSource source)
    {
        if (source == pred::DecisionSource::Primary)
            ++hitPrimary;
        else
            ++hitBackup;
    }

    void
    recordMiss(pred::DecisionSource source)
    {
        if (source == pred::DecisionSource::Primary)
            ++missPrimary;
        else
            ++missBackup;
    }

  private:
    double
    ratio(std::uint64_t count) const
    {
        return opportunities
                   ? static_cast<double>(count) /
                         static_cast<double>(opportunities)
                   : 0.0;
    }
};

} // namespace pcap::sim

#endif // PCAP_SIM_STATS_HPP
