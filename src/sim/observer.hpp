/**
 * @file
 * Simulation observer layer: passive instrumentation hooks threaded
 * through the replay kernel and the power-managed disk.
 *
 * SimObserver extends power::DiskObserver (state transitions,
 * spin-up services) with replay-level callbacks: execution
 * boundaries, classified idle periods, and shutdown orders
 * issued/ignored. Observers never influence the simulation — the
 * kernel produces bit-identical results whether a NullObserver, a
 * JSONL tracer or a histogram collector is attached.
 */

#ifndef PCAP_SIM_OBSERVER_HPP
#define PCAP_SIM_OBSERVER_HPP

#include <array>
#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/provenance_tap.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/timeline.hpp"
#include "power/disk.hpp"
#include "power/disk_params.hpp"
#include "pred/predictor.hpp"
#include "util/types.hpp"

namespace pcap::sim {

struct ExecutionInput;
struct RunResult;

/**
 * How one idle period was classified — the taxonomy behind the
 * paper's accuracy figures, plus Short for sub-breakeven periods in
 * which no shutdown fired (they carry no prediction outcome and are
 * excluded from AccuracyStats, but per-period instrumentation wants
 * to see them).
 */
enum class IdleOutcome : std::uint8_t {
    Short,        ///< gap <= breakeven, no shutdown fired
    NotPredicted, ///< opportunity missed without a shutdown
    HitPrimary,   ///< paying shutdown, primary prediction
    HitBackup,    ///< paying shutdown, backup timeout
    MissPrimary,  ///< losing shutdown, primary prediction
    MissBackup,   ///< losing shutdown, backup timeout
};

/** Stable lower-case name ("hit_primary", ...). */
const char *idleOutcomeName(IdleOutcome outcome);

/** One classified idle period, as the kernel tallied it. */
struct IdlePeriodRecord
{
    /** Owning stream: a process pid for the local (per-process)
     * replay, kMergedStreamPid for the merged global stream. */
    Pid pid = 0;
    TimeUs start = 0;      ///< last access (gap opens)
    TimeUs end = 0;        ///< next access or stream end
    TimeUs shutdownAt = -1; ///< spin-down time inside the gap, or -1
    /** Attribution of the shutdown (None when no shutdown fired). */
    pred::DecisionSource source = pred::DecisionSource::None;
    IdleOutcome outcome = IdleOutcome::Short;

    TimeUs length() const { return end - start; }
};

/**
 * Hook interface of the replay kernel. All callbacks default to
 * no-ops; implementations override what they need. Callbacks fire
 * on the simulating thread, in replay order.
 */
class SimObserver : public power::DiskObserver
{
  public:
    /** Replay of one execution begins. */
    virtual void onExecutionBegin(const ExecutionInput &input)
    {
        (void)input;
    }

    /** Replay of one execution finished with @p result. */
    virtual void onExecutionEnd(const ExecutionInput &input,
                                const RunResult &result)
    {
        (void)input;
        (void)result;
    }

    /** An idle period was classified and tallied. */
    virtual void onIdlePeriod(const IdlePeriodRecord &record)
    {
        (void)record;
    }

    /**
     * The kernel latched a standing shutdown decision for the
     * current idle gap: a spin-down will fire at @p at attributed to
     * @p source (unless the disk cannot serve it). Fires at most
     * once per gap, before the gap is classified.
     */
    virtual void onShutdownLatched(TimeUs at,
                                   pred::DecisionSource source)
    {
        (void)at;
        (void)source;
    }

    /** The power manager's spin-down order was accepted at @p at. */
    virtual void onShutdownIssued(TimeUs at) { (void)at; }

    /** A spin-down order could not be served (disk busy past the
     * gap, or already down). */
    virtual void onShutdownIgnored(TimeUs at) { (void)at; }

    /**
     * The batched replay loop finished one event batch of
     * @p eventCount events (at most sim::kKernelBatchEvents). Fires
     * only on the instrumented batched path — the scalar reference
     * loop has no batch structure, and the uninstrumented path makes
     * no observer calls at all — so it is excluded from the
     * scalar-vs-batched callback-parity contract.
     */
    virtual void onBatchFlush(std::size_t eventCount)
    {
        (void)eventCount;
    }
};

/** The do-nothing observer every uninstrumented run shares. */
class NullObserver final : public SimObserver
{
};

/** Shared NullObserver instance (default kernel observer). */
SimObserver &nullObserver();

/**
 * Streams one JSON object per classified idle period to a file —
 * the bench_all --trace-dir format. One record per line:
 *
 * {"app":"mozilla","execution":3,"pid":-1,"start_us":..,"end_us":..,
 *  "length_us":..,"shutdown_us":-1,"source":"none","outcome":"short"}
 */
class JsonlTraceObserver final : public SimObserver
{
  public:
    /** Opens @p path for writing; fatal() when that fails. */
    explicit JsonlTraceObserver(const std::string &path);

    void onExecutionBegin(const ExecutionInput &input) override;
    void onExecutionEnd(const ExecutionInput &input,
                        const RunResult &result) override;
    void onIdlePeriod(const IdlePeriodRecord &record) override;

    /** Idle-period records written so far. */
    std::uint64_t recordCount() const { return records_; }

  private:
    std::ofstream os_;
    std::string path_;
    std::string app_;
    int execution_ = -1;
    std::uint64_t records_ = 0;
};

/**
 * Fans every callback out to a list of observers, in order — e.g. a
 * JSONL tracer plus a metrics collector on the same run. Null
 * entries are rejected; the observers must outlive the tee.
 */
class TeeObserver final : public SimObserver
{
  public:
    explicit TeeObserver(std::vector<SimObserver *> observers);

    void onExecutionBegin(const ExecutionInput &input) override;
    void onExecutionEnd(const ExecutionInput &input,
                        const RunResult &result) override;
    void onIdlePeriod(const IdlePeriodRecord &record) override;
    void onShutdownLatched(TimeUs at,
                           pred::DecisionSource source) override;
    void onShutdownIssued(TimeUs at) override;
    void onShutdownIgnored(TimeUs at) override;
    void onBatchFlush(std::size_t eventCount) override;
    void onDiskStateChange(TimeUs time, power::DiskState from,
                           power::DiskState to) override;
    void onSpinUpServed(TimeUs time, TimeUs delay) override;

  private:
    std::vector<SimObserver *> observers_;
};

/**
 * The provenance flight recorder's join point: correlates the PCAP
 * predictor's decision events (via core::ProvenanceTap) with the
 * kernel's classified idle periods (via SimObserver) and appends one
 * obs::ProvenanceRecord per period to the recorder.
 *
 * Attribution: per-process records (LocalDriver) join on the
 * record's own pid — classification precedes the predictor update
 * for the terminating access, so the stored decision event is still
 * the gap-opening one. Merged-stream records join through the
 * shutdown latch (the pid holding the winning global decision when
 * the kernel latched the spin-down, via bindDecisionPid); unlatched
 * merged gaps fall back to the live winner at classification time.
 *
 * The energy delta per shutdown period is what the spin-down was
 * worth against leaving the disk idling: idle power over the
 * off-time minus shutdown energy, standby power, and — unless the
 * gap runs to the end of the execution — one spin-up energy.
 */
class ProvenanceObserver final : public SimObserver,
                                 public core::ProvenanceTap
{
  public:
    ProvenanceObserver(obs::ProvenanceRecorder &recorder,
                       const power::DiskParams &disk);

    /** Bind the query for the pid holding the current global
     * decision (GlobalDriver::decisionPid). Optional; without it
     * merged-stream records carry pid -1. */
    void bindDecisionPid(std::function<Pid()> query);

    // SimObserver hooks
    void onExecutionBegin(const ExecutionInput &input) override;
    void onIdlePeriod(const IdlePeriodRecord &record) override;
    void onShutdownLatched(TimeUs at,
                           pred::DecisionSource source) override;

    // core::ProvenanceTap hooks
    void onPcapDecision(Pid pid,
                        const core::PcapDecisionEvent &event) override;
    void onPcapTraining(Pid pid,
                        const core::PcapTrainEvent &event) override;
    void onTableEviction(const core::TableKey &key) override;

    /** Training events seen (table insertions and refreshes). */
    std::uint64_t trainingCount() const { return trainings_; }

    /** LRU evictions reported by the prediction table. */
    std::uint64_t evictionCount() const { return evictions_; }

  private:
    /** Copy a decision event's evidence into @p out. */
    static void fillDecision(obs::ProvenanceRecord &out,
                             const core::PcapDecisionEvent &event);

    obs::ProvenanceRecorder &recorder_;
    power::DiskParams disk_;
    std::function<Pid()> decisionPid_;

    /** Latest decision event per process, current execution. */
    std::unordered_map<Pid, core::PcapDecisionEvent> latest_;

    bool latchValid_ = false;
    Pid latchPid_ = -1;
    bool latchHasEvent_ = false;
    core::PcapDecisionEvent latchEvent_;

    std::int32_t execution_ = 0;
    TimeUs execEnd_ = 0;
    std::uint64_t trainings_ = 0;
    std::uint64_t evictions_ = 0;
};

/**
 * Streams every replay-level event into ScopedMetrics series — the
 * kernel- and disk-layer instrumentation of the metrics subsystem.
 *
 * All recorded quantities are functions of the simulation alone
 * (simulated microseconds, event counts, joules), so a run's series
 * are byte-identical across machines, thread counts and workload
 * cache states. Metric handles are resolved once here in the
 * constructor, and per-event tallies accumulate in plain local
 * fields — an execution replays on one thread — flushed into the
 * shared atomics once per execution. A classified idle period costs
 * a bucket scan plus a few integer adds, not an atomic RMW.
 */
class MetricsObserver final : public SimObserver
{
  public:
    /**
     * @param scope     Cell-scoped handle (labels identify the run).
     * @param breakeven Histogram boundary anchor; the idle-length
     *                  buckets match IdleHistogramObserver's.
     * @param trackDisk False for diskless replays (local accuracy),
     *                  whose executions would otherwise read as one
     *                  long Idle residency.
     */
    MetricsObserver(obs::ScopedMetrics scope, TimeUs breakeven,
                    bool trackDisk = true);

    void onExecutionBegin(const ExecutionInput &input) override;
    void onExecutionEnd(const ExecutionInput &input,
                        const RunResult &result) override;
    void onIdlePeriod(const IdlePeriodRecord &record) override;
    void onShutdownIssued(TimeUs at) override;
    void onShutdownIgnored(TimeUs at) override;
    void onBatchFlush(std::size_t eventCount) override;
    void onDiskStateChange(TimeUs time, power::DiskState from,
                           power::DiskState to) override;
    void onSpinUpServed(TimeUs time, TimeUs delay) override;

  private:
    /** Push the execution-local tallies into the shared series and
     * zero them. The push is timed into the
     * pcap_sim_batch_flush_seconds series: its lap count (one per
     * execution flush) is deterministic and diffed by
     * tools/metrics_diff.py, while the seconds part is wall time and
     * ignored there.
     */
    void flush();

    obs::ScopedMetrics scope_;
    bool trackDisk_;

    obs::Counter &executions_;
    std::array<obs::Counter *, 6> idlePeriods_;
    obs::Histogram &idleLength_;
    obs::Counter &shutdownsIssued_;
    obs::Counter &shutdownsIgnored_;
    obs::Counter &spinUps_;
    obs::Counter &spinUpDelayUs_;
    std::array<obs::Counter *, 4> stateUs_;
    obs::Counter &stateTransitions_;
    obs::Counter &batches_;
    obs::Counter &batchEvents_;
    obs::PhaseTimer &batchFlush_;

    // Execution-local tallies (the replay of one execution is
    // single-threaded; see flush()).
    std::vector<double> uppers_; ///< idle-length bucket bounds
    std::vector<std::uint64_t> localBuckets_;
    std::uint64_t localIdleCount_ = 0;
    double localIdleSum_ = 0.0;
    std::array<std::uint64_t, 6> localOutcomes_{};
    std::uint64_t localIssued_ = 0;
    std::uint64_t localIgnored_ = 0;
    std::uint64_t localSpinUps_ = 0;
    std::uint64_t localSpinUpDelay_ = 0;
    std::uint64_t localTransitions_ = 0;
    std::array<std::uint64_t, 4> localStateUs_{};
    std::uint64_t localBatches_ = 0;
    std::uint64_t localBatchEvents_ = 0;

    power::DiskState lastState_ = power::DiskState::Idle;
    TimeUs lastChange_ = 0;
};

/**
 * Folds one cell's replay into an obs::Timeline over *simulated*
 * time: power-state residency, energy by category (per-state draw
 * plus transition costs), idle-period outcomes, shutdowns/spin-ups
 * and sampled prediction-table size. The bench_all --timeline-dir
 * sink; answers "when during the run" where MetricsObserver answers
 * "how much in total".
 *
 * Executions are laid end to end on one continuous timeline (an
 * execution beginning at simulated 0 continues at the accumulated
 * offset of every prior execution's end time), so a cell's document
 * covers the whole replay. Energy here is attributed by state and
 * split linearly across buckets — it reconciles with the
 * EnergyLedger total but categorizes by state, not by the paper's
 * Figure 8 gap taxonomy.
 */
class TimelineObserver final : public SimObserver
{
  public:
    /**
     * @param disk      Power draws for per-state energy attribution.
     * @param trackDisk False for diskless replays (local accuracy):
     *                  skips residency and energy, keeps outcomes.
     * @param buckets   Timeline resolution (even, >= 2).
     */
    explicit TimelineObserver(const power::DiskParams &disk,
                              bool trackDisk = true,
                              std::size_t buckets = 256);

    /** Bind the prediction-table size query (e.g. a session's
     * tableEntries()); sampled at execution boundaries and after
     * every classified idle period. Optional. */
    void bindTableSize(std::function<std::size_t()> query);

    void onExecutionBegin(const ExecutionInput &input) override;
    void onExecutionEnd(const ExecutionInput &input,
                        const RunResult &result) override;
    void onIdlePeriod(const IdlePeriodRecord &record) override;
    void onShutdownIssued(TimeUs at) override;
    void onDiskStateChange(TimeUs time, power::DiskState from,
                           power::DiskState to) override;
    void onSpinUpServed(TimeUs time, TimeUs delay) override;

    const obs::Timeline &timeline() const { return timeline_; }

    /** Meta block with the canonical sim-side name tables (disk
     * states, idle outcomes, energy rows) filled in. */
    static obs::TimelineMeta makeMeta(std::string cell,
                                      std::string mode,
                                      std::string app,
                                      std::string policy);

  private:
    /** Accrue residency + state-draw energy over [start, end). */
    void accrue(power::DiskState state, TimeUs startUs,
                TimeUs endUs);

    void sampleTable(TimeUs atUs);

    obs::Timeline timeline_;
    power::DiskParams disk_;
    bool trackDisk_;
    std::function<std::size_t()> tableSize_;

    TimeUs offset_ = 0; ///< summed end times of prior executions
    power::DiskState lastState_ = power::DiskState::Idle;
    TimeUs lastChange_ = 0;
};

/**
 * Accumulates the idle-length distribution, bucketed by period
 * length and broken down by outcome — the idle_histogram report.
 */
class IdleHistogramObserver final : public SimObserver
{
  public:
    static constexpr std::size_t kOutcomes = 6;

    struct Bucket
    {
        /** Inclusive upper bound of the bucket (µs); kTimeNever for
         * the final open bucket. */
        TimeUs upper = kTimeNever;
        std::array<std::uint64_t, kOutcomes> byOutcome{};

        std::uint64_t total() const;
    };

    /**
     * @p boundaries: strictly ascending inclusive upper bounds; an
     * open top bucket is appended automatically.
     */
    explicit IdleHistogramObserver(std::vector<TimeUs> boundaries);

    /** The standard boundaries used by the idle_histogram report:
     * sub-second decades, the breakeven time, and coarse tail. */
    static std::vector<TimeUs> defaultBoundaries(TimeUs breakeven);

    void onIdlePeriod(const IdlePeriodRecord &record) override;

    const std::vector<Bucket> &buckets() const { return buckets_; }

    /** Total periods observed across all buckets. */
    std::uint64_t totalPeriods() const { return periods_; }

  private:
    std::vector<Bucket> buckets_;
    std::uint64_t periods_ = 0;
};

} // namespace pcap::sim

#endif // PCAP_SIM_OBSERVER_HPP
