#include "sim/cell_store.hpp"

namespace pcap::sim {

template <typename T>
T
CellStore::memoized(
    std::map<std::string, std::shared_ptr<Memo<T>>> &map,
    const std::string &key, const std::function<T()> &compute)
{
    std::shared_ptr<Memo<T>> memo;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto &entry = map[key];
        if (!entry)
            entry = std::make_shared<Memo<T>>();
        memo = entry;
    }
    bool mine = false;
    std::call_once(memo->once, [&] {
        memo->value = compute();
        mine = true;
        computed_.fetch_add(1, std::memory_order_relaxed);
    });
    if (!mine)
        hits_.fetch_add(1, std::memory_order_relaxed);
    return memo->value;
}

AccuracyStats
CellStore::localAccuracy(const std::string &key,
                         const std::function<AccuracyStats()> &compute)
{
    return memoized(locals_, key, compute);
}

GlobalOutcome
CellStore::globalOutcome(const std::string &key,
                         const std::function<GlobalOutcome()> &compute)
{
    return memoized(globals_, key, compute);
}

RunResult
CellStore::runResult(const std::string &key,
                     const std::function<RunResult()> &compute)
{
    return memoized(runs_, key, compute);
}

} // namespace pcap::sim
