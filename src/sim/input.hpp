/**
 * @file
 * Simulator input: one execution of one application after the
 * file-cache filter — the disk access stream, the process lifetimes
 * (from the traced fork/exit events) and the pdflush pseudo-process.
 *
 * An ExecutionInput is immutable once built, and the same input is
 * replayed by dozens of policy runs per bench invocation. It
 * therefore precomputes everything a replay needs that depends only
 * on the input: the per-process access slices (accessesOf used to
 * copy the whole stream per call) and the merged, time-sorted event
 * list the global simulation walks (previously re-sorted on every
 * run).
 */

#ifndef PCAP_SIM_INPUT_HPP
#define PCAP_SIM_INPUT_HPP

#include <map>
#include <string>
#include <vector>

#include "cache/file_cache.hpp"
#include "trace/event.hpp"
#include "trace/trace.hpp"
#include "util/types.hpp"

namespace pcap::sim {

/** Lifetime of one process within an execution. */
struct ProcessSpan
{
    Pid pid = 0;
    TimeUs start = 0;
    TimeUs end = 0;

    bool operator==(const ProcessSpan &other) const = default;
};

/** Event kinds of the global replay, in same-time order. */
enum class SimEventKind : std::uint8_t {
    ProcessStart = 0,
    Access = 1,
    ProcessExit = 2,
};

/** One entry of the precomputed merged replay schedule. */
struct SimEvent
{
    TimeUs time = 0;
    SimEventKind kind = SimEventKind::Access;
    Pid pid = 0;
    std::size_t accessIndex = 0; ///< into ExecutionInput::accesses

    bool operator<(const SimEvent &other) const
    {
        if (time != other.time)
            return time < other.time;
        if (kind != other.kind)
            return static_cast<int>(kind) <
                   static_cast<int>(other.kind);
        return pid < other.pid;
    }
};

/**
 * Everything the simulator needs about one execution: the post-cache
 * disk access stream (time-sorted), the process spans — including
 * the flush daemon, which lives for the whole execution — and trace
 * metadata.
 */
struct ExecutionInput
{
    std::string app;
    int execution = 0;
    std::vector<trace::DiskAccess> accesses;
    std::vector<ProcessSpan> processes;
    TimeUs endTime = 0;
    std::uint64_t tracedIos = 0;    ///< pre-cache I/O count (Table 1)
    cache::CacheStats cacheStats;

    /**
     * Build from a validated trace: filter through a cold file cache
     * and extract the process spans. panic()s on an invalid trace —
     * workload models must produce structurally valid ones.
     */
    static ExecutionInput fromTrace(const trace::Trace &trace,
                                    const cache::CacheParams &params);

    /**
     * Rebuild the derived read-only indexes (per-pid slices and the
     * merged event schedule) from the primary fields above.
     * fromTrace() and the deserializer call this; inputs assembled
     * by hand (tests) are finalized lazily on first derived access.
     * Lazy finalization is not thread-safe — finalize before
     * sharing an input across threads (the library paths all do).
     */
    void finalize();

    /**
     * Accesses of one process, preserving time order. Returns a
     * reference to a slice precomputed by finalize() — no per-call
     * copy. Unknown pids get the shared empty vector.
     */
    const std::vector<trace::DiskAccess> &accessesOf(Pid pid) const;

    /** The merged time-sorted replay schedule (see finalize()). */
    const std::vector<SimEvent> &simEvents() const
    {
        ensureFinalized();
        return simEvents_;
    }

    /**
     * Struct-of-arrays mirror of simEvents(), in the same order —
     * the batched replay kernel walks these instead of the AoS
     * schedule so the hot loop streams 8-byte times and 1-byte kinds
     * rather than whole SimEvent records. All four arrays share
     * simEvents().size(); eventAccessIndex() is meaningful only at
     * positions whose kind is Access.
     */
    const std::vector<TimeUs> &eventTimes() const
    {
        ensureFinalized();
        return eventTimes_;
    }

    /** Event kinds (SimEventKind values), parallel to eventTimes(). */
    const std::vector<std::uint8_t> &eventKinds() const
    {
        ensureFinalized();
        return eventKinds_;
    }

    /** Event pids, parallel to eventTimes(). */
    const std::vector<Pid> &eventPids() const
    {
        ensureFinalized();
        return eventPids_;
    }

    /** Index into accesses for Access events, parallel to
     * eventTimes(). */
    const std::vector<std::uint32_t> &eventAccessIndex() const
    {
        ensureFinalized();
        return eventAccessIndex_;
    }

    /** Block count of each access (accesses[i].blocks), indexed like
     * the accesses array — the disk-model operand of the batched
     * kernel. */
    const std::vector<std::uint32_t> &accessBlocks() const
    {
        ensureFinalized();
        return accessBlocks_;
    }

    /** Span of one process; panics when the pid is unknown. */
    const ProcessSpan &spanOf(Pid pid) const;

    /**
     * Idle periods longer than @p breakeven on the merged stream,
     * including the trailing period to endTime — Table 1's "Global"
     * idle-period count for this execution.
     */
    std::uint64_t countGlobalOpportunities(TimeUs breakeven) const;

    /**
     * Sum over all predicting processes — the application's and the
     * flush daemon — of their idle periods longer than
     * @p breakeven, including each process's trailing period to its
     * exit: Table 1's "Local" count. The flush daemon counts
     * because it runs a local predictor like any process; this also
     * preserves Table 1's local >= global invariant, since the
     * daemon's accesses split global periods.
     */
    std::uint64_t countLocalOpportunities(TimeUs breakeven) const;

    /** Primary-field equality (derived indexes are excluded). */
    bool sameContentAs(const ExecutionInput &other) const;

  private:
    void ensureFinalized() const;

    mutable std::map<Pid, std::vector<trace::DiskAccess>>
        accessesByPid_;
    mutable std::vector<SimEvent> simEvents_;
    // SoA mirror of simEvents_ (see eventTimes()).
    mutable std::vector<TimeUs> eventTimes_;
    mutable std::vector<std::uint8_t> eventKinds_;
    mutable std::vector<Pid> eventPids_;
    mutable std::vector<std::uint32_t> eventAccessIndex_;
    mutable std::vector<std::uint32_t> accessBlocks_;
    mutable bool finalized_ = false;
};

} // namespace pcap::sim

#endif // PCAP_SIM_INPUT_HPP
