/**
 * @file
 * Simulator input: one execution of one application after the
 * file-cache filter — the disk access stream, the process lifetimes
 * (from the traced fork/exit events) and the pdflush pseudo-process.
 */

#ifndef PCAP_SIM_INPUT_HPP
#define PCAP_SIM_INPUT_HPP

#include <string>
#include <vector>

#include "cache/file_cache.hpp"
#include "trace/event.hpp"
#include "trace/trace.hpp"
#include "util/types.hpp"

namespace pcap::sim {

/** Lifetime of one process within an execution. */
struct ProcessSpan
{
    Pid pid = 0;
    TimeUs start = 0;
    TimeUs end = 0;
};

/**
 * Everything the simulator needs about one execution: the post-cache
 * disk access stream (time-sorted), the process spans — including
 * the flush daemon, which lives for the whole execution — and trace
 * metadata.
 */
struct ExecutionInput
{
    std::string app;
    int execution = 0;
    std::vector<trace::DiskAccess> accesses;
    std::vector<ProcessSpan> processes;
    TimeUs endTime = 0;
    std::uint64_t tracedIos = 0;    ///< pre-cache I/O count (Table 1)
    cache::CacheStats cacheStats;

    /**
     * Build from a validated trace: filter through a cold file cache
     * and extract the process spans. panic()s on an invalid trace —
     * workload models must produce structurally valid ones.
     */
    static ExecutionInput fromTrace(const trace::Trace &trace,
                                    const cache::CacheParams &params);

    /** Accesses of one process, preserving time order. */
    std::vector<trace::DiskAccess> accessesOf(Pid pid) const;

    /** Span of one process; panics when the pid is unknown. */
    const ProcessSpan &spanOf(Pid pid) const;

    /**
     * Idle periods longer than @p breakeven on the merged stream,
     * including the trailing period to endTime — Table 1's "Global"
     * idle-period count for this execution.
     */
    std::uint64_t countGlobalOpportunities(TimeUs breakeven) const;

    /**
     * Sum over all predicting processes — the application's and the
     * flush daemon — of their idle periods longer than
     * @p breakeven, including each process's trailing period to its
     * exit: Table 1's "Local" count. The flush daemon counts
     * because it runs a local predictor like any process; this also
     * preserves Table 1's local >= global invariant, since the
     * daemon's accesses split global periods.
     */
    std::uint64_t countLocalOpportunities(TimeUs breakeven) const;
};

} // namespace pcap::sim

#endif // PCAP_SIM_INPUT_HPP
