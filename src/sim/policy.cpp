#include "sim/policy.hpp"

#include "util/logging.hpp"

namespace pcap::sim {

PolicyConfig
PolicyConfig::timeoutPolicy(TimeUs timer)
{
    PolicyConfig config;
    config.kind = PolicyKind::Timeout;
    config.label = "TP";
    config.timeout = timer;
    return config;
}

PolicyConfig
PolicyConfig::learningTree()
{
    PolicyConfig config;
    config.kind = PolicyKind::LearningTree;
    config.label = "LT";
    return config;
}

PolicyConfig
PolicyConfig::learningTreeNoReuse()
{
    PolicyConfig config = learningTree();
    config.label = "LTa";
    config.reuseTables = false;
    return config;
}

PolicyConfig
PolicyConfig::pcapBase()
{
    PolicyConfig config;
    config.kind = PolicyKind::Pcap;
    config.label = "PCAP";
    return config;
}

PolicyConfig
PolicyConfig::pcapHistory()
{
    PolicyConfig config = pcapBase();
    config.label = "PCAPh";
    config.pcap.useHistory = true;
    return config;
}

PolicyConfig
PolicyConfig::pcapFd()
{
    PolicyConfig config = pcapBase();
    config.label = "PCAPf";
    config.pcap.useFd = true;
    return config;
}

PolicyConfig
PolicyConfig::pcapFdHistory()
{
    PolicyConfig config = pcapBase();
    config.label = "PCAPfh";
    config.pcap.useFd = true;
    config.pcap.useHistory = true;
    return config;
}

PolicyConfig
PolicyConfig::pcapNoReuse()
{
    PolicyConfig config = pcapBase();
    config.label = "PCAPa";
    config.reuseTables = false;
    return config;
}

PolicyConfig
PolicyConfig::expAveragePolicy()
{
    PolicyConfig config;
    config.kind = PolicyKind::ExpAverage;
    config.label = "EA";
    return config;
}

PolicyConfig
PolicyConfig::busyRatioPolicy()
{
    PolicyConfig config;
    config.kind = PolicyKind::BusyRatio;
    config.label = "SB";
    return config;
}

PolicyConfig
PolicyConfig::adaptiveTimeoutPolicy()
{
    PolicyConfig config;
    config.kind = PolicyKind::AdaptiveTimeout;
    config.label = "ATP";
    return config;
}

// -- Policy registry -------------------------------------------

namespace {

struct RegistryEntry
{
    const char *name;
    PolicyConfig (*make)();
};

// Factories with default arguments need a forwarding lambda to decay
// to a plain function pointer.
const RegistryEntry kRegistry[] = {
    {"TP", +[] { return PolicyConfig::timeoutPolicy(); }},
    {"LT", +[] { return PolicyConfig::learningTree(); }},
    {"LTa", +[] { return PolicyConfig::learningTreeNoReuse(); }},
    {"PCAP", +[] { return PolicyConfig::pcapBase(); }},
    {"PCAPh", +[] { return PolicyConfig::pcapHistory(); }},
    {"PCAPf", +[] { return PolicyConfig::pcapFd(); }},
    {"PCAPfh", +[] { return PolicyConfig::pcapFdHistory(); }},
    {"PCAPa", +[] { return PolicyConfig::pcapNoReuse(); }},
    {"EA", +[] { return PolicyConfig::expAveragePolicy(); }},
    {"SB", +[] { return PolicyConfig::busyRatioPolicy(); }},
    {"ATP", +[] { return PolicyConfig::adaptiveTimeoutPolicy(); }},
};

} // namespace

const std::vector<std::string> &
policyNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> list;
        for (const RegistryEntry &entry : kRegistry)
            list.emplace_back(entry.name);
        return list;
    }();
    return names;
}

std::optional<PolicyConfig>
findPolicy(const std::string &name)
{
    for (const RegistryEntry &entry : kRegistry) {
        if (name == entry.name)
            return entry.make();
    }
    return std::nullopt;
}

PolicyConfig
policyByName(const std::string &name)
{
    std::optional<PolicyConfig> config = findPolicy(name);
    if (!config) {
        std::string known;
        for (const std::string &label : policyNames())
            known += (known.empty() ? "" : " ") + label;
        fatal("unknown policy \"" + name + "\" (known: " + known +
              ")");
    }
    return *config;
}

PolicySession::PolicySession(const PolicyConfig &config)
    : config_(config)
{
    switch (config_.kind) {
      case PolicyKind::Timeout:
      case PolicyKind::ExpAverage:
      case PolicyKind::BusyRatio:
      case PolicyKind::AdaptiveTimeout:
        break;
      case PolicyKind::LearningTree:
        // Keep the backup timer consistent with the policy timeout.
        config_.lt.timeout = config_.timeout;
        tree_ = std::make_shared<pred::LtTree>(config_.lt);
        break;
      case PolicyKind::Pcap:
        config_.pcap.timeout = config_.timeout;
        table_ = std::make_shared<core::PredictionTable>();
        break;
    }
}

void
PolicySession::beginExecution()
{
    if (config_.reuseTables)
        return;
    if (table_)
        table_->clear();
    if (tree_)
        tree_->clear();
}

std::unique_ptr<pred::ShutdownPredictor>
PolicySession::makeLocal(Pid pid, TimeUs start_time)
{
    switch (config_.kind) {
      case PolicyKind::Timeout:
        return std::make_unique<pred::TimeoutPredictor>(
            config_.timeout, start_time);
      case PolicyKind::LearningTree:
        return std::make_unique<pred::LtPredictor>(config_.lt, tree_,
                                                   start_time);
      case PolicyKind::Pcap: {
        auto predictor = std::make_unique<core::PcapPredictor>(
            config_.pcap, table_, start_time);
        if (tap_)
            predictor->attachProvenance(tap_, pid);
        return predictor;
      }
      case PolicyKind::ExpAverage:
        return std::make_unique<pred::ExpAveragePredictor>(
            config_.expAverage, start_time);
      case PolicyKind::BusyRatio:
        return std::make_unique<pred::BusyRatioPredictor>(
            config_.busyRatio, start_time);
      case PolicyKind::AdaptiveTimeout:
        return std::make_unique<pred::AdaptiveTimeoutPredictor>(
            config_.adaptive, start_time);
    }
    panic("PolicySession::makeLocal: unknown policy kind");
}

std::size_t
PolicySession::tableEntries() const
{
    if (table_)
        return table_->size();
    if (tree_)
        return tree_->size();
    return 0;
}

std::uint64_t
PolicySession::tableEvictions() const
{
    return table_ ? table_->evictions() : 0;
}

void
PolicySession::setProvenanceTap(core::ProvenanceTap *tap)
{
    tap_ = tap;
    if (!table_)
        return;
    if (tap) {
        table_->setEvictionHook([tap](const core::TableKey &key) {
            tap->onTableEviction(key);
        });
    } else {
        table_->setEvictionHook({});
    }
}

void
recordSessionMetrics(const PolicySession &session,
                     const obs::ScopedMetrics &scope)
{
    if (!scope.enabled())
        return;
    scope.gauge("pcap_predictor_table_entries")
        .set(static_cast<double>(session.tableEntries()));
    scope.gauge("pcap_predictor_table_evictions")
        .set(static_cast<double>(session.tableEvictions()));
}

} // namespace pcap::sim
