/**
 * @file
 * Pull-based execution streaming: the kernel's input abstraction.
 *
 * Historically every replay materialized its full input vector —
 * generate all traces, filter them all, then run. That caps fleet
 * size at whatever fits in memory. An ExecutionSource inverts the
 * flow: the kernel *pulls* one ExecutionInput at a time, and the
 * source decides whether that input already exists (MaterializedSource
 * wraps a vector — the six-app reference path, byte-identical by
 * construction) or is generated on demand and discarded after the
 * replay (HostExecutionSource — memory stays bounded no matter how
 * many executions a host streams).
 */

#ifndef PCAP_SIM_EXECUTION_SOURCE_HPP
#define PCAP_SIM_EXECUTION_SOURCE_HPP

#include <cstddef>
#include <vector>

#include "cache/file_cache.hpp"
#include "sim/input.hpp"
#include "workload/host_profile.hpp"

namespace pcap::sim {

/**
 * A stream of executions for the kernel to replay, in order.
 *
 * Contract: next() returns the next execution, or null when the
 * stream is exhausted. The returned pointer stays valid only until
 * the following next() call — streaming sources reuse one internal
 * slot (generate-replay-discard), so callers must finish with an
 * input before pulling the next.
 */
class ExecutionSource
{
  public:
    virtual ~ExecutionSource() = default;

    virtual const ExecutionInput *next() = 0;
};

/**
 * The materialized path as a trivial source: walks an existing
 * vector without copying. The kernel's vector overload goes through
 * this, so streaming and materialized replays share one loop.
 */
class MaterializedSource final : public ExecutionSource
{
  public:
    explicit MaterializedSource(
        const std::vector<ExecutionInput> &inputs)
        : inputs_(&inputs)
    {
    }

    const ExecutionInput *next() override
    {
        if (index_ == inputs_->size())
            return nullptr;
        return &(*inputs_)[index_++];
    }

  private:
    const std::vector<ExecutionInput> *inputs_;
    std::size_t index_ = 0;
};

/**
 * Streams one host's workload: each next() generates the next
 * planned trace (workload::HostWorkloadStream), filters it through a
 * cold file cache and overwrites the single internal slot. Peak
 * memory is one ExecutionInput regardless of how many executions the
 * host's profile schedules.
 */
class HostExecutionSource final : public ExecutionSource
{
  public:
    HostExecutionSource(workload::HostProfile profile,
                        cache::CacheParams cacheParams);

    const ExecutionInput *next() override;

    /** Executions generated so far. */
    std::size_t produced() const { return stream_.produced(); }

    /** Executions the profile schedules in total. */
    std::size_t planned() const { return stream_.planned(); }

  private:
    workload::HostWorkloadStream stream_;
    cache::CacheParams cacheParams_;
    ExecutionInput slot_;
};

} // namespace pcap::sim

#endif // PCAP_SIM_EXECUTION_SOURCE_HPP
