#include "power/disk.hpp"

#include "util/logging.hpp"

namespace pcap::power {

const char *
diskStateName(DiskState state)
{
    switch (state) {
      case DiskState::Active: return "active";
      case DiskState::Idle: return "idle";
      case DiskState::LowPower: return "low-power";
      case DiskState::Standby: return "standby";
    }
    return "unknown";
}

PowerManagedDisk::PowerManagedDisk(const DiskParams &params,
                                   DiskObserver *observer)
    : params_(params), observer_(observer)
{
    const std::string problem = params_.validate();
    if (!problem.empty())
        fatal("PowerManagedDisk: bad parameters: " + problem);
}

void
PowerManagedDisk::setState(TimeUs time, DiskState next)
{
    if (state_ == next)
        return;
    const DiskState previous = state_;
    state_ = next;
    if (observer_)
        observer_->onDiskStateChange(time, previous, next);
}

void
PowerManagedDisk::accrueTo(TimeUs t)
{
    while (now_ < t) {
        switch (state_) {
          case DiskState::Active: {
            const TimeUs boundary = busyUntil_ < t ? busyUntil_ : t;
            ledger_.add(EnergyCategory::BusyIo,
                        energyJ(params_.busyPowerW, boundary - now_));
            now_ = boundary;
            if (now_ == busyUntil_) {
                // Service complete: a new idle gap opens here.
                setState(busyUntil_, DiskState::Idle);
                gapStart_ = busyUntil_;
                pendingGapJ_ = 0.0;
            }
            break;
          }
          case DiskState::Idle:
            pendingGapJ_ += energyJ(params_.idlePowerW, t - now_);
            now_ = t;
            break;
          case DiskState::LowPower:
            pendingGapJ_ +=
                energyJ(params_.lowPowerIdleW, t - now_);
            now_ = t;
            break;
          case DiskState::Standby:
            pendingGapJ_ += energyJ(params_.standbyPowerW, t - now_);
            now_ = t;
            break;
        }
    }
}

void
PowerManagedDisk::closeGap(TimeUs t)
{
    const TimeUs gap_length = t - gapStart_;
    const EnergyCategory category =
        gap_length > params_.breakevenTime ? EnergyCategory::IdleLong
                                           : EnergyCategory::IdleShort;
    ledger_.add(category, pendingGapJ_);
    pendingGapJ_ = 0.0;
}

TimeUs
PowerManagedDisk::request(TimeUs time, std::uint32_t blocks)
{
    if (finished_)
        panic("PowerManagedDisk::request after finish()");
    if (time < lastRequestTime_)
        panic("PowerManagedDisk::request: time goes backwards");
    if (blocks == 0)
        panic("PowerManagedDisk::request: zero blocks");
    lastRequestTime_ = time;
    ++requestCount_;

    accrueTo(time);

    TimeUs service_start = 0;
    switch (state_) {
      case DiskState::Active:
        // Queue behind the in-flight service.
        service_start = busyUntil_;
        break;
      case DiskState::Idle:
        closeGap(time);
        service_start = time;
        break;
      case DiskState::LowPower:
        // Exit the low-power mode: reload the heads.
        closeGap(time);
        ledger_.add(EnergyCategory::PowerCycle,
                    params_.lowPowerExitEnergyJ);
        service_start = time + params_.lowPowerExitTime;
        totalSpinUpDelay_ += params_.lowPowerExitTime;
        now_ = service_start;
        if (observer_)
            observer_->onSpinUpServed(time,
                                      params_.lowPowerExitTime);
        break;
      case DiskState::Standby: {
        closeGap(time);
        ++spinUpCount_;
        ledger_.add(EnergyCategory::PowerCycle, params_.spinUpEnergyJ);
        // If the request lands inside the spin-down transition window
        // (now_ is already past `time`), the spin-up starts only once
        // the spin-down has completed.
        const TimeUs wake_start = time > now_ ? time : now_;
        service_start = wake_start + params_.spinUpTime;
        totalSpinUpDelay_ += service_start - time;
        now_ = service_start;
        if (observer_)
            observer_->onSpinUpServed(time, service_start - time);
        break;
      }
    }

    setState(time, DiskState::Active);
    busyUntil_ = service_start +
                 static_cast<TimeUs>(blocks) *
                     params_.serviceTimePerBlock;
    return busyUntil_;
}

bool
PowerManagedDisk::shutdown(TimeUs time)
{
    if (finished_)
        panic("PowerManagedDisk::shutdown after finish()");
    // Inside a transition window the disk cannot take orders.
    if (time < now_)
        return false;

    accrueTo(time);
    if (state_ != DiskState::Idle && state_ != DiskState::LowPower)
        return false;

    ledger_.add(EnergyCategory::PowerCycle, params_.shutdownEnergyJ);
    ++shutdownCount_;
    setState(time, DiskState::Standby);
    // The lump sum covers the transition interval; per-time standby
    // accrual resumes after it.
    now_ = time + params_.shutdownTime;
    return true;
}

bool
PowerManagedDisk::enterLowPower(TimeUs time)
{
    if (finished_)
        panic("PowerManagedDisk::enterLowPower after finish()");
    if (time < now_)
        return false;

    accrueTo(time);
    if (state_ != DiskState::Idle)
        return false;

    // Unloading the heads is effectively free; the cost is paid on
    // exit.
    setState(time, DiskState::LowPower);
    ++lowPowerCount_;
    return true;
}

void
PowerManagedDisk::finish(TimeUs time)
{
    if (finished_)
        panic("PowerManagedDisk::finish called twice");
    accrueTo(time);
    if (state_ != DiskState::Active)
        closeGap(time > now_ ? time : now_);
    finished_ = true;
}

} // namespace pcap::power
