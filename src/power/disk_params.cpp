#include "power/disk_params.hpp"

#include <cmath>
#include <sstream>

namespace pcap::power {

double
DiskParams::derivedBreakevenSeconds() const
{
    const double cycle_energy = spinUpEnergyJ + shutdownEnergyJ;
    const double transitions =
        usToSeconds(spinUpTime + shutdownTime);
    // idle * T = cycleE + standby * (T - transitions)
    // =>  T = (cycleE - standby * transitions) / (idle - standby)
    return (cycle_energy - standbyPowerW * transitions) /
           (idlePowerW - standbyPowerW);
}

std::string
DiskParams::validate() const
{
    std::ostringstream error;
    if (busyPowerW <= 0 || idlePowerW <= 0 || standbyPowerW < 0) {
        error << "powers must be positive";
        return error.str();
    }
    if (standbyPowerW >= idlePowerW) {
        error << "standby power must be below idle power";
        return error.str();
    }
    if (idlePowerW > busyPowerW) {
        error << "idle power must not exceed busy power";
        return error.str();
    }
    if (spinUpTime <= 0 || shutdownTime <= 0 || breakevenTime <= 0 ||
        serviceTimePerBlock <= 0) {
        error << "times must be positive";
        return error.str();
    }
    if (lowPowerIdleW < standbyPowerW || lowPowerIdleW > idlePowerW ||
        lowPowerExitEnergyJ < 0 || lowPowerExitTime < 0) {
        error << "low-power idle mode must sit between standby and "
                 "idle";
        return error.str();
    }
    const double derived = derivedBreakevenSeconds();
    const double quoted = usToSeconds(breakevenTime);
    if (std::abs(derived - quoted) > 0.05 * quoted) {
        error << "quoted breakeven " << quoted
              << "s inconsistent with derived " << derived << "s";
        return error.str();
    }
    return {};
}

DiskParams
fujitsuMhf2043at()
{
    return DiskParams{};
}

} // namespace pcap::power
