#include "power/energy.hpp"

#include "util/logging.hpp"

namespace pcap::power {

const char *
energyCategoryName(EnergyCategory category)
{
    switch (category) {
      case EnergyCategory::BusyIo: return "Busy I/O";
      case EnergyCategory::IdleShort: return "Idle < Breakeven";
      case EnergyCategory::IdleLong: return "Idle > Breakeven";
      case EnergyCategory::PowerCycle: return "Power cycle";
    }
    return "unknown";
}

void
EnergyLedger::add(EnergyCategory category, double joules)
{
    if (joules < 0.0)
        panic("EnergyLedger::add: negative energy");
    switch (category) {
      case EnergyCategory::BusyIo: busyIo_ += joules; break;
      case EnergyCategory::IdleShort: idleShort_ += joules; break;
      case EnergyCategory::IdleLong: idleLong_ += joules; break;
      case EnergyCategory::PowerCycle: powerCycle_ += joules; break;
    }
}

double
EnergyLedger::get(EnergyCategory category) const
{
    switch (category) {
      case EnergyCategory::BusyIo: return busyIo_;
      case EnergyCategory::IdleShort: return idleShort_;
      case EnergyCategory::IdleLong: return idleLong_;
      case EnergyCategory::PowerCycle: return powerCycle_;
    }
    return 0.0;
}

double
EnergyLedger::total() const
{
    return busyIo_ + idleShort_ + idleLong_ + powerCycle_;
}

double
EnergyLedger::normalizedTo(const EnergyLedger &baseline) const
{
    const double base = baseline.total();
    return base > 0.0 ? total() / base : 0.0;
}

void
EnergyLedger::clear()
{
    busyIo_ = idleShort_ = idleLong_ = powerCycle_ = 0.0;
}

void
EnergyLedger::merge(const EnergyLedger &other)
{
    busyIo_ += other.busyIo_;
    idleShort_ += other.idleShort_;
    idleLong_ += other.idleLong_;
    powerCycle_ += other.powerCycle_;
}

double
energyJ(double power_w, TimeUs duration)
{
    if (duration < 0)
        panic("energyJ: negative duration");
    return power_w * usToSeconds(duration);
}

const char *
energyCategorySlug(EnergyCategory category)
{
    switch (category) {
      case EnergyCategory::BusyIo: return "busy_io";
      case EnergyCategory::IdleShort: return "idle_short";
      case EnergyCategory::IdleLong: return "idle_long";
      case EnergyCategory::PowerCycle: return "power_cycle";
    }
    return "unknown";
}

void
recordLedgerMetrics(const EnergyLedger &ledger,
                    const obs::ScopedMetrics &scope)
{
    static constexpr EnergyCategory kCategories[] = {
        EnergyCategory::BusyIo,
        EnergyCategory::IdleShort,
        EnergyCategory::IdleLong,
        EnergyCategory::PowerCycle,
    };
    for (EnergyCategory category : kCategories) {
        scope
            .gauge("pcap_energy_joules",
                   {{"category", energyCategorySlug(category)}})
            .add(ledger.get(category));
    }
}

} // namespace pcap::power
