/**
 * @file
 * Disk power-model parameters (the paper's Table 2) and derived
 * quantities such as the breakeven time.
 */

#ifndef PCAP_POWER_DISK_PARAMS_HPP
#define PCAP_POWER_DISK_PARAMS_HPP

#include <string>

#include "util/types.hpp"

namespace pcap::power {

/**
 * Power states and state-transition costs of a power-managed disk.
 *
 * Defaults are the Fujitsu MHF 2043AT parameters from Table 2 of the
 * paper. The breakeven time is the idle-period length at which
 * shutting down costs exactly as much energy as staying idle; the
 * paper quotes 5.43 s for this disk, which matches the value derived
 * from the other parameters to within rounding (see
 * derivedBreakevenSeconds()).
 */
struct DiskParams
{
    double busyPowerW = 2.2;     ///< servicing a request
    double idlePowerW = 0.95;    ///< spinning, no request
    double standbyPowerW = 0.13; ///< spun down
    double spinUpEnergyJ = 4.4;  ///< energy of one spin-up
    double shutdownEnergyJ = 0.36; ///< energy of one spin-down
    TimeUs spinUpTime = secondsUs(1.6);   ///< spin-up delay
    TimeUs shutdownTime = secondsUs(0.67); ///< spin-down delay
    TimeUs breakevenTime = secondsUs(5.43); ///< quoted breakeven

    /**
     * Time the disk is busy servicing one cache-block transfer.
     * Not in Table 2; 2 ms per 4 KB block models the mostly
     * sequential transfers of the traced applications on a laptop
     * disk of that era (seeks amortize across bursts).
     */
    TimeUs serviceTimePerBlock = millisUs(2);

    /**
     * Extension (the paper's Section 7 future work): an intermediate
     * low-power idle mode — heads unloaded, electronics partly off,
     * platters still spinning — that the power manager can enter
     * immediately on a prediction, before committing to a full
     * spin-down once the wait-window elapses. Exit is much cheaper
     * than a spin-up. Values are representative for a laptop disk of
     * the era; they are not part of Table 2.
     */
    double lowPowerIdleW = 0.55;       ///< low-power idle draw
    double lowPowerExitEnergyJ = 0.35; ///< head-load energy
    TimeUs lowPowerExitTime = millisUs(300); ///< head-load delay

    /**
     * Breakeven time derived from first principles: the T solving
     * idle*T = spinUpE + shutdownE + standby*(T - transitions).
     */
    double derivedBreakevenSeconds() const;

    /**
     * Check internal consistency (positive powers, idle > standby,
     * quoted breakeven within 5% of the derived one). Returns an
     * empty string when consistent, else a description.
     */
    std::string validate() const;
};

/** The Fujitsu MHF 2043AT disk used throughout the paper. */
DiskParams fujitsuMhf2043at();

} // namespace pcap::power

#endif // PCAP_POWER_DISK_PARAMS_HPP
