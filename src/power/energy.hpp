/**
 * @file
 * Energy ledger: accumulates joules into the four categories the
 * paper's Figure 8 reports — busy I/O, idle below breakeven, idle
 * above breakeven, and power-cycle (spin-down + spin-up) energy.
 */

#ifndef PCAP_POWER_ENERGY_HPP
#define PCAP_POWER_ENERGY_HPP

#include <string>

#include "obs/metrics.hpp"
#include "power/disk_params.hpp"
#include "util/types.hpp"

namespace pcap::power {

/** The four energy categories of Figure 8. */
enum class EnergyCategory {
    BusyIo,        ///< disk servicing requests
    IdleShort,     ///< spinning idle inside gaps <= breakeven
    IdleLong,      ///< spinning idle or standby inside gaps > breakeven
    PowerCycle,    ///< spin-down + spin-up transitions
};

/** Human-readable category name as used in Figure 8 legends. */
const char *energyCategoryName(EnergyCategory category);

/**
 * Per-category energy totals for one simulated policy run.
 *
 * All values are joules. The ledger is policy-agnostic: the simulator
 * decides which category a joule belongs to and calls add().
 */
class EnergyLedger
{
  public:
    /** Add @p joules to @p category. Negative amounts panic. */
    void add(EnergyCategory category, double joules);

    /** Energy accumulated in one category. */
    double get(EnergyCategory category) const;

    /** Sum over all categories. */
    double total() const;

    /** This ledger's total as a fraction of @p baseline's total.
     * Returns 0 when the baseline is empty. */
    double normalizedTo(const EnergyLedger &baseline) const;

    /** Reset all categories to zero. */
    void clear();

    /** Merge another ledger into this one. */
    void merge(const EnergyLedger &other);

  private:
    double busyIo_ = 0.0;
    double idleShort_ = 0.0;
    double idleLong_ = 0.0;
    double powerCycle_ = 0.0;
};

/**
 * Helpers converting (power, duration) into joules. Durations are in
 * simulated microseconds.
 */
double energyJ(double power_w, TimeUs duration);

/** Metric-friendly category slug ("busy_io", "idle_short", ...). */
const char *energyCategorySlug(EnergyCategory category);

/**
 * Add @p ledger's per-category joules to @p scope's
 * pcap_energy_joules{category=...} gauges (Figure 8 breakdown as a
 * metric).
 */
void recordLedgerMetrics(const EnergyLedger &ledger,
                         const obs::ScopedMetrics &scope);

} // namespace pcap::power

#endif // PCAP_POWER_ENERGY_HPP
