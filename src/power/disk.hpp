/**
 * @file
 * Online power-managed disk state machine.
 *
 * The disk is driven by two kinds of stimuli: requests (disk accesses
 * surviving the file cache) and shutdown orders from a power-management
 * policy. It accounts energy into the EnergyLedger categories of
 * Figure 8 and tracks shutdown/spin-up statistics. Both the trace
 * simulator and the interactive examples drive this one class, so the
 * energy arithmetic lives in exactly one place.
 */

#ifndef PCAP_POWER_DISK_HPP
#define PCAP_POWER_DISK_HPP

#include <cstdint>

#include "power/disk_params.hpp"
#include "power/energy.hpp"
#include "util/types.hpp"

namespace pcap::power {

/** Observable high-level state of the disk. */
enum class DiskState {
    Active,   ///< servicing a request
    Idle,     ///< spinning, no request
    LowPower, ///< spinning, heads unloaded (extension, Section 7)
    Standby,  ///< spun down
};

/** Human-readable state name. */
const char *diskStateName(DiskState state);

/**
 * Passive hook for disk-level events. The power layer knows nothing
 * about the simulator; sim::SimObserver extends this interface with
 * replay-level callbacks. Default implementations do nothing, so
 * observers override only what they need.
 *
 * Timestamps are the stimulus times: a request that wakes a spun-down
 * disk reports the transition at the request's arrival even though
 * service starts only after the spin-up completes.
 */
class DiskObserver
{
  public:
    virtual ~DiskObserver() = default;

    /** The disk moved from @p from to @p to at @p time. */
    virtual void
    onDiskStateChange(TimeUs time, DiskState from, DiskState to)
    {
        (void)time;
        (void)from;
        (void)to;
    }

    /**
     * A request at @p time found the disk spun down (or heads
     * unloaded) and paid @p delay of extra latency waking it.
     */
    virtual void
    onSpinUpServed(TimeUs time, TimeUs delay)
    {
        (void)time;
        (void)delay;
    }
};

/**
 * Power-managed disk.
 *
 * Time semantics: transition energies (spin-down 0.36 J, spin-up
 * 4.4 J) are accounted as lump sums covering the whole transition
 * interval; idle and standby power accrue per microsecond. Idle and
 * standby energy of a gap is held back until the gap ends (next
 * request), at which point the whole gap is classified as
 * IdleShort or IdleLong by comparing its length with the breakeven
 * time — exactly the categories of Figure 8.
 *
 * Requests that arrive while the disk is busy queue behind the
 * current service; requests that arrive in Standby wait for the
 * spin-up. Request timestamps must be non-decreasing.
 */
class PowerManagedDisk
{
  public:
    /**
     * @p observer, when non-null, is notified of state transitions
     * and spin-up services; it must outlive the disk.
     */
    explicit PowerManagedDisk(const DiskParams &params,
                              DiskObserver *observer = nullptr);

    /**
     * A request for @p blocks cache blocks arrives at @p time.
     * @return the time at which the request completes, including any
     *         queueing and spin-up delay.
     */
    TimeUs request(TimeUs time, std::uint32_t blocks);

    /**
     * Policy orders a spin-down at @p time (from Idle or LowPower).
     * @return false when the order is ignored because the disk is not
     *         idle at @p time (busy or already spun down).
     */
    bool shutdown(TimeUs time);

    /**
     * Extension: drop into the low-power idle mode at @p time. Valid
     * only from Idle; exit happens automatically on the next request
     * (paying the head-load energy/delay) or via shutdown().
     * @return false when ignored (busy, already low-power or down).
     */
    bool enterLowPower(TimeUs time);

    /**
     * Finish the run: account energy up to @p time and classify the
     * trailing gap. Call exactly once, after the last request.
     */
    void finish(TimeUs time);

    /** Current state as of the last stimulus. */
    DiskState state() const { return state_; }

    /**
     * Observable state at @p t (>= the last stimulus) without
     * advancing the accounting: an Active disk whose service has
     * completed by @p t reads as Idle.
     */
    DiskState
    stateAt(TimeUs t) const
    {
        if (state_ == DiskState::Active && t >= busyUntil_)
            return DiskState::Idle;
        return state_;
    }

    /** Energy accounted so far (final after finish()). */
    const EnergyLedger &ledger() const { return ledger_; }

    /** Number of spin-downs performed. */
    std::uint64_t shutdownCount() const { return shutdownCount_; }

    /** Number of low-power idle entries (extension). */
    std::uint64_t lowPowerCount() const { return lowPowerCount_; }

    /** Number of spin-ups performed (requests that found the disk
     * spun down). */
    std::uint64_t spinUpCount() const { return spinUpCount_; }

    /** Total extra latency requests experienced due to spin-ups. */
    TimeUs totalSpinUpDelay() const { return totalSpinUpDelay_; }

    /** Number of requests serviced. */
    std::uint64_t requestCount() const { return requestCount_; }

    /** Start time of the current idle gap (meaningful when not
     * Active). */
    TimeUs gapStart() const { return gapStart_; }

    /** Parameters the disk was built with. */
    const DiskParams &params() const { return params_; }

  private:
    /** Accrue per-time energy from now_ to @p t (>= now_). */
    void accrueTo(TimeUs t);

    /** Classify and flush the pending gap energy; gap ended at @p t. */
    void closeGap(TimeUs t);

    /** Move to @p next, notifying the observer on a real change. */
    void setState(TimeUs time, DiskState next);

    DiskParams params_;
    DiskObserver *observer_ = nullptr;
    DiskState state_ = DiskState::Idle;
    EnergyLedger ledger_;

    TimeUs now_ = 0;         ///< everything before this is accounted
    TimeUs busyUntil_ = 0;   ///< end of current/last service
    TimeUs gapStart_ = 0;    ///< when the current gap began
    double pendingGapJ_ = 0.0; ///< idle+standby energy of current gap
    bool finished_ = false;

    std::uint64_t shutdownCount_ = 0;
    std::uint64_t lowPowerCount_ = 0;
    std::uint64_t spinUpCount_ = 0;
    std::uint64_t requestCount_ = 0;
    TimeUs totalSpinUpDelay_ = 0;
    TimeUs lastRequestTime_ = 0;
};

} // namespace pcap::power

#endif // PCAP_POWER_DISK_HPP
