/**
 * @file
 * Fundamental scalar types shared by every module of the PCAP
 * reproduction: simulated time, process ids, program-counter addresses
 * and file identities.
 *
 * Simulated time is kept in signed 64-bit microseconds. All the
 * thresholds the paper reasons about (1 s wait-window, 5.43 s
 * breakeven, 10 s timeout, 30 s flush timer) are exactly representable
 * and arithmetic stays exact, unlike with floating-point seconds.
 */

#ifndef PCAP_UTIL_TYPES_HPP
#define PCAP_UTIL_TYPES_HPP

#include <cstdint>
#include <limits>

namespace pcap {

/** Simulated time in microseconds since the start of a trace. */
using TimeUs = std::int64_t;

/** Process identifier inside a simulated application. */
using Pid = std::int32_t;

/**
 * A program-counter value: the application call site that triggered an
 * I/O operation. 32 bits, as in the paper's 4-byte signatures.
 */
using Address = std::uint32_t;

/** Identity of a file (stands in for the file's location on disk). */
using FileId = std::uint32_t;

/** File descriptor as seen by the traced application. */
using Fd = std::int32_t;

/** One microsecond, for readability in arithmetic. */
constexpr TimeUs kUsPerSec = 1'000'000;

/** One millisecond in microseconds. */
constexpr TimeUs kUsPerMs = 1'000;

/** Sentinel meaning "never": later than any simulated instant. */
constexpr TimeUs kTimeNever = std::numeric_limits<TimeUs>::max();

/** Pseudo-pid of the kernel dirty-data flush daemon (pdflush). */
constexpr Pid kFlushDaemonPid = 1;

/** Program counter attributed to flush-daemon write-back I/O. */
constexpr Address kFlushDaemonPc = 0xc0100000u;

/** Convert whole seconds to microseconds. */
constexpr TimeUs
secondsUs(double s)
{
    return static_cast<TimeUs>(s * static_cast<double>(kUsPerSec));
}

/** Convert milliseconds to microseconds. */
constexpr TimeUs
millisUs(double ms)
{
    return static_cast<TimeUs>(ms * static_cast<double>(kUsPerMs));
}

/** Convert microseconds to floating-point seconds (for reporting). */
constexpr double
usToSeconds(TimeUs t)
{
    return static_cast<double>(t) / static_cast<double>(kUsPerSec);
}

} // namespace pcap

#endif // PCAP_UTIL_TYPES_HPP
