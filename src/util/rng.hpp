/**
 * @file
 * Deterministic pseudo-random number generation for workload
 * synthesis.
 *
 * The whole reproduction must be bit-reproducible: the same seed must
 * generate the same traces on every platform and every run, so that
 * tests, benches and EXPERIMENTS.md stay in agreement. std::mt19937
 * would work, but the std:: distributions are not guaranteed to be
 * identical across standard libraries, so we implement the generator
 * (xoshiro256**) and every distribution we need ourselves.
 */

#ifndef PCAP_UTIL_RNG_HPP
#define PCAP_UTIL_RNG_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace pcap {

/** FNV-1a hash of a string; used to derive per-application seeds. */
std::uint64_t hashString(const std::string &text);

/**
 * Deterministic random number generator with the handful of
 * distributions the workload models need.
 *
 * Internally a xoshiro256** generator seeded via SplitMix64, so a
 * single 64-bit seed fully determines the stream.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform01();

    /** Uniform double in [lo, hi). Requires lo <= hi. */
    double uniformReal(double lo, double hi);

    /** Bernoulli trial: true with probability p (clamped to [0,1]). */
    bool chance(double p);

    /** Exponentially distributed double with the given mean (> 0). */
    double exponential(double mean);

    /**
     * Log-normal-ish "think time" draw: exp of a normal with the
     * given median and spread (sigma of the underlying normal).
     * Heavy-tailed like human pause times.
     */
    double logNormal(double median, double sigma);

    /**
     * Pick an index in [0, weights.size()) with probability
     * proportional to its weight. Requires a non-empty vector with a
     * positive total weight.
     */
    std::size_t weightedChoice(const std::vector<double> &weights);

    /**
     * Derive an independent child generator. Streams of children with
     * different tags are uncorrelated with each other and with the
     * parent, letting each (application, execution) pair own a stream
     * that does not depend on how much randomness other executions
     * consumed.
     */
    Rng fork(std::uint64_t tag);

  private:
    /** Standard normal via Box-Muller (one value per call). */
    double normal01();

    std::uint64_t state_[4];
};

} // namespace pcap

#endif // PCAP_UTIL_RNG_HPP
