/**
 * @file
 * Minimal fixed-width text table printer used by the bench binaries
 * to emit the paper's tables and figure data as aligned rows.
 */

#ifndef PCAP_UTIL_TABLE_HPP
#define PCAP_UTIL_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace pcap {

/**
 * Accumulates rows of strings and prints them with columns padded to
 * the widest cell. The first row added is treated as the header and
 * underlined.
 */
class TextTable
{
  public:
    /** Add one row; all rows should have the same number of cells. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: add the header row. */
    void setHeader(std::vector<std::string> cells);

    /** Render the table to @p os with two spaces between columns. */
    void print(std::ostream &os) const;

    /** Number of rows added, including the header. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::vector<std::string>> rows_;
    bool hasHeader_ = false;
};

/** Format a ratio as a percentage string like "76.3%". */
std::string percentString(double ratio, int decimals = 1);

/** Format a double with fixed decimals. */
std::string fixedString(double value, int decimals = 2);

} // namespace pcap

#endif // PCAP_UTIL_TABLE_HPP
