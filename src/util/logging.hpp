/**
 * @file
 * Error and status reporting helpers, following the gem5 convention:
 * panic() for internal invariant violations (a bug in this library),
 * fatal() for unrecoverable user/configuration errors, warn() and
 * inform() for non-fatal status messages.
 */

#ifndef PCAP_UTIL_LOGGING_HPP
#define PCAP_UTIL_LOGGING_HPP

#include <cstdio>
#include <cstdlib>
#include <string>

namespace pcap {

namespace detail {

/** Print a tagged message to stderr: "tag: message\n". */
void logMessage(const char *tag, const std::string &message);

} // namespace detail

/**
 * Report an internal invariant violation and abort.
 *
 * Call when something happened that must never happen regardless of
 * user input — i.e. a bug in this library. Aborts so a debugger or
 * core dump can capture the state.
 */
[[noreturn]] void panic(const std::string &message);

/**
 * Report an unrecoverable user-facing error and exit(1).
 *
 * Call for bad configuration or invalid arguments — conditions that
 * are the caller's fault rather than a library bug.
 */
[[noreturn]] void fatal(const std::string &message);

/** Warn about a suspicious but survivable condition. */
void warn(const std::string &message);

/** Print an informational status message. */
void inform(const std::string &message);

} // namespace pcap

#endif // PCAP_UTIL_LOGGING_HPP
