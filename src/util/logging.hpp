/**
 * @file
 * Error and status reporting helpers, following the gem5 convention:
 * panic() for internal invariant violations (a bug in this library),
 * fatal() for unrecoverable user/configuration errors, error(),
 * warn(), inform() and debug() for non-fatal messages of descending
 * severity.
 *
 * Messages below the process-wide log level (default Info) are
 * suppressed; bench_all exposes it as --log-level. panic() and
 * fatal() always print — suppressing the reason a process died is
 * never useful.
 */

#ifndef PCAP_UTIL_LOGGING_HPP
#define PCAP_UTIL_LOGGING_HPP

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

namespace pcap {

/** Severity threshold of the non-fatal logging helpers. */
enum class LogLevel {
    Debug = 0, ///< everything, including debug()
    Info = 1,  ///< inform() and louder (the default)
    Warn = 2,  ///< warn() and error() only
    Error = 3, ///< error() only
    Silent = 4 ///< nothing below panic()/fatal()
};

/** Set the process-wide log level (thread-safe). */
void setLogLevel(LogLevel level);

/** The current process-wide log level. */
LogLevel logLevel();

/** Parse "debug"/"info"/"warn"/"error"/"silent"; nullopt when the
 * name is unknown. */
std::optional<LogLevel> logLevelFromName(const std::string &name);

/** Stable lower-case name of @p level ("debug", ...). */
const char *logLevelName(LogLevel level);

namespace detail {

/** Print a tagged message to stderr: "tag: message\n". */
void logMessage(const char *tag, const std::string &message);

} // namespace detail

/**
 * Report an internal invariant violation and abort.
 *
 * Call when something happened that must never happen regardless of
 * user input — i.e. a bug in this library. Aborts so a debugger or
 * core dump can capture the state. Never suppressed.
 */
[[noreturn]] void panic(const std::string &message);

/**
 * Report an unrecoverable user-facing error and exit(1).
 *
 * Call for bad configuration or invalid arguments — conditions that
 * are the caller's fault rather than a library bug. Never
 * suppressed.
 */
[[noreturn]] void fatal(const std::string &message);

/** Report a non-fatal error the caller will recover from or turn
 * into an exit code (CLI diagnostics). */
void error(const std::string &message);

/** Warn about a suspicious but survivable condition. */
void warn(const std::string &message);

/** Print an informational status message. */
void inform(const std::string &message);

/** Verbose diagnostics, hidden unless the level is Debug. */
void debug(const std::string &message);

} // namespace pcap

#endif // PCAP_UTIL_LOGGING_HPP
