#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace pcap {

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    sum_ += x;
    ++count_;
}

double
RunningStat::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
SampleSet::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double clamped = std::clamp(p, 0.0, 1.0);
    const auto rank = static_cast<std::size_t>(
        std::ceil(clamped * static_cast<double>(sorted.size())));
    const std::size_t index = rank == 0 ? 0 : rank - 1;
    return sorted[std::min(index, sorted.size() - 1)];
}

double
SampleSet::mean() const
{
    if (samples_.empty())
        return 0.0;
    double total = 0.0;
    for (double s : samples_)
        total += s;
    return total / static_cast<double>(samples_.size());
}

double
SampleSet::fractionIn(double lo, double hi) const
{
    if (samples_.empty())
        return 0.0;
    std::size_t hits = 0;
    for (double s : samples_) {
        if (s >= lo && s < hi)
            ++hits;
    }
    return static_cast<double>(hits) /
           static_cast<double>(samples_.size());
}

} // namespace pcap
