#include "util/logging.hpp"

#include <atomic>

namespace pcap {

namespace {

std::atomic<int> gLogLevel{static_cast<int>(LogLevel::Info)};

bool
enabled(LogLevel severity)
{
    return static_cast<int>(severity) >=
           gLogLevel.load(std::memory_order_relaxed);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    gLogLevel.store(static_cast<int>(level),
                    std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        gLogLevel.load(std::memory_order_relaxed));
}

std::optional<LogLevel>
logLevelFromName(const std::string &name)
{
    if (name == "debug")
        return LogLevel::Debug;
    if (name == "info")
        return LogLevel::Info;
    if (name == "warn")
        return LogLevel::Warn;
    if (name == "error")
        return LogLevel::Error;
    if (name == "silent")
        return LogLevel::Silent;
    return std::nullopt;
}

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
      case LogLevel::Silent: return "silent";
    }
    return "unknown";
}

namespace detail {

void
logMessage(const char *tag, const std::string &message)
{
    std::fprintf(stderr, "%s: %s\n", tag, message.c_str());
    std::fflush(stderr);
}

} // namespace detail

void
panic(const std::string &message)
{
    detail::logMessage("panic", message);
    std::abort();
}

void
fatal(const std::string &message)
{
    detail::logMessage("fatal", message);
    std::exit(1);
}

void
error(const std::string &message)
{
    if (enabled(LogLevel::Error))
        detail::logMessage("error", message);
}

void
warn(const std::string &message)
{
    if (enabled(LogLevel::Warn))
        detail::logMessage("warn", message);
}

void
inform(const std::string &message)
{
    if (enabled(LogLevel::Info))
        detail::logMessage("info", message);
}

void
debug(const std::string &message)
{
    if (enabled(LogLevel::Debug))
        detail::logMessage("debug", message);
}

} // namespace pcap
