#include "util/logging.hpp"

namespace pcap {

namespace detail {

void
logMessage(const char *tag, const std::string &message)
{
    std::fprintf(stderr, "%s: %s\n", tag, message.c_str());
    std::fflush(stderr);
}

} // namespace detail

void
panic(const std::string &message)
{
    detail::logMessage("panic", message);
    std::abort();
}

void
fatal(const std::string &message)
{
    detail::logMessage("fatal", message);
    std::exit(1);
}

void
warn(const std::string &message)
{
    detail::logMessage("warn", message);
}

void
inform(const std::string &message)
{
    detail::logMessage("info", message);
}

} // namespace pcap
