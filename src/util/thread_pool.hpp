/**
 * @file
 * A small fixed-size thread pool with a deterministic fan-out/join
 * API for the parallel experiment engine.
 *
 * The pool is built for embarrassingly parallel (app x policy)
 * simulation cells: parallelFor() hands out indices from a shared
 * atomic counter, every worker writes only to the slots it owns, and
 * the call joins before returning — so results are positionally
 * deterministic no matter how the OS schedules the workers. With
 * jobs <= 1 (or n == 1) the loop body runs inline on the calling
 * thread and no threads are spawned, which keeps single-core runs
 * and unit tests free of scheduling noise.
 */

#ifndef PCAP_UTIL_THREAD_POOL_HPP
#define PCAP_UTIL_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pcap {

/**
 * Fixed set of worker threads draining a shared task queue.
 *
 * Tasks are plain std::function<void()> thunks. The first exception
 * thrown by any task is captured and rethrown from wait() (or the
 * destructor swallows it after draining, so a pool can always be
 * destroyed safely). Submitting from inside a task is allowed.
 */
class ThreadPool
{
  public:
    /**
     * Process-wide task accounting, aggregated over every pool that
     * ever ran (pools are transient — parallelFor() creates and
     * destroys one per call — so per-pool counters would vanish with
     * the pool). Exported by bench_all as pcap_thread_pool_* wall
     * metrics.
     */
    struct GlobalStats {
        std::uint64_t tasksSubmitted = 0; ///< submit() calls
        std::uint64_t tasksExecuted = 0;  ///< tasks run to completion
        std::uint64_t taskNanos = 0;      ///< summed task wall time
        std::uint64_t peakQueueDepth = 0; ///< max queued-task backlog
    };

    /** Snapshot of the process-wide task counters. */
    static GlobalStats globalStats();

    /**
     * Optional process-wide observation hook around task execution:
     * begin() runs on the executing thread just before a task,
     * end(token) runs right after with begin's return value — even
     * when the task throws. Plain function pointers (not
     * std::function) so installing and invoking stay lock-free;
     * util cannot depend on obs, so the tracer installs itself
     * through this seam (obs::installThreadPoolTraceHook).
     */
    struct TaskHook {
        void *(*begin)() = nullptr;
        void (*end)(void *token) = nullptr;
    };

    /** Install @p hook for every subsequently executed task; a
     * default-constructed hook uninstalls. Not synchronized with
     * running tasks — install before submitting work. */
    static void setTaskHook(TaskHook hook);

    /**
     * @param jobs Number of worker threads; 0 and 1 both mean "run
     *        everything inline on the calling thread".
     */
    explicit ThreadPool(unsigned jobs);

    /** Joins all workers; pending tasks are still executed. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker count (0 when the pool runs inline). */
    unsigned workerCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Enqueue one task. Inline pools run it immediately. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished, then rethrow
     * the first captured task exception, if any.
     */
    void wait();

    /**
     * Deterministic fan-out/join: run body(i) for every i in [0, n),
     * distributing indices across the pool, and return only when all
     * calls completed. The body must confine its writes to
     * index-owned state; under that contract the result is identical
     * to the serial loop `for (i = 0; i < n; ++i) body(i)`.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /** A sensible default worker count for this machine. */
    static unsigned hardwareJobs();

  private:
    void workerLoop();
    void recordException(std::exception_ptr error);
    static void runCounted(const std::function<void()> &task);

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;     ///< workers wait for tasks
    std::condition_variable drained_;  ///< wait() waits for idle
    std::size_t inFlight_ = 0;         ///< queued + running tasks
    bool stopping_ = false;
    std::exception_ptr firstError_;
};

/**
 * One-shot convenience: fan body(i), i in [0, n), over a transient
 * pool of @p jobs workers and join. jobs <= 1 runs inline.
 */
void parallelFor(unsigned jobs, std::size_t n,
                 const std::function<void(std::size_t)> &body);

} // namespace pcap

#endif // PCAP_UTIL_THREAD_POOL_HPP
