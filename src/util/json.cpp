#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hpp"

namespace pcap {

namespace {

/**
 * Recursive-descent JSON parser. Strict where it matters for the
 * documents the harness consumes (alert rule files): full string
 * escapes including surrogate pairs, strtod numbers, a nesting-depth
 * cap so hostile input cannot blow the stack.
 */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    bool parse(Json &out, std::string *error)
    {
        skipWhitespace();
        if (!parseValue(out, 0))
            return fail(error);
        skipWhitespace();
        if (pos_ != text_.size()) {
            problem_ = "trailing characters after the document";
            return fail(error);
        }
        return true;
    }

  private:
    static constexpr int kMaxDepth = 200;

    bool fail(std::string *error) const
    {
        if (error) {
            *error = "offset " + std::to_string(pos_) + ": " +
                     (problem_.empty() ? "malformed JSON" : problem_);
        }
        return false;
    }

    void skipWhitespace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool consume(const char *literal)
    {
        std::size_t i = 0;
        while (literal[i]) {
            if (pos_ + i >= text_.size() ||
                text_[pos_ + i] != literal[i])
                return false;
            ++i;
        }
        pos_ += i;
        return true;
    }

    bool parseValue(Json &out, int depth)
    {
        if (depth > kMaxDepth) {
            problem_ = "nesting deeper than " +
                       std::to_string(kMaxDepth) + " levels";
            return false;
        }
        if (pos_ >= text_.size()) {
            problem_ = "unexpected end of input";
            return false;
        }
        switch (text_[pos_]) {
          case 'n':
            if (!consume("null")) {
                problem_ = "expected 'null'";
                return false;
            }
            out = Json();
            return true;
          case 't':
            if (!consume("true")) {
                problem_ = "expected 'true'";
                return false;
            }
            out = Json(true);
            return true;
          case 'f':
            if (!consume("false")) {
                problem_ = "expected 'false'";
                return false;
            }
            out = Json(false);
            return true;
          case '"': {
            std::string value;
            if (!parseString(value))
                return false;
            out = Json(std::move(value));
            return true;
          }
          case '[': return parseArray(out, depth);
          case '{': return parseObject(out, depth);
          default: return parseNumber(out);
        }
    }

    bool parseArray(Json &out, int depth)
    {
        ++pos_; // '['
        out = Json::array();
        skipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            Json element;
            skipWhitespace();
            if (!parseValue(element, depth + 1))
                return false;
            out.push(std::move(element));
            skipWhitespace();
            if (pos_ >= text_.size()) {
                problem_ = "unterminated array";
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            problem_ = "expected ',' or ']' in array";
            return false;
        }
    }

    bool parseObject(Json &out, int depth)
    {
        ++pos_; // '{'
        out = Json::object();
        skipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWhitespace();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                problem_ = "expected a string object key";
                return false;
            }
            std::string key;
            if (!parseString(key))
                return false;
            skipWhitespace();
            if (pos_ >= text_.size() || text_[pos_] != ':') {
                problem_ = "expected ':' after object key";
                return false;
            }
            ++pos_;
            skipWhitespace();
            if (!parseValue(out[key], depth + 1))
                return false;
            skipWhitespace();
            if (pos_ >= text_.size()) {
                problem_ = "unterminated object";
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            problem_ = "expected ',' or '}' in object";
            return false;
        }
    }

    bool parseNumber(Json &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        const std::size_t digits = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(
                    text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == digits) {
            problem_ = "expected a value";
            pos_ = start;
            return false;
        }
        const std::string token =
            text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() ||
            !std::isfinite(value)) {
            problem_ = "malformed number '" + token + "'";
            pos_ = start;
            return false;
        }
        out = Json(value);
        return true;
    }

    /** Append code point @p cp to @p out as UTF-8. */
    static void appendUtf8(std::string &out, unsigned long cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool parseHex4(unsigned long &value)
    {
        if (pos_ + 4 > text_.size()) {
            problem_ = "truncated \\u escape";
            return false;
        }
        value = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_ + static_cast<std::size_t>(i)];
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= static_cast<unsigned long>(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= static_cast<unsigned long>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= static_cast<unsigned long>(c - 'A' + 10);
            else {
                problem_ = "bad hex digit in \\u escape";
                return false;
            }
        }
        pos_ += 4;
        return true;
    }

    bool parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (true) {
            if (pos_ >= text_.size()) {
                problem_ = "unterminated string";
                return false;
            }
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                problem_ = "unescaped control character in string";
                return false;
            }
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= text_.size()) {
                problem_ = "unterminated escape";
                return false;
            }
            const char escape = text_[pos_++];
            switch (escape) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned long cp = 0;
                if (!parseHex4(cp))
                    return false;
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    // High surrogate: a \uDC00-\uDFFF low half must
                    // follow to form one supplementary code point.
                    if (pos_ + 1 >= text_.size() ||
                        text_[pos_] != '\\' ||
                        text_[pos_ + 1] != 'u') {
                        problem_ = "lone high surrogate";
                        return false;
                    }
                    pos_ += 2;
                    unsigned long low = 0;
                    if (!parseHex4(low))
                        return false;
                    if (low < 0xdc00 || low > 0xdfff) {
                        problem_ = "bad low surrogate";
                        return false;
                    }
                    cp = 0x10000 + ((cp - 0xd800) << 10) +
                         (low - 0xdc00);
                } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                    problem_ = "lone low surrogate";
                    return false;
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                problem_ = "unknown escape";
                return false;
            }
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string problem_;
};

} // namespace

Json
Json::object()
{
    Json json;
    json.kind_ = Kind::Object;
    return json;
}

Json
Json::array()
{
    Json json;
    json.kind_ = Kind::Array;
    return json;
}

Json &
Json::operator[](const std::string &key)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    if (kind_ != Kind::Object)
        panic("Json: operator[] on a non-object");
    auto [it, inserted] = members_.try_emplace(key);
    if (inserted)
        keys_.push_back(key);
    return it->second;
}

bool
Json::parse(const std::string &text, Json &out, std::string *error)
{
    return JsonParser(text).parse(out, error);
}

const Json *
Json::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    const auto it = members_.find(key);
    return it == members_.end() ? nullptr : &it->second;
}

const Json &
Json::at(std::size_t index) const
{
    if (kind_ != Kind::Array || index >= array_.size())
        panic("Json: at() out of range");
    return array_[index];
}

Json &
Json::push(Json value)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    if (kind_ != Kind::Array)
        panic("Json: push on a non-array");
    array_.push_back(std::move(value));
    return array_.back();
}

std::size_t
Json::size() const
{
    if (kind_ == Kind::Array)
        return array_.size();
    if (kind_ == Kind::Object)
        return members_.size();
    return 0;
}

void
Json::writeEscaped(std::ostream &os, const std::string &text)
{
    os << '"';
    for (char c : text) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                os << buffer;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
Json::writeNumber(std::ostream &os, double value)
{
    if (!std::isfinite(value)) {
        os << "null"; // JSON has no inf/nan
        return;
    }
    if (value == std::floor(value) &&
        std::fabs(value) < 9.0e15) {
        os << static_cast<long long>(value);
        return;
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.12g", value);
    os << buffer;
}

void
Json::dump(std::ostream &os, int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    const std::string inner(
        static_cast<std::size_t>(indent + 1) * 2, ' ');
    switch (kind_) {
      case Kind::Null: os << "null"; break;
      case Kind::Bool: os << (bool_ ? "true" : "false"); break;
      case Kind::Number: writeNumber(os, number_); break;
      case Kind::String: writeEscaped(os, string_); break;
      case Kind::Array: {
        if (array_.empty()) {
            os << "[]";
            break;
        }
        os << "[\n";
        for (std::size_t i = 0; i < array_.size(); ++i) {
            os << inner;
            array_[i].dump(os, indent + 1);
            os << (i + 1 < array_.size() ? ",\n" : "\n");
        }
        os << pad << ']';
        break;
      }
      case Kind::Object: {
        if (keys_.empty()) {
            os << "{}";
            break;
        }
        os << "{\n";
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            os << inner;
            writeEscaped(os, keys_[i]);
            os << ": ";
            members_.at(keys_[i]).dump(os, indent + 1);
            os << (i + 1 < keys_.size() ? ",\n" : "\n");
        }
        os << pad << '}';
        break;
      }
    }
}

} // namespace pcap
