#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/logging.hpp"

namespace pcap {

Json
Json::object()
{
    Json json;
    json.kind_ = Kind::Object;
    return json;
}

Json
Json::array()
{
    Json json;
    json.kind_ = Kind::Array;
    return json;
}

Json &
Json::operator[](const std::string &key)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    if (kind_ != Kind::Object)
        panic("Json: operator[] on a non-object");
    auto [it, inserted] = members_.try_emplace(key);
    if (inserted)
        keys_.push_back(key);
    return it->second;
}

Json &
Json::push(Json value)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    if (kind_ != Kind::Array)
        panic("Json: push on a non-array");
    array_.push_back(std::move(value));
    return array_.back();
}

std::size_t
Json::size() const
{
    if (kind_ == Kind::Array)
        return array_.size();
    if (kind_ == Kind::Object)
        return members_.size();
    return 0;
}

void
Json::writeEscaped(std::ostream &os, const std::string &text)
{
    os << '"';
    for (char c : text) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                os << buffer;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
Json::writeNumber(std::ostream &os, double value)
{
    if (!std::isfinite(value)) {
        os << "null"; // JSON has no inf/nan
        return;
    }
    if (value == std::floor(value) &&
        std::fabs(value) < 9.0e15) {
        os << static_cast<long long>(value);
        return;
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.12g", value);
    os << buffer;
}

void
Json::dump(std::ostream &os, int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    const std::string inner(
        static_cast<std::size_t>(indent + 1) * 2, ' ');
    switch (kind_) {
      case Kind::Null: os << "null"; break;
      case Kind::Bool: os << (bool_ ? "true" : "false"); break;
      case Kind::Number: writeNumber(os, number_); break;
      case Kind::String: writeEscaped(os, string_); break;
      case Kind::Array: {
        if (array_.empty()) {
            os << "[]";
            break;
        }
        os << "[\n";
        for (std::size_t i = 0; i < array_.size(); ++i) {
            os << inner;
            array_[i].dump(os, indent + 1);
            os << (i + 1 < array_.size() ? ",\n" : "\n");
        }
        os << pad << ']';
        break;
      }
      case Kind::Object: {
        if (keys_.empty()) {
            os << "{}";
            break;
        }
        os << "{\n";
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            os << inner;
            writeEscaped(os, keys_[i]);
            os << ": ";
            members_.at(keys_[i]).dump(os, indent + 1);
            os << (i + 1 < keys_.size() ? ",\n" : "\n");
        }
        os << pad << '}';
        break;
      }
    }
}

} // namespace pcap
