/**
 * @file
 * Small statistics accumulators used by reports and tests: running
 * mean/min/max and an exact-percentile sample collector.
 */

#ifndef PCAP_UTIL_STATS_HPP
#define PCAP_UTIL_STATS_HPP

#include <cstddef>
#include <vector>

namespace pcap {

/** Running scalar summary: count, sum, mean, min, max. */
class RunningStat
{
  public:
    /** Fold one sample into the summary. */
    void add(double x);

    /** Number of samples folded in. */
    std::size_t count() const { return count_; }

    /** Sum of samples (0 when empty). */
    double sum() const { return sum_; }

    /** Mean of samples (0 when empty). */
    double mean() const;

    /** Smallest sample (0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }

    /** Largest sample (0 when empty). */
    double max() const { return count_ ? max_ : 0.0; }

  private:
    std::size_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Stores every sample so exact percentiles can be extracted. Intended
 * for analysis of idle-period length distributions in examples and
 * ablation benches, where sample counts stay modest.
 */
class SampleSet
{
  public:
    /** Append one sample. */
    void add(double x) { samples_.push_back(x); }

    /** Number of samples. */
    std::size_t count() const { return samples_.size(); }

    /**
     * Exact p-quantile via nearest-rank, p in [0, 1]. Returns 0 when
     * empty.
     */
    double percentile(double p) const;

    /** Mean of samples (0 when empty). */
    double mean() const;

    /** Fraction of samples x with lo <= x < hi (0 when empty). */
    double fractionIn(double lo, double hi) const;

  private:
    std::vector<double> samples_;
};

} // namespace pcap

#endif // PCAP_UTIL_STATS_HPP
