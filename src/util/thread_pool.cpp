#include "util/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <memory>

namespace pcap {

namespace {

// Process-global so the numbers survive the short-lived pools that
// parallelFor() spins up and tears down.
std::atomic<std::uint64_t> gTasksSubmitted{0};
std::atomic<std::uint64_t> gTasksExecuted{0};
std::atomic<std::uint64_t> gTaskNanos{0};
std::atomic<std::uint64_t> gPeakQueueDepth{0};

// The two halves of the installed TaskHook, stored as separate
// atomics so readers never need a lock. Torn reads across the pair
// are benign: each half is checked for null before use, and the
// contract is to install the hook before submitting work.
std::atomic<void *(*)()> gHookBegin{nullptr};
std::atomic<void (*)(void *)> gHookEnd{nullptr};

/** Runs the installed hook around one task, exception-safely. */
class TaskHookGuard
{
  public:
    TaskHookGuard()
    {
        auto *begin = gHookBegin.load(std::memory_order_acquire);
        if (begin)
            token_ = begin();
    }

    ~TaskHookGuard()
    {
        auto *end = gHookEnd.load(std::memory_order_acquire);
        if (end)
            end(token_);
    }

  private:
    void *token_ = nullptr;
};

void
notePeakDepth(std::uint64_t depth)
{
    std::uint64_t seen = gPeakQueueDepth.load(std::memory_order_relaxed);
    while (depth > seen &&
           !gPeakQueueDepth.compare_exchange_weak(
               seen, depth, std::memory_order_relaxed)) {
    }
}

} // namespace

ThreadPool::GlobalStats
ThreadPool::globalStats()
{
    GlobalStats stats;
    stats.tasksSubmitted = gTasksSubmitted.load(std::memory_order_relaxed);
    stats.tasksExecuted = gTasksExecuted.load(std::memory_order_relaxed);
    stats.taskNanos = gTaskNanos.load(std::memory_order_relaxed);
    stats.peakQueueDepth =
        gPeakQueueDepth.load(std::memory_order_relaxed);
    return stats;
}

void
ThreadPool::setTaskHook(TaskHook hook)
{
    gHookBegin.store(hook.begin, std::memory_order_release);
    gHookEnd.store(hook.end, std::memory_order_release);
}

void
ThreadPool::runCounted(const std::function<void()> &task)
{
    TaskHookGuard hook;
    const auto start = std::chrono::steady_clock::now();
    task();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    gTaskNanos.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()),
        std::memory_order_relaxed);
    gTasksExecuted.fetch_add(1, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(unsigned jobs)
{
    if (jobs <= 1)
        return; // inline mode
    workers_.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    try {
        wait();
    } catch (...) {
        // The destructor must not throw; wait() rethrows task
        // errors for callers that care.
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    gTasksSubmitted.fetch_add(1, std::memory_order_relaxed);
    if (workers_.empty()) {
        // Inline pool: run right here, mirroring worker semantics.
        try {
            runCounted(task);
        } catch (...) {
            recordException(std::current_exception());
        }
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        ++inFlight_;
        notePeakDepth(queue_.size());
    }
    wake_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    drained_.wait(lock, [this] { return inFlight_ == 0; });
    if (firstError_) {
        std::exception_ptr error = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(error);
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (workers_.empty() || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    // One shared counter instead of pre-chunking, so uneven cell
    // costs (mplayer vs nedit) still balance across workers.
    auto next = std::make_shared<std::atomic<std::size_t>>(0);
    const std::size_t tasks =
        std::min<std::size_t>(workers_.size(), n);
    for (std::size_t t = 0; t < tasks; ++t) {
        submit([next, n, &body] {
            for (std::size_t i = (*next)++; i < n; i = (*next)++)
                body(i);
        });
    }
    wait();
}

unsigned
ThreadPool::hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and nothing left to do
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            runCounted(task);
        } catch (...) {
            recordException(std::current_exception());
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --inFlight_;
        }
        drained_.notify_all();
    }
}

void
ThreadPool::recordException(std::exception_ptr error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!firstError_)
        firstError_ = error;
}

void
parallelFor(unsigned jobs, std::size_t n,
            const std::function<void(std::size_t)> &body)
{
    ThreadPool pool(jobs);
    pool.parallelFor(n, body);
}

} // namespace pcap
