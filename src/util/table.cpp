#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

namespace pcap {

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TextTable::setHeader(std::vector<std::string> cells)
{
    if (rows_.empty()) {
        rows_.push_back(std::move(cells));
    } else {
        rows_.insert(rows_.begin(), std::move(cells));
    }
    hasHeader_ = true;
}

void
TextTable::print(std::ostream &os) const
{
    if (rows_.empty())
        return;

    std::size_t cols = 0;
    for (const auto &row : rows_)
        cols = std::max(cols, row.size());

    std::vector<std::size_t> widths(cols, 0);
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < cols; ++c) {
            const std::string &cell = c < row.size() ? row[c]
                                                     : std::string();
            os << cell;
            if (c + 1 < cols)
                os << std::string(widths[c] - cell.size() + 2, ' ');
        }
        os << '\n';
    };

    std::size_t row_index = 0;
    for (const auto &row : rows_) {
        print_row(row);
        if (hasHeader_ && row_index == 0) {
            std::size_t total = 0;
            for (std::size_t c = 0; c < cols; ++c)
                total += widths[c] + (c + 1 < cols ? 2 : 0);
            os << std::string(total, '-') << '\n';
        }
        ++row_index;
    }
}

std::string
percentString(double ratio, int decimals)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f%%", decimals,
                  ratio * 100.0);
    return buffer;
}

std::string
fixedString(double value, int decimals)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
    return buffer;
}

} // namespace pcap
