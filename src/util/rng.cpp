#include "util/rng.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace pcap {

namespace {

/** SplitMix64 step, used for seeding and stream derivation. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
hashString(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::uniformInt: lo > hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = (~0ull / span) * span;
    std::uint64_t v = next();
    while (v >= limit)
        v = next();
    return lo + static_cast<std::int64_t>(v % span);
}

double
Rng::uniform01()
{
    // 53 random bits into [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniformReal(double lo, double hi)
{
    if (lo > hi)
        panic("Rng::uniformReal: lo > hi");
    return lo + (hi - lo) * uniform01();
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform01() < p;
}

double
Rng::exponential(double mean)
{
    if (mean <= 0.0)
        panic("Rng::exponential: mean must be positive");
    double u = uniform01();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

double
Rng::normal01()
{
    // Box-Muller; discard the second value for simplicity.
    double u1 = uniform01();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    const double u2 = uniform01();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return r * std::cos(2.0 * M_PI * u2);
}

double
Rng::logNormal(double median, double sigma)
{
    if (median <= 0.0)
        panic("Rng::logNormal: median must be positive");
    return median * std::exp(sigma * normal01());
}

std::size_t
Rng::weightedChoice(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights)
        total += w;
    if (weights.empty() || total <= 0.0)
        panic("Rng::weightedChoice: need a positive total weight");
    double pick = uniform01() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        pick -= weights[i];
        if (pick < 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork(std::uint64_t tag)
{
    // Mix the parent's stream position with the tag so sibling forks
    // differ even when created back to back with equal tags.
    std::uint64_t mix = next() ^ (tag * 0x9e3779b97f4a7c15ull);
    return Rng(splitMix64(mix));
}

} // namespace pcap
