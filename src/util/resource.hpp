/**
 * @file
 * Process resource introspection for status reporting: bench_all
 * logs peak RSS next to per-report wall time so memory regressions
 * show up in plain log output, not only in external profilers.
 */

#ifndef PCAP_UTIL_RESOURCE_HPP
#define PCAP_UTIL_RESOURCE_HPP

#include <cstdint>

namespace pcap {

/**
 * Peak resident set size of this process in bytes, from
 * getrusage(2); 0 when the platform cannot report it. Monotone over
 * the process lifetime (the kernel high-water mark never resets).
 */
std::uint64_t peakRssBytes();

} // namespace pcap

#endif // PCAP_UTIL_RESOURCE_HPP
