/**
 * @file
 * Minimal JSON document support used by the bench driver: a builder
 * for machine-readable results (BENCH_RESULTS.json) and a small
 * recursive-descent parser for the few documents the harness reads
 * back in (alert rule files, see obs/alerts.hpp). Objects keep
 * insertion order in both directions, so emitted documents diff
 * cleanly and re-emitted ones round-trip.
 */

#ifndef PCAP_UTIL_JSON_HPP
#define PCAP_UTIL_JSON_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace pcap {

/**
 * A JSON value: null, bool, number, string, array or object.
 * Objects keep insertion order so emitted documents diff cleanly.
 */
class Json
{
  public:
    Json() : kind_(Kind::Null) {}
    Json(bool value) : kind_(Kind::Bool), bool_(value) {}
    Json(double value) : kind_(Kind::Number), number_(value) {}
    Json(int value) : Json(static_cast<double>(value)) {}
    Json(long value) : Json(static_cast<double>(value)) {}
    Json(long long value) : Json(static_cast<double>(value)) {}
    Json(unsigned value) : Json(static_cast<double>(value)) {}
    Json(unsigned long value)
        : Json(static_cast<double>(value)) {}
    Json(unsigned long long value)
        : Json(static_cast<double>(value)) {}
    Json(const char *value) : kind_(Kind::String), string_(value) {}
    Json(std::string value)
        : kind_(Kind::String), string_(std::move(value)) {}

    /** An empty object (distinct from null). */
    static Json object();

    /** An empty array (distinct from null). */
    static Json array();

    /**
     * Parse @p text as one JSON document (leading/trailing
     * whitespace allowed, nothing else may follow). On success @p out
     * holds the document and the call returns true; on malformed
     * input it returns false and, when @p error is non-null, fills it
     * with "offset N: problem".
     */
    static bool parse(const std::string &text, Json &out,
                      std::string *error = nullptr);

    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** The boolean payload; @p fallback for non-bools. */
    bool asBool(bool fallback = false) const
    {
        return kind_ == Kind::Bool ? bool_ : fallback;
    }

    /** The numeric payload; @p fallback for non-numbers. */
    double asDouble(double fallback = 0.0) const
    {
        return kind_ == Kind::Number ? number_ : fallback;
    }

    /** The string payload; empty for non-strings. */
    const std::string &asString() const { return string_; }

    /** Member @p key of an object, or nullptr when absent (or when
     * this value is not an object). */
    const Json *find(const std::string &key) const;

    /** Element @p index of an array; panics out of range. */
    const Json &at(std::size_t index) const;

    /** Object keys in insertion order; empty for non-objects. */
    const std::vector<std::string> &keys() const { return keys_; }

    /** Object access; creates the key (and objectifies null). */
    Json &operator[](const std::string &key);

    /** Append to an array (arrayifies null). */
    Json &push(Json value);

    /** Number of children of an array/object; 0 otherwise. */
    std::size_t size() const;

    /** Serialize with 2-space indentation. */
    void dump(std::ostream &os, int indent = 0) const;

  private:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    static void writeEscaped(std::ostream &os,
                             const std::string &text);
    static void writeNumber(std::ostream &os, double value);

    Kind kind_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Json> array_;
    std::vector<std::string> keys_; ///< object insertion order
    std::map<std::string, Json> members_;
};

} // namespace pcap

#endif // PCAP_UTIL_JSON_HPP
