/**
 * @file
 * Minimal JSON document builder used by the bench driver to emit
 * machine-readable results (BENCH_RESULTS.json). Write-only: the
 * reproduction never parses JSON, it only produces it for tooling
 * (tools/compare_bench.py) to diff against checked-in references.
 */

#ifndef PCAP_UTIL_JSON_HPP
#define PCAP_UTIL_JSON_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace pcap {

/**
 * A JSON value: null, bool, number, string, array or object.
 * Objects keep insertion order so emitted documents diff cleanly.
 */
class Json
{
  public:
    Json() : kind_(Kind::Null) {}
    Json(bool value) : kind_(Kind::Bool), bool_(value) {}
    Json(double value) : kind_(Kind::Number), number_(value) {}
    Json(int value) : Json(static_cast<double>(value)) {}
    Json(long value) : Json(static_cast<double>(value)) {}
    Json(long long value) : Json(static_cast<double>(value)) {}
    Json(unsigned value) : Json(static_cast<double>(value)) {}
    Json(unsigned long value)
        : Json(static_cast<double>(value)) {}
    Json(unsigned long long value)
        : Json(static_cast<double>(value)) {}
    Json(const char *value) : kind_(Kind::String), string_(value) {}
    Json(std::string value)
        : kind_(Kind::String), string_(std::move(value)) {}

    /** An empty object (distinct from null). */
    static Json object();

    /** An empty array (distinct from null). */
    static Json array();

    /** Object access; creates the key (and objectifies null). */
    Json &operator[](const std::string &key);

    /** Append to an array (arrayifies null). */
    Json &push(Json value);

    /** Number of children of an array/object; 0 otherwise. */
    std::size_t size() const;

    /** Serialize with 2-space indentation. */
    void dump(std::ostream &os, int indent = 0) const;

  private:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    static void writeEscaped(std::ostream &os,
                             const std::string &text);
    static void writeNumber(std::ostream &os, double value);

    Kind kind_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Json> array_;
    std::vector<std::string> keys_; ///< object insertion order
    std::map<std::string, Json> members_;
};

} // namespace pcap

#endif // PCAP_UTIL_JSON_HPP
