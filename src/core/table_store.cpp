#include "core/table_store.hpp"

#include <filesystem>
#include <fstream>

namespace pcap::core {

namespace fs = std::filesystem;

TableStore::TableStore(std::string directory)
    : directory_(std::move(directory))
{
}

std::string
TableStore::pathFor(const std::string &app,
                    const std::string &variant) const
{
    return directory_ + "/" + app + "." + variant + ".ptab";
}

std::string
TableStore::save(const std::string &app, const std::string &variant,
                 const PredictionTable &table) const
{
    std::error_code ec;
    fs::create_directories(directory_, ec);
    if (ec)
        return "cannot create " + directory_ + ": " + ec.message();

    const std::string path = pathFor(app, variant);
    std::ofstream os(path);
    if (!os)
        return "cannot open " + path + " for writing";
    table.save(os);
    return os ? std::string{} : "write error on " + path;
}

std::string
TableStore::load(const std::string &app, const std::string &variant,
                 PredictionTable &out, bool &found) const
{
    found = false;
    const std::string path = pathFor(app, variant);
    std::ifstream is(path);
    if (!is)
        return {}; // absent: first execution ever
    const std::string error = out.load(is);
    if (error.empty())
        found = true;
    return error;
}

bool
TableStore::remove(const std::string &app,
                   const std::string &variant) const
{
    std::error_code ec;
    return fs::remove(pathFor(app, variant), ec);
}

} // namespace pcap::core
