/**
 * @file
 * Provenance tap: the hook interface through which the core
 * prediction machinery (PcapPredictor, PredictionTable) reports the
 * causal state behind every shutdown decision.
 *
 * The tap is the core-side half of the provenance flight recorder
 * (obs/provenance.hpp): core emits raw decision/training/eviction
 * events here, and a sim-layer observer joins them with idle-period
 * outcomes. Everything is gated behind a null check, so the default
 * (no-tap) hot path pays nothing beyond one pointer test.
 */

#ifndef PCAP_CORE_PROVENANCE_TAP_HPP
#define PCAP_CORE_PROVENANCE_TAP_HPP

#include <array>
#include <cstdint>

#include "core/prediction_table.hpp"
#include "pred/predictor.hpp"
#include "util/types.hpp"

namespace pcap::core {

/** How many trailing call sites a decision event carries. The full
 * path is summarized by pathHash/pathLength; the tail is the
 * human-readable sample of it. */
constexpr std::size_t kProvenancePathDepth = 8;

/**
 * One PCAP lookup — everything known at the instant the predictor
 * formed its standing decision for the I/O at @c time.
 */
struct PcapDecisionEvent
{
    TimeUs time = 0;              ///< arrival of the deciding I/O
    std::uint32_t signature = 0;  ///< 4-byte arithmetic path sum
    std::uint64_t pathHash = 0;   ///< FNV-1a over the full PC path
    std::uint32_t pathLength = 0; ///< PCs folded since the last reset

    /** Last-N call sites of the path, oldest first. */
    std::array<Address, kProvenancePathDepth> pathTail{};
    std::uint8_t pathTailLength = 0;

    TableKey key;                ///< the key looked up
    bool predicted = false;      ///< lookup matched (primary consent)
    bool entryPresent = false;   ///< key was in the table

    /** Entry usage counters around the lookup (zero when absent). */
    std::uint32_t entryHitsBefore = 0;
    std::uint32_t entryTrainingsBefore = 0;
    std::uint32_t entryHitsAfter = 0;
    std::uint32_t entryTrainingsAfter = 0;

    /** The standing decision the lookup produced. */
    pred::ShutdownDecision decision;
};

/** One training event: a long idle period confirmed a key. */
struct PcapTrainEvent
{
    TimeUs time = 0;       ///< the I/O that closed the idle period
    TableKey key;          ///< the key trained
    bool inserted = false; ///< newly inserted vs. training bump
};

/**
 * Receiver of core provenance events. All callbacks default to
 * no-ops; they fire synchronously on the simulating thread.
 */
class ProvenanceTap
{
  public:
    virtual ~ProvenanceTap() = default;

    /** @p pid's predictor formed a new standing decision. */
    virtual void onPcapDecision(Pid pid,
                                const PcapDecisionEvent &event)
    {
        (void)pid;
        (void)event;
    }

    /** @p pid's predictor trained the shared table. */
    virtual void onPcapTraining(Pid pid, const PcapTrainEvent &event)
    {
        (void)pid;
        (void)event;
    }

    /** The shared table evicted @p key by LRU replacement. */
    virtual void onTableEviction(const TableKey &key) { (void)key; }
};

} // namespace pcap::core

#endif // PCAP_CORE_PROVENANCE_TAP_HPP
