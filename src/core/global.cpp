#include "core/global.hpp"

#include <string>

#include "util/logging.hpp"

namespace pcap::core {

GlobalShutdownPredictor::GlobalShutdownPredictor(Factory factory)
    : factory_(std::move(factory))
{
    if (!factory_)
        fatal("GlobalShutdownPredictor: factory must not be null");
}

void
GlobalShutdownPredictor::processStart(Pid pid, TimeUs time)
{
    if (slots_.count(pid)) {
        panic("GlobalShutdownPredictor: pid " + std::to_string(pid) +
              " already live");
    }
    Slot slot;
    slot.predictor = factory_(pid, time);
    slot.decision = pred::initialConsent(time);
    slots_.emplace(pid, std::move(slot));
}

void
GlobalShutdownPredictor::processExit(Pid pid, TimeUs time)
{
    (void)time;
    if (slots_.erase(pid) == 0) {
        panic("GlobalShutdownPredictor: exit of unknown pid " +
              std::to_string(pid));
    }
}

pred::ShutdownDecision
GlobalShutdownPredictor::onAccess(const trace::DiskAccess &access)
{
    auto it = slots_.find(access.pid);
    if (it == slots_.end()) {
        panic("GlobalShutdownPredictor: access from unknown pid " +
              std::to_string(access.pid));
    }
    Slot &slot = it->second;

    pred::IoContext ctx;
    ctx.time = access.time;
    ctx.sincePrev = slot.lastIoTime >= 0
                        ? access.time - slot.lastIoTime
                        : -1;
    ctx.pc = access.pc;
    ctx.fd = access.fd;
    ctx.file = access.file;
    ctx.isWrite = access.isWrite;

    slot.decision = slot.predictor->onIo(ctx);
    slot.lastIoTime = access.time;
    return globalDecision();
}

pred::ShutdownDecision
GlobalShutdownPredictor::globalDecision() const
{
    return globalDecisionDetailed().decision;
}

GlobalShutdownPredictor::AttributedDecision
GlobalShutdownPredictor::globalDecisionDetailed() const
{
    pred::ShutdownDecision best;
    bool first = true;
    TimeUs best_last_io = -1;
    Pid best_pid = -1;
    for (const auto &[pid, slot] : slots_) {
        if (slot.decision.earliest == kTimeNever)
            return {slot.decision, pid}; // someone never consents
        // The latest earliest-time wins; ties go to the process that
        // decided most recently ("last decision" attribution), then
        // to the lowest pid so the combine is independent of the hash
        // map's iteration order.
        if (first || slot.decision.earliest > best.earliest ||
            (slot.decision.earliest == best.earliest &&
             (slot.lastIoTime > best_last_io ||
              (slot.lastIoTime == best_last_io && pid < best_pid)))) {
            best = slot.decision;
            best_last_io = slot.lastIoTime;
            best_pid = pid;
            first = false;
        }
    }
    if (first)
        return {{0, pred::DecisionSource::None}, -1}; // none live
    return {best, best_pid};
}

pred::ShutdownDecision
GlobalShutdownPredictor::localDecision(Pid pid) const
{
    auto it = slots_.find(pid);
    if (it == slots_.end()) {
        panic("GlobalShutdownPredictor: localDecision of unknown pid " +
              std::to_string(pid));
    }
    return it->second.decision;
}

} // namespace pcap::core
