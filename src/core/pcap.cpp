#include "core/pcap.hpp"

#include "util/logging.hpp"

namespace pcap::core {

namespace {

// FNV-1a parameters for the order-sensitive full-path hash.
constexpr std::uint64_t kFnvOffset64 = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime64 = 0x100000001b3ull;

} // namespace

std::string
PcapConfig::variantName() const
{
    std::string name = "PCAP";
    if (useFd)
        name += 'f';
    if (useHistory)
        name += 'h';
    return name;
}

PcapPredictor::PcapPredictor(const PcapConfig &config,
                             std::shared_ptr<PredictionTable> table,
                             TimeUs start_time)
    : config_(config), table_(std::move(table)),
      startTime_(start_time),
      decision_(pred::initialConsent(start_time))
{
    if (!table_)
        fatal("PcapPredictor: table must not be null");
    if (config_.historyLength < 1 || config_.historyLength > 16)
        fatal("PcapPredictor: history length must be in [1, 16]");
    if (config_.waitWindow <= 0 || config_.timeout <= 0 ||
        config_.breakeven <= 0) {
        fatal("PcapPredictor: windows must be positive");
    }
    seedHistory();
}

void
PcapPredictor::seedHistory()
{
    // Before a process performs any I/O, the disk has — from its
    // point of view — been idle forever, so the history starts as
    // all long periods. This avoids a cold-start key mismatch in
    // every execution.
    historyBits_ = static_cast<std::uint16_t>(
        (1u << config_.historyLength) - 1);
    historyLen_ = config_.historyLength;
}

const char *
PcapPredictor::name() const
{
    if (config_.useFd && config_.useHistory)
        return "PCAPfh";
    if (config_.useFd)
        return "PCAPf";
    if (config_.useHistory)
        return "PCAPh";
    return "PCAP";
}

TableKey
PcapPredictor::makeKey(Fd fd) const
{
    TableKey key;
    key.signature = signature_.value();
    if (config_.useHistory) {
        key.historyBits = historyBits_;
        key.historyLength =
            static_cast<std::uint8_t>(config_.historyLength);
    }
    if (config_.useFd)
        key.fd = fd;
    return key;
}

void
PcapPredictor::pushHistory(bool long_idle)
{
    const std::uint32_t mask =
        (1u << config_.historyLength) - 1;
    historyBits_ = static_cast<std::uint16_t>(
        ((historyBits_ << 1) | (long_idle ? 1u : 0u)) & mask);
    historyLen_ = config_.historyLength;
}

void
PcapPredictor::attachProvenance(ProvenanceTap *tap, Pid pid)
{
    tap_ = tap;
    pid_ = pid;
    pathTail_.fill(0);
    pathTailLen_ = 0;
    pathLength_ = 0;
    pathHash_ = kFnvOffset64;
}

void
PcapPredictor::notePathPc(Address pc, bool reset)
{
    if (reset) {
        pathTail_.fill(0);
        pathTailLen_ = 0;
        pathLength_ = 0;
        pathHash_ = kFnvOffset64;
    }
    // FNV-1a over the PC's bytes: order-sensitive, so two paths that
    // alias under the 4-byte arithmetic sum still hash apart.
    std::uint64_t h = pathHash_;
    for (int shift = 0; shift < 32; shift += 8) {
        h ^= (pc >> shift) & 0xffu;
        h *= kFnvPrime64;
    }
    pathHash_ = h;
    ++pathLength_;
    if (pathTailLen_ < kProvenancePathDepth) {
        pathTail_[pathTailLen_++] = pc;
    } else {
        for (std::size_t i = 1; i < kProvenancePathDepth; ++i)
            pathTail_[i - 1] = pathTail_[i];
        pathTail_[kProvenancePathDepth - 1] = pc;
    }
}

void
PcapPredictor::observeGap(TimeUs gap, TimeUs now)
{
    // Idle periods shorter than the wait-window are filtered at run
    // time (Section 4.1.1): no training, no history, the path
    // collection continues without interruption.
    if (gap < config_.waitWindow)
        return;

    const bool long_idle = gap > config_.breakeven;

    if (long_idle) {
        // The key that was current when the disk went idle preceded
        // a long idle period: learn it (Section 3.2).
        if (pendingValid_) {
            const bool inserted = table_->train(pendingKey_);
            if (inserted)
                ++trainingInserts_;
            if (tap_) {
                PcapTrainEvent event;
                event.time = now;
                event.key = pendingKey_;
                event.inserted = inserted;
                tap_->onPcapTraining(pid_, event);
            }
        }
        // The signature is overwritten by the PC of the first I/O of
        // the next path (Figure 4).
        resetPathOnNextIo_ = true;
    } else if (pendingValid_ && pendingPredicted_) {
        // The table predicted a long idle period but a merely-medium
        // one arrived: a misprediction the wait-window could not
        // filter (subpath aliasing, Section 4.1).
        ++mispredictionsObserved_;
        if (config_.unlearnOnMisprediction)
            table_->erase(pendingKey_);
    }

    pushHistory(long_idle);
}

pred::ShutdownDecision
PcapPredictor::onIo(const pred::IoContext &ctx)
{
    if (ctx.sincePrev >= 0)
        observeGap(ctx.sincePrev, ctx.time);

    const bool fresh_path = resetPathOnNextIo_;
    if (resetPathOnNextIo_) {
        signature_.reset(ctx.pc);
        resetPathOnNextIo_ = false;
    } else {
        signature_.extend(ctx.pc);
    }
    if (tap_)
        notePathPc(ctx.pc, fresh_path);

    const TableKey key = makeKey(ctx.fd);

    // Snapshot the entry around the mutating lookup — tap-only work,
    // worth two extra probes when the flight recorder is listening.
    std::uint32_t hits_before = 0, trainings_before = 0;
    bool present = false;
    if (tap_ && (present = table_->contains(key))) {
        const PredictionTable::Entry &entry = table_->entryOf(key);
        hits_before = entry.hits;
        trainings_before = entry.trainings;
    }

    const bool predicted = table_->lookup(key);
    pendingKey_ = key;
    pendingValid_ = true;
    pendingPredicted_ = predicted;

    if (predicted) {
        ++predictions_;
        decision_ = {ctx.time + config_.waitWindow,
                     pred::DecisionSource::Primary};
    } else if (config_.backupEnabled) {
        decision_ = {ctx.time + config_.timeout,
                     pred::DecisionSource::Backup};
    } else {
        decision_ = {kTimeNever, pred::DecisionSource::None};
    }

    if (tap_) {
        PcapDecisionEvent event;
        event.time = ctx.time;
        event.signature = signature_.value();
        event.pathHash = pathHash_;
        event.pathLength = pathLength_;
        event.pathTail = pathTail_;
        event.pathTailLength = pathTailLen_;
        event.key = key;
        event.predicted = predicted;
        event.entryPresent = present;
        event.entryHitsBefore = hits_before;
        event.entryTrainingsBefore = trainings_before;
        if (present) {
            const PredictionTable::Entry &entry =
                table_->entryOf(key);
            event.entryHitsAfter = entry.hits;
            event.entryTrainingsAfter = entry.trainings;
        }
        event.decision = decision_;
        tap_->onPcapDecision(pid_, event);
    }
    return decision_;
}

void
PcapPredictor::resetExecution()
{
    signature_.clear();
    seedHistory();
    resetPathOnNextIo_ = false;
    pendingValid_ = false;
    pendingPredicted_ = false;
    decision_ = pred::initialConsent(startTime_);
    pathTail_.fill(0);
    pathTailLen_ = 0;
    pathLength_ = 0;
    pathHash_ = kFnvOffset64;
}

} // namespace pcap::core
