/**
 * @file
 * The Global Shutdown Predictor (Section 5): per-process local
 * predictors whose standing decisions are combined so the disk is
 * shut down only when every live process consents.
 */

#ifndef PCAP_CORE_GLOBAL_HPP
#define PCAP_CORE_GLOBAL_HPP

#include <functional>
#include <memory>
#include <unordered_map>

#include "pred/predictor.hpp"
#include "trace/event.hpp"

namespace pcap::core {

/**
 * System-wide shutdown prediction for one execution of an
 * application.
 *
 * Each process owns a private local predictor created by the factory
 * (so PCAP processes share their application's prediction table while
 * keeping private signatures, exactly as in Figure 4/5). The global
 * decision is the latest of the live processes' standing decisions:
 * the disk is spun down only once every process consents. The process
 * holding the latest decision attributes the shutdown (primary vs
 * backup), matching the paper's "last decision" accounting in
 * Section 6.4.
 */
class GlobalShutdownPredictor
{
  public:
    /** Creates the local predictor for a new process. */
    using Factory = std::function<
        std::unique_ptr<pred::ShutdownPredictor>(Pid, TimeUs)>;

    explicit GlobalShutdownPredictor(Factory factory);

    /**
     * A process joins (initial process or fork). Its local predictor
     * starts with consent-from-start: a process that never performs
     * I/O never keeps the disk spinning.
     */
    void processStart(Pid pid, TimeUs time);

    /** A process exits; its constraint disappears. */
    void processExit(Pid pid, TimeUs time);

    /** True when @p pid is currently registered and live. */
    bool isLive(Pid pid) const { return slots_.count(pid) > 0; }

    /** Number of live processes. */
    std::size_t liveCount() const { return slots_.size(); }

    /**
     * Feed one disk access. The responsible process must be live
     * (processes are registered by processStart). Computes the
     * process's idle gap internally, updates its local predictor and
     * returns the new *global* decision.
     */
    pred::ShutdownDecision onAccess(const trace::DiskAccess &access);

    /** Current global decision (combine of all live processes). */
    pred::ShutdownDecision globalDecision() const;

    /** A global decision together with the process that holds it —
     * the paper's "last decision" attribution, exposed for the
     * provenance flight recorder. */
    struct AttributedDecision
    {
        pred::ShutdownDecision decision;
        Pid pid = -1; ///< deciding process, -1 with none live
    };

    /** globalDecision() plus the pid holding the winning decision. */
    AttributedDecision globalDecisionDetailed() const;

    /** Standing decision of one live process (testing hook). */
    pred::ShutdownDecision localDecision(Pid pid) const;

  private:
    struct Slot
    {
        std::unique_ptr<pred::ShutdownPredictor> predictor;
        TimeUs lastIoTime = -1;
        pred::ShutdownDecision decision;
    };

    Factory factory_;
    // Hash map rather than ordered: the hot path is the per-access
    // find() plus a full scan in globalDecision(), neither of which
    // needs ordering (the decision combine tie-breaks on pid
    // explicitly). See bench_overhead for the measured difference.
    std::unordered_map<Pid, Slot> slots_;
};

} // namespace pcap::core

#endif // PCAP_CORE_GLOBAL_HPP
