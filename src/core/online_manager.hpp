/**
 * @file
 * Online power manager: the deployment-shaped facade of PCAP.
 *
 * The paper's design (Figures 4 and 5) lives inside an operating
 * system: library hooks deliver (pid, PC, fd) for every I/O, each
 * process keeps its signature in its kernel status structure, the
 * Global Shutdown Predictor arbitrates, and the trained table is
 * saved to the application's initialization file on exit. This class
 * packages exactly that loop behind an event-driven API, so a host
 * (an example program, a simulator, or a real syscall-interception
 * layer) only reports process lifecycle and I/O completions and asks
 * "when should the disk spin down?".
 */

#ifndef PCAP_CORE_ONLINE_MANAGER_HPP
#define PCAP_CORE_ONLINE_MANAGER_HPP

#include <memory>
#include <string>

#include "core/global.hpp"
#include "core/pcap.hpp"
#include "core/table_store.hpp"
#include "power/disk.hpp"
#include "trace/event.hpp"

namespace pcap::core {

/** Configuration of the online manager. */
struct OnlineManagerConfig
{
    PcapConfig pcap;              ///< predictor variant to run
    power::DiskParams disk;       ///< managed device
    std::string tableDirectory;   ///< where tables persist; empty =
                                  ///< in-memory only
    std::string application = "app"; ///< table-file key
};

/**
 * Event-driven power manager around one disk.
 *
 * Usage: feed processStart()/processExit() and onIo() in
 * non-decreasing time order; between I/Os, call poll(now) to let a
 * due shutdown happen. pendingShutdownAt() exposes the next planned
 * spin-down so a host can sleep precisely until it. The destructor
 * — or an explicit persist() — writes the prediction table through
 * the TableStore, so the next OnlineManager instance for the same
 * application starts trained (Section 4.2).
 */
class OnlineManager
{
  public:
    explicit OnlineManager(const OnlineManagerConfig &config);

    /** Register a process at @p now. */
    void processStart(Pid pid, TimeUs now);

    /** Unregister a process at @p now. */
    void processExit(Pid pid, TimeUs now);

    /**
     * An I/O of @p pid completed at @p now (post cache: an actual
     * disk access). Wakes the disk if needed.
     * @return the time the request completes (including spin-up).
     */
    TimeUs onIo(Pid pid, TimeUs now, Address pc, Fd fd, FileId file,
                std::uint32_t blocks = 1);

    /**
     * Let time pass until @p now: performs the scheduled spin-down
     * when its moment has arrived.
     * @return true when the disk was spun down by this call.
     */
    bool poll(TimeUs now);

    /**
     * When the disk is next due to spin down given the current
     * global decision, or kTimeNever.
     */
    TimeUs pendingShutdownAt() const;

    /** Disk state as of the latest event or poll. */
    power::DiskState
    diskState() const
    {
        return disk_.stateAt(lastSeen_);
    }

    /** Finish at @p now: closes the energy accounting and persists
     * the table. Call once. */
    void finish(TimeUs now);

    /** Energy spent so far (final after finish()). */
    const power::EnergyLedger &energy() const
    {
        return disk_.ledger();
    }

    /** Spin-downs performed. */
    std::uint64_t shutdowns() const { return disk_.shutdownCount(); }

    /** Spin-ups performed. */
    std::uint64_t spinUps() const { return disk_.spinUpCount(); }

    /** Entries in the (shared, persistent) prediction table. */
    std::size_t tableEntries() const { return table_->size(); }

    /** Persist the prediction table now (no-op without a table
     * directory). @return empty string or an error. */
    std::string persist() const;

  private:
    OnlineManagerConfig config_;
    std::shared_ptr<PredictionTable> table_;
    std::unique_ptr<TableStore> store_;
    GlobalShutdownPredictor global_;
    power::PowerManagedDisk disk_;
    TimeUs lastCompletion_ = 0;
    TimeUs lastSeen_ = 0; ///< latest time observed via any call
    bool finished_ = false;
};

} // namespace pcap::core

#endif // PCAP_CORE_ONLINE_MANAGER_HPP
