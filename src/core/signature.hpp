/**
 * @file
 * Path signatures: the paper's 4-byte encoding of a sequence of I/O
 * triggering program counters (Section 3.2). The PCs on the path are
 * arithmetically added into a 32-bit value, as first proposed for
 * last-touch prediction by Lai and Falsafi.
 */

#ifndef PCAP_CORE_SIGNATURE_HPP
#define PCAP_CORE_SIGNATURE_HPP

#include <cstdint>
#include <initializer_list>

#include "util/types.hpp"

namespace pcap::core {

/**
 * Accumulates the current path of I/O triggering PCs into a 4-byte
 * signature. After an idle period longer than the breakeven time the
 * signature is overwritten by the PC of the first I/O of the new
 * path; every subsequent I/O adds its PC (mod 2^32).
 */
class PathSignature
{
  public:
    PathSignature() = default;

    /** Start a fresh path whose first PC is @p pc. */
    void reset(Address pc) { value_ = pc; started_ = true; }

    /**
     * Extend the current path with @p pc. Extending a never-started
     * signature is equivalent to reset(pc), so the first I/O of a
     * process needs no special casing.
     */
    void
    extend(Address pc)
    {
        if (started_)
            value_ += pc; // wraps mod 2^32 by definition
        else
            reset(pc);
    }

    /** The 4-byte signature of the current path. */
    std::uint32_t value() const { return value_; }

    /** True once any PC has been folded in. */
    bool started() const { return started_; }

    /** Forget everything (new execution). */
    void clear() { value_ = 0; started_ = false; }

    /** Signature of a whole path given at once (testing helper). */
    static std::uint32_t ofPath(std::initializer_list<Address> pcs);

  private:
    std::uint32_t value_ = 0;
    bool started_ = false;
};

} // namespace pcap::core

#endif // PCAP_CORE_SIGNATURE_HPP
