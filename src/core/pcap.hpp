/**
 * @file
 * PCAP — the Program-Counter Access Predictor (Sections 3-4 of the
 * paper), including the PCAPh / PCAPf / PCAPfh context optimizations.
 */

#ifndef PCAP_CORE_PCAP_HPP
#define PCAP_CORE_PCAP_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "core/prediction_table.hpp"
#include "core/provenance_tap.hpp"
#include "core/signature.hpp"
#include "pred/predictor.hpp"

namespace pcap::core {

/** Configuration of one PCAP variant. */
struct PcapConfig
{
    /** Augment table keys with the idle-period history bit-vector
     * (PCAPh, Section 4.1.2). */
    bool useHistory = false;

    /** Augment table keys with the file descriptor of the triggering
     * I/O (PCAPf, Section 4.1.2). */
    bool useFd = false;

    /** Idle-history length; the paper uses six periods (§6.4.1). */
    int historyLength = 6;

    /** Sliding wait-window (§4.1.1); the paper uses one second. */
    TimeUs waitWindow = secondsUs(1.0);

    /** Backup timeout (§4.3); the paper uses ten seconds. */
    TimeUs timeout = secondsUs(10.0);

    /** Breakeven time of the managed disk. */
    TimeUs breakeven = secondsUs(5.43);

    /** Whether the backup timeout predictor is active. */
    bool backupEnabled = true;

    /**
     * Extension (not in the paper, evaluated as an ablation): drop a
     * table entry as soon as it causes a misprediction.
     */
    bool unlearnOnMisprediction = false;

    /** "PCAP", "PCAPh", "PCAPf" or "PCAPfh". */
    std::string variantName() const;
};

/**
 * Per-process PCAP predictor.
 *
 * Keeps the process's current path signature (stored in the kernel
 * process-status structure in the paper's design, Figure 4) and its
 * idle-history bit-vector, and consults the application-wide shared
 * prediction table. Training happens when an idle period longer than
 * the breakeven time completes: the key that was current when the
 * period began is inserted into the table (Section 3.2).
 */
class PcapPredictor : public pred::ShutdownPredictor
{
  public:
    /**
     * @param config Variant configuration.
     * @param table Shared per-application prediction table.
     * @param start_time Process start, for the initial consent.
     */
    PcapPredictor(const PcapConfig &config,
                  std::shared_ptr<PredictionTable> table,
                  TimeUs start_time = 0);

    pred::ShutdownDecision onIo(const pred::IoContext &ctx) override;
    pred::ShutdownDecision decision() const override
    {
        return decision_;
    }
    void resetExecution() override;
    const char *name() const override;

    /** Current path signature (testing hook). */
    std::uint32_t signature() const { return signature_.value(); }

    /** Current idle-history bits (testing hook). */
    std::uint16_t historyBits() const { return historyBits_; }

    /** Number of periods currently in the history. */
    int historyLength() const { return historyLen_; }

    /** Primary predictions issued so far. */
    std::uint64_t predictions() const { return predictions_; }

    /** Primary predictions later contradicted by a short idle
     * period (>= wait-window, < breakeven). */
    std::uint64_t mispredictionsObserved() const
    {
        return mispredictionsObserved_;
    }

    /** New table entries this predictor inserted. */
    std::uint64_t trainingInserts() const { return trainingInserts_; }

    /** The shared table (testing hook). */
    const PredictionTable &table() const { return *table_; }

    /**
     * Attach a provenance tap: every lookup and training is reported
     * to @p tap, attributed to @p pid, together with the PC-path
     * context behind it (the flight recorder, obs/provenance.hpp).
     * The tap must outlive the predictor; null detaches. Path-tail
     * tracking only happens while a tap is attached, so the default
     * path is untouched.
     */
    void attachProvenance(ProvenanceTap *tap, Pid pid);

  private:
    /** Fold the just-completed idle period into training/history.
     * @p now is the arrival of the I/O that closed the period. */
    void observeGap(TimeUs gap, TimeUs now);

    /** Fold @p pc into the tap-only path context (tail, hash,
     * length); @p reset starts a fresh path. */
    void notePathPc(Address pc, bool reset);

    /** Initialize the history as all long periods (cold start). */
    void seedHistory();

    TableKey makeKey(Fd fd) const;
    void pushHistory(bool long_idle);

    PcapConfig config_;
    std::shared_ptr<PredictionTable> table_;
    TimeUs startTime_;

    PathSignature signature_;
    std::uint16_t historyBits_ = 0;
    int historyLen_ = 0;
    bool resetPathOnNextIo_ = false;

    /** Key looked up at the previous I/O — the candidate that a long
     * idle period would confirm. */
    TableKey pendingKey_;
    bool pendingValid_ = false;
    bool pendingPredicted_ = false;

    pred::ShutdownDecision decision_;

    std::uint64_t predictions_ = 0;
    std::uint64_t mispredictionsObserved_ = 0;
    std::uint64_t trainingInserts_ = 0;

    // Provenance context, maintained only while tap_ is attached.
    ProvenanceTap *tap_ = nullptr;
    Pid pid_ = -1;
    std::array<Address, kProvenancePathDepth> pathTail_{};
    std::uint8_t pathTailLen_ = 0;
    std::uint32_t pathLength_ = 0;
    std::uint64_t pathHash_ = 0;
};

} // namespace pcap::core

#endif // PCAP_CORE_PCAP_HPP
