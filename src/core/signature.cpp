#include "core/signature.hpp"

namespace pcap::core {

std::uint32_t
PathSignature::ofPath(std::initializer_list<Address> pcs)
{
    PathSignature signature;
    for (Address pc : pcs)
        signature.extend(pc);
    return signature.value();
}

} // namespace pcap::core
