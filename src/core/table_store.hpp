/**
 * @file
 * Prediction-table persistence (Section 4.2): the trained table of an
 * application is saved when the application exits — the paper stores
 * it in the application's initialization file — and reloaded when a
 * new instance starts, so training carries across executions.
 */

#ifndef PCAP_CORE_TABLE_STORE_HPP
#define PCAP_CORE_TABLE_STORE_HPP

#include <string>

#include "core/prediction_table.hpp"

namespace pcap::core {

/**
 * Directory-backed store of prediction tables, keyed by application
 * name and predictor variant. Stands in for the per-application
 * initialization files of the paper's design.
 */
class TableStore
{
  public:
    /**
     * @param directory Where table files live; created on first
     *        save if missing.
     */
    explicit TableStore(std::string directory);

    /** File path used for (@p app, @p variant). */
    std::string pathFor(const std::string &app,
                        const std::string &variant) const;

    /**
     * Persist @p table for (@p app, @p variant).
     * @return empty string on success, else an error description.
     */
    std::string save(const std::string &app,
                     const std::string &variant,
                     const PredictionTable &table) const;

    /**
     * Load a previously saved table into @p out.
     * @param found Set to true when a saved table existed.
     * @return empty string on success (including not-found), else an
     *         error description.
     */
    std::string load(const std::string &app,
                     const std::string &variant, PredictionTable &out,
                     bool &found) const;

    /** Delete the saved table, if any. @return true when removed. */
    bool remove(const std::string &app,
                const std::string &variant) const;

  private:
    std::string directory_;
};

} // namespace pcap::core

#endif // PCAP_CORE_TABLE_STORE_HPP
