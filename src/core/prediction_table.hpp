/**
 * @file
 * The PCAP prediction table: the set of path signatures (optionally
 * augmented with idle-history bits and file descriptors, Section 4.1)
 * that were observed to precede idle periods longer than the
 * breakeven time.
 */

#ifndef PCAP_CORE_PREDICTION_TABLE_HPP
#define PCAP_CORE_PREDICTION_TABLE_HPP

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace pcap::core {

/**
 * Lookup key of one prediction-table entry.
 *
 * The base PCAP key is the 4-byte path signature alone. PCAPh adds
 * the idle-period history bit-vector (packed bits plus its current
 * length, so a warming-up history never aliases a full one), and
 * PCAPf adds the file descriptor of the triggering I/O. Unused
 * context fields hold fixed neutral values, so the same struct
 * serves all four variants.
 */
struct TableKey
{
    std::uint32_t signature = 0;
    std::uint16_t historyBits = 0;
    std::uint8_t historyLength = 0;
    Fd fd = -1;

    bool operator==(const TableKey &other) const = default;
};

/** Hash functor so TableKey can live in unordered containers. */
struct TableKeyHash
{
    std::size_t operator()(const TableKey &key) const;
};

/**
 * The prediction table of one application (shared by all its
 * processes, and by all executions when table reuse is enabled).
 *
 * Entries carry usage metadata so the table can be bounded with LRU
 * replacement (Section 4.2 suggests "a simple LRU mechanism" for
 * removing stale entries) and so reports can show training/hit
 * counts.
 */
class PredictionTable
{
  public:
    /** Per-entry bookkeeping. */
    struct Entry
    {
        std::uint64_t lastUsed = 0; ///< logical tick of last touch
        std::uint32_t trainings = 0; ///< long idles that (re)inserted
        std::uint32_t hits = 0;      ///< lookups that matched
    };

    /**
     * @param capacity Maximum number of entries; 0 means unbounded
     *        (the paper's tables stay tiny — Table 3 tops out at 139
     *        entries).
     */
    explicit PredictionTable(std::size_t capacity = 0);

    /**
     * Look up @p key, recording a hit and refreshing LRU order on
     * match. @return true when the signature is in the table, i.e.
     * PCAP predicts a long idle period.
     */
    bool lookup(const TableKey &key);

    /** Non-mutating membership probe (no stats, no LRU refresh). */
    bool contains(const TableKey &key) const;

    /**
     * Train on @p key after observing a long idle period: insert it
     * (evicting the LRU entry if at capacity), or bump its training
     * count when already present.
     * @return true when the key was newly inserted.
     */
    bool train(const TableKey &key);

    /** Remove one key. @return true when it was present. */
    bool erase(const TableKey &key);

    /** Number of entries. */
    std::size_t size() const { return entries_.size(); }

    /** Capacity (0 = unbounded). */
    std::size_t capacity() const { return capacity_; }

    /** Entries evicted by LRU replacement so far. */
    std::uint64_t evictions() const { return evictions_; }

    /**
     * Callback fired with the victim key on every LRU eviction — the
     * provenance flight recorder's churn hook. Empty disables (the
     * default); the hook must not reenter the table.
     */
    using EvictionHook = std::function<void(const TableKey &)>;
    void setEvictionHook(EvictionHook hook)
    {
        evictionHook_ = std::move(hook);
    }

    /** Discard all entries (PCAPa: no reuse between executions). */
    void clear();

    /** All keys currently stored, in unspecified order. */
    std::vector<TableKey> keys() const;

    /** Metadata of one entry; panics when absent. */
    const Entry &entryOf(const TableKey &key) const;

    /**
     * Bytes this table would occupy when persisted: the paper packs
     * each entry into one 4-byte word per context field in use
     * (Section 6.4.2: 139 entries -> 556 bytes for PCAPfh).
     */
    std::size_t storageBytes() const { return size() * 4; }

    /**
     * Serialize as text, one entry per line:
     * `signature historyBits historyLength fd`.
     */
    void save(std::ostream &os) const;

    /**
     * Load entries from text produced by save(), replacing current
     * contents. @return empty string on success, else a parse error.
     */
    std::string load(std::istream &is);

  private:
    void touch(Entry &entry) { entry.lastUsed = ++tick_; }
    void evictLru();

    std::size_t capacity_;
    std::uint64_t tick_ = 0;
    std::uint64_t evictions_ = 0;
    EvictionHook evictionHook_;
    std::unordered_map<TableKey, Entry, TableKeyHash> entries_;
};

} // namespace pcap::core

#endif // PCAP_CORE_PREDICTION_TABLE_HPP
