#include "core/prediction_table.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/logging.hpp"

namespace pcap::core {

std::size_t
TableKeyHash::operator()(const TableKey &key) const
{
    // Mix the fields with distinct odd multipliers (Fibonacci-style
    // hashing); cheap and good enough for tables of O(100) entries.
    std::uint64_t h = key.signature;
    h = h * 0x9e3779b97f4a7c15ull +
        (static_cast<std::uint64_t>(key.historyBits) << 8 |
         key.historyLength);
    h = h * 0xbf58476d1ce4e5b9ull +
        static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(key.fd));
    return static_cast<std::size_t>(h ^ (h >> 32));
}

PredictionTable::PredictionTable(std::size_t capacity)
    : capacity_(capacity)
{
    // The paper's tables stay small (Table 3 tops out at 139
    // entries), but every table starts life with a burst of
    // trainings; pre-sizing the buckets keeps the hot lookup/train
    // path free of incremental rehashes. A load factor of 0.5
    // trades a few KB for shorter probe chains on the per-access
    // lookup path.
    entries_.max_load_factor(0.5f);
    entries_.reserve(capacity_ != 0 ? capacity_ : 256);
}

bool
PredictionTable::lookup(const TableKey &key)
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return false;
    ++it->second.hits;
    touch(it->second);
    return true;
}

bool
PredictionTable::contains(const TableKey &key) const
{
    return entries_.count(key) > 0;
}

bool
PredictionTable::train(const TableKey &key)
{
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        ++it->second.trainings;
        touch(it->second);
        return false;
    }
    if (capacity_ != 0 && entries_.size() >= capacity_)
        evictLru();
    Entry entry;
    entry.trainings = 1;
    touch(entry);
    entries_.emplace(key, entry);
    return true;
}

bool
PredictionTable::erase(const TableKey &key)
{
    return entries_.erase(key) > 0;
}

void
PredictionTable::evictLru()
{
    if (entries_.empty())
        panic("PredictionTable::evictLru: table empty");
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->second.lastUsed < victim->second.lastUsed)
            victim = it;
    }
    const TableKey victim_key = victim->first;
    entries_.erase(victim);
    ++evictions_;
    if (evictionHook_)
        evictionHook_(victim_key);
}

void
PredictionTable::clear()
{
    entries_.clear();
    tick_ = 0;
}

std::vector<TableKey>
PredictionTable::keys() const
{
    std::vector<TableKey> result;
    result.reserve(entries_.size());
    for (const auto &[key, entry] : entries_)
        result.push_back(key);
    return result;
}

const PredictionTable::Entry &
PredictionTable::entryOf(const TableKey &key) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        panic("PredictionTable::entryOf: key not present");
    return it->second;
}

void
PredictionTable::save(std::ostream &os) const
{
    os << "# pcap-table v1 entries=" << entries_.size() << '\n';
    for (const auto &[key, entry] : entries_) {
        os << key.signature << ' ' << key.historyBits << ' '
           << static_cast<unsigned>(key.historyLength) << ' '
           << key.fd << '\n';
    }
}

std::string
PredictionTable::load(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line))
        return "empty table file";
    if (line.rfind("# pcap-table v1", 0) != 0)
        return "bad table header: " + line;

    clear();
    std::size_t line_number = 1;
    while (std::getline(is, line)) {
        ++line_number;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        TableKey key;
        unsigned history_length = 0;
        if (!(fields >> key.signature >> key.historyBits >>
              history_length >> key.fd) ||
            history_length > 255) {
            return "line " + std::to_string(line_number) +
                   ": malformed table entry";
        }
        key.historyLength = static_cast<std::uint8_t>(history_length);
        train(key);
    }
    return {};
}

} // namespace pcap::core
