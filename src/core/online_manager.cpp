#include "core/online_manager.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace pcap::core {

OnlineManager::OnlineManager(const OnlineManagerConfig &config)
    : config_(config),
      table_(std::make_shared<PredictionTable>()),
      global_([this](Pid, TimeUs start) {
          return std::make_unique<PcapPredictor>(config_.pcap,
                                                 table_, start);
      }),
      disk_(config.disk)
{
    if (!config_.tableDirectory.empty()) {
        store_ = std::make_unique<TableStore>(
            config_.tableDirectory);
        bool found = false;
        const std::string error =
            store_->load(config_.application,
                         config_.pcap.variantName(), *table_,
                         found);
        if (!error.empty()) {
            warn("OnlineManager: could not load table: " + error);
        } else if (found) {
            inform("OnlineManager: loaded " +
                   std::to_string(table_->size()) +
                   " trained entries for " + config_.application);
        }
    }
}

void
OnlineManager::processStart(Pid pid, TimeUs now)
{
    poll(now);
    global_.processStart(pid, now);
}

void
OnlineManager::processExit(Pid pid, TimeUs now)
{
    poll(now);
    global_.processExit(pid, now);
}

TimeUs
OnlineManager::onIo(Pid pid, TimeUs now, Address pc, Fd fd,
                    FileId file, std::uint32_t blocks)
{
    if (finished_)
        panic("OnlineManager::onIo after finish()");
    poll(now);

    lastCompletion_ = disk_.request(now, blocks);

    trace::DiskAccess access;
    access.time = now;
    access.pid = pid;
    access.pc = pc;
    access.fd = fd;
    access.file = file;
    access.blocks = blocks;
    global_.onAccess(access);
    return lastCompletion_;
}

TimeUs
OnlineManager::pendingShutdownAt() const
{
    if (disk_.state() == power::DiskState::Standby)
        return kTimeNever;
    const pred::ShutdownDecision decision = global_.globalDecision();
    if (decision.earliest == kTimeNever)
        return kTimeNever;
    // The disk cannot spin down before it finishes its current
    // service.
    return std::max(decision.earliest, lastCompletion_);
}

bool
OnlineManager::poll(TimeUs now)
{
    lastSeen_ = std::max(lastSeen_, now);
    const TimeUs due = pendingShutdownAt();
    if (due == kTimeNever || due > now)
        return false;
    return disk_.shutdown(due);
}

void
OnlineManager::finish(TimeUs now)
{
    if (finished_)
        panic("OnlineManager::finish called twice");
    poll(now);
    disk_.finish(now);
    finished_ = true;
    const std::string error = persist();
    if (!error.empty())
        warn("OnlineManager: could not persist table: " + error);
}

std::string
OnlineManager::persist() const
{
    if (!store_)
        return {};
    return store_->save(config_.application,
                        config_.pcap.variantName(), *table_);
}

} // namespace pcap::core
