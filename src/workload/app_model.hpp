/**
 * @file
 * Application-model interface and the registry of the six desktop
 * applications of the paper's Table 1.
 *
 * Each model is a generative stand-in for the strace-collected trace
 * of one application (see the substitution table in DESIGN.md). The
 * models are deterministic functions of (execution index, rng seed),
 * so the whole evaluation is bit-reproducible.
 */

#ifndef PCAP_WORKLOAD_APP_MODEL_HPP
#define PCAP_WORKLOAD_APP_MODEL_HPP

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace pcap::workload {

/** Static facts about one modeled application. */
struct AppInfo
{
    std::string name;    ///< as in Table 1 ("mozilla", ...)
    int executions = 1;  ///< traced executions (Table 1 column 2)
    std::string summary; ///< one-line behavioural description
};

/** Generative model of one application. */
class AppModel
{
  public:
    virtual ~AppModel() = default;

    /** Facts about the application. */
    virtual const AppInfo &info() const = 0;

    /**
     * Generate the trace of one execution. Equal (execution, rng)
     * pairs generate identical traces.
     */
    virtual trace::Trace generate(int execution, Rng rng) const = 0;
};

/** Model factory for one application by Table 1 name; null when the
 * name is unknown. */
std::unique_ptr<AppModel> makeApp(const std::string &name);

/** All six applications of Table 1, with the paper's execution
 * counts. */
std::vector<std::unique_ptr<AppModel>> makeStandardApps();

/** The six application names, in Table 1 order. */
std::vector<std::string> standardAppNames();

/**
 * Add one freshly generated trace to @p scope's
 * pcap_workload_generated_* counters (events by type, traced span).
 * Only generation records these — cache-loaded inputs skip the
 * generator entirely — so they are excluded from metric diffs by
 * default.
 */
void recordTraceMetrics(const trace::Trace &trace,
                        const obs::ScopedMetrics &scope);

} // namespace pcap::workload

#endif // PCAP_WORKLOAD_APP_MODEL_HPP
