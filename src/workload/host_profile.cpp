#include "workload/host_profile.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/logging.hpp"

namespace pcap::workload {

namespace {

/** Tag separating the schedule RNG's stream from trace generation
 * (which consumes seed ^ hashString(app)). */
const char kScheduleTag[] = "host-schedule";

int
appExecutionCount(const AppModel &model, int cap)
{
    int executions = model.info().executions;
    if (cap > 0)
        executions = std::min(executions, cap);
    return executions;
}

} // namespace

std::vector<PlannedExecution>
executionPlan(const HostProfile &profile)
{
    std::vector<PlannedExecution> plan;
    if (profile.executions <= 0) {
        // Full-run mode: every mix application's complete execution
        // set, in mix order — the materialized path's schedule.
        for (const AppShare &share : profile.appMix) {
            const auto model = makeApp(share.app);
            if (!model)
                fatal("HostProfile: unknown application '" +
                      share.app + "'");
            const int executions = appExecutionCount(
                *model, profile.maxExecutionsPerApp);
            for (int i = 0; i < executions; ++i)
                plan.push_back({share.app, i});
        }
        return plan;
    }

    std::vector<double> weights;
    weights.reserve(profile.appMix.size());
    for (const AppShare &share : profile.appMix)
        weights.push_back(share.weight);
    if (weights.empty())
        fatal("HostProfile: draw mode needs a non-empty app mix");

    Rng schedule(profile.seed ^ hashString(kScheduleTag));
    std::vector<int> counters(profile.appMix.size(), 0);
    plan.reserve(static_cast<std::size_t>(profile.executions));
    for (int i = 0; i < profile.executions; ++i) {
        const std::size_t pick = schedule.weightedChoice(weights);
        plan.push_back(
            {profile.appMix[pick].app, counters[pick]++});
    }
    return plan;
}

HostProfile
hostProfile(const FleetConfig &config, std::uint64_t host)
{
    // Rng(fleetSeed).fork(host) depends only on (fleetSeed, host):
    // profiles are independent of fleet size and of each other.
    Rng rng = Rng(config.fleetSeed).fork(host);

    HostProfile profile;
    profile.host = host;
    profile.seed = rng.next();
    profile.thinkTimeScale =
        config.maxThinkScale > config.minThinkScale
            ? rng.uniformReal(config.minThinkScale,
                              config.maxThinkScale)
            : config.minThinkScale;

    std::vector<std::string> pool =
        config.apps.empty() ? standardAppNames() : config.apps;
    if (pool.empty())
        fatal("FleetConfig: empty application pool");
    const int poolSize = static_cast<int>(pool.size());
    int maxApps = config.maxAppsPerHost;
    if (maxApps <= 0 || maxApps > poolSize)
        maxApps = poolSize;
    const int mixSize = static_cast<int>(
        rng.uniformInt(1, maxApps));

    // Partial Fisher-Yates: the first mixSize slots are a uniform
    // draw of distinct applications.
    for (int i = 0; i < mixSize; ++i) {
        const auto j = static_cast<std::size_t>(
            rng.uniformInt(i, poolSize - 1));
        std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
    }
    profile.appMix.reserve(static_cast<std::size_t>(mixSize));
    for (int i = 0; i < mixSize; ++i) {
        AppShare share;
        share.app = pool[static_cast<std::size_t>(i)];
        share.weight = rng.uniformReal(0.5, 2.0);
        profile.appMix.push_back(std::move(share));
    }

    profile.executions =
        config.executionsMax > 0
            ? static_cast<int>(rng.uniformInt(config.executionsMin,
                                              config.executionsMax))
            : 0;
    profile.maxExecutionsPerApp = config.maxExecutionsPerApp;
    return profile;
}

trace::Trace
scaleTraceTimes(const trace::Trace &trace, double scale)
{
    if (scale == 1.0)
        return trace;
    trace::Trace scaled(trace.app(), trace.execution());
    for (trace::TraceEvent event : trace.events()) {
        event.time = static_cast<TimeUs>(
            std::llround(static_cast<double>(event.time) * scale));
        scaled.append(event);
    }
    // Monotone scaling preserves the sort; no re-sort needed.
    return scaled;
}

HostWorkloadStream::HostWorkloadStream(HostProfile profile)
    : profile_(std::move(profile)), plan_(executionPlan(profile_))
{
}

HostWorkloadStream::AppStream &
HostWorkloadStream::streamOf(const std::string &app)
{
    auto it = streams_.find(app);
    if (it != streams_.end())
        return it->second;
    AppStream stream{makeApp(app),
                     Rng(profile_.seed ^ hashString(app)), 0};
    if (!stream.model)
        fatal("HostWorkloadStream: unknown application '" + app +
              "'");
    return streams_.emplace(app, std::move(stream)).first->second;
}

std::optional<trace::Trace>
HostWorkloadStream::next()
{
    if (index_ == plan_.size())
        return std::nullopt;
    const PlannedExecution &planned = plan_[index_++];
    AppStream &stream = streamOf(planned.app);
    if (stream.nextFork != planned.appExecution)
        fatal("HostWorkloadStream: out-of-order execution plan for '" +
              planned.app + "'");
    // Sequential forks from the persistent app RNG — exactly the
    // derivation sim::generateTraces uses for the materialized path.
    Rng execution_rng = stream.rng.fork(
        static_cast<std::uint64_t>(stream.nextFork));
    ++stream.nextFork;
    return scaleTraceTimes(
        stream.model->generate(planned.appExecution, execution_rng),
        profile_.thinkTimeScale);
}

} // namespace pcap::workload
