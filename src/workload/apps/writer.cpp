/**
 * @file
 * OpenOffice Writer model.
 *
 * The paper's user "mostly composes the text and also does some
 * quick fixes after proofreading"; word processing "requires
 * additional libraries like dictionaries" (Section 6). One execution:
 *
 *   - a heavy OpenOffice startup (many shared libraries, config
 *     files, font caches) plus the document load;
 *   - a few long composition phases (minutes of typing produce no
 *     I/O) separated by manual saves and a one-time dictionary load;
 *   - a proofreading tail with clusters of quick fixes: short edit
 *     bursts separated by sub-breakeven pauses — the source of
 *     subpath-aliasing mispredictions that the idle-history context
 *     (PCAPh) partially resolves;
 *   - an optional "save as" (Section 4.1's editor example);
 *   - an office helper process that maintains recent-documents and
 *     backup copies, giving the application its short local idle
 *     intervals.
 */

#include "workload/apps.hpp"

#include "workload/actor.hpp"

namespace pcap::workload {

namespace {

constexpr Address kBase = 0x08100000;
constexpr Address kPcLoadLib = kBase + 0x010;
constexpr Address kPcConfig = kBase + 0x020;
constexpr Address kPcFonts = kBase + 0x030;
constexpr Address kPcOpenDoc = kBase + 0x040;
constexpr Address kPcDict = kBase + 0x050;
constexpr Address kPcSave = kBase + 0x060;
constexpr Address kPcSaveAs = kBase + 0x070;
constexpr Address kPcEditFix = kBase + 0x080;
constexpr Address kPcRecent = kBase + 0x090;
constexpr Address kPcBackup = kBase + 0x0a0;

constexpr FileId kLibBase = 3000;
constexpr FileId kConfigBase = 3100;
constexpr FileId kFontCache = 3200;
constexpr FileId kDocFile = 3300;
constexpr FileId kSaveAsFile = 3301;
constexpr FileId kDictFile = 3400;
constexpr FileId kRecentFile = 3500;
constexpr FileId kBackupFile = 3501;

constexpr int kLibCount = 42;
constexpr Pid kMainPid = 200;
constexpr Pid kHelperPid = 201;

class WriterModel : public AppModel
{
  public:
    WriterModel()
        : info_{"writer", 33,
                "word processor; long composition phases, quick-fix "
                "clusters, save-as aliasing"}
    {
    }

    const AppInfo &info() const override { return info_; }

    trace::Trace
    generate(int execution, Rng rng) const override
    {
        trace::TraceBuilder builder(info_.name, execution, kMainPid);
        Actor main(builder, rng.fork(1), kMainPid, millisUs(50));
        main.setIntraGap(millisUs(8));

        // --- OpenOffice startup: libraries, configuration, fonts.
        for (int lib = 0; lib < kLibCount; ++lib) {
            const std::uint32_t bytes =
                (100 + (lib * 53) % 200) * 1024;
            main.readFile(kPcLoadLib, 4, kLibBase + lib, 0, bytes,
                          4096);
        }
        for (int cfg = 0; cfg < 12; ++cfg) {
            main.readFile(kPcConfig, 5, kConfigBase + cfg, 0,
                          8 * 1024, 4096);
        }
        main.readFile(kPcFonts, 6, kFontCache, 0, 400 * 1024, 4096);

        main.fork(kHelperPid);
        Actor helper(builder, rng.fork(2), kHelperPid, main.now());
        helper.setIntraGap(millisUs(8));

        // Load the document; the helper records it in recent-docs.
        main.open(kPcOpenDoc, 3, kDocFile);
        main.readFile(kPcOpenDoc, 3, kDocFile, 0, 240 * 1024, 4096);
        helper.advanceTo(main.now() + millisUs(300));
        helper.writeFile(kPcRecent, 4, kRecentFile, 0, 4 * 1024,
                         4096);

        // --- Composition: long typing phases, saves in between.
        const int phases =
            static_cast<int>(main.rng().uniformInt(5, 9));
        bool dictionary_loaded = false;
        for (int phase = 0; phase < phases; ++phase) {
            main.think(26.0, 1.5, 7.0, 1200.0);

            if (!dictionary_loaded && main.rng().chance(0.7)) {
                // First spell-check pulls in the dictionary.
                main.readFile(kPcDict, 7, kDictFile, 0, 300 * 1024,
                              4096);
                dictionary_loaded = true;
                continue;
            }
            saveDocument(main, helper);
        }

        // --- Proofreading: clusters of quick fixes with
        // sub-breakeven pauses between them (subpath aliasing).
        main.think(22.0, 1.4, 7.0, 600.0);
        const int fixes =
            static_cast<int>(main.rng().uniformInt(1, 3));
        for (int fix = 0; fix < fixes; ++fix) {
            main.readFile(kPcEditFix, 3, kDocFile,
                          4096 * static_cast<std::uint64_t>(
                                     main.rng().uniformInt(0, 50)),
                          12 * 1024, 4096);
            if (fix + 1 < fixes)
                main.pauseBetween(millisUs(800), millisUs(3500));
        }
        main.think(12.0, 1.2, 7.0, 300.0);

        // --- Final save, sometimes followed by a "save as" after a
        // sub-breakeven pause (Section 4.1's example).
        saveDocument(main, helper);
        if (main.rng().chance(0.4)) {
            main.pauseBetween(millisUs(2000), millisUs(4000));
            main.open(kPcSaveAs, 11, kSaveAsFile);
            main.writeFile(kPcSaveAs, 11, kSaveAsFile, 0, 80 * 1024,
                           4096);
            main.think(10.0, 0.8, 7.0, 60.0);
        }

        const TimeUs last =
            main.now() > helper.now() ? main.now() : helper.now();
        return builder.finish(last + millisUs(600));
    }

  private:
    /** Manual save: document write, and the helper mirrors a backup
     * copy shortly after on most saves. */
    static void
    saveDocument(Actor &main, Actor &helper)
    {
        main.writeFile(kPcSave, 3, kDocFile, 0, 80 * 1024, 4096);
        if (helper.rng().chance(0.7) && main.now() > helper.now()) {
            helper.advanceTo(main.now() + millisUs(300));
            helper.writeFile(kPcBackup, 4, kBackupFile, 0, 24 * 1024,
                             4096);
        }
    }

    AppInfo info_;
};

} // namespace

std::unique_ptr<AppModel>
makeWriter()
{
    return std::make_unique<WriterModel>();
}

} // namespace pcap::workload
