/**
 * @file
 * OpenOffice Impress model.
 *
 * "Presentation preparation requires additional libraries like
 * graphic filters that require more I/O time" (Section 6). Impress
 * is the most I/O-heavy desktop application of Table 1. One
 * execution:
 *
 *   - the OpenOffice startup plus template and clip-art gallery
 *     loads;
 *   - slide-work phases: the user arranges a slide (a long think),
 *     then inserts an image (a large read through a graphic filter)
 *     or saves the deck. Image inserts sometimes regenerate
 *     thumbnails after a sub-breakeven pause — the aliasing hazard
 *     for this workload;
 *   - the same office helper process as writer (recent docs,
 *     autobackups).
 */

#include "workload/apps.hpp"

#include "workload/actor.hpp"

namespace pcap::workload {

namespace {

constexpr Address kBase = 0x08200000;
constexpr Address kPcLoadLib = kBase + 0x010;
constexpr Address kPcConfig = kBase + 0x020;
constexpr Address kPcTemplate = kBase + 0x030;
constexpr Address kPcGallery = kBase + 0x040;
constexpr Address kPcOpenDeck = kBase + 0x050;
constexpr Address kPcImageRead = kBase + 0x060;
constexpr Address kPcThumbWrite = kBase + 0x070;
constexpr Address kPcSaveDeck = kBase + 0x080;
constexpr Address kPcRecent = kBase + 0x090;
constexpr Address kPcBackup = kBase + 0x0a0;

constexpr FileId kLibBase = 4000;
constexpr FileId kConfigBase = 4100;
constexpr FileId kTemplateFile = 4200;
constexpr FileId kGalleryFile = 4201;
constexpr FileId kDeckFile = 4300;
constexpr FileId kImageBase = 4400;
constexpr FileId kThumbFile = 4500;
constexpr FileId kRecentFile = 4600;
constexpr FileId kBackupFile = 4601;

constexpr int kLibCount = 48;
constexpr Pid kMainPid = 300;
constexpr Pid kHelperPid = 301;

class ImpressModel : public AppModel
{
  public:
    ImpressModel()
        : info_{"impress", 19,
                "presentation editor; large image inserts, deck "
                "saves, thumbnail aliasing"}
    {
    }

    const AppInfo &info() const override { return info_; }

    trace::Trace
    generate(int execution, Rng rng) const override
    {
        trace::TraceBuilder builder(info_.name, execution, kMainPid);
        Actor main(builder, rng.fork(1), kMainPid, millisUs(50));
        main.setIntraGap(millisUs(6));

        // --- Startup: OpenOffice core plus presentation extras.
        for (int lib = 0; lib < kLibCount; ++lib) {
            const std::uint32_t bytes =
                (100 + (lib * 61) % 220) * 1024;
            main.readFile(kPcLoadLib, 4, kLibBase + lib, 0, bytes,
                          4096);
        }
        for (int cfg = 0; cfg < 10; ++cfg) {
            main.readFile(kPcConfig, 5, kConfigBase + cfg, 0,
                          8 * 1024, 4096);
        }
        main.readFile(kPcTemplate, 6, kTemplateFile, 0, 300 * 1024,
                      4096);
        main.readFile(kPcGallery, 6, kGalleryFile, 0, 500 * 1024,
                      4096);

        main.fork(kHelperPid);
        Actor helper(builder, rng.fork(2), kHelperPid, main.now());
        helper.setIntraGap(millisUs(8));

        main.open(kPcOpenDeck, 3, kDeckFile);
        main.readFile(kPcOpenDeck, 3, kDeckFile, 0, 400 * 1024,
                      4096);
        helper.advanceTo(main.now() + millisUs(300));
        helper.writeFile(kPcRecent, 4, kRecentFile, 0, 4 * 1024,
                         4096);

        // --- Slide work.
        const int phases =
            static_cast<int>(main.rng().uniformInt(5, 8));
        for (int phase = 0; phase < phases; ++phase) {
            main.think(24.0, 1.5, 7.0, 900.0);

            if (main.rng().chance(0.55)) {
                insertImage(main);
            } else {
                saveDeck(main, helper);
            }
        }

        // Final save before leaving.
        main.think(10.0, 1.1, 7.0, 240.0);
        saveDeck(main, helper);

        const TimeUs last =
            main.now() > helper.now() ? main.now() : helper.now();
        return builder.finish(last + millisUs(600));
    }

  private:
    /** Insert an image through a graphic filter; sometimes the
     * thumbnail pane regenerates after a sub-breakeven pause. */
    static void
    insertImage(Actor &main)
    {
        const int image = static_cast<int>(
            main.rng().uniformInt(0, 5));
        const std::uint32_t bytes = (600 + image * 250) * 1024;
        main.open(kPcImageRead, 8, kImageBase + image);
        main.readFile(kPcImageRead, 8, kImageBase + image, 0, bytes,
                      4096);
        if (main.rng().chance(0.25)) {
            main.pauseBetween(millisUs(2200), millisUs(4300));
            main.writeFile(kPcThumbWrite, 9, kThumbFile, 0,
                           60 * 1024, 4096);
        }
    }

    /** Save the deck; the helper mirrors a backup on most saves. */
    static void
    saveDeck(Actor &main, Actor &helper)
    {
        main.writeFile(kPcSaveDeck, 3, kDeckFile, 0, 400 * 1024,
                       4096);
        if (helper.rng().chance(0.7) && main.now() > helper.now()) {
            helper.advanceTo(main.now() + millisUs(300));
            helper.writeFile(kPcBackup, 4, kBackupFile, 0, 48 * 1024,
                             4096);
        }
    }

    AppInfo info_;
};

} // namespace

std::unique_ptr<AppModel>
makeImpress()
{
    return std::make_unique<ImpressModel>();
}

} // namespace pcap::workload
