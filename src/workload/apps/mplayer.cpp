/**
 * @file
 * MPlayer model.
 *
 * Per the paper (Section 6.3): "Mplayer loads the movie into its own
 * memory buffer and maintains the buffer full until the movie ends.
 * At this time the I/O activity stops and the movie finishes playing
 * from the buffer" — the idle energy corresponds to draining the
 * 8 MB buffer at the end. One execution:
 *
 *   - pick a clip from the user's small library (fixed length per
 *     clip, so the refill count — and hence the cumulative path
 *     signature at the drain — is stable per clip and learnable);
 *   - initial 8 MB buffer fill, then periodic refills every ~4 s:
 *     idle gaps above the wait-window but below breakeven, which
 *     keep the disk spinning and fill the idle history with zeros;
 *   - sometimes the user pauses the movie (a control-file touch
 *     followed by a long idle period);
 *   - the end-of-movie drain: the last refill is followed by the
 *     ~32 s it takes to play out the buffer, then the config write
 *     and exit;
 *   - a GUI/demux front-end process with a handful of sparse
 *     accesses (index at start, subtitles mid-movie).
 */

#include "workload/apps.hpp"

#include "workload/actor.hpp"

namespace pcap::workload {

namespace {

constexpr Address kBase = 0x08500000;
constexpr Address kPcOpenMovie = kBase + 0x010;
constexpr Address kPcFillBuf = kBase + 0x020;
constexpr Address kPcRefill = kBase + 0x030;
constexpr Address kPcControl = kBase + 0x040;
constexpr Address kPcResync = kBase + 0x050;
constexpr Address kPcConfig = kBase + 0x060;
constexpr Address kPcIndex = kBase + 0x070;
constexpr Address kPcSubs = kBase + 0x080;
constexpr Address kPcFooter = kBase + 0x090;

constexpr FileId kMovieBase = 7000;
constexpr FileId kControlFile = 7100;
constexpr FileId kConfigFile = 7101;
constexpr FileId kIndexFile = 7200;
constexpr FileId kSubsFile = 7201;

constexpr Pid kMainPid = 600;
constexpr Pid kFrontendPid = 601;

constexpr int kClipCount = 6;
constexpr std::uint32_t kFillBytes = 8 * 1024 * 1024;
constexpr std::uint32_t kRefillBytes = 1024 * 1024;
/** ~250 KB/s stream: one 1 MB refill roughly every four seconds. */
constexpr double kDrainSeconds = 40.0;

/** Refills in clip c: fixed per clip so the drain path is stable. */
int
clipRefills(int clip)
{
    return 18 + clip * 11; // 18 .. 73 refills (~1.5 .. 5.5 minutes)
}

class MplayerModel : public AppModel
{
  public:
    MplayerModel()
        : info_{"mplayer", 31,
                "media player; sub-breakeven refills, user pauses, "
                "end-of-movie buffer drain"}
    {
    }

    const AppInfo &info() const override { return info_; }

    trace::Trace
    generate(int execution, Rng rng) const override
    {
        trace::TraceBuilder builder(info_.name, execution, kMainPid);
        Actor main(builder, rng.fork(1), kMainPid, millisUs(50));
        main.setIntraGap(millisUs(2));

        const int clip =
            static_cast<int>(main.rng().uniformInt(0,
                                                   kClipCount - 1));
        const FileId movie = kMovieBase + clip;

        main.fork(kFrontendPid);
        Actor frontend(builder, rng.fork(2), kFrontendPid,
                       main.now());
        frontend.setIntraGap(millisUs(4));

        // --- Open the movie and fill the 8 MB buffer; the front-end
        // reads the seek index meanwhile.
        main.open(kPcOpenMovie, 3, movie);
        std::uint64_t offset =
            main.readFile(kPcFillBuf, 3, movie, 0, kFillBytes, 4096);
        frontend.advanceTo(main.now() / 2);
        frontend.readFile(kPcIndex, 4, kIndexFile, 0, 24 * 1024,
                          4096);

        // --- Playback: periodic refills below the breakeven time.
        const int refills = clipRefills(clip);
        const bool pauses = main.rng().chance(0.4);
        const int pause_at =
            pauses ? static_cast<int>(
                         main.rng().uniformInt(3, refills - 3))
                   : -1;
        const int subs_at = static_cast<int>(
            main.rng().uniformInt(2, refills - 2));

        for (int refill = 0; refill < refills; ++refill) {
            main.pauseBetween(millisUs(3400), millisUs(4600));
            offset = main.readFile(kPcRefill, 3, movie, offset,
                                   kRefillBytes, 4096);

            if (refill == subs_at) {
                // Subtitles load while the disk is up anyway.
                frontend.advanceTo(main.now() + millisUs(120));
                frontend.readFile(kPcSubs, 5, kSubsFile, 0,
                                  16 * 1024, 4096);
            }

            if (refill == pause_at) {
                // The user pauses: mplayer touches its control file,
                // then nothing happens for a while; playback resumes
                // with a resync read.
                main.op(trace::EventType::Read, kPcControl, 6,
                        kControlFile, 0, 4096);
                main.pause(secondsUs(main.rng().uniformReal(25.0,
                                                            150.0)));
                main.readFile(kPcResync, 3, movie, offset, 64 * 1024,
                              4096);
            }
        }

        // --- End of movie: the demuxer hits EOF and reads the
        // container footer/seek table — the distinguishing tail of
        // the drain path — then the buffer drains.
        main.readFile(kPcFooter, 3, movie, offset, 32 * 1024, 4096);
        main.pause(secondsUs(kDrainSeconds));
        main.writeFile(kPcConfig, 7, kConfigFile, 0, 4 * 1024, 4096);

        const TimeUs last =
            main.now() > frontend.now() ? main.now() : frontend.now();
        return builder.finish(last + millisUs(400));
    }

  private:
    AppInfo info_;
};

} // namespace

std::unique_ptr<AppModel>
makeMplayer()
{
    return std::make_unique<MplayerModel>();
}

} // namespace pcap::workload
