/**
 * @file
 * NEdit model.
 *
 * Per the paper, nedit is "primarily used to quickly open,
 * correct/modify source code during compilation or bug fixes",
 * "does not show repetitive behavior since once a file is modified
 * it is saved and nedit is closed", and is "the only application
 * with a single process". Table 1 records exactly one long idle
 * period per execution (29 executions, 29 idle periods): the edit
 * pause between the open and the save. Within one execution there
 * is nothing to learn from — which is precisely why nedit
 * demonstrates the value of carrying prediction tables across
 * executions (Section 4.2): the path is identical every run.
 */

#include "workload/apps.hpp"

#include "workload/actor.hpp"

namespace pcap::workload {

namespace {

constexpr Address kBase = 0x08400000;
constexpr Address kPcConfig = kBase + 0x010;
constexpr Address kPcOpenFile = kBase + 0x020;
constexpr Address kPcReadFile = kBase + 0x030;
constexpr Address kPcSaveFile = kBase + 0x040;
constexpr Address kPcWriteRc = kBase + 0x050;

constexpr FileId kConfigFile = 6000;
constexpr FileId kHelpFile = 6001;
constexpr FileId kSourceBase = 6100;
constexpr FileId kRcFile = 6200;

constexpr Pid kMainPid = 500;

class NeditModel : public AppModel
{
  public:
    NeditModel()
        : info_{"nedit", 29,
                "quick single-file editor; one edit pause per "
                "execution, no in-run repetition"}
    {
    }

    const AppInfo &info() const override { return info_; }

    trace::Trace
    generate(int execution, Rng rng) const override
    {
        trace::TraceBuilder builder(info_.name, execution, kMainPid);
        Actor main(builder, rng.fork(1), kMainPid, millisUs(50));
        main.setIntraGap(millisUs(10));

        // Startup: read the resource/config files.
        main.readFile(kPcConfig, 4, kConfigFile, 0, 24 * 1024, 4096);
        main.readFile(kPcConfig, 4, kHelpFile, 0, 16 * 1024, 4096);

        // Open the file under repair; a different source file each
        // run (the user is chasing a different bug every time), but
        // through the same code path.
        const FileId source = kSourceBase +
                              static_cast<FileId>(execution % 16);
        main.open(kPcOpenFile, 3, source);
        main.readFile(kPcReadFile, 3, source, 0, 200 * 1024, 4096);

        // The single long idle period: staring at the bug.
        main.think(60.0, 1.3, 10.0, 1200.0);

        // Save and leave immediately.
        main.writeFile(kPcSaveFile, 3, source, 0, 200 * 1024, 4096);
        main.writeFile(kPcWriteRc, 5, kRcFile, 0, 2 * 1024, 2048);

        return builder.finish(main.now() + millisUs(400));
    }

  private:
    AppInfo info_;
};

} // namespace

std::unique_ptr<AppModel>
makeNedit()
{
    return std::make_unique<NeditModel>();
}

} // namespace pcap::workload
