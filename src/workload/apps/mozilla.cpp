/**
 * @file
 * Mozilla model.
 *
 * The paper describes mozilla as the hardest application to predict:
 * the user follows links, page loads are bursty, many idle periods
 * are short, and multimedia pages trigger *delayed* library loads —
 * the browser scenario the paper gives for subpath aliasing ("some
 * pages require loading additional libraries to decode the
 * multimedia context and some do not", Section 4.1).
 *
 * Structure of one execution:
 *   - startup: dlopen of shared libraries + profile/prefs read, then
 *     a medium pause while the user types the first URL;
 *   - a session of page visits. Visits come in page classes with a
 *     class-specific number of cache files (so each class has a
 *     stable PC-path signature), and in two modes driven by a sticky
 *     Markov chain: TEXT pages finish after the base burst; MEDIA
 *     pages pause 2.5-4.5 s (below breakeven — the aliasing hazard)
 *     and then load the plugin plus media data;
 *   - a render helper process reads fonts during visits and performs
 *     a lazy prefetch mid-think on some visits (the "multiple
 *     processes with short idle intervals" of Section 6.1);
 *   - an NSS/psm helper reads certificate databases at startup;
 *   - session state is written on exit.
 */

#include "workload/apps.hpp"

#include "workload/actor.hpp"

namespace pcap::workload {

namespace {

// Call sites (stable across executions: the property PCAP exploits).
constexpr Address kBase = 0x08048000;
constexpr Address kPcDlopen = kBase + 0x010;
constexpr Address kPcPrefs = kBase + 0x020;
constexpr Address kPcHistWrite = kBase + 0x030;
constexpr Address kPcCacheRead = kBase + 0x040;
constexpr Address kPcCacheWrite = kBase + 0x050;
constexpr Address kPcPluginLoad = kBase + 0x060;
constexpr Address kPcMediaRead = kBase + 0x070;
constexpr Address kPcRender = kBase + 0x080;
constexpr Address kPcPrefetch = kBase + 0x090;
constexpr Address kPcPsm = kBase + 0x0a0;
constexpr Address kPcSession = kBase + 0x0b0;

// Files.
constexpr FileId kLibBase = 1000;     // shared libraries
constexpr FileId kPrefsFile = 1100;
constexpr FileId kHistoryDb = 1200;
constexpr FileId kPluginLib = 1300;
constexpr FileId kMediaBase = 1400;
constexpr FileId kFontBase = 1500;
constexpr FileId kSessionFile = 1600;
constexpr FileId kCertDb = 1700;
constexpr FileId kCacheBase = 2000;   // + class * 16 + index

// Shape parameters.
constexpr int kLibCount = 20;
constexpr int kPageClasses = 4;
constexpr double kMediaStay = 0.55;  // mode stickiness
constexpr double kMediaEnter = 0.20; // TEXT -> MEDIA probability

constexpr Pid kMainPid = 100;
constexpr Pid kRenderPid = 101;
constexpr Pid kPsmPid = 102;

class MozillaModel : public AppModel
{
  public:
    MozillaModel()
        : info_{"mozilla", 49,
                "web browser; bursty page loads, media subpath "
                "aliasing"}
    {
    }

    const AppInfo &info() const override { return info_; }

    trace::Trace
    generate(int execution, Rng rng) const override
    {
        trace::TraceBuilder builder(info_.name, execution, kMainPid);
        Actor main(builder, rng.fork(1), kMainPid, millisUs(50));
        main.setIntraGap(millisUs(10));

        // --- Startup: load libraries and the user profile.
        for (int lib = 0; lib < kLibCount; ++lib) {
            const FileId file = kLibBase + lib;
            const std::uint32_t bytes =
                (80 + (lib * 37) % 120) * 1024;
            main.open(kPcDlopen, 4, file);
            main.readFile(kPcDlopen, 4, file, 0, bytes, 4096);
        }
        main.open(kPcPrefs, 5, kPrefsFile);
        main.readFile(kPcPrefs, 5, kPrefsFile, 0, 8 * 1024, 4096);

        // Helpers come to life once the chrome is up.
        main.fork(kRenderPid);
        main.fork(kPsmPid);
        Actor render(builder, rng.fork(2), kRenderPid, main.now());
        Actor psm(builder, rng.fork(3), kPsmPid, main.now());
        render.setIntraGap(millisUs(10));
        psm.setIntraGap(millisUs(10));

        // The security helper loads its certificate databases once.
        psm.readFile(kPcPsm, 4, kCertDb, 0, 40 * 1024, 4096);

        // The user types the first URL: a medium pause.
        main.pauseBetween(millisUs(2000), millisUs(4500));

        // --- Browsing session.
        const int visits =
            static_cast<int>(main.rng().uniformInt(6, 10));
        bool media_mode = false;
        for (int visit = 0; visit < visits; ++visit) {
            // Sticky mode switch (media pages cluster).
            if (media_mode)
                media_mode = main.rng().chance(kMediaStay);
            else
                media_mode = main.rng().chance(kMediaEnter);

            const int page_class = static_cast<int>(
                main.rng().uniformInt(0, kPageClasses - 1));
            // Media pages sometimes pre-open the plugin stream,
            // shifting fd allocation for the cache files — the hook
            // PCAPf exploits on this workload.
            const Fd cache_fd =
                media_mode && main.rng().chance(0.5) ? 7 : 6;

            if (media_mode) {
                // Media pages stall on the network after the history
                // update while the streaming server negotiates: a
                // medium idle period *inside* the visit. The stall
                // is what the idle-history context (PCAPh) can see
                // that the bare path signature cannot.
                main.op(trace::EventType::Write, kPcHistWrite, 5,
                        kHistoryDb, 0, 4096);
                main.pauseBetween(millisUs(1600), millisUs(3100));
            }
            visitBaseBurst(main, page_class, cache_fd);
            const int visit_slot = visit;

            // Progressive page build on heavier pages: the main
            // process waits ~8 s for layout while the helpers fetch
            // fonts and check certificates. The main process sees a
            // short local idle period, but the helpers' staggered
            // accesses keep the *global* stream busy — the paper's
            // "multiple processes with short idle intervals"
            // (Section 6.1), and the reason Table 1's local idle
            // count for mozilla is almost 3x the global one.
            // Heavy page classes always build progressively;
            // light ones render at once. Keeping this deterministic
            // per class keeps idle-history patterns learnable.
            if (page_class >= 2) {
                render.advanceTo(main.now() + millisUs(400));
                render.readFile(kPcRender, 5,
                                kFontBase + page_class, 0, 48 * 1024,
                                4096);
                psm.advanceTo(main.now() + millisUs(700));
                psm.op(trace::EventType::Read, kPcPrefetch, 4,
                       kCertDb, 8 * 4096, 8 * 1024);
                main.pauseBetween(millisUs(8600), millisUs(10500));
            }
            visitCompletionBurst(main, page_class, cache_fd,
                                 visit_slot);

            if (media_mode) {
                // The aliasing hazard: the completed page load looks
                // exactly like a TEXT visit, then a sub-breakeven
                // pause, then the plugin load.
                main.pauseBetween(millisUs(2500), millisUs(4500));
                main.readFile(kPcPluginLoad, 8, kPluginLib, 0,
                              96 * 1024, 4096);
                main.readFile(kPcMediaRead, 8,
                              kMediaBase + page_class, 0, 64 * 1024,
                              4096);
            }

            // Reading the page.
            main.think(16.0, 1.5, 7.0, 900.0);
        }

        // --- Shutdown: persist session state.
        main.writeFile(kPcSession, 9, kSessionFile, 0, 16 * 1024,
                       4096);
        const TimeUs last =
            main.now() > render.now() ? main.now() : render.now();
        return builder.finish(last + millisUs(500));
    }

  private:
    /** The burst every page visit starts with: history write + the
     * class-specific cache reads. */
    static void
    visitBaseBurst(Actor &main, int page_class, Fd cache_fd)
    {
        main.op(trace::EventType::Write, kPcHistWrite, 5, kHistoryDb,
                0, 4096);
        const int cache_files = 2 + page_class;
        for (int i = 0; i < cache_files; ++i) {
            main.readFile(kPcCacheRead, cache_fd,
                          kCacheBase + page_class * 16 + i, 0,
                          48 * 1024, 4096);
        }
    }

    /** The burst that completes a page load: new cache entries are
     * written back (when the page was not fully served from the
     * browser's own cache). */
    static void
    visitCompletionBurst(Actor &main, int page_class, Fd cache_fd,
                         int visit_slot)
    {
        const std::uint32_t bytes =
            main.rng().chance(0.5) ? 12 * 1024 : 4 * 1024;
        // New cache entries append at a fresh offset, so the write
        // always reaches the disk instead of being absorbed by
        // still-resident blocks of the previous visit.
        main.writeFile(kPcCacheWrite, cache_fd,
                       kCacheBase + page_class * 16 + 15,
                       static_cast<std::uint64_t>(visit_slot) * 16 *
                           4096,
                       bytes, 4096);
    }

    AppInfo info_;
};

} // namespace

std::unique_ptr<AppModel>
makeMozilla()
{
    return std::make_unique<MozillaModel>();
}

} // namespace pcap::workload
