/**
 * @file
 * XEmacs model.
 *
 * The paper's user employs xemacs "to create larger files and edit
 * multiple files". The multi-file open loop at session start is the
 * paper's own motivating example for path-based prediction (Section
 * 3.1): "the same scenario occurs when a user consecutively opens
 * multiple files upon starting an editor" — only the last open is
 * followed by a long idle period, so a single-PC predictor
 * mispredicts after every file while PCAP learns the whole path.
 *
 * One execution:
 *   - elisp startup;
 *   - an open loop over 1-4 files with inter-open gaps straddling
 *     the wait-window;
 *   - per-file edit/save cycles with long thinks;
 *   - an occasional "save as" after a sub-breakeven pause;
 *   - in some executions a compile subprocess scans the source tree
 *     once (xemacs is nearly single-process: local idle counts
 *     barely exceed global ones in Table 1).
 */

#include "workload/apps.hpp"

#include "workload/actor.hpp"

namespace pcap::workload {

namespace {

constexpr Address kBase = 0x08300000;
constexpr Address kPcLoadEl = kBase + 0x010;
constexpr Address kPcOpenFile = kBase + 0x020;
constexpr Address kPcReadFile = kBase + 0x030;
constexpr Address kPcSaveBuf = kBase + 0x040;
constexpr Address kPcSaveAs = kBase + 0x050;
constexpr Address kPcCompile = kBase + 0x060;

constexpr FileId kElispBase = 5000;
constexpr FileId kSourceBase = 5100;
constexpr FileId kSaveAsFile = 5200;
constexpr FileId kTreeBase = 5300;

constexpr int kElispCount = 30;
constexpr Pid kMainPid = 400;
constexpr Pid kCompilePid = 401;

class XemacsModel : public AppModel
{
  public:
    XemacsModel()
        : info_{"xemacs", 37,
                "editor; multi-file open loops, long edits, save-as "
                "aliasing"}
    {
    }

    const AppInfo &info() const override { return info_; }

    trace::Trace
    generate(int execution, Rng rng) const override
    {
        trace::TraceBuilder builder(info_.name, execution, kMainPid);
        Actor main(builder, rng.fork(1), kMainPid, millisUs(50));
        main.setIntraGap(millisUs(8));

        // --- Elisp startup.
        for (int el = 0; el < kElispCount; ++el) {
            const std::uint32_t bytes = (12 + (el * 17) % 36) * 1024;
            main.readFile(kPcLoadEl, 4, kElispBase + el, 0, bytes,
                          4096);
        }

        // --- The open loop: the motivating example. Gaps between
        // consecutive opens straddle the one-second wait-window.
        const int files =
            static_cast<int>(main.rng().uniformInt(1, 4));
        for (int f = 0; f < files; ++f) {
            const FileId file = kSourceBase + f;
            main.open(kPcOpenFile, 3 + f, file);
            main.readFile(kPcReadFile, 3 + f, file, 0, 160 * 1024,
                          4096);
            if (f + 1 < files)
                main.pauseBetween(millisUs(250), millisUs(950));
        }

        // --- Edit/save cycles.
        const int cycles =
            static_cast<int>(main.rng().uniformInt(1, 3));
        for (int cycle = 0; cycle < cycles; ++cycle) {
            main.think(32.0, 1.5, 7.0, 1200.0);
            const int f = static_cast<int>(
                main.rng().uniformInt(0, files - 1));
            main.writeFile(kPcSaveBuf, 3 + f, kSourceBase + f, 0,
                           160 * 1024, 4096);

            if (cycle == cycles - 1 && main.rng().chance(0.12)) {
                // "Save as" to a different file after a short pause.
                main.pauseBetween(millisUs(2000), millisUs(4200));
                main.open(kPcSaveAs, 9, kSaveAsFile);
                main.writeFile(kPcSaveAs, 9, kSaveAsFile, 0,
                               160 * 1024, 4096);
            }
        }

        // --- Occasional compile subprocess scanning the tree once.
        if (main.rng().chance(0.3)) {
            main.think(10.0, 0.8, 7.0, 60.0);
            main.fork(kCompilePid);
            Actor compiler(builder, rng.fork(2), kCompilePid,
                           main.now());
            compiler.setIntraGap(millisUs(5));
            for (int src = 0; src < 24; ++src) {
                compiler.readFile(kPcCompile, 4, kTreeBase + src, 0,
                                  8 * 1024, 4096);
            }
            compiler.exit();
            // The user inspects the compile output.
            main.advanceTo(compiler.now());
            main.think(11.0, 0.8, 7.0, 90.0);
            main.writeFile(kPcSaveBuf, 3, kSourceBase, 0, 160 * 1024,
                           4096);
        }

        return builder.finish(main.now() + millisUs(500));
    }

  private:
    AppInfo info_;
};

} // namespace

std::unique_ptr<AppModel>
makeXemacs()
{
    return std::make_unique<XemacsModel>();
}

} // namespace pcap::workload
