#include "workload/app_model.hpp"

#include "workload/apps.hpp"

namespace pcap::workload {

std::unique_ptr<AppModel>
makeApp(const std::string &name)
{
    if (name == "mozilla")
        return makeMozilla();
    if (name == "writer")
        return makeWriter();
    if (name == "impress")
        return makeImpress();
    if (name == "xemacs")
        return makeXemacs();
    if (name == "nedit")
        return makeNedit();
    if (name == "mplayer")
        return makeMplayer();
    return nullptr;
}

std::vector<std::unique_ptr<AppModel>>
makeStandardApps()
{
    std::vector<std::unique_ptr<AppModel>> apps;
    for (const std::string &name : standardAppNames())
        apps.push_back(makeApp(name));
    return apps;
}

std::vector<std::string>
standardAppNames()
{
    return {"mozilla", "writer", "impress", "xemacs", "nedit",
            "mplayer"};
}

} // namespace pcap::workload
