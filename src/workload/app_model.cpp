#include "workload/app_model.hpp"

#include "workload/apps.hpp"

namespace pcap::workload {

std::unique_ptr<AppModel>
makeApp(const std::string &name)
{
    if (name == "mozilla")
        return makeMozilla();
    if (name == "writer")
        return makeWriter();
    if (name == "impress")
        return makeImpress();
    if (name == "xemacs")
        return makeXemacs();
    if (name == "nedit")
        return makeNedit();
    if (name == "mplayer")
        return makeMplayer();
    return nullptr;
}

std::vector<std::unique_ptr<AppModel>>
makeStandardApps()
{
    std::vector<std::unique_ptr<AppModel>> apps;
    for (const std::string &name : standardAppNames())
        apps.push_back(makeApp(name));
    return apps;
}

std::vector<std::string>
standardAppNames()
{
    return {"mozilla", "writer", "impress", "xemacs", "nedit",
            "mplayer"};
}

void
recordTraceMetrics(const trace::Trace &trace,
                   const obs::ScopedMetrics &scope)
{
    scope.counter("pcap_workload_generated_traces_total").inc();
    scope.counter("pcap_workload_generated_span_us_total")
        .inc(static_cast<std::uint64_t>(trace.endTime() -
                                        trace.startTime()));
    for (const trace::TraceEvent &event : trace.events()) {
        scope
            .counter("pcap_workload_generated_events_total",
                     {{"type", trace::eventTypeName(event.type)}})
            .inc();
    }
}

} // namespace pcap::workload
