/**
 * @file
 * Actor: per-process emission helper for the synthetic application
 * models.
 *
 * Each simulated process owns an Actor bound to the shared
 * TraceBuilder. The actor keeps the process's private clock and
 * offers the vocabulary the models are written in: open/read/write
 * bursts with sub-second intra-operation gaps, fixed pauses, and
 * heavy-tailed human think times.
 */

#ifndef PCAP_WORKLOAD_ACTOR_HPP
#define PCAP_WORKLOAD_ACTOR_HPP

#include "trace/builder.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace pcap::workload {

/**
 * Emits the I/O stream of one process into a TraceBuilder.
 *
 * All emission methods issue events at the actor's current clock and
 * advance it. Bursts advance by small exponential intra-operation
 * gaps (tens of milliseconds — well below the predictors' one-second
 * wait-window, like the 0.1 s spacing in the paper's Figure 3
 * example); pause() and think() create the idle periods predictors
 * reason about.
 */
class Actor
{
  public:
    /**
     * @param builder Shared trace builder of the execution.
     * @param rng Random stream owned by this actor.
     * @param pid This process's pid (must be live in the builder).
     * @param start Initial clock value.
     */
    Actor(trace::TraceBuilder &builder, Rng rng, Pid pid,
          TimeUs start);

    /** Current process-local clock. */
    TimeUs now() const { return now_; }

    /** Move the clock forward to @p t (panics on going backwards). */
    void advanceTo(TimeUs t);

    /** Mean intra-burst gap between consecutive operations. */
    void setIntraGap(TimeUs mean) { intraGapMean_ = mean; }

    /** Emit a single I/O event at now(), then advance by an
     * intra-burst gap. */
    void op(trace::EventType type, Address pc, Fd fd, FileId file,
            std::uint64_t offset, std::uint32_t size);

    /** open() of @p file via call site @p pc. */
    void open(Address pc, Fd fd, FileId file);

    /** close() of @p fd. */
    void close(Address pc, Fd fd, FileId file);

    /**
     * Sequential read of @p bytes from @p file starting at
     * @p offset, issued as chunked read() calls from call site
     * @p pc. @return the offset after the read.
     */
    std::uint64_t readFile(Address pc, Fd fd, FileId file,
                           std::uint64_t offset, std::uint32_t bytes,
                           std::uint32_t chunk = 8192);

    /** Sequential write, mirror of readFile(). */
    std::uint64_t writeFile(Address pc, Fd fd, FileId file,
                            std::uint64_t offset, std::uint32_t bytes,
                            std::uint32_t chunk = 8192);

    /** Advance the clock by exactly @p duration (no events). */
    void pause(TimeUs duration);

    /** Advance by a uniform pause in [lo, hi]. */
    void pauseBetween(TimeUs lo, TimeUs hi);

    /**
     * Human think time: log-normal with @p median_s seconds and
     * spread @p sigma, clamped into [min_s, max_s].
     * @return the drawn duration.
     */
    TimeUs think(double median_s, double sigma, double min_s,
                 double max_s);

    /** Fork a child process at now(); the child gets its own Actor
     * via the caller. */
    void fork(Pid child);

    /** Exit this process at now(). */
    void exit();

    /** Random stream of this actor (models draw decisions from it). */
    Rng &rng() { return rng_; }

    /** Pid this actor emits as. */
    Pid pid() const { return pid_; }

    /** Number of I/O events emitted so far. */
    std::uint64_t ioCount() const { return ioCount_; }

  private:
    trace::TraceBuilder &builder_;
    Rng rng_;
    Pid pid_;
    TimeUs now_;
    TimeUs intraGapMean_ = millisUs(40);
    std::uint64_t ioCount_ = 0;
};

} // namespace pcap::workload

#endif // PCAP_WORKLOAD_ACTOR_HPP
