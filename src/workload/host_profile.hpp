/**
 * @file
 * Parameterized per-host workload profiles for fleet simulation.
 *
 * The paper evaluates six desktop applications, each traced on one
 * machine. A fleet run simulates N independent hosts, each a
 * variation of those workloads: a per-host seed, a think-time scale
 * (the same access pattern, faster or slower human pacing) and an
 * application mix — all drawn deterministically from a single fleet
 * seed, so a fleet of any size is a pure function of its FleetConfig
 * and host index.
 *
 * The derivation is parity-critical: a pure single-app profile with
 * thinkTimeScale == 1 must generate byte-identical traces to
 * sim::generateTraces (the materialized path). generateTraces forks
 * per-execution RNGs *sequentially* from one app RNG — and Rng::fork
 * advances the parent — so HostWorkloadStream keeps one persistent
 * RNG per application and forks executions in increasing index
 * order, replaying exactly that sequence.
 */

#ifndef PCAP_WORKLOAD_HOST_PROFILE_HPP
#define PCAP_WORKLOAD_HOST_PROFILE_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "workload/app_model.hpp"

namespace pcap::workload {

/** One application's share of a host's execution mix. */
struct AppShare
{
    std::string app;
    double weight = 1.0;
};

/**
 * Everything that determines one host's workload. A profile is
 * self-contained: equal profiles stream equal traces regardless of
 * the fleet they were drawn from.
 */
struct HostProfile
{
    std::uint64_t host = 0; ///< index within the fleet
    std::uint64_t seed = 0; ///< per-host workload seed

    /** Multiplier applied to every event time (1.0 = paper pacing;
     * applied after generation, so 1.0 is bit-exact, not merely
     * close). */
    double thinkTimeScale = 1.0;

    std::vector<AppShare> appMix;

    /**
     * Number of executions to draw from the mix (weighted, from the
     * host's schedule RNG). 0 streams every mix application's full
     * Table 1 execution count in mix order — the parity mode, where
     * a single-app mix reproduces the materialized path exactly.
     */
    int executions = 0;

    /** Cap on per-app execution counts in full-run mode (0 = the
     * model's Table 1 count), mirroring
     * ExperimentConfig::maxExecutions. */
    int maxExecutionsPerApp = 0;
};

/** One entry of a host's execution schedule. */
struct PlannedExecution
{
    std::string app;
    int appExecution = 0; ///< per-app execution index
};

/**
 * The host's full execution schedule, in replay order. Deterministic
 * in the profile alone; per-app indices appear in increasing order
 * (the contract HostWorkloadStream's sequential forking relies on).
 */
std::vector<PlannedExecution> executionPlan(const HostProfile &profile);

/**
 * How a fleet of hosts is derived from one seed. Host profiles are
 * independent draws: profile i depends only on (config, i), never on
 * how many hosts exist, so growing a fleet extends it without
 * changing existing hosts.
 */
struct FleetConfig
{
    std::uint64_t fleetSeed = 42;
    std::uint64_t hosts = 1;

    /** Applications hosts draw their mixes from; empty means the six
     * Table 1 applications. */
    std::vector<std::string> apps;

    /** Most applications in one host's mix (clamped to the pool). */
    int maxAppsPerHost = 3;

    /**
     * Range of per-host execution counts, drawn uniformly.
     * executionsMax == 0 puts every host in full-run mode
     * (HostProfile::executions == 0).
     */
    int executionsMin = 4;
    int executionsMax = 12;

    /** Range of per-host think-time scales, drawn uniformly;
     * min == max pins the scale (1.0/1.0 = paper pacing). */
    double minThinkScale = 1.0;
    double maxThinkScale = 1.0;

    /** Forwarded to HostProfile::maxExecutionsPerApp. */
    int maxExecutionsPerApp = 0;
};

/** Derive host @p host of the fleet (see FleetConfig). */
HostProfile hostProfile(const FleetConfig &config, std::uint64_t host);

/**
 * Multiply every event time by @p scale (llround, monotone — the
 * trace stays time-sorted and structurally valid). scale == 1.0
 * returns the trace unchanged.
 */
trace::Trace scaleTraceTimes(const trace::Trace &trace, double scale);

/**
 * Streams one host's traces in schedule order, generate-on-demand:
 * only the trace being replayed exists at any time. The
 * generate-replay-discard loop of the fleet driver sits on top of
 * this.
 */
class HostWorkloadStream
{
  public:
    explicit HostWorkloadStream(HostProfile profile);

    /** The next planned trace, or nullopt when the schedule is
     * exhausted. Think-time scaling is already applied. */
    std::optional<trace::Trace> next();

    const HostProfile &profile() const { return profile_; }

    std::size_t planned() const { return plan_.size(); }

    std::size_t produced() const { return index_; }

  private:
    /** Per-app generator state: the model plus the app RNG the
     * execution forks replay through (see file comment). */
    struct AppStream
    {
        std::unique_ptr<AppModel> model;
        Rng rng;
        int nextFork = 0;
    };

    AppStream &streamOf(const std::string &app);

    HostProfile profile_;
    std::vector<PlannedExecution> plan_;
    std::map<std::string, AppStream> streams_;
    std::size_t index_ = 0;
};

} // namespace pcap::workload

#endif // PCAP_WORKLOAD_HOST_PROFILE_HPP
