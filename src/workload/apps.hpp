/**
 * @file
 * Factories for the six application models of Table 1. Each model
 * lives in its own translation unit under src/workload/apps/.
 */

#ifndef PCAP_WORKLOAD_APPS_HPP
#define PCAP_WORKLOAD_APPS_HPP

#include <memory>

#include "workload/app_model.hpp"

namespace pcap::workload {

/** Web browser: bursty page loads, think times while reading,
 * multimedia pages with delayed plugin loads (subpath aliasing). */
std::unique_ptr<AppModel> makeMozilla();

/** OpenOffice word processor: heavy startup, typing with autosaves,
 * dictionary loads, save-as aliasing. */
std::unique_ptr<AppModel> makeWriter();

/** OpenOffice presentation editor: heavy startup with graphic
 * filters, image inserts, periodic saves. */
std::unique_ptr<AppModel> makeImpress();

/** Editor for larger files: multi-file open loops (the paper's
 * motivating example), long edit periods, occasional save-as. */
std::unique_ptr<AppModel> makeXemacs();

/** Quick single-file editor: open, edit once, save, quit — no
 * repetition inside an execution. */
std::unique_ptr<AppModel> makeNedit();

/** Media player: buffer fill, periodic refills below breakeven,
 * user pauses, end-of-movie buffer drain. */
std::unique_ptr<AppModel> makeMplayer();

} // namespace pcap::workload

#endif // PCAP_WORKLOAD_APPS_HPP
