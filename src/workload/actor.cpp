#include "workload/actor.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace pcap::workload {

Actor::Actor(trace::TraceBuilder &builder, Rng rng, Pid pid,
             TimeUs start)
    : builder_(builder), rng_(std::move(rng)), pid_(pid), now_(start)
{
}

void
Actor::advanceTo(TimeUs t)
{
    if (t < now_)
        panic("Actor::advanceTo: clock would go backwards");
    now_ = t;
}

void
Actor::op(trace::EventType type, Address pc, Fd fd, FileId file,
          std::uint64_t offset, std::uint32_t size)
{
    builder_.io(now_, pid_, type, pc, fd, file, offset, size);
    ++ioCount_;
    now_ += std::max<TimeUs>(
        millisUs(1),
        static_cast<TimeUs>(rng_.exponential(
            static_cast<double>(intraGapMean_))));
}

void
Actor::open(Address pc, Fd fd, FileId file)
{
    op(trace::EventType::Open, pc, fd, file, 0, 0);
}

void
Actor::close(Address pc, Fd fd, FileId file)
{
    op(trace::EventType::Close, pc, fd, file, 0, 0);
}

std::uint64_t
Actor::readFile(Address pc, Fd fd, FileId file, std::uint64_t offset,
                std::uint32_t bytes, std::uint32_t chunk)
{
    if (chunk == 0)
        panic("Actor::readFile: zero chunk");
    std::uint32_t remaining = bytes;
    while (remaining > 0) {
        const std::uint32_t step = std::min(remaining, chunk);
        op(trace::EventType::Read, pc, fd, file, offset, step);
        offset += step;
        remaining -= step;
    }
    return offset;
}

std::uint64_t
Actor::writeFile(Address pc, Fd fd, FileId file, std::uint64_t offset,
                 std::uint32_t bytes, std::uint32_t chunk)
{
    if (chunk == 0)
        panic("Actor::writeFile: zero chunk");
    std::uint32_t remaining = bytes;
    while (remaining > 0) {
        const std::uint32_t step = std::min(remaining, chunk);
        op(trace::EventType::Write, pc, fd, file, offset, step);
        offset += step;
        remaining -= step;
    }
    return offset;
}

void
Actor::pause(TimeUs duration)
{
    if (duration < 0)
        panic("Actor::pause: negative duration");
    now_ += duration;
}

void
Actor::pauseBetween(TimeUs lo, TimeUs hi)
{
    pause(rng_.uniformInt(lo, hi));
}

TimeUs
Actor::think(double median_s, double sigma, double min_s,
             double max_s)
{
    const double seconds =
        std::clamp(rng_.logNormal(median_s, sigma), min_s, max_s);
    const TimeUs duration = secondsUs(seconds);
    pause(duration);
    return duration;
}

void
Actor::fork(Pid child)
{
    builder_.fork(now_, pid_, child);
}

void
Actor::exit()
{
    builder_.exit(now_, pid_);
}

} // namespace pcap::workload
