/**
 * @file
 * The trace record schema.
 *
 * The paper collected traces with a modified strace that recorded, for
 * every I/O operation: the application program counter that invoked
 * it, the access type, the time, the file descriptor and the file
 * location on disk, plus fork and exit times of the processes inside
 * each application (Section 6). TraceEvent carries exactly those
 * fields; DiskAccess is the corresponding record after the file-cache
 * filter, i.e. an operation that actually reaches the disk.
 */

#ifndef PCAP_TRACE_EVENT_HPP
#define PCAP_TRACE_EVENT_HPP

#include <cstdint>
#include <string>

#include "util/types.hpp"

namespace pcap::trace {

/** Kind of traced event. */
enum class EventType : std::uint8_t {
    Read,  ///< read() — may be satisfied by the file cache
    Write, ///< write() — dirties the cache, flushed later
    Open,  ///< open() — touches file metadata on disk
    Close, ///< close() — cache-only bookkeeping
    Fork,  ///< a new process joins the application
    Exit,  ///< a process leaves the application
};

/** Human-readable name of an event type ("read", "fork", ...). */
const char *eventTypeName(EventType type);

/** Parse an event-type name; returns false on unknown names. */
bool parseEventType(const std::string &name, EventType &out);

/** True for Read/Write/Open — the types that may touch the disk. */
bool isIoEvent(EventType type);

/**
 * One traced operation, as the modified strace would have logged it.
 *
 * For Fork events, @ref fd holds the pid of the child being created.
 * For Exit events the I/O fields are unused. Offsets and sizes are in
 * bytes from the start of the file.
 */
struct TraceEvent
{
    TimeUs time = 0;        ///< when the operation was issued
    Pid pid = 0;            ///< issuing process
    EventType type = EventType::Read;
    Address pc = 0;         ///< application call site of the I/O
    Fd fd = -1;             ///< file descriptor used
    FileId file = 0;        ///< file location on disk
    std::uint64_t offset = 0; ///< byte offset within the file
    std::uint32_t size = 0; ///< bytes transferred

    /** Events order by time, ties broken by pid then type. */
    bool operator<(const TraceEvent &other) const;
    bool operator==(const TraceEvent &other) const = default;
};

/**
 * An operation that misses the file cache (or a dirty write-back) and
 * therefore reaches the disk. This is the stream that defines idle
 * periods and that predictors observe.
 */
struct DiskAccess
{
    TimeUs time = 0;   ///< when the access arrives at the disk
    Pid pid = 0;       ///< process responsible for the access
    Address pc = 0;    ///< call site responsible (flush daemon PC for
                       ///< write-backs)
    Fd fd = -1;        ///< file descriptor of the triggering I/O
    FileId file = 0;   ///< file accessed
    bool isWrite = false; ///< write (or write-back) vs read
    std::uint32_t blocks = 1; ///< number of cache blocks transferred

    bool operator==(const DiskAccess &other) const = default;
};

} // namespace pcap::trace

#endif // PCAP_TRACE_EVENT_HPP
