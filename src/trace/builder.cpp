#include "trace/builder.hpp"

#include <string>

#include "util/logging.hpp"

namespace pcap::trace {

TraceBuilder::TraceBuilder(std::string app, int execution,
                           Pid initial_pid)
    : trace_(std::move(app), execution)
{
    live_.insert(initial_pid);
    everSeen_.insert(initial_pid);
}

void
TraceBuilder::requireLive(Pid pid, const char *operation) const
{
    if (finished_)
        panic("TraceBuilder: used after finish()");
    if (!live_.count(pid)) {
        panic(std::string("TraceBuilder: ") + operation +
              " from non-live pid " + std::to_string(pid));
    }
}

void
TraceBuilder::io(TimeUs time, Pid pid, EventType type, Address pc,
                 Fd fd, FileId file, std::uint64_t offset,
                 std::uint32_t size)
{
    requireLive(pid, "io");
    if (type == EventType::Fork || type == EventType::Exit)
        panic("TraceBuilder::io: use fork()/exit() for lifecycle");
    TraceEvent event;
    event.time = time;
    event.pid = pid;
    event.type = type;
    event.pc = pc;
    event.fd = fd;
    event.file = file;
    event.offset = offset;
    event.size = size;
    trace_.append(event);
}

void
TraceBuilder::fork(TimeUs time, Pid parent, Pid child)
{
    requireLive(parent, "fork");
    if (everSeen_.count(child)) {
        panic("TraceBuilder::fork: pid " + std::to_string(child) +
              " already used");
    }
    TraceEvent event;
    event.time = time;
    event.pid = parent;
    event.type = EventType::Fork;
    event.fd = static_cast<Fd>(child);
    trace_.append(event);
    live_.insert(child);
    everSeen_.insert(child);
}

void
TraceBuilder::exit(TimeUs time, Pid pid)
{
    requireLive(pid, "exit");
    TraceEvent event;
    event.time = time;
    event.pid = pid;
    event.type = EventType::Exit;
    trace_.append(event);
    live_.erase(pid);
}

Trace
TraceBuilder::finish(TimeUs time)
{
    if (finished_)
        panic("TraceBuilder: finish() called twice");
    // Exit remaining processes in pid order for determinism.
    while (!live_.empty())
        exit(time, *live_.begin());
    finished_ = true;
    trace_.sortByTime();
    return std::move(trace_);
}

} // namespace pcap::trace
