/**
 * @file
 * Convenience builder that assembles structurally valid traces:
 * it tracks live processes so forks/exits stay consistent and events
 * can be appended from interleaved per-process generators.
 */

#ifndef PCAP_TRACE_BUILDER_HPP
#define PCAP_TRACE_BUILDER_HPP

#include <set>

#include "trace/trace.hpp"

namespace pcap::trace {

/**
 * Builds a Trace while enforcing process-lifecycle invariants. All
 * methods panic on misuse (events from dead pids, double forks), so a
 * workload-model bug surfaces at generation time instead of as a
 * mysteriously invalid trace downstream.
 */
class TraceBuilder
{
  public:
    /**
     * @param app Application name.
     * @param execution Execution index.
     * @param initial_pid First process of the execution (live from
     *        the start).
     */
    TraceBuilder(std::string app, int execution, Pid initial_pid);

    /** Record an I/O event (read/write/open/close). */
    void io(TimeUs time, Pid pid, EventType type, Address pc, Fd fd,
            FileId file, std::uint64_t offset, std::uint32_t size);

    /** Record that @p parent forks @p child at @p time. */
    void fork(TimeUs time, Pid parent, Pid child);

    /** Record that @p pid exits at @p time. */
    void exit(TimeUs time, Pid pid);

    /** True when @p pid is currently live. */
    bool isLive(Pid pid) const { return live_.count(pid) > 0; }

    /** Pids currently live. */
    const std::set<Pid> &livePids() const { return live_; }

    /**
     * Exit every still-live process at @p time, sort the trace by
     * time and return it. The builder must not be used afterwards.
     */
    Trace finish(TimeUs time);

  private:
    void requireLive(Pid pid, const char *operation) const;

    Trace trace_;
    std::set<Pid> live_;
    std::set<Pid> everSeen_;
    bool finished_ = false;
};

} // namespace pcap::trace

#endif // PCAP_TRACE_BUILDER_HPP
