#include "trace/event.hpp"

#include <tuple>

namespace pcap::trace {

const char *
eventTypeName(EventType type)
{
    switch (type) {
      case EventType::Read: return "read";
      case EventType::Write: return "write";
      case EventType::Open: return "open";
      case EventType::Close: return "close";
      case EventType::Fork: return "fork";
      case EventType::Exit: return "exit";
    }
    return "unknown";
}

bool
parseEventType(const std::string &name, EventType &out)
{
    if (name == "read") {
        out = EventType::Read;
    } else if (name == "write") {
        out = EventType::Write;
    } else if (name == "open") {
        out = EventType::Open;
    } else if (name == "close") {
        out = EventType::Close;
    } else if (name == "fork") {
        out = EventType::Fork;
    } else if (name == "exit") {
        out = EventType::Exit;
    } else {
        return false;
    }
    return true;
}

bool
isIoEvent(EventType type)
{
    return type == EventType::Read || type == EventType::Write ||
           type == EventType::Open;
}

bool
TraceEvent::operator<(const TraceEvent &other) const
{
    return std::tie(time, pid, type) <
           std::tie(other.time, other.pid, other.type);
}

} // namespace pcap::trace
