#include "trace/strace_parse.hpp"

#include <cctype>
#include <cstdlib>
#include <istream>
#include <sstream>

namespace pcap::trace {

namespace {

/** Trim leading/trailing whitespace. */
std::string
trimmed(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

/** Parse "123.456789" into microseconds. */
bool
parseTimestamp(const std::string &token, TimeUs &out)
{
    const std::size_t dot = token.find('.');
    char *tail = nullptr;
    const long long secs =
        std::strtoll(token.c_str(), &tail, 10);
    if (tail == token.c_str())
        return false;
    long long micros = 0;
    if (dot != std::string::npos) {
        std::string frac = token.substr(dot + 1);
        if (frac.empty() || frac.size() > 6)
            return false;
        while (frac.size() < 6)
            frac += '0';
        char *frac_tail = nullptr;
        micros = std::strtoll(frac.c_str(), &frac_tail, 10);
        if (*frac_tail != '\0')
            return false;
    }
    out = static_cast<TimeUs>(secs) * kUsPerSec + micros;
    return true;
}

/** Extract `[key=value]` annotations appearing after the result. */
bool
annotation(const std::string &line, const std::string &key,
           std::uint64_t &out)
{
    const std::string needle = key + "=";
    std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    const char *start = line.c_str() + pos;
    char *tail = nullptr;
    out = std::strtoull(start, &tail, 0); // handles 0x.. and decimal
    return tail != start;
}

/** Map a syscall name to an event type; false for unknown calls. */
bool
classify(const std::string &name, EventType &out)
{
    if (name == "read" || name == "pread" || name == "pread64") {
        out = EventType::Read;
    } else if (name == "write" || name == "pwrite" ||
               name == "pwrite64") {
        out = EventType::Write;
    } else if (name == "open" || name == "openat" ||
               name == "creat") {
        out = EventType::Open;
    } else if (name == "close") {
        out = EventType::Close;
    } else if (name == "fork" || name == "vfork" ||
               name == "clone") {
        out = EventType::Fork;
    } else if (name == "exit" || name == "exit_group" ||
               name == "_exit") {
        out = EventType::Exit;
    } else {
        return false;
    }
    return true;
}

} // namespace

StraceParseResult
parseStrace(std::istream &is, const std::string &app, int execution,
            std::string &error)
{
    error.clear();
    StraceParseResult result;
    result.trace = Trace(app, execution);

    std::string line;
    std::size_t line_number = 0;
    while (std::getline(is, line)) {
        ++line_number;
        const std::string text = trimmed(line);
        if (text.empty() || text[0] == '#')
            continue;

        std::istringstream fields(text);
        std::string pid_token, time_token;
        if (!(fields >> pid_token >> time_token)) {
            error = "line " + std::to_string(line_number) +
                    ": expected '<pid> <time> <syscall>(...'";
            return result;
        }

        TraceEvent event;
        char *tail = nullptr;
        event.pid = static_cast<Pid>(
            std::strtol(pid_token.c_str(), &tail, 10));
        if (*tail != '\0') {
            error = "line " + std::to_string(line_number) +
                    ": bad pid '" + pid_token + "'";
            return result;
        }
        if (!parseTimestamp(time_token, event.time)) {
            error = "line " + std::to_string(line_number) +
                    ": bad timestamp '" + time_token + "'";
            return result;
        }

        // The rest of the line: "name(args) = ret [annotations]".
        std::string rest;
        std::getline(fields, rest);
        rest = trimmed(rest);
        const std::size_t paren = rest.find('(');
        if (paren == std::string::npos) {
            error = "line " + std::to_string(line_number) +
                    ": expected a syscall with '('";
            return result;
        }
        const std::string name = rest.substr(0, paren);
        if (!classify(name, event.type)) {
            ++result.linesSkipped;
            continue; // e.g. gettimeofday, mmap, ...
        }

        // First argument of the I/O calls is the fd.
        if (event.type == EventType::Read ||
            event.type == EventType::Write ||
            event.type == EventType::Close) {
            event.fd = static_cast<Fd>(
                std::strtol(rest.c_str() + paren + 1, nullptr, 10));
        }

        // Return value after "= ".
        long long ret = 0;
        const std::size_t equals = rest.rfind("= ");
        if (equals != std::string::npos) {
            ret = std::strtoll(rest.c_str() + equals + 2, nullptr,
                               10);
        }
        switch (event.type) {
          case EventType::Read:
          case EventType::Write:
            if (ret > 0)
                event.size = static_cast<std::uint32_t>(ret);
            break;
          case EventType::Open:
            event.fd = static_cast<Fd>(ret); // fd returned by open
            break;
          case EventType::Fork:
            event.fd = static_cast<Fd>(ret); // the child pid
            if (ret <= 0) {
                result.warnings.push_back(
                    "line " + std::to_string(line_number) +
                    ": fork without a child pid, skipped");
                ++result.linesSkipped;
                continue;
            }
            break;
          default:
            break;
        }

        // Optional annotations from the modified tracer.
        std::uint64_t value = 0;
        if (annotation(rest, "pc", value))
            event.pc = static_cast<Address>(value);
        else if (isIoEvent(event.type))
            result.warnings.push_back(
                "line " + std::to_string(line_number) +
                ": I/O without a pc annotation");
        if (annotation(rest, "file", value))
            event.file = static_cast<FileId>(value);
        if (annotation(rest, "off", value))
            event.offset = value;

        result.trace.append(event);
        ++result.linesParsed;
    }

    result.trace.sortByTime();
    return result;
}

StraceParseResult
parseStraceText(const std::string &text, const std::string &app,
                int execution, std::string &error)
{
    std::istringstream is(text);
    return parseStrace(is, app, execution, error);
}

} // namespace pcap::trace
