/**
 * @file
 * Parser for modified-strace logs.
 *
 * The paper collected its traces "by modifying the strace Linux
 * utility" so that every I/O line also carries the application
 * program counter (Section 6). This parser accepts that style of
 * log, one event per line:
 *
 *     <pid> <seconds>.<micros> read(<fd>, ...) = <ret> [pc=0x...] [file=<id>] [off=<bytes>]
 *     <pid> <seconds>.<micros> fork() = <child>
 *     <pid> <seconds>.<micros> exit(0) = ?
 *
 * so real traces (or logs from an actual strace wrapper) can be fed
 * to the same simulator as the synthetic workload. Unknown syscalls
 * are skipped, annotations are optional, and malformed lines are
 * reported with their line number.
 */

#ifndef PCAP_TRACE_STRACE_PARSE_HPP
#define PCAP_TRACE_STRACE_PARSE_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace pcap::trace {

/** Outcome of parsing one strace-style log. */
struct StraceParseResult
{
    Trace trace;                       ///< time-sorted events
    std::size_t linesParsed = 0;       ///< events accepted
    std::size_t linesSkipped = 0;      ///< unknown-syscall lines
    std::vector<std::string> warnings; ///< per-line soft problems
};

/**
 * Parse a modified-strace log into a trace named @p app (execution
 * @p execution).
 *
 * Recognized syscalls: open/openat (Open), read/pread (Read),
 * write/pwrite (Write), close (Close), fork/clone/vfork (Fork, the
 * child pid is the return value), exit/exit_group (Exit). The
 * bracket annotations `[pc=..]` (hex or decimal), `[file=..]` and
 * `[off=..]` may appear in any order after the `= ret` part; read
 * and write take their byte count from the return value.
 *
 * @param error Receives a description of the first hard parse error
 *        (empty on success). Soft problems (skipped lines) go into
 *        the result's warnings.
 */
StraceParseResult parseStrace(std::istream &is,
                              const std::string &app, int execution,
                              std::string &error);

/** Convenience: parse a log held in a string. */
StraceParseResult parseStraceText(const std::string &text,
                                  const std::string &app,
                                  int execution, std::string &error);

} // namespace pcap::trace

#endif // PCAP_TRACE_STRACE_PARSE_HPP
