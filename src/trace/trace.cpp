#include "trace/trace.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace pcap::trace {

void
Trace::sortByTime()
{
    std::stable_sort(events_.begin(), events_.end());
}

std::size_t
Trace::ioCount() const
{
    std::size_t count = 0;
    for (const auto &event : events_) {
        if (isIoEvent(event.type))
            ++count;
    }
    return count;
}

std::vector<Pid>
Trace::pids() const
{
    std::set<Pid> seen;
    for (const auto &event : events_) {
        seen.insert(event.pid);
        if (event.type == EventType::Fork)
            seen.insert(static_cast<Pid>(event.fd));
    }
    return {seen.begin(), seen.end()};
}

std::vector<TraceEvent>
Trace::eventsOf(Pid pid) const
{
    std::vector<TraceEvent> result;
    for (const auto &event : events_) {
        if (event.pid == pid)
            result.push_back(event);
    }
    return result;
}

TimeUs
Trace::startTime() const
{
    return events_.empty() ? 0 : events_.front().time;
}

TimeUs
Trace::endTime() const
{
    return events_.empty() ? 0 : events_.back().time;
}

std::string
Trace::validate() const
{
    std::ostringstream error;

    TimeUs last_time = 0;
    bool first = true;
    // The initial process of the execution is the pid of the first
    // event; every other pid must be introduced by a Fork.
    std::set<Pid> live;
    std::set<Pid> exited;

    for (std::size_t i = 0; i < events_.size(); ++i) {
        const TraceEvent &event = events_[i];

        if (!first && event.time < last_time) {
            error << "event " << i << " out of order: " << event.time
                  << " < " << last_time;
            return error.str();
        }
        last_time = event.time;

        if (first) {
            live.insert(event.pid);
            first = false;
        }

        if (!live.count(event.pid)) {
            if (exited.count(event.pid)) {
                error << "event " << i << ": pid " << event.pid
                      << " acts after exit";
            } else {
                error << "event " << i << ": pid " << event.pid
                      << " acts before being forked";
            }
            return error.str();
        }

        switch (event.type) {
          case EventType::Fork: {
            const Pid child = static_cast<Pid>(event.fd);
            if (live.count(child) || exited.count(child)) {
                error << "event " << i << ": fork of existing pid "
                      << child;
                return error.str();
            }
            live.insert(child);
            break;
          }
          case EventType::Exit:
            live.erase(event.pid);
            exited.insert(event.pid);
            break;
          default:
            break;
        }
    }

    if (!events_.empty() && !live.empty()) {
        error << live.size() << " process(es) never exit";
        return error.str();
    }

    return {};
}

} // namespace pcap::trace
