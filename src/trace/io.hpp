/**
 * @file
 * Trace serialization: a human-readable text format (one event per
 * line, like the modified strace output the paper worked from) and a
 * compact binary format for large traces.
 */

#ifndef PCAP_TRACE_IO_HPP
#define PCAP_TRACE_IO_HPP

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace pcap::trace {

/**
 * Write @p trace as text: a header line
 * `# pcap-trace v1 app=<name> execution=<n>` followed by one
 * tab-separated line per event:
 * `time_us pid type pc fd file offset size`.
 */
void writeText(const Trace &trace, std::ostream &os);

/**
 * Parse a text trace produced by writeText().
 * @param is Stream to read.
 * @param out Receives the parsed trace.
 * @return empty string on success, else a parse-error description
 *         naming the offending line.
 */
std::string readText(std::istream &is, Trace &out);

/**
 * Write @p trace in the binary format: magic "PCTB", version u32,
 * app-name length + bytes, execution u32, event count u64, then a
 * fixed-width little-endian record per event.
 */
void writeBinary(const Trace &trace, std::ostream &os);

/**
 * Parse a binary trace produced by writeBinary().
 * @return empty string on success, else an error description.
 */
std::string readBinary(std::istream &is, Trace &out);

/** Save a trace to a file; picks text/binary from the extension
 * (".trace" text, ".tracebin" binary). Returns error or empty. */
std::string saveTraceFile(const Trace &trace, const std::string &path);

/** Load a trace from a file written by saveTraceFile(). */
std::string loadTraceFile(const std::string &path, Trace &out);

} // namespace pcap::trace

#endif // PCAP_TRACE_IO_HPP
