/**
 * @file
 * Trace serialization: a human-readable text format (one event per
 * line, like the modified strace output the paper worked from) and a
 * compact binary format for large traces.
 */

#ifndef PCAP_TRACE_IO_HPP
#define PCAP_TRACE_IO_HPP

#include <iosfwd>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "trace/event.hpp"
#include "trace/trace.hpp"

namespace pcap::trace {

/**
 * Little-endian fixed-width scalar I/O, shared by every binary
 * format in the repository (trace files, ExecutionInput workload
 * caches). Byte order is explicit so cache files are portable
 * across hosts.
 */
template <typename T>
void
putLe(std::ostream &os, T value)
{
    unsigned char bytes[sizeof(T)];
    auto u = static_cast<std::uint64_t>(value);
    for (std::size_t i = 0; i < sizeof(T); ++i)
        bytes[i] = static_cast<unsigned char>((u >> (8 * i)) & 0xff);
    os.write(reinterpret_cast<const char *>(bytes), sizeof(T));
}

/** @return false when the stream ran out of bytes. */
template <typename T>
bool
getLe(std::istream &is, T &value)
{
    unsigned char bytes[sizeof(T)];
    if (!is.read(reinterpret_cast<char *>(bytes), sizeof(T)))
        return false;
    std::uint64_t u = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
        u |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
    value = static_cast<T>(u);
    return true;
}

/** Write a length-prefixed string (u32 length + raw bytes). */
void putString(std::ostream &os, const std::string &text);

/** Read a putString() string; false on truncation or absurd size. */
bool getString(std::istream &is, std::string &out);

/**
 * Write a post-cache disk access stream as fixed-width LE records
 * (u64 count, then time/pid/pc/fd/file/isWrite/blocks per record).
 */
void writeDiskAccesses(const std::vector<DiskAccess> &accesses,
                       std::ostream &os);

/** Read a writeDiskAccesses() stream. @return error or empty. */
std::string readDiskAccesses(std::istream &is,
                             std::vector<DiskAccess> &out);

/**
 * Write @p trace as text: a header line
 * `# pcap-trace v1 app=<name> execution=<n>` followed by one
 * tab-separated line per event:
 * `time_us pid type pc fd file offset size`.
 */
void writeText(const Trace &trace, std::ostream &os);

/**
 * Parse a text trace produced by writeText().
 * @param is Stream to read.
 * @param out Receives the parsed trace.
 * @return empty string on success, else a parse-error description
 *         naming the offending line.
 */
std::string readText(std::istream &is, Trace &out);

/**
 * Write @p trace in the binary format: magic "PCTB", version u32,
 * app-name length + bytes, execution u32, event count u64, then a
 * fixed-width little-endian record per event.
 */
void writeBinary(const Trace &trace, std::ostream &os);

/**
 * Parse a binary trace produced by writeBinary().
 * @return empty string on success, else an error description.
 */
std::string readBinary(std::istream &is, Trace &out);

/** Save a trace to a file; picks text/binary from the extension
 * (".trace" text, ".tracebin" binary). Returns error or empty. */
std::string saveTraceFile(const Trace &trace, const std::string &path);

/** Load a trace from a file written by saveTraceFile(). */
std::string loadTraceFile(const std::string &path, Trace &out);

} // namespace pcap::trace

#endif // PCAP_TRACE_IO_HPP
