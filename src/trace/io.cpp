#include "trace/io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace pcap::trace {

namespace {

constexpr char kTextMagic[] = "# pcap-trace v1";
constexpr char kBinaryMagic[4] = {'P', 'C', 'T', 'B'};
constexpr std::uint32_t kBinaryVersion = 1;

template <typename T>
void
putLe(std::ostream &os, T value)
{
    unsigned char bytes[sizeof(T)];
    auto u = static_cast<std::uint64_t>(value);
    for (std::size_t i = 0; i < sizeof(T); ++i)
        bytes[i] = static_cast<unsigned char>((u >> (8 * i)) & 0xff);
    os.write(reinterpret_cast<const char *>(bytes), sizeof(T));
}

template <typename T>
bool
getLe(std::istream &is, T &value)
{
    unsigned char bytes[sizeof(T)];
    if (!is.read(reinterpret_cast<char *>(bytes), sizeof(T)))
        return false;
    std::uint64_t u = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
        u |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
    value = static_cast<T>(u);
    return true;
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

} // namespace

void
writeText(const Trace &trace, std::ostream &os)
{
    os << kTextMagic << " app=" << trace.app()
       << " execution=" << trace.execution() << '\n';
    for (const auto &event : trace.events()) {
        os << event.time << '\t' << event.pid << '\t'
           << eventTypeName(event.type) << '\t' << event.pc << '\t'
           << event.fd << '\t' << event.file << '\t' << event.offset
           << '\t' << event.size << '\n';
    }
}

std::string
readText(std::istream &is, Trace &out)
{
    std::string line;
    if (!std::getline(is, line))
        return "empty input";
    if (line.rfind(kTextMagic, 0) != 0)
        return "bad header: " + line;

    std::string app = "unknown";
    int execution = 0;
    {
        std::istringstream header(line.substr(std::strlen(kTextMagic)));
        std::string field;
        while (header >> field) {
            if (field.rfind("app=", 0) == 0)
                app = field.substr(4);
            else if (field.rfind("execution=", 0) == 0)
                execution = std::stoi(field.substr(10));
        }
    }
    out = Trace(app, execution);

    std::size_t line_number = 1;
    while (std::getline(is, line)) {
        ++line_number;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        TraceEvent event;
        std::string type_name;
        if (!(fields >> event.time >> event.pid >> type_name >>
              event.pc >> event.fd >> event.file >> event.offset >>
              event.size)) {
            return "line " + std::to_string(line_number) +
                   ": malformed event";
        }
        if (!parseEventType(type_name, event.type)) {
            return "line " + std::to_string(line_number) +
                   ": unknown event type '" + type_name + "'";
        }
        out.append(event);
    }
    return {};
}

void
writeBinary(const Trace &trace, std::ostream &os)
{
    os.write(kBinaryMagic, sizeof(kBinaryMagic));
    putLe<std::uint32_t>(os, kBinaryVersion);
    putLe<std::uint32_t>(os,
                         static_cast<std::uint32_t>(trace.app().size()));
    os.write(trace.app().data(),
             static_cast<std::streamsize>(trace.app().size()));
    putLe<std::uint32_t>(os,
                         static_cast<std::uint32_t>(trace.execution()));
    putLe<std::uint64_t>(os, trace.size());
    for (const auto &event : trace.events()) {
        putLe<std::int64_t>(os, event.time);
        putLe<std::int32_t>(os, event.pid);
        putLe<std::uint8_t>(os, static_cast<std::uint8_t>(event.type));
        putLe<std::uint32_t>(os, event.pc);
        putLe<std::int32_t>(os, event.fd);
        putLe<std::uint32_t>(os, event.file);
        putLe<std::uint64_t>(os, event.offset);
        putLe<std::uint32_t>(os, event.size);
    }
}

std::string
readBinary(std::istream &is, Trace &out)
{
    char magic[4];
    if (!is.read(magic, sizeof(magic)) ||
        std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
        return "bad magic";
    }
    std::uint32_t version = 0;
    if (!getLe(is, version) || version != kBinaryVersion)
        return "unsupported version";

    std::uint32_t name_length = 0;
    if (!getLe(is, name_length) || name_length > 4096)
        return "bad app-name length";
    std::string app(name_length, '\0');
    if (!is.read(app.data(), name_length))
        return "truncated app name";

    std::uint32_t execution = 0;
    std::uint64_t count = 0;
    if (!getLe(is, execution) || !getLe(is, count))
        return "truncated header";

    out = Trace(app, static_cast<int>(execution));
    for (std::uint64_t i = 0; i < count; ++i) {
        TraceEvent event;
        std::uint8_t type = 0;
        if (!getLe(is, event.time) || !getLe(is, event.pid) ||
            !getLe(is, type) || !getLe(is, event.pc) ||
            !getLe(is, event.fd) || !getLe(is, event.file) ||
            !getLe(is, event.offset) || !getLe(is, event.size)) {
            return "truncated at event " + std::to_string(i);
        }
        if (type > static_cast<std::uint8_t>(EventType::Exit))
            return "bad event type at event " + std::to_string(i);
        event.type = static_cast<EventType>(type);
        out.append(event);
    }
    return {};
}

std::string
saveTraceFile(const Trace &trace, const std::string &path)
{
    const bool binary = endsWith(path, ".tracebin");
    std::ofstream os(path, binary ? std::ios::binary : std::ios::out);
    if (!os)
        return "cannot open " + path + " for writing";
    if (binary)
        writeBinary(trace, os);
    else
        writeText(trace, os);
    return os ? std::string{} : "write error on " + path;
}

std::string
loadTraceFile(const std::string &path, Trace &out)
{
    const bool binary = endsWith(path, ".tracebin");
    std::ifstream is(path, binary ? std::ios::binary : std::ios::in);
    if (!is)
        return "cannot open " + path;
    return binary ? readBinary(is, out) : readText(is, out);
}

} // namespace pcap::trace
