#include "trace/io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace pcap::trace {

namespace {

constexpr char kTextMagic[] = "# pcap-trace v1";
constexpr char kBinaryMagic[4] = {'P', 'C', 'T', 'B'};
constexpr std::uint32_t kBinaryVersion = 1;

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

} // namespace

void
putString(std::ostream &os, const std::string &text)
{
    putLe<std::uint32_t>(os,
                         static_cast<std::uint32_t>(text.size()));
    os.write(text.data(),
             static_cast<std::streamsize>(text.size()));
}

bool
getString(std::istream &is, std::string &out)
{
    std::uint32_t length = 0;
    if (!getLe(is, length) || length > (1u << 20))
        return false;
    out.assign(length, '\0');
    return length == 0 ||
           static_cast<bool>(is.read(out.data(), length));
}

namespace {

/** On-wire size of one DiskAccess record (fixed LE layout). */
constexpr std::size_t kAccessRecordBytes = 8 + 4 + 4 + 4 + 4 + 1 + 4;

template <typename T>
void
packLe(unsigned char *&p, T value)
{
    auto u = static_cast<std::uint64_t>(value);
    for (std::size_t i = 0; i < sizeof(T); ++i)
        *p++ = static_cast<unsigned char>((u >> (8 * i)) & 0xff);
}

template <typename T>
void
unpackLe(const unsigned char *&p, T &value)
{
    std::uint64_t u = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
        u |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    p += sizeof(T);
    value = static_cast<T>(u);
}

} // namespace

void
writeDiskAccesses(const std::vector<DiskAccess> &accesses,
                  std::ostream &os)
{
    putLe<std::uint64_t>(os, accesses.size());
    // Pack all records into one buffer and write it in a single
    // call: a workload's access stream runs to hundreds of
    // thousands of records, and per-field stream writes dominate
    // cache store/load time otherwise.
    std::vector<unsigned char> buffer(accesses.size() *
                                      kAccessRecordBytes);
    unsigned char *p = buffer.data();
    for (const auto &access : accesses) {
        packLe<std::int64_t>(p, access.time);
        packLe<std::int32_t>(p, access.pid);
        packLe<std::uint32_t>(p, access.pc);
        packLe<std::int32_t>(p, access.fd);
        packLe<std::uint32_t>(p, access.file);
        packLe<std::uint8_t>(p, access.isWrite ? 1 : 0);
        packLe<std::uint32_t>(p, access.blocks);
    }
    os.write(reinterpret_cast<const char *>(buffer.data()),
             static_cast<std::streamsize>(buffer.size()));
}

std::string
readDiskAccesses(std::istream &is, std::vector<DiskAccess> &out)
{
    std::uint64_t count = 0;
    if (!getLe(is, count) || count > (1u << 26))
        return "bad access count";
    std::vector<unsigned char> buffer(count * kAccessRecordBytes);
    if (!is.read(reinterpret_cast<char *>(buffer.data()),
                 static_cast<std::streamsize>(buffer.size())))
        return "truncated access records";
    out.clear();
    out.resize(count);
    const unsigned char *p = buffer.data();
    for (std::uint64_t i = 0; i < count; ++i) {
        DiskAccess &access = out[i];
        std::uint8_t is_write = 0;
        unpackLe<std::int64_t>(p, access.time);
        unpackLe<std::int32_t>(p, access.pid);
        unpackLe<std::uint32_t>(p, access.pc);
        unpackLe<std::int32_t>(p, access.fd);
        unpackLe<std::uint32_t>(p, access.file);
        unpackLe<std::uint8_t>(p, is_write);
        unpackLe<std::uint32_t>(p, access.blocks);
        if (is_write > 1)
            return "bad isWrite flag at access " + std::to_string(i);
        access.isWrite = is_write != 0;
    }
    return {};
}

void
writeText(const Trace &trace, std::ostream &os)
{
    os << kTextMagic << " app=" << trace.app()
       << " execution=" << trace.execution() << '\n';
    for (const auto &event : trace.events()) {
        os << event.time << '\t' << event.pid << '\t'
           << eventTypeName(event.type) << '\t' << event.pc << '\t'
           << event.fd << '\t' << event.file << '\t' << event.offset
           << '\t' << event.size << '\n';
    }
}

std::string
readText(std::istream &is, Trace &out)
{
    std::string line;
    if (!std::getline(is, line))
        return "empty input";
    if (line.rfind(kTextMagic, 0) != 0)
        return "bad header: " + line;

    std::string app = "unknown";
    int execution = 0;
    {
        std::istringstream header(line.substr(std::strlen(kTextMagic)));
        std::string field;
        while (header >> field) {
            if (field.rfind("app=", 0) == 0)
                app = field.substr(4);
            else if (field.rfind("execution=", 0) == 0)
                execution = std::stoi(field.substr(10));
        }
    }
    out = Trace(app, execution);

    std::size_t line_number = 1;
    while (std::getline(is, line)) {
        ++line_number;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        TraceEvent event;
        std::string type_name;
        if (!(fields >> event.time >> event.pid >> type_name >>
              event.pc >> event.fd >> event.file >> event.offset >>
              event.size)) {
            return "line " + std::to_string(line_number) +
                   ": malformed event";
        }
        if (!parseEventType(type_name, event.type)) {
            return "line " + std::to_string(line_number) +
                   ": unknown event type '" + type_name + "'";
        }
        out.append(event);
    }
    return {};
}

void
writeBinary(const Trace &trace, std::ostream &os)
{
    os.write(kBinaryMagic, sizeof(kBinaryMagic));
    putLe<std::uint32_t>(os, kBinaryVersion);
    putLe<std::uint32_t>(os,
                         static_cast<std::uint32_t>(trace.app().size()));
    os.write(trace.app().data(),
             static_cast<std::streamsize>(trace.app().size()));
    putLe<std::uint32_t>(os,
                         static_cast<std::uint32_t>(trace.execution()));
    putLe<std::uint64_t>(os, trace.size());
    for (const auto &event : trace.events()) {
        putLe<std::int64_t>(os, event.time);
        putLe<std::int32_t>(os, event.pid);
        putLe<std::uint8_t>(os, static_cast<std::uint8_t>(event.type));
        putLe<std::uint32_t>(os, event.pc);
        putLe<std::int32_t>(os, event.fd);
        putLe<std::uint32_t>(os, event.file);
        putLe<std::uint64_t>(os, event.offset);
        putLe<std::uint32_t>(os, event.size);
    }
}

std::string
readBinary(std::istream &is, Trace &out)
{
    char magic[4];
    if (!is.read(magic, sizeof(magic)) ||
        std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
        return "bad magic";
    }
    std::uint32_t version = 0;
    if (!getLe(is, version) || version != kBinaryVersion)
        return "unsupported version";

    std::uint32_t name_length = 0;
    if (!getLe(is, name_length) || name_length > 4096)
        return "bad app-name length";
    std::string app(name_length, '\0');
    if (!is.read(app.data(), name_length))
        return "truncated app name";

    std::uint32_t execution = 0;
    std::uint64_t count = 0;
    if (!getLe(is, execution) || !getLe(is, count))
        return "truncated header";

    out = Trace(app, static_cast<int>(execution));
    for (std::uint64_t i = 0; i < count; ++i) {
        TraceEvent event;
        std::uint8_t type = 0;
        if (!getLe(is, event.time) || !getLe(is, event.pid) ||
            !getLe(is, type) || !getLe(is, event.pc) ||
            !getLe(is, event.fd) || !getLe(is, event.file) ||
            !getLe(is, event.offset) || !getLe(is, event.size)) {
            return "truncated at event " + std::to_string(i);
        }
        if (type > static_cast<std::uint8_t>(EventType::Exit))
            return "bad event type at event " + std::to_string(i);
        event.type = static_cast<EventType>(type);
        out.append(event);
    }
    return {};
}

std::string
saveTraceFile(const Trace &trace, const std::string &path)
{
    const bool binary = endsWith(path, ".tracebin");
    std::ofstream os(path, binary ? std::ios::binary : std::ios::out);
    if (!os)
        return "cannot open " + path + " for writing";
    if (binary)
        writeBinary(trace, os);
    else
        writeText(trace, os);
    return os ? std::string{} : "write error on " + path;
}

std::string
loadTraceFile(const std::string &path, Trace &out)
{
    const bool binary = endsWith(path, ".tracebin");
    std::ifstream is(path, binary ? std::ios::binary : std::ios::in);
    if (!is)
        return "cannot open " + path;
    return binary ? readBinary(is, out) : readText(is, out);
}

} // namespace pcap::trace
