/**
 * @file
 * Trace container: all the events of one execution of one
 * application, plus metadata and integrity checks.
 */

#ifndef PCAP_TRACE_TRACE_HPP
#define PCAP_TRACE_TRACE_HPP

#include <string>
#include <vector>

#include "trace/event.hpp"
#include "util/types.hpp"

namespace pcap::trace {

/**
 * The events of a single execution of an application, time-sorted.
 *
 * The paper traced each application separately, producing an
 * independent trace per application; each application was executed
 * many times (Table 1), so a full workload is a vector of Trace
 * objects per application.
 */
class Trace
{
  public:
    Trace() = default;

    /** @param app Application name. @param execution Execution index. */
    Trace(std::string app, int execution)
        : app_(std::move(app)), execution_(execution)
    {}

    /** Application this trace belongs to. */
    const std::string &app() const { return app_; }

    /** Which execution of the application this trace records. */
    int execution() const { return execution_; }

    /** Append an event. Events may be appended out of order; call
     * sortByTime() once after building. */
    void append(const TraceEvent &event) { events_.push_back(event); }

    /** Stable-sort events by (time, pid, type). */
    void sortByTime();

    /** All events, time-sorted if sortByTime() was called. */
    const std::vector<TraceEvent> &events() const { return events_; }

    /** Number of events of any type. */
    std::size_t size() const { return events_.size(); }

    /** True when no events have been recorded. */
    bool empty() const { return events_.empty(); }

    /** Number of I/O events (read/write/open). */
    std::size_t ioCount() const;

    /** Distinct pids that issued any event. */
    std::vector<Pid> pids() const;

    /** Events belonging to one pid, preserving order. */
    std::vector<TraceEvent> eventsOf(Pid pid) const;

    /** Time of the first event (0 when empty). */
    TimeUs startTime() const;

    /** Time of the last event (0 when empty). */
    TimeUs endTime() const;

    /**
     * Validate structural invariants: events sorted by time, every
     * I/O issued by a forked-or-initial pid that has not exited, every
     * forked pid eventually exits. Returns an empty string when valid,
     * otherwise a description of the first violation.
     */
    std::string validate() const;

  private:
    std::string app_;
    int execution_ = 0;
    std::vector<TraceEvent> events_;
};

} // namespace pcap::trace

#endif // PCAP_TRACE_TRACE_HPP
