/**
 * @file
 * Hardware-counter self-profiling (`perf_event_open`).
 *
 * Spans (tracing.hpp) resolve *where wall time goes*; this layer
 * resolves *how the hardware executes it*: cycles, instructions,
 * cache and branch behaviour per measured region, so a "2.2
 * ns/period" claim carries IPC and miss-rate evidence instead of a
 * wall clock alone — and the exact counter plumbing a live-mode PC
 * collector will reuse.
 *
 * One PerfCounterGroup opens a *grouped* set of counters for the
 * calling thread — cycles (leader), instructions, cache
 * references/misses, branch misses, task clock — scheduled onto the
 * PMU together so their ratios (IPC, miss rates) are coherent. When
 * the kernel multiplexes the group off the PMU, readings are scaled
 * by time_enabled/time_running, the standard correction, and the
 * reading is marked `multiplexed`.
 *
 * The layer is opt-in (bench_all --perf) and degrades gracefully:
 * where perf_event_open is unavailable (EACCES under
 * perf_event_paranoid, ENOSYS in seccomp'd containers, non-Linux) a
 * software backend with the identical API reports task-clock from
 * thread CPU time (getrusage/clock_gettime) and zeroed hardware
 * counters, explicitly marked `backend: "software"` — a CI container
 * without PMU access stays green and honest. PCAP_PERF_BACKEND
 * (auto|hardware|software) overrides the probe.
 */

#ifndef PCAP_OBS_PERF_HPP
#define PCAP_OBS_PERF_HPP

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pcap {
class Json;
}

namespace pcap::obs {

class MetricsRegistry;

/** Which implementation services counter reads. */
enum class PerfBackend
{
    Hardware, ///< grouped perf_event_open counters
    Software  ///< thread CPU time + monotonic clock, zeroed PMU
};

/** "hardware" / "software". */
const char *perfBackendName(PerfBackend backend);

/**
 * Multiplexing-corrected counter totals (or a delta of two
 * readings). All counts are u64 and saturate at 0 on subtraction —
 * scaling rounds, so a tiny negative delta means "no progress", not
 * a wrapped astronomically-large one.
 */
struct PerfCounts
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t cacheReferences = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t branchMisses = 0;
    std::uint64_t taskClockNs = 0;

    /** Raw group scheduling times behind the scaling. Equal when the
     * group owned the PMU for its whole enabled life. */
    std::uint64_t timeEnabledNs = 0;
    std::uint64_t timeRunningNs = 0;

    /** True when time_running < time_enabled, i.e. the values above
     * are scaled estimates rather than exact counts. */
    bool multiplexed = false;

    void add(const PerfCounts &other);

    /** this - start, elementwise saturating; multiplexed ORs. */
    PerfCounts since(const PerfCounts &start) const;

    double ipc() const;           ///< instructions / cycles (0 safe)
    double cacheMissRate() const; ///< misses / references (0 safe)
    double branchMissRate() const; ///< misses / instructions
};

/** What probing perf_event_open on this host found. */
struct PerfCapability
{
    bool hardware = false; ///< a grouped open succeeded
    int counters = 0;      ///< counters the group admitted
    std::string detail;    ///< "ok" or the errno-level reason
};

/**
 * A grouped set of per-thread counters. Construction opens (and
 * enables) the group for the *calling thread*; read() may then be
 * called from that thread only. A Hardware request that cannot open
 * even the group leader silently degrades to the Software backend —
 * check backend() for what you actually got.
 */
class PerfCounterGroup
{
  public:
    explicit PerfCounterGroup(PerfBackend backend);
    ~PerfCounterGroup();

    PerfCounterGroup(const PerfCounterGroup &) = delete;
    PerfCounterGroup &operator=(const PerfCounterGroup &) = delete;

    PerfBackend backend() const { return backend_; }

    /** Counters the hardware group admitted (0 for software). */
    int counterCount() const { return counters_; }

    /** Scaled totals since the group was opened. */
    PerfCounts read() const;

    /** Probe: can a hardware group open on this thread right now?
     * Opens and immediately closes a full group; never throws. */
    static PerfCapability probe();

  private:
    PerfBackend backend_;
    int counters_ = 0;
    int leaderFd_ = -1;
    /** Sibling fds in open order; slots_[i] maps the i-th group
     * value to its PerfCounts field. */
    std::vector<int> fds_;
    std::vector<int> slots_;
    /** errno captured immediately after a failed leader open (0 when
     * the group opened); probe() reports it instead of the global
     * errno, which later calls may have clobbered. */
    int openErrno_ = 0;
    std::uint64_t softwareEpochNs_ = 0; ///< monotonic, software only
};

/**
 * Process-wide profiler: owns one lazily-opened PerfCounterGroup per
 * thread (registration takes a mutex once per thread, reads are
 * thread-local) and accumulates named region deltas. Install via
 * setPerfProfiler; PerfRegion and Span pick it up globally.
 */
class PerfProfiler
{
  public:
    /** Probes, applies the PCAP_PERF_BACKEND override, and fixes
     * the backend for every group this profiler opens. */
    PerfProfiler();

    PerfBackend backend() const { return backend_; }
    const PerfCapability &capability() const { return capability_; }

    /** Why this backend: "ok", the probe failure, or the override. */
    const std::string &backendDetail() const { return detail_; }

    /** Scaled totals of the calling thread's group (opened on first
     * use). */
    PerfCounts snapshot();

    /** Fold @p delta into the named region aggregate. */
    void accumulate(const std::string &region,
                    const PerfCounts &delta);

    /** All named region aggregates, sorted by name. */
    std::vector<std::pair<std::string, PerfCounts>> regions() const;

  private:
    PerfCounterGroup &threadGroup();

    /** Process-unique id keying per-thread group slots. Slots must
     * not key on the profiler's address: successive stack-local
     * profilers reuse it, and a stale slot would hand the new
     * profiler a freed group. */
    const std::uint64_t generation_;
    PerfBackend backend_;
    PerfCapability capability_;
    std::string detail_;
    mutable std::mutex mutex_; ///< groups_ registration + regions_
    std::vector<std::unique_ptr<PerfCounterGroup>> groups_;
    std::vector<std::pair<std::string, PerfCounts>> regions_;
};

/** Install @p profiler as the process-wide counter sink (nullptr
 * disables). Not owned; must outlive every region and span started
 * while installed. */
void setPerfProfiler(PerfProfiler *profiler);

/** The installed profiler, or nullptr when profiling is off. */
PerfProfiler *perfProfiler();

/** True when a profiler is installed. */
bool perfEnabled();

/**
 * RAII measured region: snapshots the calling thread's counters at
 * construction and accumulates the delta at destruction — into the
 * profiler's named aggregate, a caller-owned PerfCounts, or both.
 * With no profiler installed, construction is two loads.
 */
class PerfRegion
{
  public:
    explicit PerfRegion(const char *name) : PerfRegion(name, nullptr)
    {
    }

    explicit PerfRegion(std::string name);

    /** Accumulate into @p into only (no named aggregate). */
    explicit PerfRegion(PerfCounts *into)
        : PerfRegion(nullptr, into)
    {
    }

    PerfRegion(const char *name, PerfCounts *into);
    ~PerfRegion();

    PerfRegion(const PerfRegion &) = delete;
    PerfRegion &operator=(const PerfRegion &) = delete;

  private:
    PerfProfiler *profiler_;
    const char *literal_ = nullptr;
    std::string name_; ///< only for the std::string constructor
    PerfCounts *into_ = nullptr;
    PerfCounts start_;
};

/** One reading as a JSON object — the shared shape of the
 * pcap-perf-v1 block, drill-down policies and tests (identical for
 * both backends by construction). */
Json perfCountsJson(const PerfCounts &counts);

/** The pcap-perf-v1 block: backend, probe detail, named regions. */
Json perfToJson(const PerfProfiler &profiler);

/** Record pcap_perf_* series (one set per region, labelled
 * {region}). Wall-dependent like every hardware number, so
 * metrics_diff ignores the family by default. */
void recordPerfMetrics(const PerfProfiler &profiler,
                       MetricsRegistry &registry);

} // namespace pcap::obs

#endif // PCAP_OBS_PERF_HPP
