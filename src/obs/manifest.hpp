/**
 * @file
 * Run manifest: the reproducibility record written alongside every
 * bench run. Where BENCH_RESULTS.json says *what* numbers came out
 * and the metrics dump says *how* the run behaved internally, the
 * manifest says *which* experiment this was: configuration, seeds,
 * content-addressed input-cache keys, the code version (git
 * describe) and per-phase wall timings — everything needed to
 * attribute a metrics diff to a code change rather than a config
 * drift.
 */

#ifndef PCAP_OBS_MANIFEST_HPP
#define PCAP_OBS_MANIFEST_HPP

#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace pcap::obs {

/** Schema tag of the manifest document. */
inline constexpr char kManifestSchema[] = "pcap-run-manifest-v1";

/**
 * The build configuration behind a run's numbers. A perf figure is
 * meaningless without it: an AddressSanitizer Debug build runs the
 * replay kernel an order of magnitude slower than the Release build
 * the budgets are sized for.
 */
struct BuildInfo
{
    std::string compiler;        ///< "clang" / "gcc" / "unknown"
    std::string compilerVersion; ///< e.g. "17.0.6"
    std::string buildType;       ///< CMAKE_BUILD_TYPE, may be ""
    std::string cxxStandard;     ///< e.g. "c++20"
    std::vector<std::string> sanitizers; ///< e.g. {"address"}
};

/** The build configuration compiled into this binary. */
BuildInfo collectBuildInfo();

/** Everything a bench run records about itself. */
struct RunManifest
{
    std::string createdAtUtc; ///< ISO 8601, see isoTimestampUtc()
    std::string gitDescribe;  ///< see collectGitDescribe()
    std::string command;      ///< argv, space-joined

    std::uint64_t seed = 0;
    unsigned jobs = 0;
    int maxExecutions = 0;

    /** Fleet size of the run's fleet report; 0 when the fleet
     * report was not selected (the field is then omitted). */
    std::uint64_t fleetHosts = 0;

    bool workloadCacheEnabled = false;
    std::string workloadCacheDir;

    /** Content-addressed identity of each application's inputs:
     * (app, cache file name embedding the recipe hash). */
    std::vector<std::pair<std::string, std::string>> inputKeys;

    /** Wall-clock milliseconds per named phase, in run order. */
    std::vector<std::pair<std::string, double>> phaseMs;

    /** Reports rendered by this run, in order. */
    std::vector<std::string> reports;

    std::string resultsPath;    ///< BENCH_RESULTS.json ("" if none)
    std::string prometheusPath; ///< --metrics-out ("" if none)

    /** Compiler / build-type / sanitizer record, see BuildInfo. */
    BuildInfo build;

    /** Hardware-counter capability: which perf backend the run used
     * (or would use — the probe is recorded even without --perf),
     * and why. Empty backend = probe not performed. */
    std::string perfBackend; ///< "hardware" / "software" / ""
    std::string perfDetail;  ///< "ok" or the probe failure reason
    bool perfRequested = false; ///< --perf was on for this run

    /** The manifest as a JSON document (schema included). */
    Json toJson() const;
};

/** Current wall-clock time as "YYYY-MM-DDTHH:MM:SSZ" (UTC). */
std::string isoTimestampUtc();

/**
 * `git describe --always --dirty` of @p dir; "unknown" when git or
 * the repository is unavailable. Best effort by design — a missing
 * VCS must never fail a bench run.
 */
std::string collectGitDescribe(const std::string &dir);

/**
 * Serialize @p manifest to @p path. @return empty on success, else
 * a problem description (the caller decides how loud to be).
 */
std::string writeManifest(const RunManifest &manifest,
                          const std::string &path);

} // namespace pcap::obs

#endif // PCAP_OBS_MANIFEST_HPP
