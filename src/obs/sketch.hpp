/**
 * @file
 * Deterministic mergeable quantile sketch.
 *
 * The fleet driver needs across-host percentiles without
 * materializing one double per host (10k+ hosts, several metrics
 * each). A LogSketch keeps integer counts in logarithmically spaced
 * buckets — value v lands in bucket ceil(log(v) / log(gamma)) with
 * gamma = (1 + a) / (1 - a) — so any quantile comes back within
 * relative error a of an exact nearest-rank answer (default 1%).
 *
 * Determinism is the point, not an accident: buckets hold exact
 * integer counts in ordered maps, so merging shard sketches is
 * associative and order-independent, and a quantile query is a pure
 * function of the folded counts. A fleet run at -j1 and -j4
 * produces bit-identical percentiles as long as shards merge in a
 * fixed order (sim/fleet merges by shard index).
 */

#ifndef PCAP_OBS_SKETCH_HPP
#define PCAP_OBS_SKETCH_HPP

#include <cstdint>
#include <map>

namespace pcap::obs {

/**
 * Log-bucketed quantile sketch over doubles, DDSketch-style.
 *
 * Handles any finite value: positives and negatives get mirrored
 * bucket maps, values within kZeroEpsilon of zero share one exact
 * zero counter. Memory is O(distinct buckets), bounded by the
 * dynamic range of the data (~2300 buckets per decade-spanning
 * sign at 1% accuracy in the worst case; fleet metrics use a few
 * dozen).
 */
class LogSketch
{
  public:
    /** Values closer to zero than this are counted as exact zero. */
    static constexpr double kZeroEpsilon = 1e-12;

    explicit LogSketch(double relativeAccuracy = 0.01);

    void add(double value);

    /** Fold @p other in; accuracies must match (panic otherwise). */
    void merge(const LogSketch &other);

    std::uint64_t count() const { return count_; }
    bool empty() const { return count_ == 0; }
    double relativeAccuracy() const { return alpha_; }

    /**
     * Nearest-rank quantile: the bucket representative of the
     * sample at rank ceil(q * count), clamped to [1, count].
     * Within relativeAccuracy() of the exact nearest-rank value;
     * 0 on an empty sketch.
     */
    double quantile(double q) const;

    /**
     * Median absolute deviation from quantile(0.5), computed
     * exactly over the sketch representation (weighted median of
     * |representative - median|). The outlier threshold unit.
     */
    double medianAbsDeviation() const;

  private:
    std::int32_t indexOf(double magnitude) const;
    double representative(std::int32_t index) const;

    double alpha_;
    double logGamma_;
    std::map<std::int32_t, std::uint64_t> positive_;
    std::map<std::int32_t, std::uint64_t> negative_;
    std::uint64_t zeros_ = 0;
    std::uint64_t count_ = 0;
};

} // namespace pcap::obs

#endif // PCAP_OBS_SKETCH_HPP
