/**
 * @file
 * Metric exporters: structured JSON (merged into BENCH_RESULTS.json
 * under the "metrics" key, consumed by tools/metrics_diff.py) and
 * Prometheus text exposition format (bench_all --metrics-out, ready
 * for a node_exporter textfile collector or a pushgateway).
 *
 * Both exports render a deterministic snapshot — series sorted by
 * (name, labels) — so two runs of the same deterministic simulation
 * produce byte-identical documents regardless of thread scheduling.
 */

#ifndef PCAP_OBS_EXPORT_HPP
#define PCAP_OBS_EXPORT_HPP

#include <iosfwd>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace pcap::obs {

/** Schema tag of the JSON metrics document. */
inline constexpr char kMetricsSchema[] = "pcap-metrics-v1";

/**
 * The whole registry as a JSON document:
 *
 * {"schema":"pcap-metrics-v1","series":[
 *   {"name":..,"type":"counter","labels":{..},"value":N},
 *   {"name":..,"type":"histogram","labels":{..},
 *    "count":N,"sum":S,"buckets":[{"le":..,"count":n},..]},
 *   {"name":..,"type":"timer","labels":{..},
 *    "seconds":S,"laps":N}, ...]}
 */
Json metricsToJson(const MetricsRegistry &registry);

/**
 * Prometheus text format. Histograms emit cumulative _bucket series
 * plus _sum and _count; timers emit <name>_seconds_total and
 * <name>_laps_total counters.
 */
void writePrometheus(const MetricsRegistry &registry,
                     std::ostream &os);

} // namespace pcap::obs

#endif // PCAP_OBS_EXPORT_HPP
