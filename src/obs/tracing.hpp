/**
 * @file
 * Wall-clock span tracing for the harness itself.
 *
 * Timelines (timeline.hpp) resolve *simulated* time; this layer
 * resolves *wall* time: where does a bench run actually spend its
 * seconds — workload generation, per-cell replay, report rendering,
 * fleet shards, thread-pool tasks. RAII Spans record into per-thread
 * fixed-capacity buffers (single-writer, no locks on the hot path,
 * overflow drops the newest spans and counts them — the same
 * flight-recorder discipline as the provenance ring) and the whole
 * recorder serializes to Chrome trace-event JSON, loadable in
 * Perfetto or chrome://tracing.
 *
 * Tracing is opt-in and process-global: bench_all installs a
 * recorder via setTraceRecorder for --trace-profile; with none
 * installed a Span construction is two loads and a branch.
 */

#ifndef PCAP_OBS_TRACING_HPP
#define PCAP_OBS_TRACING_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/perf.hpp"

namespace pcap::obs {

/** Inline payload bytes per span (truncating, NUL-terminated). */
constexpr std::size_t kSpanDetailBytes = 48;

/** One completed span: a Chrome "X" (complete) event. */
struct TraceEvent
{
    std::uint64_t startNs = 0; ///< since recorder construction
    std::uint64_t durNs = 0;
    const char *name = nullptr; ///< string literal (category label)
    std::array<char, kSpanDetailBytes> detail{}; ///< arg, may be ""

    /** True when a counter delta was recorded over the span (a
     * PerfProfiler installed alongside the recorder:
     * --trace-profile --perf). The delta itself lives at this
     * event's index in the thread buffer's perf side array —
     * embedding the ~80-byte PerfCounts here would double every
     * per-thread trace buffer even with --perf off. Rendered as
     * ipc/cycles/miss args on the trace event. */
    bool hasPerf = false;
};

/**
 * Collects spans from any number of threads.
 *
 * Each thread gets its own fixed-capacity buffer on first use
 * (registration takes a mutex once per thread; appends are plain
 * single-writer stores with a release size publish). Buffers never
 * reallocate, so readers may walk them after the writers go idle.
 */
class TraceRecorder
{
  public:
    /** @p capacity spans per thread; overflow counts as dropped. */
    explicit TraceRecorder(std::size_t capacity = 1 << 16);

    /** Record one completed span from the calling thread;
     * @p perf (optional) is the counter delta over the span. */
    void append(const char *name, std::string_view detail,
                std::uint64_t startNs, std::uint64_t durNs,
                const PerfCounts *perf = nullptr);

    /** Nanoseconds since this recorder was constructed. */
    std::uint64_t nowNs() const;

    std::uint64_t totalEvents() const;
    std::uint64_t totalDropped() const;
    std::size_t threadCount() const;

    /** Serialize everything recorded so far as Chrome trace-event
     * JSON ({"traceEvents": [...]}); fatal() on I/O failure. */
    void writeChromeTrace(const std::string &path) const;

  private:
    struct ThreadBuffer
    {
        ThreadBuffer(std::size_t capacity, bool withPerf)
            : events(capacity), perf(withPerf ? capacity : 0)
        {
        }

        std::vector<TraceEvent> events;
        /** Counter deltas parallel to events, preallocated (never
         * reallocates, same single-writer discipline) only when a
         * PerfProfiler was installed at registration; empty — and
         * deltas dropped — otherwise. */
        std::vector<PerfCounts> perf;
        std::atomic<std::uint64_t> size{0}; ///< published count
        std::atomic<std::uint64_t> dropped{0};
        std::string name;
    };

    ThreadBuffer &threadBuffer();

    /** Process-unique id keying per-thread buffer slots. Slots must
     * not key on the recorder's address: successive stack-local
     * recorders reuse it, and a stale slot would hand the new
     * recorder a freed buffer. */
    const std::uint64_t generation_;
    std::size_t capacity_;
    std::int64_t epochNs_;
    mutable std::mutex mutex_; ///< guards buffers_ registration
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;

    /** One overflow warning per recorder, however many times the
     * profile is written. */
    mutable std::atomic<bool> dropWarned_{false};
};

/** Install @p recorder as the process-wide span sink (nullptr
 * disables tracing). The recorder is not owned and must outlive
 * every span started while it is installed. */
void setTraceRecorder(TraceRecorder *recorder);

/** The installed recorder, or nullptr when tracing is off. */
TraceRecorder *traceRecorder();

/** True when a recorder is installed. */
bool traceEnabled();

/**
 * RAII wall-clock span. Captures the installed recorder and a
 * timestamp at construction, appends one complete event at
 * destruction. @p name must be a string literal (it is stored by
 * pointer); per-instance data goes in @p detail, which is copied
 * (and truncated) into the event.
 */
class Span
{
  public:
    explicit Span(const char *name) : Span(name, {}) {}

    Span(const char *name, std::string_view detail);
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    TraceRecorder *recorder_;
    std::uint64_t startNs_ = 0;
    const char *name_;
    std::array<char, kSpanDetailBytes> detail_{};
    /** Counter snapshot at construction; only taken when a
     * PerfProfiler is installed alongside the recorder. */
    PerfCounts perfStart_;
    bool perfArmed_ = false;
};

/**
 * Wire ThreadPool's task hook to the tracer: every pool task runs
 * under a "pool-task" span while a recorder is installed. Idempotent;
 * call once at startup when --trace-profile is requested.
 */
void installThreadPoolTraceHook();

} // namespace pcap::obs

#endif // PCAP_OBS_TRACING_HPP
