#include "obs/tracing.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace pcap::obs {

namespace {

std::atomic<TraceRecorder *> gRecorder{nullptr};

/** Source of TraceRecorder::generation_ ids. Never reused, so a
 * thread slot left behind by a destroyed recorder can never match a
 * new one — even when the stack hands the new recorder the old
 * recorder's address. */
std::atomic<std::uint64_t> gRecorderGeneration{0};

std::int64_t
steadyNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Per-thread buffer cache, keyed by the owning recorder's
 * generation id so a fresh recorder never sees a stale pointer. */
struct ThreadSlot
{
    std::uint64_t owner = 0; ///< recorder generation, 0 = none
    void *buffer = nullptr;
};

thread_local ThreadSlot tSlot;

void
copyDetail(std::array<char, kSpanDetailBytes> &dst,
           std::string_view src)
{
    const std::size_t n =
        std::min(src.size(), kSpanDetailBytes - 1);
    std::memcpy(dst.data(), src.data(), n);
    dst[n] = '\0';
}

void
writeEscaped(std::ostream &os, const char *text)
{
    os << '"';
    for (const char *p = text; *p; ++p) {
        const unsigned char c = static_cast<unsigned char>(*p);
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << *p;
            }
        }
    }
    os << '"';
}

/** Microseconds with sub-µs fraction, as Chrome's "ts" expects. */
void
writeMicros(std::ostream &os, std::uint64_t ns)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%llu.%03u",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned>(ns % 1000));
    os << buf;
}

} // namespace

TraceRecorder::TraceRecorder(std::size_t capacity)
    : generation_(
          gRecorderGeneration.fetch_add(1,
                                        std::memory_order_relaxed) +
          1),
      capacity_(capacity), epochNs_(steadyNowNs())
{
    if (capacity == 0)
        panic("TraceRecorder capacity must be positive");
}

std::uint64_t
TraceRecorder::nowNs() const
{
    return static_cast<std::uint64_t>(steadyNowNs() - epochNs_);
}

TraceRecorder::ThreadBuffer &
TraceRecorder::threadBuffer()
{
    if (tSlot.owner != generation_) {
        std::lock_guard<std::mutex> lock(mutex_);
        // The perf side array exists only when counter attribution
        // is armed at registration time; bench_all installs both
        // sinks before any span runs.
        auto buffer = std::make_unique<ThreadBuffer>(capacity_,
                                                     perfEnabled());
        buffer->name = buffers_.empty()
                           ? "main"
                           : "worker-" +
                                 std::to_string(buffers_.size());
        tSlot.owner = generation_;
        tSlot.buffer = buffer.get();
        buffers_.push_back(std::move(buffer));
    }
    return *static_cast<ThreadBuffer *>(tSlot.buffer);
}

void
TraceRecorder::append(const char *name, std::string_view detail,
                      std::uint64_t startNs, std::uint64_t durNs,
                      const PerfCounts *perf)
{
    ThreadBuffer &buffer = threadBuffer();
    const std::uint64_t used =
        buffer.size.load(std::memory_order_relaxed);
    if (used >= buffer.events.size()) {
        buffer.dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    TraceEvent &event = buffer.events[used];
    event.startNs = startNs;
    event.durNs = durNs;
    event.name = name;
    copyDetail(event.detail, detail);
    if (perf && used < buffer.perf.size()) {
        buffer.perf[used] = *perf;
        event.hasPerf = true;
    }
    // Publish after the payload so a post-join reader never sees a
    // half-written event.
    buffer.size.store(used + 1, std::memory_order_release);
}

std::uint64_t
TraceRecorder::totalEvents() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto &buffer : buffers_)
        total += buffer->size.load(std::memory_order_acquire);
    return total;
}

std::uint64_t
TraceRecorder::totalDropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto &buffer : buffers_)
        total += buffer->dropped.load(std::memory_order_relaxed);
    return total;
}

std::size_t
TraceRecorder::threadCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return buffers_.size();
}

void
TraceRecorder::writeChromeTrace(const std::string &path) const
{
    // A full ring silently truncates the profile's tail; surface
    // that once, at write time, so a "why is this phase missing"
    // hunt starts from the drop count instead of the rendered file.
    const std::uint64_t dropped = totalDropped();
    if (dropped > 0 &&
        !dropWarned_.exchange(true, std::memory_order_relaxed)) {
        warn("trace profile dropped " + std::to_string(dropped) +
             " spans (per-thread ring capacity " +
             std::to_string(capacity_) +
             "); raise TraceRecorder capacity or trace less");
    }

    std::ofstream os(path, std::ios::trunc);
    if (!os)
        fatal("cannot open trace profile " + path);

    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\n  \"displayTimeUnit\": \"ms\",\n"
       << "  \"traceEvents\": [";
    bool first = true;
    for (std::size_t tid = 0; tid < buffers_.size(); ++tid) {
        const ThreadBuffer &buffer = *buffers_[tid];
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    {\"name\": \"thread_name\", \"ph\": \"M\", "
              "\"pid\": 1, \"tid\": "
           << tid << ", \"args\": {\"name\": ";
        writeEscaped(os, buffer.name.c_str());
        os << "}}";
        const std::uint64_t count =
            buffer.size.load(std::memory_order_acquire);
        for (std::uint64_t i = 0; i < count; ++i) {
            const TraceEvent &event = buffer.events[i];
            os << ",\n    {\"name\": ";
            writeEscaped(os, event.name);
            os << ", \"cat\": \"pcap\", \"ph\": \"X\", \"ts\": ";
            writeMicros(os, event.startNs);
            os << ", \"dur\": ";
            writeMicros(os, event.durNs);
            os << ", \"pid\": 1, \"tid\": " << tid;
            if (event.detail[0] != '\0' || event.hasPerf) {
                os << ", \"args\": {";
                bool firstArg = true;
                if (event.detail[0] != '\0') {
                    os << "\"detail\": ";
                    writeEscaped(os, event.detail.data());
                    firstArg = false;
                }
                if (event.hasPerf) {
                    const PerfCounts &perf = buffer.perf[i];
                    char num[64];
                    const auto arg =
                        [&](const char *key,
                            unsigned long long value) {
                            os << (firstArg ? "" : ", ") << '"'
                               << key << "\": " << value;
                            firstArg = false;
                        };
                    arg("cycles", perf.cycles);
                    arg("instructions", perf.instructions);
                    arg("cache_misses", perf.cacheMisses);
                    arg("branch_misses", perf.branchMisses);
                    std::snprintf(num, sizeof num, "%.4f",
                                  perf.ipc());
                    os << ", \"ipc\": " << num;
                    std::snprintf(
                        num, sizeof num, "%.3f",
                        static_cast<double>(perf.taskClockNs) /
                            1000.0);
                    os << ", \"task_clock_us\": " << num;
                }
                os << "}";
            }
            os << "}";
        }
    }
    os << "\n  ]\n}\n";
    os.flush();
    if (!os)
        fatal("write failed for trace profile " + path);
}

void
setTraceRecorder(TraceRecorder *recorder)
{
    gRecorder.store(recorder, std::memory_order_release);
}

TraceRecorder *
traceRecorder()
{
    return gRecorder.load(std::memory_order_acquire);
}

bool
traceEnabled()
{
    return traceRecorder() != nullptr;
}

Span::Span(const char *name, std::string_view detail)
    : recorder_(traceRecorder()), name_(name)
{
    if (!recorder_)
        return;
    copyDetail(detail_, detail);
    // Counter attribution rides the same opt-in: spans pick up
    // hardware deltas only when both --trace-profile and --perf
    // installed their process-global sinks.
    if (PerfProfiler *profiler = perfProfiler()) {
        perfStart_ = profiler->snapshot();
        perfArmed_ = true;
    }
    startNs_ = recorder_->nowNs();
}

Span::~Span()
{
    if (!recorder_)
        return;
    const std::uint64_t end = recorder_->nowNs();
    PerfCounts delta;
    bool hasDelta = false;
    if (perfArmed_) {
        if (PerfProfiler *profiler = perfProfiler()) {
            delta = profiler->snapshot().since(perfStart_);
            hasDelta = true;
        }
    }
    recorder_->append(name_, detail_.data(), startNs_,
                      end - startNs_,
                      hasDelta ? &delta : nullptr);
}

void
installThreadPoolTraceHook()
{
    ThreadPool::TaskHook hook;
    hook.begin = []() -> void * {
        if (!traceEnabled())
            return nullptr;
        return new Span("pool-task");
    };
    hook.end = [](void *token) {
        delete static_cast<Span *>(token);
    };
    ThreadPool::setTaskHook(hook);
}

} // namespace pcap::obs
