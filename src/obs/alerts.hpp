/**
 * @file
 * Declarative alert/SLO rule engine over a finished run.
 *
 * Rules load from a JSON file (schema pcap-alert-rules-v1) and turn
 * the deterministic metric surface into pass/fail health signals —
 * the batch analogue of a Prometheus alerting pipeline. Three rule
 * kinds:
 *
 *  - threshold: one aggregated MetricsRegistry selection compared
 *    against a constant ("fleet flags more than 8 outlier hosts");
 *  - ratio: two selections divided ("PCAP burns more than 3x the
 *    oracle's energy");
 *  - quantile: a fleet LogSketch distribution's quantile compared
 *    against a constant ("the fleet p99 miss fraction exceeds 50%").
 *
 * The `for` duration of an online alert translates to *simulated*
 * time here: a rule with for_sim_seconds > 0 fires only when the
 * breach is backed by at least that much replayed simulated span.
 * Threshold/ratio rules count the whole run's replayed span as
 * evidence (pcap_sim_input_span_us_total + pcap_fleet_sim_span_us_
 * total); quantile rules accumulate the spans of the fleet shards
 * whose own distribution breached, folded in shard order. A breach
 * without enough evidence reports "pending" and does not fire.
 *
 * Everything the engine consumes is a deterministic function of the
 * simulation, and evaluation happens single-threaded in a fixed
 * order, so the verdicts — and the emitted pcap-alerts-v1 block —
 * are bit-identical across thread counts.
 */

#ifndef PCAP_OBS_ALERTS_HPP
#define PCAP_OBS_ALERTS_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sketch.hpp"

namespace pcap {
class Json;
}

namespace pcap::obs {

/** How bad a fired rule is; drives the bench exit code. */
enum class AlertSeverity : std::uint8_t { Warn, Critical };
const char *alertSeverityName(AlertSeverity severity);

/** Comparison of the observed value against the rule threshold. */
enum class AlertComparator : std::uint8_t { Gt, Ge, Lt, Le };
const char *alertComparatorName(AlertComparator op);
bool alertCompare(AlertComparator op, double value, double threshold);

/** Which condition shape a rule evaluates. */
enum class AlertKind : std::uint8_t { Threshold, Ratio, Quantile };
const char *alertKindName(AlertKind kind);

/** How multiple matched series collapse into one value. */
enum class MetricAgg : std::uint8_t { Sum, Min, Max, Avg };
const char *metricAggName(MetricAgg agg);

/**
 * Selects registry series by metric name plus a label subset: every
 * selector label key must exist on the series with a matching value;
 * series labels not mentioned are free. A selector value may list
 * '|'-separated alternatives ("miss_primary|miss_backup"). Matched
 * series contribute their scalar — counter value, gauge value,
 * histogram sample sum, timer seconds — folded by @ref agg.
 */
struct MetricSelector
{
    std::string metric;
    Labels labels;
    MetricAgg agg = MetricAgg::Sum;
};

/** One declarative alert rule (see the file docs for semantics). */
struct AlertRule
{
    std::string name;
    AlertSeverity severity = AlertSeverity::Warn;
    AlertKind kind = AlertKind::Threshold;
    AlertComparator op = AlertComparator::Gt;
    double value = 0.0;         ///< the threshold constant
    double forSimSeconds = 0.0; ///< simulated-time evidence floor

    MetricSelector metric;      ///< threshold rules
    MetricSelector numerator;   ///< ratio rules
    MetricSelector denominator; ///< ratio rules

    /** Quantile rules: which fleet distribution ("saved_fraction",
     * "miss_fraction", "hit_fraction", "energy_j", "base_energy_j"),
     * which quantile, and an optional policy-label filter (empty
     * matches every policy; the most-breaching value wins). */
    std::string distribution;
    double q = 0.99;
    std::string policy;
};

/** Verdict of one rule after finalize(). */
enum class AlertStatus : std::uint8_t { Ok, Skipped, Pending, Fired };
const char *alertStatusName(AlertStatus status);

/** Per-rule evaluation outcome, parallel to AlertEngine::rules(). */
struct AlertOutcome
{
    AlertStatus status = AlertStatus::Skipped;
    bool hasValue = false;
    double value = 0.0; ///< observed value (valid with hasValue)
    double evidenceSimSeconds = 0.0;
    std::string detail; ///< present for skipped/pending verdicts
};

/** Result of loading a rules file: rules, or a non-empty error. */
struct AlertRulesLoad
{
    std::vector<AlertRule> rules;
    std::string error;

    bool ok() const { return error.empty(); }
};

/** Parse a pcap-alert-rules-v1 document from JSON text. */
AlertRulesLoad parseAlertRules(const std::string &jsonText);

/** Read and parse a rules file; I/O problems land in .error. */
AlertRulesLoad loadAlertRulesFile(const std::string &path);

/**
 * Evaluates a rule set against one run.
 *
 * Feeding order is the caller's contract: the fleet driver calls
 * addQuantileEvidence once per shard in shard order and
 * setQuantileValue once per fleet-level distribution, all on one
 * thread; finalize() then snapshots the registry and settles every
 * rule. The engine is not thread-safe by design — determinism comes
 * from the fixed feeding order.
 */
class AlertEngine
{
  public:
    explicit AlertEngine(std::vector<AlertRule> rules);

    const std::vector<AlertRule> &rules() const { return rules_; }

    /**
     * One shard's distribution sketch, covering @p simSeconds of
     * replayed simulated time. Every quantile rule matching
     * (@p distribution, @p policy) whose quantile of @p sketch
     * breaches accumulates the span as firing evidence.
     */
    void addQuantileEvidence(const std::string &distribution,
                             const std::string &policy,
                             const LogSketch &sketch,
                             double simSeconds);

    /**
     * The fleet-level (merged) distribution: sets the headline value
     * matching quantile rules are judged on. With several matching
     * distributions (empty policy filter) the most-breaching value
     * wins.
     */
    void setQuantileValue(const std::string &distribution,
                          const std::string &policy,
                          const LogSketch &sketch);

    /**
     * Settle every rule: threshold/ratio rules aggregate over a
     * snapshot of @p registry (with the run's total simulated span,
     * read from the span counters, as evidence), quantile rules
     * settle on the fed distributions. Idempotent state: call once.
     */
    void finalize(const MetricsRegistry &registry);

    bool finalized() const { return finalized_; }

    /** Per-rule outcomes, parallel to rules(); valid after
     * finalize(). */
    const std::vector<AlertOutcome> &outcomes() const
    {
        return outcomes_;
    }

    /** Fired rules of @p severity. */
    std::size_t firedCount(AlertSeverity severity) const;

    /** 0 = nothing fired, 3 = warn fired, 4 = critical fired. */
    int exitCode() const;

    /** The machine-readable pcap-alerts-v1 block. */
    Json toJson() const;

    /** Record pcap_alerts_fired_total{rule,severity} for every
     * fired rule. */
    void recordMetrics(MetricsRegistry &registry) const;

    /** Human summary, one line per rule. */
    void printSummary(std::ostream &os) const;

  private:
    std::vector<AlertRule> rules_;
    std::vector<AlertOutcome> outcomes_;
    std::vector<bool> sawDistribution_;
    bool finalized_ = false;
};

} // namespace pcap::obs

#endif // PCAP_OBS_ALERTS_HPP
