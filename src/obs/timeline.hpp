/**
 * @file
 * Bounded-memory simulated-time timelines.
 *
 * Every exported metric so far (metrics.hpp counters, provenance
 * records) is an end-of-run aggregate; this layer answers *when*.
 * A Timeline folds per-cell state over simulated time into a fixed
 * number of buckets: power-state residency, energy by category,
 * idle-period outcomes, shutdowns/spin-ups and sampled prediction-
 * table size. When an event lands past the covered span the bucket
 * width doubles and adjacent buckets fold pairwise, so memory stays
 * O(buckets) regardless of trace length and the whole run is always
 * covered at the finest width that fits.
 *
 * Like provenance, the layer is deliberately self-contained: rows
 * are indexed by plain integers and the caller supplies name tables
 * via TimelineMeta, so obs stays below core/sim in the dependency
 * order (sim::TimelineObserver does the enum-to-index join).
 */

#ifndef PCAP_OBS_TIMELINE_HPP
#define PCAP_OBS_TIMELINE_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace pcap::obs {

/** Power-state rows per bucket (sim maps power::DiskState here). */
constexpr std::size_t kTimelineStates = 4;

/** Outcome rows per bucket; by value identical to sim::IdleOutcome
 * (and the kOutcome* codes in provenance.hpp). */
constexpr std::size_t kTimelineOutcomes = 6;

/** Energy rows per bucket: one per power state plus transitions. */
constexpr std::size_t kTimelineEnergies = 5;

/** Index of the transition-energy row (spin-down/spin-up costs). */
constexpr std::size_t kTimelineEnergyTransition = 4;

/** One fixed-width slice of simulated time. */
struct TimelineBucket
{
    /** Microseconds spent in each power state. */
    std::array<std::uint64_t, kTimelineStates> stateUs{};

    /** Idle periods ending in this bucket, by outcome. */
    std::array<std::uint64_t, kTimelineOutcomes> outcomes{};

    /** Joules accrued, by category (state draw + transitions). */
    std::array<double, kTimelineEnergies> energyJ{};

    std::uint64_t shutdowns = 0;
    std::uint64_t spinUps = 0;

    /** Last prediction-table size sampled in this bucket. */
    std::uint64_t tableEntries = 0;
    bool tableSampled = false;

    /** Pairwise fold during a rescale: counts add, the later
     * table sample (from @p later) wins when present. */
    void foldFrom(const TimelineBucket &later);
};

/** Identity and name tables stamped into exported documents. */
struct TimelineMeta
{
    std::string cell;   ///< file stem, e.g. "global-mozilla"
    std::string mode;   ///< policy mode label
    std::string app;    ///< workload name
    std::string policy; ///< policy label

    std::vector<std::string> stateNames;
    std::vector<std::string> outcomeNames;
    std::vector<std::string> energyNames;
};

/**
 * Fixed-capacity, self-rescaling simulated-time histogram.
 *
 * Buckets are half-open: bucket i covers
 * [i * widthUs, (i+1) * widthUs). Range contributions
 * (addStateResidency, addEnergy) are split linearly across the
 * buckets they overlap; point events (outcomes, shutdowns, table
 * samples) land in the bucket containing their timestamp. Any
 * event beyond the covered span first doubles the width (folding
 * buckets pairwise) until it fits — a point event exactly on the
 * end boundary rescales, a range ending there does not.
 */
class Timeline
{
  public:
    explicit Timeline(std::size_t buckets = 256,
                      TimeUs initialWidthUs = kUsPerSec);

    /** Accrue [startUs, endUs) of residency in state @p state. */
    void addStateResidency(std::size_t state, TimeUs startUs,
                           TimeUs endUs);

    /** Accrue @p joules linearly over [startUs, endUs); with
     * startUs == endUs the whole amount lands at startUs. */
    void addEnergy(std::size_t category, TimeUs startUs,
                   TimeUs endUs, double joules);

    void countOutcome(std::size_t outcome, TimeUs atUs);
    void countShutdown(TimeUs atUs);
    void countSpinUp(TimeUs atUs);

    /** Record the table size at @p atUs; last sample per bucket
     * wins (the bucket shows the freshest size inside it). */
    void sampleTable(TimeUs atUs, std::uint64_t entries);

    std::size_t bucketCount() const { return buckets_.size(); }
    TimeUs bucketWidthUs() const { return widthUs_; }

    /** Latest simulated instant folded in so far. */
    TimeUs spanUs() const { return spanUs_; }

    /** Times the bucket width doubled to keep the span covered. */
    std::uint64_t rescales() const { return rescales_; }

    const TimelineBucket &bucket(std::size_t i) const
    {
        return buckets_[i];
    }

    /** Buckets that cover spanUs() (the rest are trailing zeros). */
    std::size_t usedBuckets() const;

  private:
    /** Grow coverage until @p endUs <= width * buckets. */
    void coverRange(TimeUs endUs);

    /** Grow coverage until @p atUs < width * buckets. */
    void coverPoint(TimeUs atUs);

    /** Double the bucket width, folding buckets pairwise. */
    void rescale();

    TimelineBucket &bucketAt(TimeUs atUs);
    void noteSpan(TimeUs endUs);

    std::vector<TimelineBucket> buckets_;
    TimeUs widthUs_;
    TimeUs spanUs_ = 0;
    std::uint64_t rescales_ = 0;
};

/** Write @p timeline as a pcap-timeline-v1 JSON document. */
void writeTimelineJson(const Timeline &timeline,
                       const TimelineMeta &meta,
                       const std::string &path);

/** Write @p timeline as CSV, one row per used bucket. */
void writeTimelineCsv(const Timeline &timeline,
                      const TimelineMeta &meta,
                      const std::string &path);

} // namespace pcap::obs

#endif // PCAP_OBS_TIMELINE_HPP
