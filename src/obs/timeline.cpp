#include "obs/timeline.hpp"

#include <algorithm>
#include <fstream>

#include "util/json.hpp"
#include "util/logging.hpp"

namespace pcap::obs {

void
TimelineBucket::foldFrom(const TimelineBucket &later)
{
    for (std::size_t i = 0; i < kTimelineStates; ++i)
        stateUs[i] += later.stateUs[i];
    for (std::size_t i = 0; i < kTimelineOutcomes; ++i)
        outcomes[i] += later.outcomes[i];
    for (std::size_t i = 0; i < kTimelineEnergies; ++i)
        energyJ[i] += later.energyJ[i];
    shutdowns += later.shutdowns;
    spinUps += later.spinUps;
    if (later.tableSampled) {
        tableEntries = later.tableEntries;
        tableSampled = true;
    }
}

Timeline::Timeline(std::size_t buckets, TimeUs initialWidthUs)
    : buckets_(buckets), widthUs_(initialWidthUs)
{
    if (buckets < 2)
        panic("Timeline needs at least 2 buckets to rescale");
    if (buckets % 2 != 0)
        panic("Timeline bucket count must be even");
    if (initialWidthUs <= 0)
        panic("Timeline bucket width must be positive");
}

void
Timeline::rescale()
{
    const std::size_t n = buckets_.size();
    for (std::size_t i = 0; i < n / 2; ++i) {
        TimelineBucket merged = buckets_[2 * i];
        merged.foldFrom(buckets_[2 * i + 1]);
        buckets_[i] = merged;
    }
    std::fill(buckets_.begin() + n / 2, buckets_.end(),
              TimelineBucket{});
    widthUs_ *= 2;
    ++rescales_;
}

void
Timeline::coverRange(TimeUs endUs)
{
    const TimeUs n = static_cast<TimeUs>(buckets_.size());
    while (endUs > widthUs_ * n)
        rescale();
}

void
Timeline::coverPoint(TimeUs atUs)
{
    const TimeUs n = static_cast<TimeUs>(buckets_.size());
    while (atUs >= widthUs_ * n)
        rescale();
}

TimelineBucket &
Timeline::bucketAt(TimeUs atUs)
{
    return buckets_[static_cast<std::size_t>(atUs / widthUs_)];
}

void
Timeline::noteSpan(TimeUs endUs)
{
    spanUs_ = std::max(spanUs_, endUs);
}

void
Timeline::addStateResidency(std::size_t state, TimeUs startUs,
                            TimeUs endUs)
{
    if (endUs <= startUs)
        return;
    coverRange(endUs);
    noteSpan(endUs);
    TimeUs at = startUs;
    while (at < endUs) {
        const TimeUs bucketEnd =
            (at / widthUs_ + 1) * widthUs_;
        const TimeUs sliceEnd = std::min(endUs, bucketEnd);
        bucketAt(at).stateUs[state] +=
            static_cast<std::uint64_t>(sliceEnd - at);
        at = sliceEnd;
    }
}

void
Timeline::addEnergy(std::size_t category, TimeUs startUs,
                    TimeUs endUs, double joules)
{
    if (endUs < startUs || joules == 0.0)
        return;
    if (endUs == startUs) {
        coverPoint(startUs);
        noteSpan(startUs);
        bucketAt(startUs).energyJ[category] += joules;
        return;
    }
    coverRange(endUs);
    noteSpan(endUs);
    const double perUs =
        joules / static_cast<double>(endUs - startUs);
    TimeUs at = startUs;
    while (at < endUs) {
        const TimeUs bucketEnd =
            (at / widthUs_ + 1) * widthUs_;
        const TimeUs sliceEnd = std::min(endUs, bucketEnd);
        bucketAt(at).energyJ[category] +=
            perUs * static_cast<double>(sliceEnd - at);
        at = sliceEnd;
    }
}

void
Timeline::countOutcome(std::size_t outcome, TimeUs atUs)
{
    coverPoint(atUs);
    noteSpan(atUs);
    ++bucketAt(atUs).outcomes[outcome];
}

void
Timeline::countShutdown(TimeUs atUs)
{
    coverPoint(atUs);
    noteSpan(atUs);
    ++bucketAt(atUs).shutdowns;
}

void
Timeline::countSpinUp(TimeUs atUs)
{
    coverPoint(atUs);
    noteSpan(atUs);
    ++bucketAt(atUs).spinUps;
}

void
Timeline::sampleTable(TimeUs atUs, std::uint64_t entries)
{
    coverPoint(atUs);
    noteSpan(atUs);
    TimelineBucket &b = bucketAt(atUs);
    b.tableEntries = entries;
    b.tableSampled = true;
}

std::size_t
Timeline::usedBuckets() const
{
    if (spanUs_ == 0)
        return 0;
    // spanUs_ is the last covered instant; +1 makes a point event
    // exactly on a bucket start count that bucket as used.
    const TimeUs last = (spanUs_ - 1) / widthUs_ + 1;
    return std::min(buckets_.size(),
                    static_cast<std::size_t>(last));
}

namespace {

/** Name for row @p i: the caller-supplied table or a number. */
std::string
rowName(const std::vector<std::string> &names, std::size_t i)
{
    if (i < names.size())
        return names[i];
    return std::to_string(i);
}

} // namespace

void
writeTimelineJson(const Timeline &timeline,
                  const TimelineMeta &meta,
                  const std::string &path)
{
    Json doc = Json::object();
    doc["schema"] = "pcap-timeline-v1";
    doc["cell"] = meta.cell;
    doc["mode"] = meta.mode;
    doc["app"] = meta.app;
    doc["policy"] = meta.policy;
    doc["bucket_width_us"] = timeline.bucketWidthUs();
    doc["buckets"] = timeline.bucketCount();
    doc["used_buckets"] = timeline.usedBuckets();
    doc["span_us"] = timeline.spanUs();
    doc["rescales"] = timeline.rescales();

    const std::size_t n = timeline.bucketCount();
    Json &series = doc["series"];
    series = Json::object();

    Json &stateUs = series["state_us"];
    stateUs = Json::object();
    for (std::size_t s = 0; s < kTimelineStates; ++s) {
        Json column = Json::array();
        for (std::size_t i = 0; i < n; ++i)
            column.push(timeline.bucket(i).stateUs[s]);
        stateUs[rowName(meta.stateNames, s)] = std::move(column);
    }

    Json &outcomes = series["outcomes"];
    outcomes = Json::object();
    for (std::size_t o = 0; o < kTimelineOutcomes; ++o) {
        Json column = Json::array();
        for (std::size_t i = 0; i < n; ++i)
            column.push(timeline.bucket(i).outcomes[o]);
        outcomes[rowName(meta.outcomeNames, o)] =
            std::move(column);
    }

    Json &energy = series["energy_j"];
    energy = Json::object();
    for (std::size_t e = 0; e < kTimelineEnergies; ++e) {
        Json column = Json::array();
        for (std::size_t i = 0; i < n; ++i)
            column.push(timeline.bucket(i).energyJ[e]);
        energy[rowName(meta.energyNames, e)] = std::move(column);
    }

    Json shutdowns = Json::array();
    Json spinUps = Json::array();
    Json tableEntries = Json::array();
    for (std::size_t i = 0; i < n; ++i) {
        const TimelineBucket &b = timeline.bucket(i);
        shutdowns.push(b.shutdowns);
        spinUps.push(b.spinUps);
        if (b.tableSampled)
            tableEntries.push(b.tableEntries);
        else
            tableEntries.push(-1);
    }
    series["shutdowns"] = std::move(shutdowns);
    series["spin_ups"] = std::move(spinUps);
    series["table_entries"] = std::move(tableEntries);

    std::ofstream os(path, std::ios::trunc);
    if (!os)
        fatal("cannot open timeline output " + path);
    doc.dump(os);
    os << '\n';
    os.flush();
    if (!os)
        fatal("write failed for timeline output " + path);
}

void
writeTimelineCsv(const Timeline &timeline,
                 const TimelineMeta &meta,
                 const std::string &path)
{
    std::ofstream os(path, std::ios::trunc);
    if (!os)
        fatal("cannot open timeline output " + path);

    os << "bucket,start_us,width_us";
    for (std::size_t s = 0; s < kTimelineStates; ++s)
        os << ',' << rowName(meta.stateNames, s) << "_us";
    for (std::size_t o = 0; o < kTimelineOutcomes; ++o)
        os << ",outcome_" << rowName(meta.outcomeNames, o);
    for (std::size_t e = 0; e < kTimelineEnergies; ++e)
        os << ",energy_" << rowName(meta.energyNames, e) << "_j";
    os << ",shutdowns,spin_ups,table_entries\n";

    const TimeUs width = timeline.bucketWidthUs();
    for (std::size_t i = 0; i < timeline.usedBuckets(); ++i) {
        const TimelineBucket &b = timeline.bucket(i);
        os << i << ',' << static_cast<TimeUs>(i) * width << ','
           << width;
        for (std::size_t s = 0; s < kTimelineStates; ++s)
            os << ',' << b.stateUs[s];
        for (std::size_t o = 0; o < kTimelineOutcomes; ++o)
            os << ',' << b.outcomes[o];
        for (std::size_t e = 0; e < kTimelineEnergies; ++e)
            os << ',' << b.energyJ[e];
        os << ',' << b.shutdowns << ',' << b.spinUps << ',';
        if (b.tableSampled)
            os << b.tableEntries;
        else
            os << -1;
        os << '\n';
    }
    os.flush();
    if (!os)
        fatal("write failed for timeline output " + path);
}

} // namespace pcap::obs
