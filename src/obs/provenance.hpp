/**
 * @file
 * Prediction provenance flight recorder.
 *
 * The metrics subsystem (metrics.hpp) answers "how often did PCAP
 * miss"; this layer answers "which signature, formed by which PC
 * path, over which table entry, missed — and what did it cost". One
 * ProvenanceRecord captures the full causal chain behind one
 * classified idle period. Records are buffered in a bounded ring
 * (flight-recorder semantics: without sinks the oldest records are
 * overwritten; with sinks the ring drains into them so nothing is
 * lost) and serialized to a compact fixed-size binary format plus a
 * JSONL mirror (schema pcap-provenance-v1).
 *
 * This layer is deliberately self-contained: records use plain
 * scalar types only, so obs stays below core/sim in the dependency
 * order. Outcome and source codes mirror sim::IdleOutcome and
 * pred::DecisionSource by value; tests assert the name tables stay
 * in lockstep.
 */

#ifndef PCAP_OBS_PROVENANCE_HPP
#define PCAP_OBS_PROVENANCE_HPP

#include <array>
#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace pcap::obs {

/** Trailing call sites carried per record (matches the core tap). */
constexpr std::size_t kProvenancePathTail = 8;

/** Outcome codes, by value identical to sim::IdleOutcome. */
constexpr std::size_t kProvenanceOutcomes = 6;
constexpr std::uint8_t kOutcomeShort = 0;
constexpr std::uint8_t kOutcomeNotPredicted = 1;
constexpr std::uint8_t kOutcomeHitPrimary = 2;
constexpr std::uint8_t kOutcomeHitBackup = 3;
constexpr std::uint8_t kOutcomeMissPrimary = 4;
constexpr std::uint8_t kOutcomeMissBackup = 5;

/** Flag bits of ProvenanceRecord::flags. */
constexpr std::uint8_t kProvHasDecision = 1u << 0;
constexpr std::uint8_t kProvEntryPresent = 1u << 1;
constexpr std::uint8_t kProvPredicted = 1u << 2;

/** Stable lower-case outcome name; mirrors sim::idleOutcomeName. */
const char *provenanceOutcomeName(std::uint8_t outcome);

/** Stable lower-case source name; mirrors pred::decisionSourceName. */
const char *provenanceSourceName(std::uint8_t source);

/**
 * The full causal record of one classified idle period: who decided
 * (pid), on what evidence (signature, PC path, table entry state),
 * what was predicted (decision time and earliest consent), what
 * actually happened (period bounds, shutdown, outcome) and what it
 * was worth (energy delta).
 */
struct ProvenanceRecord
{
    std::int64_t startUs = 0;       ///< gap opens (last access)
    std::int64_t endUs = 0;         ///< gap closes (next access/end)
    std::int64_t shutdownUs = -1;   ///< spin-down inside, or -1
    std::int64_t decisionTimeUs = -1;   ///< deciding I/O, or -1
    std::int64_t decisionEarliestUs = -1; ///< earliest consent, or -1

    std::int32_t pid = -1;     ///< deciding process, -1 unknown
    std::int32_t execution = 0;

    std::uint32_t signature = 0;  ///< 4-byte arithmetic path sum
    std::uint64_t pathHash = 0;   ///< FNV-1a over the full PC path
    std::uint32_t pathLength = 0; ///< PCs folded into the signature
    std::uint8_t pathTailLength = 0;
    std::uint8_t outcome = kOutcomeShort; ///< sim::IdleOutcome value
    std::uint8_t source = 0; ///< pred::DecisionSource value
    std::uint8_t flags = 0;  ///< kProvHasDecision | ...

    std::array<std::uint32_t, kProvenancePathTail> pathTail{};

    std::uint32_t entryHitsBefore = 0;
    std::uint32_t entryTrainingsBefore = 0;
    std::uint32_t entryHitsAfter = 0;
    std::uint32_t entryTrainingsAfter = 0;

    /** Joules saved (negative: wasted) by the shutdown relative to
     * leaving the disk spinning; 0 when no shutdown fired. */
    double energyDeltaJ = 0.0;

    std::int64_t lengthUs() const { return endUs - startUs; }
    bool hasDecision() const { return flags & kProvHasDecision; }

    bool operator==(const ProvenanceRecord &other) const = default;
};

/** Serialized size of one binary record (fixed; see the writer). */
constexpr std::size_t kProvenanceRecordBytes = 124;

/** Receiver of drained records; implementations are not owned by
 * the recorder and must outlive it. */
class ProvenanceSink
{
  public:
    virtual ~ProvenanceSink() = default;

    virtual void write(const ProvenanceRecord &record) = 0;

    /** Final flush; write failures should surface here at the
     * latest. Called at most once by ProvenanceRecorder::close. */
    virtual void close() {}
};

/**
 * Bounded ring buffer of provenance records.
 *
 * With sinks attached the ring is a batching stage: it drains to
 * every sink when full and on close(), so sinks observe every
 * appended record exactly once, in order. Without sinks it is a true
 * flight recorder: the newest @c capacity records survive and
 * overwritten() counts the rest.
 */
class ProvenanceRecorder
{
  public:
    explicit ProvenanceRecorder(std::size_t capacity = 4096);

    /** Attach @p sink (not owned); must precede the first append. */
    void addSink(ProvenanceSink *sink);

    void append(const ProvenanceRecord &record);

    /** Drain buffered records to the sinks (no-op without sinks). */
    void flush();

    /** Drain, then close every sink. Idempotent. */
    void close();

    std::size_t capacity() const { return capacity_; }
    std::uint64_t appended() const { return appended_; }
    std::uint64_t flushed() const { return flushed_; }
    std::uint64_t overwritten() const { return overwritten_; }

    /** The records currently buffered, oldest first. */
    std::vector<ProvenanceRecord> snapshot() const;

  private:
    std::size_t capacity_;
    std::vector<ProvenanceRecord> ring_;
    std::size_t start_ = 0; ///< index of the oldest buffered record
    std::size_t count_ = 0;
    std::vector<ProvenanceSink *> sinks_;
    std::uint64_t appended_ = 0;
    std::uint64_t flushed_ = 0;
    std::uint64_t overwritten_ = 0;
    bool closed_ = false;
};

/**
 * Compact binary sink: an 16-byte header (magic "PCAPPROV",
 * version, record size) followed by fixed-size little-endian
 * records. ~124 bytes/record vs ~400 for the JSONL mirror.
 */
class BinaryProvenanceWriter final : public ProvenanceSink
{
  public:
    /** Opens @p path and writes the header; fatal() on failure. */
    explicit BinaryProvenanceWriter(const std::string &path);

    void write(const ProvenanceRecord &record) override;
    void close() override;

    std::uint64_t recordCount() const { return records_; }

  private:
    std::ofstream os_;
    std::string path_;
    std::uint64_t records_ = 0;
};

/**
 * JSONL sink, schema pcap-provenance-v1: a header line
 * {"schema":"pcap-provenance-v1","cell":...} followed by one record
 * object per line (see EXPERIMENTS.md for the field reference).
 */
class JsonlProvenanceWriter final : public ProvenanceSink
{
  public:
    /** @p cell names the producing simulation cell in the header. */
    JsonlProvenanceWriter(const std::string &path,
                          const std::string &cell);

    void write(const ProvenanceRecord &record) override;
    void close() override;

    std::uint64_t recordCount() const { return records_; }

  private:
    std::ofstream os_;
    std::string path_;
    std::uint64_t records_ = 0;
};

/**
 * Read back a binary provenance file.
 * @return empty string on success, else a diagnostic.
 */
std::string readProvenanceFile(const std::string &path,
                               std::vector<ProvenanceRecord> &out);

// -- Forensics --------------------------------------------------

/** Everything attributed to one 4-byte signature. */
struct SignatureSummary
{
    std::uint32_t signature = 0;
    std::uint64_t periods = 0; ///< records carrying this signature
    std::array<std::uint64_t, kProvenanceOutcomes> outcomes{};
    double energyDeltaJ = 0.0;

    /** Distinct full paths (by order-sensitive hash) that produced
     * this signature -> {count, first record seen}. Two or more
     * entries expose a signature collision of the arithmetic sum. */
    std::map<std::uint64_t, std::uint64_t> pathCounts;
    std::map<std::uint64_t, ProvenanceRecord> pathExamples;

    std::uint64_t hits() const
    {
        return outcomes[kOutcomeHitPrimary] +
               outcomes[kOutcomeHitBackup];
    }

    std::uint64_t misses() const
    {
        return outcomes[kOutcomeMissPrimary] +
               outcomes[kOutcomeMissBackup];
    }

    bool collides() const { return pathCounts.size() > 1; }
};

/**
 * Aggregation over a provenance log: per-signature accuracy/energy
 * attribution, top mispredictors and collision detection — shared by
 * pcap_explain, the signature_attribution report and the tests.
 */
class ProvenanceForensics
{
  public:
    void add(const ProvenanceRecord &record);

    /** Records folded in so far. */
    std::uint64_t records() const { return records_; }

    /** Records with no decision attached (no PCAP predictor decided
     * for the period — e.g. first I/O of a process). */
    std::uint64_t noDecision() const { return noDecision_; }

    /** Outcome counts over ALL records (with or without decision) —
     * must reconcile exactly with AccuracyStats for the same run. */
    const std::array<std::uint64_t, kProvenanceOutcomes> &
    outcomeTotals() const
    {
        return outcomeTotals_;
    }

    /** Net energy delta over all records (joules). */
    double energyDeltaJ() const { return energyDeltaJ_; }

    /** Per-signature summaries, ordered by signature value. */
    const std::map<std::uint32_t, SignatureSummary> &
    bySignature() const
    {
        return summaries_;
    }

    /** The @p k signatures with the most mispredictions (misses
     * desc, then periods desc, then signature asc), misses > 0. */
    std::vector<const SignatureSummary *>
    topMispredictors(std::size_t k) const;

    /** Signatures formed by more than one distinct PC path —
     * collisions of the 4-byte arithmetic sum. */
    std::vector<const SignatureSummary *> collisions() const;

  private:
    std::map<std::uint32_t, SignatureSummary> summaries_;
    std::array<std::uint64_t, kProvenanceOutcomes> outcomeTotals_{};
    std::uint64_t records_ = 0;
    std::uint64_t noDecision_ = 0;
    double energyDeltaJ_ = 0.0;
};

/** Sink that aggregates instead of serializing — the in-memory
 * consumer behind the signature_attribution report. */
class ForensicsSink final : public ProvenanceSink
{
  public:
    void write(const ProvenanceRecord &record) override
    {
        forensics_.add(record);
    }

    const ProvenanceForensics &forensics() const
    {
        return forensics_;
    }

  private:
    ProvenanceForensics forensics_;
};

} // namespace pcap::obs

#endif // PCAP_OBS_PROVENANCE_HPP
