#include "obs/provenance.hpp"

#include <algorithm>
#include <cstring>

#include "util/logging.hpp"

namespace pcap::obs {

namespace {

constexpr char kMagic[8] = {'P', 'C', 'A', 'P', 'P', 'R', 'O', 'V'};
constexpr std::uint32_t kVersion = 1;

/** Little-endian serialization cursor over a fixed byte buffer. */
class ByteWriter
{
  public:
    ByteWriter(unsigned char *buffer, std::size_t size)
        : buffer_(buffer), size_(size)
    {
    }

    void
    u8(std::uint8_t value)
    {
        if (pos_ >= size_)
            fatal("provenance: record buffer overflow");
        buffer_[pos_++] = value;
    }

    void
    u32(std::uint32_t value)
    {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<std::uint8_t>(value >> (8 * i)));
    }

    void
    u64(std::uint64_t value)
    {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<std::uint8_t>(value >> (8 * i)));
    }

    void i32(std::int32_t value) { u32(static_cast<std::uint32_t>(value)); }
    void i64(std::int64_t value) { u64(static_cast<std::uint64_t>(value)); }

    void
    f64(double value)
    {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(value));
        std::memcpy(&bits, &value, sizeof(bits));
        u64(bits);
    }

    std::size_t position() const { return pos_; }

  private:
    unsigned char *buffer_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/** Little-endian deserialization cursor; sets ok=false on underrun. */
class ByteReader
{
  public:
    ByteReader(const unsigned char *buffer, std::size_t size)
        : buffer_(buffer), size_(size)
    {
    }

    std::uint8_t
    u8()
    {
        if (pos_ >= size_) {
            ok_ = false;
            return 0;
        }
        return buffer_[pos_++];
    }

    std::uint32_t
    u32()
    {
        std::uint32_t value = 0;
        for (int i = 0; i < 4; ++i)
            value |= static_cast<std::uint32_t>(u8()) << (8 * i);
        return value;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t value = 0;
        for (int i = 0; i < 8; ++i)
            value |= static_cast<std::uint64_t>(u8()) << (8 * i);
        return value;
    }

    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double value = 0.0;
        std::memcpy(&value, &bits, sizeof(value));
        return value;
    }

    bool ok() const { return ok_; }

  private:
    const unsigned char *buffer_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

void
encodeRecord(const ProvenanceRecord &record,
             unsigned char (&buffer)[kProvenanceRecordBytes])
{
    ByteWriter w(buffer, sizeof(buffer));
    w.i64(record.startUs);
    w.i64(record.endUs);
    w.i64(record.shutdownUs);
    w.i64(record.decisionTimeUs);
    w.i64(record.decisionEarliestUs);
    w.i32(record.pid);
    w.i32(record.execution);
    w.u32(record.signature);
    w.u64(record.pathHash);
    w.u32(record.pathLength);
    w.u8(record.pathTailLength);
    w.u8(record.outcome);
    w.u8(record.source);
    w.u8(record.flags);
    for (std::uint32_t pc : record.pathTail)
        w.u32(pc);
    w.u32(record.entryHitsBefore);
    w.u32(record.entryTrainingsBefore);
    w.u32(record.entryHitsAfter);
    w.u32(record.entryTrainingsAfter);
    w.f64(record.energyDeltaJ);
    if (w.position() != kProvenanceRecordBytes)
        fatal("provenance: record layout drifted from "
              "kProvenanceRecordBytes");
}

bool
decodeRecord(const unsigned char *buffer, std::size_t size,
             ProvenanceRecord &record)
{
    ByteReader r(buffer, size);
    record.startUs = r.i64();
    record.endUs = r.i64();
    record.shutdownUs = r.i64();
    record.decisionTimeUs = r.i64();
    record.decisionEarliestUs = r.i64();
    record.pid = r.i32();
    record.execution = r.i32();
    record.signature = r.u32();
    record.pathHash = r.u64();
    record.pathLength = r.u32();
    record.pathTailLength = r.u8();
    record.outcome = r.u8();
    record.source = r.u8();
    record.flags = r.u8();
    for (std::uint32_t &pc : record.pathTail)
        pc = r.u32();
    record.entryHitsBefore = r.u32();
    record.entryTrainingsBefore = r.u32();
    record.entryHitsAfter = r.u32();
    record.entryTrainingsAfter = r.u32();
    record.energyDeltaJ = r.f64();
    return r.ok();
}

/** Minimal JSON string escaping (the fields we emit are all plain
 * identifiers, but stay safe against odd cell labels). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

} // namespace

const char *
provenanceOutcomeName(std::uint8_t outcome)
{
    switch (outcome) {
      case kOutcomeShort: return "short";
      case kOutcomeNotPredicted: return "not_predicted";
      case kOutcomeHitPrimary: return "hit_primary";
      case kOutcomeHitBackup: return "hit_backup";
      case kOutcomeMissPrimary: return "miss_primary";
      case kOutcomeMissBackup: return "miss_backup";
      default: return "unknown";
    }
}

const char *
provenanceSourceName(std::uint8_t source)
{
    // Values mirror pred::DecisionSource: None, Primary, Backup.
    switch (source) {
      case 0: return "none";
      case 1: return "primary";
      case 2: return "backup";
      default: return "unknown";
    }
}

ProvenanceRecorder::ProvenanceRecorder(std::size_t capacity)
    : capacity_(capacity != 0 ? capacity : 1)
{
    ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void
ProvenanceRecorder::addSink(ProvenanceSink *sink)
{
    if (!sink)
        fatal("ProvenanceRecorder::addSink: sink must not be null");
    if (appended_ != 0)
        fatal("ProvenanceRecorder::addSink: sinks must be attached "
              "before the first append");
    sinks_.push_back(sink);
}

void
ProvenanceRecorder::append(const ProvenanceRecord &record)
{
    if (closed_)
        fatal("ProvenanceRecorder::append after close");
    ++appended_;
    if (count_ < capacity_) {
        const std::size_t slot = (start_ + count_) % capacity_;
        if (slot < ring_.size())
            ring_[slot] = record;
        else
            ring_.push_back(record);
        ++count_;
    } else if (!sinks_.empty()) {
        // Batching mode: drain so nothing is lost, then buffer.
        flush();
        ring_[0] = record;
        start_ = 0;
        count_ = 1;
    } else {
        // Flight-recorder mode: overwrite the oldest record.
        ring_[start_] = record;
        start_ = (start_ + 1) % capacity_;
        ++overwritten_;
    }
}

void
ProvenanceRecorder::flush()
{
    if (sinks_.empty()) {
        // Nothing can consume the records; keep them buffered so the
        // newest window stays inspectable via snapshot().
        return;
    }
    for (std::size_t i = 0; i < count_; ++i) {
        const ProvenanceRecord &record =
            ring_[(start_ + i) % capacity_];
        for (ProvenanceSink *sink : sinks_)
            sink->write(record);
        ++flushed_;
    }
    start_ = 0;
    count_ = 0;
}

void
ProvenanceRecorder::close()
{
    if (closed_)
        return;
    flush();
    for (ProvenanceSink *sink : sinks_)
        sink->close();
    closed_ = true;
}

std::vector<ProvenanceRecord>
ProvenanceRecorder::snapshot() const
{
    std::vector<ProvenanceRecord> out;
    out.reserve(count_);
    for (std::size_t i = 0; i < count_; ++i)
        out.push_back(ring_[(start_ + i) % capacity_]);
    return out;
}

BinaryProvenanceWriter::BinaryProvenanceWriter(const std::string &path)
    : os_(path, std::ios::binary | std::ios::trunc), path_(path)
{
    if (!os_)
        fatal("BinaryProvenanceWriter: cannot open " + path);
    os_.write(kMagic, sizeof(kMagic));
    unsigned char header[8];
    ByteWriter w(header, sizeof(header));
    w.u32(kVersion);
    w.u32(static_cast<std::uint32_t>(kProvenanceRecordBytes));
    os_.write(reinterpret_cast<const char *>(header), sizeof(header));
    if (!os_)
        fatal("BinaryProvenanceWriter: write failed on " + path);
}

void
BinaryProvenanceWriter::write(const ProvenanceRecord &record)
{
    unsigned char buffer[kProvenanceRecordBytes];
    encodeRecord(record, buffer);
    os_.write(reinterpret_cast<const char *>(buffer), sizeof(buffer));
    if (!os_)
        fatal("BinaryProvenanceWriter: write failed on " + path_);
    ++records_;
}

void
BinaryProvenanceWriter::close()
{
    if (!os_.is_open())
        return;
    os_.flush();
    if (!os_)
        fatal("BinaryProvenanceWriter: flush failed on " + path_);
    os_.close();
}

JsonlProvenanceWriter::JsonlProvenanceWriter(const std::string &path,
                                             const std::string &cell)
    : os_(path, std::ios::trunc), path_(path)
{
    if (!os_)
        fatal("JsonlProvenanceWriter: cannot open " + path);
    os_ << "{\"schema\":\"pcap-provenance-v1\",\"cell\":\""
        << jsonEscape(cell) << "\",\"path_tail\":"
        << kProvenancePathTail << "}\n";
    if (!os_)
        fatal("JsonlProvenanceWriter: write failed on " + path);
}

void
JsonlProvenanceWriter::write(const ProvenanceRecord &record)
{
    os_ << "{\"start_us\":" << record.startUs
        << ",\"end_us\":" << record.endUs
        << ",\"length_us\":" << record.lengthUs()
        << ",\"outcome\":\"" << provenanceOutcomeName(record.outcome)
        << "\",\"pid\":" << record.pid
        << ",\"execution\":" << record.execution
        << ",\"energy_delta_j\":" << record.energyDeltaJ;
    if (record.shutdownUs >= 0) {
        os_ << ",\"shutdown_us\":" << record.shutdownUs
            << ",\"source\":\""
            << provenanceSourceName(record.source) << '"';
    }
    if (record.hasDecision()) {
        os_ << ",\"signature\":" << record.signature
            << ",\"path_hash\":" << record.pathHash
            << ",\"path_length\":" << record.pathLength
            << ",\"decision_time_us\":" << record.decisionTimeUs
            << ",\"decision_earliest_us\":"
            << record.decisionEarliestUs
            << ",\"predicted\":"
            << ((record.flags & kProvPredicted) ? "true" : "false")
            << ",\"path_tail\":[";
        for (std::uint8_t i = 0; i < record.pathTailLength; ++i) {
            if (i)
                os_ << ',';
            os_ << record.pathTail[i];
        }
        os_ << ']';
        if (record.flags & kProvEntryPresent) {
            os_ << ",\"entry\":{\"hits_before\":"
                << record.entryHitsBefore
                << ",\"trainings_before\":"
                << record.entryTrainingsBefore
                << ",\"hits_after\":" << record.entryHitsAfter
                << ",\"trainings_after\":"
                << record.entryTrainingsAfter << '}';
        }
    }
    os_ << "}\n";
    if (!os_)
        fatal("JsonlProvenanceWriter: write failed on " + path_);
    ++records_;
}

void
JsonlProvenanceWriter::close()
{
    if (!os_.is_open())
        return;
    os_.flush();
    if (!os_)
        fatal("JsonlProvenanceWriter: flush failed on " + path_);
    os_.close();
}

std::string
readProvenanceFile(const std::string &path,
                   std::vector<ProvenanceRecord> &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return "cannot open " + path;

    char magic[sizeof(kMagic)];
    if (!is.read(magic, sizeof(magic)) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        return path + ": not a provenance file (bad magic)";
    }

    unsigned char header[8];
    if (!is.read(reinterpret_cast<char *>(header), sizeof(header)))
        return path + ": truncated header";
    ByteReader r(header, sizeof(header));
    const std::uint32_t version = r.u32();
    const std::uint32_t record_bytes = r.u32();
    if (version != kVersion) {
        return path + ": unsupported version " +
               std::to_string(version);
    }
    if (record_bytes != kProvenanceRecordBytes) {
        return path + ": record size " + std::to_string(record_bytes) +
               " != expected " +
               std::to_string(kProvenanceRecordBytes);
    }

    unsigned char buffer[kProvenanceRecordBytes];
    while (is.read(reinterpret_cast<char *>(buffer), sizeof(buffer))) {
        ProvenanceRecord record;
        if (!decodeRecord(buffer, sizeof(buffer), record))
            return path + ": malformed record";
        out.push_back(record);
    }
    if (is.gcount() != 0)
        return path + ": trailing partial record";
    return {};
}

void
ProvenanceForensics::add(const ProvenanceRecord &record)
{
    ++records_;
    if (record.outcome < kProvenanceOutcomes)
        ++outcomeTotals_[record.outcome];
    energyDeltaJ_ += record.energyDeltaJ;

    if (!record.hasDecision()) {
        ++noDecision_;
        return;
    }

    SignatureSummary &summary = summaries_[record.signature];
    summary.signature = record.signature;
    ++summary.periods;
    if (record.outcome < kProvenanceOutcomes)
        ++summary.outcomes[record.outcome];
    summary.energyDeltaJ += record.energyDeltaJ;
    if (++summary.pathCounts[record.pathHash] == 1)
        summary.pathExamples.emplace(record.pathHash, record);
}

std::vector<const SignatureSummary *>
ProvenanceForensics::topMispredictors(std::size_t k) const
{
    std::vector<const SignatureSummary *> ranked;
    for (const auto &[signature, summary] : summaries_) {
        if (summary.misses() > 0)
            ranked.push_back(&summary);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const SignatureSummary *a, const SignatureSummary *b) {
                  if (a->misses() != b->misses())
                      return a->misses() > b->misses();
                  if (a->periods != b->periods)
                      return a->periods > b->periods;
                  return a->signature < b->signature;
              });
    if (ranked.size() > k)
        ranked.resize(k);
    return ranked;
}

std::vector<const SignatureSummary *>
ProvenanceForensics::collisions() const
{
    std::vector<const SignatureSummary *> out;
    for (const auto &[signature, summary] : summaries_) {
        if (summary.collides())
            out.push_back(&summary);
    }
    return out;
}

} // namespace pcap::obs
