/**
 * @file
 * Metrics registry: the observability core every simulation layer
 * records into.
 *
 * Four metric kinds cover the evaluation's needs — monotone Counters
 * (events, idle periods, cache hits), Gauges (table occupancy,
 * energy joules), fixed-bucket Histograms (idle-period lengths) and
 * PhaseTimers (wall time per phase or cell). All four are lock-free
 * atomics on the hot path: instrumented code resolves its metric
 * once (one mutex-guarded registry lookup) and afterwards pays only
 * relaxed atomic operations per event.
 *
 * Series identity is (name, sorted label set), Prometheus-style.
 * Per-run scoping for the parallel experiment engine comes from
 * labels: every simulation cell instruments through a ScopedMetrics
 * carrying its (config, mode, app, policy) labels, so concurrent
 * cells touch disjoint metric objects and never contend or
 * cross-contaminate.
 */

#ifndef PCAP_OBS_METRICS_HPP
#define PCAP_OBS_METRICS_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pcap::obs {

/** One (key, value) label; series carry a sorted set of these. */
using Label = std::pair<std::string, std::string>;
using Labels = std::vector<Label>;

/** Monotone event counter. inc() is one relaxed atomic add. */
class Counter
{
  public:
    void
    inc(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Point-in-time or accumulating floating-point value. */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    void
    add(double v)
    {
        value_.fetch_add(v, std::memory_order_relaxed);
    }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram with Prometheus "le" semantics: a sample v
 * lands in the first bucket whose upper bound satisfies v <= upper;
 * an open overflow bucket is appended automatically. Buckets are
 * fixed at construction, so observe() is a short scan plus relaxed
 * atomic increments — no allocation, no locks.
 */
class Histogram
{
  public:
    /** @param uppers Strictly ascending inclusive upper bounds. */
    explicit Histogram(std::vector<double> uppers);

    void observe(double v);

    /** Bucket count including the open overflow bucket. */
    std::size_t bucketCount() const { return buckets_.size(); }

    /** Inclusive upper bound of bucket @p i (+inf for the last). */
    double upper(std::size_t i) const;

    /** Samples in bucket @p i alone (not cumulative). */
    std::uint64_t bucketValue(std::size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    /**
     * Fold a pre-bucketed batch in: per-bucket counts (same layout,
     * overflow last), total count and sum. Lets single-threaded
     * collectors accumulate into plain locals and pay the atomics
     * once per batch instead of per sample. Panics on a layout
     * mismatch.
     */
    void merge(const std::vector<std::uint64_t> &bucketCounts,
               std::uint64_t count, double sum);

  private:
    std::vector<double> uppers_;
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/** Accumulated wall time of one repeatedly-entered phase. */
class PhaseTimer
{
  public:
    /** RAII lap: adds the scope's lifetime to the timer. */
    class Scope
    {
      public:
        explicit Scope(PhaseTimer &timer)
            : timer_(&timer),
              start_(std::chrono::steady_clock::now())
        {
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

        ~Scope()
        {
            const auto elapsed =
                std::chrono::steady_clock::now() - start_;
            timer_->addSeconds(
                std::chrono::duration<double>(elapsed).count());
        }

      private:
        PhaseTimer *timer_;
        std::chrono::steady_clock::time_point start_;
    };

    /** Start one RAII-measured lap. */
    Scope measure() { return Scope(*this); }

    void
    addSeconds(double s)
    {
        seconds_.fetch_add(s, std::memory_order_relaxed);
        laps_.fetch_add(1, std::memory_order_relaxed);
    }

    double seconds() const
    {
        return seconds_.load(std::memory_order_relaxed);
    }

    std::uint64_t laps() const
    {
        return laps_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> seconds_{0.0};
    std::atomic<std::uint64_t> laps_{0};
};

/** What kind of metric a series is (drives export formatting). */
enum class MetricKind { Counter, Gauge, Histogram, Timer };

/** Stable lower-case kind name ("counter", ...). */
const char *metricKindName(MetricKind kind);

/**
 * Thread-safe create-or-get store of metric series.
 *
 * Any thread may call the accessors at any time; the first call for
 * a given (name, labels) identity creates the series, later calls
 * return the same object. Returned references stay valid for the
 * registry's lifetime, so hot paths resolve once and then operate
 * lock-free. Requesting an existing series with a different kind
 * panics — that is a programming error, not a runtime condition.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter &counter(const std::string &name,
                     const Labels &labels = {});
    Gauge &gauge(const std::string &name, const Labels &labels = {});

    /** @p uppers only applies when the series is created; a second
     * caller gets the existing buckets. */
    Histogram &histogram(const std::string &name,
                         const std::vector<double> &uppers,
                         const Labels &labels = {});
    PhaseTimer &timer(const std::string &name,
                      const Labels &labels = {});

    /** Attach help text to a metric name (first writer wins). */
    void describe(const std::string &name, const std::string &help);

    /** Help text of @p name; empty when never described. */
    std::string helpFor(const std::string &name) const;

    /** One exported series (pointers into the registry). */
    struct Series
    {
        std::string name;
        Labels labels; ///< canonically sorted by key
        MetricKind kind = MetricKind::Counter;
        const Counter *counter = nullptr;
        const Gauge *gauge = nullptr;
        const Histogram *histogram = nullptr;
        const PhaseTimer *timer = nullptr;
    };

    /**
     * Deterministic view of every series, sorted by (name, labels)
     * — independent of registration order, so exports from parallel
     * runs diff cleanly.
     */
    std::vector<Series> snapshot() const;

    /** Number of registered series. */
    std::size_t seriesCount() const;

  private:
    struct Entry
    {
        std::string name;
        Labels labels;
        MetricKind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
        std::unique_ptr<PhaseTimer> timer;
    };

    /** Find-or-create the entry of (name, labels); panics when an
     * existing entry has a different kind. */
    Entry &entry(const std::string &name, const Labels &labels,
                 MetricKind kind,
                 const std::vector<double> *uppers);

    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::unique_ptr<Entry>> entries_;
    std::map<std::string, std::string> help_;
};

/**
 * A registry handle carrying an implicit label set — the per-run
 * scope of one simulation cell or layer. Scopes are cheap values:
 * copy them, extend them with with(), pass them down. A
 * default-constructed scope is disabled: metrics resolve against a
 * process-wide scratch registry that is never exported, so
 * instrumented code needs no null checks.
 */
class ScopedMetrics
{
  public:
    ScopedMetrics() = default;
    explicit ScopedMetrics(MetricsRegistry *registry,
                           Labels labels = {})
        : registry_(registry), labels_(std::move(labels))
    {
    }

    /** False for default-constructed (scratch-backed) scopes. */
    bool enabled() const { return registry_ != nullptr; }

    /** The scope's label set. */
    const Labels &labels() const { return labels_; }

    /** A child scope with @p extra labels appended. */
    ScopedMetrics with(const Labels &extra) const;

    Counter &counter(const std::string &name,
                     const Labels &extra = {}) const;
    Gauge &gauge(const std::string &name,
                 const Labels &extra = {}) const;
    Histogram &histogram(const std::string &name,
                         const std::vector<double> &uppers,
                         const Labels &extra = {}) const;
    PhaseTimer &timer(const std::string &name,
                      const Labels &extra = {}) const;

  private:
    MetricsRegistry &registry() const;
    Labels merged(const Labels &extra) const;

    MetricsRegistry *registry_ = nullptr;
    Labels labels_;
};

} // namespace pcap::obs

#endif // PCAP_OBS_METRICS_HPP
