#include "obs/sketch.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.hpp"

namespace pcap::obs {

LogSketch::LogSketch(double relativeAccuracy)
    : alpha_(relativeAccuracy)
{
    if (!(relativeAccuracy > 0.0 && relativeAccuracy < 1.0))
        panic("LogSketch accuracy must be in (0, 1)");
    logGamma_ =
        std::log((1.0 + alpha_) / (1.0 - alpha_));
}

std::int32_t
LogSketch::indexOf(double magnitude) const
{
    return static_cast<std::int32_t>(
        std::ceil(std::log(magnitude) / logGamma_));
}

double
LogSketch::representative(std::int32_t index) const
{
    // Bucket i covers (gamma^(i-1), gamma^i]; the midpoint in log
    // space, 2 * gamma^i / (gamma + 1), is within alpha of every
    // value in the bucket.
    const double gamma = std::exp(logGamma_);
    return 2.0 * std::exp(logGamma_ * index) / (gamma + 1.0);
}

void
LogSketch::add(double value)
{
    if (std::isnan(value))
        panic("LogSketch::add: NaN value");
    if (std::abs(value) <= kZeroEpsilon)
        ++zeros_;
    else if (value > 0.0)
        ++positive_[indexOf(value)];
    else
        ++negative_[indexOf(-value)];
    ++count_;
}

void
LogSketch::merge(const LogSketch &other)
{
    if (other.alpha_ != alpha_)
        panic("LogSketch::merge: accuracy mismatch");
    for (const auto &[index, n] : other.positive_)
        positive_[index] += n;
    for (const auto &[index, n] : other.negative_)
        negative_[index] += n;
    zeros_ += other.zeros_;
    count_ += other.count_;
}

double
LogSketch::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    rank = std::clamp<std::uint64_t>(rank, 1, count_);

    // Ascending value order: most-negative first (descending
    // mirror index), then zeros, then positives ascending.
    std::uint64_t seen = 0;
    for (auto it = negative_.rbegin(); it != negative_.rend();
         ++it) {
        seen += it->second;
        if (seen >= rank)
            return -representative(it->first);
    }
    seen += zeros_;
    if (seen >= rank)
        return 0.0;
    for (const auto &[index, n] : positive_) {
        seen += n;
        if (seen >= rank)
            return representative(index);
    }
    panic("LogSketch::quantile: rank beyond bucket counts");
}

double
LogSketch::medianAbsDeviation() const
{
    if (count_ == 0)
        return 0.0;
    const double median = quantile(0.5);

    std::vector<std::pair<double, std::uint64_t>> deviations;
    deviations.reserve(positive_.size() + negative_.size() + 1);
    for (const auto &[index, n] : negative_)
        deviations.emplace_back(
            std::abs(-representative(index) - median), n);
    if (zeros_ > 0)
        deviations.emplace_back(std::abs(median), zeros_);
    for (const auto &[index, n] : positive_)
        deviations.emplace_back(
            std::abs(representative(index) - median), n);
    std::sort(deviations.begin(), deviations.end());

    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(0.5 * static_cast<double>(count_)));
    rank = std::clamp<std::uint64_t>(rank, 1, count_);
    std::uint64_t seen = 0;
    for (const auto &[deviation, n] : deviations) {
        seen += n;
        if (seen >= rank)
            return deviation;
    }
    panic("LogSketch::medianAbsDeviation: rank beyond counts");
}

} // namespace pcap::obs
