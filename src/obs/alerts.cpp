#include "obs/alerts.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/json.hpp"
#include "util/logging.hpp"

namespace pcap::obs {

namespace {

/** Counters holding replayed simulated span in microseconds — the
 * threshold/ratio evidence base (see the file docs in alerts.hpp). */
constexpr const char *kSpanCounters[] = {
    "pcap_sim_input_span_us_total",
    "pcap_fleet_sim_span_us_total",
};

bool
labelMatches(const Labels &series, const std::string &key,
             const std::string &pattern)
{
    for (const auto &[k, v] : series) {
        if (k != key)
            continue;
        // '|'-separated alternatives in the selector value.
        std::size_t start = 0;
        while (start <= pattern.size()) {
            const std::size_t bar = pattern.find('|', start);
            const std::size_t end =
                bar == std::string::npos ? pattern.size() : bar;
            if (v == pattern.substr(start, end - start))
                return true;
            if (bar == std::string::npos)
                break;
            start = bar + 1;
        }
        return false;
    }
    return false;
}

bool
selectorMatches(const MetricsRegistry::Series &series,
                const MetricSelector &selector)
{
    if (series.name != selector.metric)
        return false;
    for (const auto &[key, pattern] : selector.labels)
        if (!labelMatches(series.labels, key, pattern))
            return false;
    return true;
}

double
seriesScalar(const MetricsRegistry::Series &series)
{
    switch (series.kind) {
      case MetricKind::Counter:
        return static_cast<double>(series.counter->value());
      case MetricKind::Gauge: return series.gauge->value();
      case MetricKind::Histogram: return series.histogram->sum();
      case MetricKind::Timer: return series.timer->seconds();
    }
    return 0.0;
}

/** Aggregate every matching series; false when none matched. */
bool
aggregate(const std::vector<MetricsRegistry::Series> &snapshot,
          const MetricSelector &selector, double &out)
{
    std::size_t matched = 0;
    double sum = 0.0, low = 0.0, high = 0.0;
    for (const MetricsRegistry::Series &series : snapshot) {
        if (!selectorMatches(series, selector))
            continue;
        const double v = seriesScalar(series);
        if (matched == 0) {
            low = high = v;
        } else {
            low = std::min(low, v);
            high = std::max(high, v);
        }
        sum += v;
        ++matched;
    }
    if (matched == 0)
        return false;
    switch (selector.agg) {
      case MetricAgg::Sum: out = sum; break;
      case MetricAgg::Min: out = low; break;
      case MetricAgg::Max: out = high; break;
      case MetricAgg::Avg:
        out = sum / static_cast<double>(matched);
        break;
    }
    return true;
}

std::string
describeSelector(const MetricSelector &selector)
{
    std::string text = selector.metric;
    if (!selector.labels.empty()) {
        text += "{";
        for (std::size_t i = 0; i < selector.labels.size(); ++i) {
            if (i)
                text += ",";
            text += selector.labels[i].first + "=\"" +
                    selector.labels[i].second + "\"";
        }
        text += "}";
    }
    return text;
}

// -- rules-file parsing ----------------------------------------

/** Collects the first problem; parsing stops reporting after it. */
struct RuleErrors
{
    std::string error;

    void add(const std::string &context, const std::string &problem)
    {
        if (error.empty())
            error = context + ": " + problem;
    }

    bool ok() const { return error.empty(); }
};

bool
parseSeverity(const std::string &name, AlertSeverity &out)
{
    if (name == "warn" || name == "warning") {
        out = AlertSeverity::Warn;
        return true;
    }
    if (name == "critical") {
        out = AlertSeverity::Critical;
        return true;
    }
    return false;
}

bool
parseComparator(const std::string &name, AlertComparator &out)
{
    if (name == ">") {
        out = AlertComparator::Gt;
        return true;
    }
    if (name == ">=") {
        out = AlertComparator::Ge;
        return true;
    }
    if (name == "<") {
        out = AlertComparator::Lt;
        return true;
    }
    if (name == "<=") {
        out = AlertComparator::Le;
        return true;
    }
    return false;
}

bool
parseAgg(const std::string &name, MetricAgg &out)
{
    if (name == "sum") {
        out = MetricAgg::Sum;
        return true;
    }
    if (name == "min") {
        out = MetricAgg::Min;
        return true;
    }
    if (name == "max") {
        out = MetricAgg::Max;
        return true;
    }
    if (name == "avg") {
        out = MetricAgg::Avg;
        return true;
    }
    return false;
}

void
parseSelector(const Json &json, const std::string &context,
              MetricSelector &out, RuleErrors &errors)
{
    if (!json.isObject()) {
        errors.add(context, "selector must be an object");
        return;
    }
    const Json *name = json.find("name");
    if (!name || !name->isString() || name->asString().empty()) {
        errors.add(context, "selector needs a \"name\" string");
        return;
    }
    out.metric = name->asString();
    if (const Json *labels = json.find("labels")) {
        if (!labels->isObject()) {
            errors.add(context, "\"labels\" must be an object");
            return;
        }
        for (const std::string &key : labels->keys()) {
            const Json *value = labels->find(key);
            if (!value->isString()) {
                errors.add(context, "label \"" + key +
                                        "\" must be a string");
                return;
            }
            out.labels.emplace_back(key, value->asString());
        }
    }
    if (const Json *agg = json.find("agg")) {
        if (!agg->isString() ||
            !parseAgg(agg->asString(), out.agg)) {
            errors.add(context,
                       "\"agg\" must be sum|min|max|avg");
            return;
        }
    }
}

void
parseRule(const Json &json, std::size_t index, AlertRule &out,
          RuleErrors &errors)
{
    const std::string slot = "rule " + std::to_string(index);
    if (!json.isObject()) {
        errors.add(slot, "must be an object");
        return;
    }
    const Json *name = json.find("name");
    if (!name || !name->isString() || name->asString().empty()) {
        errors.add(slot, "needs a \"name\" string");
        return;
    }
    out.name = name->asString();
    const std::string context = "rule \"" + out.name + "\"";

    if (const Json *severity = json.find("severity")) {
        if (!severity->isString() ||
            !parseSeverity(severity->asString(), out.severity)) {
            errors.add(context,
                       "\"severity\" must be warn|critical");
            return;
        }
    }
    const Json *op = json.find("op");
    if (!op || !op->isString() ||
        !parseComparator(op->asString(), out.op)) {
        errors.add(context, "needs an \"op\" of >|>=|<|<=");
        return;
    }
    const Json *value = json.find("value");
    if (!value || !value->isNumber()) {
        errors.add(context, "needs a numeric \"value\"");
        return;
    }
    out.value = value->asDouble();
    if (const Json *forSim = json.find("for_sim_seconds")) {
        if (!forSim->isNumber() || forSim->asDouble() < 0.0) {
            errors.add(context, "\"for_sim_seconds\" must be a "
                                "non-negative number");
            return;
        }
        out.forSimSeconds = forSim->asDouble();
    }

    // The condition kind is inferred from which key is present.
    const Json *metric = json.find("metric");
    const Json *ratio = json.find("ratio");
    const Json *quantile = json.find("quantile");
    const int kinds = (metric ? 1 : 0) + (ratio ? 1 : 0) +
                      (quantile ? 1 : 0);
    if (kinds != 1) {
        errors.add(context, "needs exactly one of \"metric\", "
                            "\"ratio\" or \"quantile\"");
        return;
    }
    if (metric) {
        out.kind = AlertKind::Threshold;
        parseSelector(*metric, context, out.metric, errors);
        return;
    }
    if (ratio) {
        out.kind = AlertKind::Ratio;
        if (!ratio->isObject()) {
            errors.add(context, "\"ratio\" must be an object");
            return;
        }
        const Json *numerator = ratio->find("numerator");
        const Json *denominator = ratio->find("denominator");
        if (!numerator || !denominator) {
            errors.add(context, "\"ratio\" needs \"numerator\" "
                                "and \"denominator\"");
            return;
        }
        parseSelector(*numerator, context + " numerator",
                      out.numerator, errors);
        parseSelector(*denominator, context + " denominator",
                      out.denominator, errors);
        return;
    }
    out.kind = AlertKind::Quantile;
    if (!quantile->isObject()) {
        errors.add(context, "\"quantile\" must be an object");
        return;
    }
    const Json *distribution = quantile->find("distribution");
    if (!distribution || !distribution->isString() ||
        distribution->asString().empty()) {
        errors.add(context, "\"quantile\" needs a "
                            "\"distribution\" string");
        return;
    }
    out.distribution = distribution->asString();
    if (const Json *q = quantile->find("q")) {
        if (!q->isNumber() || q->asDouble() <= 0.0 ||
            q->asDouble() > 1.0) {
            errors.add(context, "\"q\" must be in (0, 1]");
            return;
        }
        out.q = q->asDouble();
    }
    if (const Json *policy = quantile->find("policy")) {
        if (!policy->isString()) {
            errors.add(context, "\"policy\" must be a string");
            return;
        }
        out.policy = policy->asString();
    }
}

} // namespace

const char *
alertSeverityName(AlertSeverity severity)
{
    switch (severity) {
      case AlertSeverity::Warn: return "warn";
      case AlertSeverity::Critical: return "critical";
    }
    return "?";
}

const char *
alertComparatorName(AlertComparator op)
{
    switch (op) {
      case AlertComparator::Gt: return ">";
      case AlertComparator::Ge: return ">=";
      case AlertComparator::Lt: return "<";
      case AlertComparator::Le: return "<=";
    }
    return "?";
}

bool
alertCompare(AlertComparator op, double value, double threshold)
{
    switch (op) {
      case AlertComparator::Gt: return value > threshold;
      case AlertComparator::Ge: return value >= threshold;
      case AlertComparator::Lt: return value < threshold;
      case AlertComparator::Le: return value <= threshold;
    }
    return false;
}

const char *
alertKindName(AlertKind kind)
{
    switch (kind) {
      case AlertKind::Threshold: return "threshold";
      case AlertKind::Ratio: return "ratio";
      case AlertKind::Quantile: return "quantile";
    }
    return "?";
}

const char *
metricAggName(MetricAgg agg)
{
    switch (agg) {
      case MetricAgg::Sum: return "sum";
      case MetricAgg::Min: return "min";
      case MetricAgg::Max: return "max";
      case MetricAgg::Avg: return "avg";
    }
    return "?";
}

const char *
alertStatusName(AlertStatus status)
{
    switch (status) {
      case AlertStatus::Ok: return "ok";
      case AlertStatus::Skipped: return "skipped";
      case AlertStatus::Pending: return "pending";
      case AlertStatus::Fired: return "fired";
    }
    return "?";
}

AlertRulesLoad
parseAlertRules(const std::string &jsonText)
{
    AlertRulesLoad load;
    Json doc;
    std::string parseError;
    if (!Json::parse(jsonText, doc, &parseError)) {
        load.error = "rules file: " + parseError;
        return load;
    }
    if (!doc.isObject()) {
        load.error = "rules file: top level must be an object";
        return load;
    }
    const Json *schema = doc.find("schema");
    if (!schema || !schema->isString() ||
        schema->asString() != "pcap-alert-rules-v1") {
        load.error = "rules file: \"schema\" must be "
                     "\"pcap-alert-rules-v1\"";
        return load;
    }
    const Json *rules = doc.find("rules");
    if (!rules || !rules->isArray()) {
        load.error = "rules file: needs a \"rules\" array";
        return load;
    }
    RuleErrors errors;
    for (std::size_t i = 0; i < rules->size(); ++i) {
        AlertRule rule;
        parseRule(rules->at(i), i, rule, errors);
        if (!errors.ok())
            break;
        for (const AlertRule &existing : load.rules)
            if (existing.name == rule.name)
                errors.add("rule \"" + rule.name + "\"",
                           "duplicate rule name");
        if (!errors.ok())
            break;
        load.rules.push_back(std::move(rule));
    }
    load.error = errors.error;
    if (load.ok() && load.rules.empty())
        load.error = "rules file: \"rules\" is empty";
    return load;
}

AlertRulesLoad
loadAlertRulesFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        AlertRulesLoad load;
        load.error = "cannot read " + path;
        return load;
    }
    std::ostringstream text;
    text << is.rdbuf();
    AlertRulesLoad load = parseAlertRules(text.str());
    if (!load.ok())
        load.error = path + ": " + load.error;
    return load;
}

AlertEngine::AlertEngine(std::vector<AlertRule> rules)
    : rules_(std::move(rules)), outcomes_(rules_.size()),
      sawDistribution_(rules_.size(), false)
{
}

void
AlertEngine::addQuantileEvidence(const std::string &distribution,
                                 const std::string &policy,
                                 const LogSketch &sketch,
                                 double simSeconds)
{
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        const AlertRule &rule = rules_[i];
        if (rule.kind != AlertKind::Quantile ||
            rule.distribution != distribution ||
            (!rule.policy.empty() && rule.policy != policy) ||
            sketch.empty())
            continue;
        if (alertCompare(rule.op, sketch.quantile(rule.q),
                         rule.value))
            outcomes_[i].evidenceSimSeconds += simSeconds;
    }
}

void
AlertEngine::setQuantileValue(const std::string &distribution,
                              const std::string &policy,
                              const LogSketch &sketch)
{
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        const AlertRule &rule = rules_[i];
        if (rule.kind != AlertKind::Quantile ||
            rule.distribution != distribution ||
            (!rule.policy.empty() && rule.policy != policy) ||
            sketch.empty())
            continue;
        AlertOutcome &outcome = outcomes_[i];
        const double q = sketch.quantile(rule.q);
        // With several matching distributions (empty policy filter),
        // the most-breaching value is the one judged: the max for
        // ">"-style rules, the min for "<"-style ones.
        const bool moreBreaching =
            rule.op == AlertComparator::Gt ||
                    rule.op == AlertComparator::Ge
                ? q > outcome.value
                : q < outcome.value;
        if (!outcome.hasValue || moreBreaching) {
            outcome.value = q;
            outcome.hasValue = true;
        }
        sawDistribution_[i] = true;
    }
}

void
AlertEngine::finalize(const MetricsRegistry &registry)
{
    if (finalized_)
        panic("AlertEngine: finalize() called twice");
    finalized_ = true;

    const std::vector<MetricsRegistry::Series> snapshot =
        registry.snapshot();

    // The run's replayed simulated span: the threshold/ratio
    // evidence base. Counters sum in snapshot order (sorted by
    // name+labels) — deterministic for every thread count.
    double runSpanSeconds = 0.0;
    for (const MetricsRegistry::Series &series : snapshot)
        for (const char *name : kSpanCounters)
            if (series.name == name &&
                series.kind == MetricKind::Counter)
                runSpanSeconds +=
                    static_cast<double>(series.counter->value()) /
                    1e6;

    for (std::size_t i = 0; i < rules_.size(); ++i) {
        const AlertRule &rule = rules_[i];
        AlertOutcome &outcome = outcomes_[i];
        if (rule.kind == AlertKind::Threshold ||
            rule.kind == AlertKind::Ratio) {
            outcome.evidenceSimSeconds = runSpanSeconds;
            if (rule.kind == AlertKind::Threshold) {
                double v = 0.0;
                if (!aggregate(snapshot, rule.metric, v)) {
                    outcome.status = AlertStatus::Skipped;
                    outcome.detail =
                        "no series matched " +
                        describeSelector(rule.metric);
                    continue;
                }
                outcome.value = v;
            } else {
                double num = 0.0, den = 0.0;
                if (!aggregate(snapshot, rule.numerator, num)) {
                    outcome.status = AlertStatus::Skipped;
                    outcome.detail =
                        "no series matched numerator " +
                        describeSelector(rule.numerator);
                    continue;
                }
                if (!aggregate(snapshot, rule.denominator, den)) {
                    outcome.status = AlertStatus::Skipped;
                    outcome.detail =
                        "no series matched denominator " +
                        describeSelector(rule.denominator);
                    continue;
                }
                if (den == 0.0) {
                    outcome.status = AlertStatus::Skipped;
                    outcome.detail =
                        "denominator " +
                        describeSelector(rule.denominator) +
                        " is zero";
                    continue;
                }
                outcome.value = num / den;
            }
            outcome.hasValue = true;
        } else if (!sawDistribution_[i]) {
            outcome.status = AlertStatus::Skipped;
            outcome.detail = "no fleet distribution \"" +
                             rule.distribution + "\" observed";
            continue;
        }

        if (!alertCompare(rule.op, outcome.value, rule.value)) {
            outcome.status = AlertStatus::Ok;
            continue;
        }
        if (rule.forSimSeconds > 0.0 &&
            outcome.evidenceSimSeconds < rule.forSimSeconds) {
            outcome.status = AlertStatus::Pending;
            std::ostringstream detail;
            detail << "breached, but backed by only "
                   << outcome.evidenceSimSeconds
                   << " of the required " << rule.forSimSeconds
                   << " simulated seconds";
            outcome.detail = detail.str();
            continue;
        }
        outcome.status = AlertStatus::Fired;
    }
}

std::size_t
AlertEngine::firedCount(AlertSeverity severity) const
{
    std::size_t fired = 0;
    for (std::size_t i = 0; i < rules_.size(); ++i)
        if (outcomes_[i].status == AlertStatus::Fired &&
            rules_[i].severity == severity)
            ++fired;
    return fired;
}

int
AlertEngine::exitCode() const
{
    if (firedCount(AlertSeverity::Critical))
        return 4;
    if (firedCount(AlertSeverity::Warn))
        return 3;
    return 0;
}

Json
AlertEngine::toJson() const
{
    Json root = Json::object();
    root["schema"] = "pcap-alerts-v1";
    Json &rules = root["rules"];
    rules = Json::array();
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        const AlertRule &rule = rules_[i];
        const AlertOutcome &outcome = outcomes_[i];
        Json entry = Json::object();
        entry["name"] = rule.name;
        entry["severity"] = alertSeverityName(rule.severity);
        entry["kind"] = alertKindName(rule.kind);
        entry["op"] = alertComparatorName(rule.op);
        entry["threshold"] = rule.value;
        if (rule.forSimSeconds > 0.0)
            entry["for_sim_seconds"] = rule.forSimSeconds;
        if (rule.kind == AlertKind::Quantile) {
            entry["distribution"] = rule.distribution;
            entry["q"] = rule.q;
            if (!rule.policy.empty())
                entry["policy"] = rule.policy;
        }
        entry["status"] = alertStatusName(outcome.status);
        if (outcome.hasValue)
            entry["value"] = outcome.value;
        entry["evidence_sim_seconds"] = outcome.evidenceSimSeconds;
        if (!outcome.detail.empty())
            entry["detail"] = outcome.detail;
        rules.push(std::move(entry));
    }
    Json &fired = root["fired"];
    fired = Json::array();
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        if (outcomes_[i].status != AlertStatus::Fired)
            continue;
        Json entry = Json::object();
        entry["rule"] = rules_[i].name;
        entry["severity"] = alertSeverityName(rules_[i].severity);
        fired.push(std::move(entry));
    }
    root["warn_fired"] = firedCount(AlertSeverity::Warn);
    root["critical_fired"] = firedCount(AlertSeverity::Critical);
    root["exit_code"] = exitCode();
    return root;
}

void
AlertEngine::recordMetrics(MetricsRegistry &registry) const
{
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        if (outcomes_[i].status != AlertStatus::Fired)
            continue;
        registry
            .counter("pcap_alerts_fired_total",
                     {{"rule", rules_[i].name},
                      {"severity",
                       alertSeverityName(rules_[i].severity)}})
            .inc();
    }
}

void
AlertEngine::printSummary(std::ostream &os) const
{
    os << "\n== alerts ==\n";
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        const AlertRule &rule = rules_[i];
        const AlertOutcome &outcome = outcomes_[i];
        os << rule.name << " [" << alertSeverityName(rule.severity)
           << "]: " << alertStatusName(outcome.status);
        if (outcome.hasValue) {
            std::ostringstream value;
            value << outcome.value;
            os << " (value " << value.str() << " "
               << alertComparatorName(rule.op) << " " << rule.value
               << ")";
        }
        if (!outcome.detail.empty())
            os << " — " << outcome.detail;
        os << "\n";
    }
    os << "fired: " << firedCount(AlertSeverity::Warn) << " warn, "
       << firedCount(AlertSeverity::Critical) << " critical\n";
}

} // namespace pcap::obs
