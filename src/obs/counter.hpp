/**
 * @file
 * Saturating confidence counter, as used throughout the branch
 * prediction literature the paper draws on (Smith 1981) and inside
 * our Learning Tree reconstruction.
 *
 * Folded into obs/ from util/counter.hpp when the metrics subsystem
 * was built, consolidating the counting primitives in one module;
 * unlike obs::Counter this one is a single-threaded predictor
 * building block, not an exported metric.
 */

#ifndef PCAP_OBS_COUNTER_HPP
#define PCAP_OBS_COUNTER_HPP

#include <cstdint>

#include "util/logging.hpp"

namespace pcap {

/**
 * An n-state saturating up/down counter.
 *
 * The counter holds a value in [0, max]. increment() and decrement()
 * saturate instead of wrapping. Confidence-style predictors treat
 * values in the upper half as "taken"/"predict".
 */
class SaturatingCounter
{
  public:
    /**
     * @param max Largest representable value (>= 1).
     * @param initial Starting value, clamped into [0, max].
     */
    explicit SaturatingCounter(std::uint8_t max = 3,
                               std::uint8_t initial = 0)
        : max_(max), value_(initial > max ? max : initial)
    {
        if (max == 0)
            panic("SaturatingCounter: max must be >= 1");
    }

    /** Current value. */
    std::uint8_t value() const { return value_; }

    /** Largest representable value. */
    std::uint8_t max() const { return max_; }

    /** Increase by one, saturating at max. */
    void
    increment()
    {
        if (value_ < max_)
            ++value_;
    }

    /** Decrease by one, saturating at zero. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** True when the counter sits in the upper half of its range. */
    bool isConfident() const { return value_ * 2 > max_; }

    /** True when saturated at max. */
    bool isSaturated() const { return value_ == max_; }

    /** Reset to zero. */
    void reset() { value_ = 0; }

  private:
    std::uint8_t max_;
    std::uint8_t value_;
};

} // namespace pcap

#endif // PCAP_OBS_COUNTER_HPP
