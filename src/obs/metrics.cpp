#include "obs/metrics.hpp"

#include <algorithm>
#include <limits>

#include "util/logging.hpp"

namespace pcap::obs {

namespace {

/** Canonical sorted copy of a label set (stable series identity). */
Labels
canonical(Labels labels)
{
    std::sort(labels.begin(), labels.end());
    return labels;
}

/** Registry key of one series: name + sorted labels, separated by
 * characters that cannot appear in metric names. */
std::string
seriesKey(const std::string &name, const Labels &labels)
{
    std::string key = name;
    for (const Label &label : labels) {
        key += '\x1f';
        key += label.first;
        key += '\x1e';
        key += label.second;
    }
    return key;
}

} // namespace

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Gauge: return "gauge";
      case MetricKind::Histogram: return "histogram";
      case MetricKind::Timer: return "timer";
    }
    return "unknown";
}

// ---------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> uppers)
    : uppers_(std::move(uppers)), buckets_(uppers_.size() + 1)
{
    for (std::size_t i = 1; i < uppers_.size(); ++i) {
        if (uppers_[i] <= uppers_[i - 1])
            panic("Histogram: bucket bounds must be strictly "
                  "ascending");
    }
}

void
Histogram::observe(double v)
{
    std::size_t index = 0;
    while (index < uppers_.size() && v > uppers_[index])
        ++index;
    buckets_[index].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
}

void
Histogram::merge(const std::vector<std::uint64_t> &bucketCounts,
                 std::uint64_t count, double sum)
{
    if (bucketCounts.size() != buckets_.size())
        panic("Histogram::merge: bucket layout mismatch");
    for (std::size_t i = 0; i < bucketCounts.size(); ++i) {
        if (bucketCounts[i]) {
            buckets_[i].fetch_add(bucketCounts[i],
                                  std::memory_order_relaxed);
        }
    }
    count_.fetch_add(count, std::memory_order_relaxed);
    sum_.fetch_add(sum, std::memory_order_relaxed);
}

double
Histogram::upper(std::size_t i) const
{
    if (i < uppers_.size())
        return uppers_[i];
    return std::numeric_limits<double>::infinity();
}

// ---------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------

MetricsRegistry::Entry &
MetricsRegistry::entry(const std::string &name, const Labels &labels,
                       MetricKind kind,
                       const std::vector<double> *uppers)
{
    const Labels sorted = canonical(labels);
    const std::string key = seriesKey(name, sorted);

    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = entries_[key];
    if (!slot) {
        slot = std::make_unique<Entry>();
        slot->name = name;
        slot->labels = sorted;
        slot->kind = kind;
        switch (kind) {
          case MetricKind::Counter:
            slot->counter = std::make_unique<Counter>();
            break;
          case MetricKind::Gauge:
            slot->gauge = std::make_unique<Gauge>();
            break;
          case MetricKind::Histogram:
            slot->histogram = std::make_unique<Histogram>(
                uppers ? *uppers : std::vector<double>{});
            break;
          case MetricKind::Timer:
            slot->timer = std::make_unique<PhaseTimer>();
            break;
        }
    } else if (slot->kind != kind) {
        panic("MetricsRegistry: series '" + name +
              "' requested as " + metricKindName(kind) +
              " but registered as " + metricKindName(slot->kind));
    }
    return *slot;
}

Counter &
MetricsRegistry::counter(const std::string &name,
                         const Labels &labels)
{
    return *entry(name, labels, MetricKind::Counter, nullptr)
                .counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const Labels &labels)
{
    return *entry(name, labels, MetricKind::Gauge, nullptr).gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::vector<double> &uppers,
                           const Labels &labels)
{
    return *entry(name, labels, MetricKind::Histogram, &uppers)
                .histogram;
}

PhaseTimer &
MetricsRegistry::timer(const std::string &name, const Labels &labels)
{
    return *entry(name, labels, MetricKind::Timer, nullptr).timer;
}

void
MetricsRegistry::describe(const std::string &name,
                          const std::string &help)
{
    std::lock_guard<std::mutex> lock(mutex_);
    help_.try_emplace(name, help);
}

std::string
MetricsRegistry::helpFor(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = help_.find(name);
    return it == help_.end() ? std::string() : it->second;
}

std::vector<MetricsRegistry::Series>
MetricsRegistry::snapshot() const
{
    std::vector<Series> series;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        series.reserve(entries_.size());
        for (const auto &[key, entry] : entries_) {
            (void)key;
            Series s;
            s.name = entry->name;
            s.labels = entry->labels;
            s.kind = entry->kind;
            s.counter = entry->counter.get();
            s.gauge = entry->gauge.get();
            s.histogram = entry->histogram.get();
            s.timer = entry->timer.get();
            series.push_back(std::move(s));
        }
    }
    std::sort(series.begin(), series.end(),
              [](const Series &a, const Series &b) {
                  if (a.name != b.name)
                      return a.name < b.name;
                  return a.labels < b.labels;
              });
    return series;
}

std::size_t
MetricsRegistry::seriesCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

// ---------------------------------------------------------------
// ScopedMetrics
// ---------------------------------------------------------------

MetricsRegistry &
ScopedMetrics::registry() const
{
    if (registry_)
        return *registry_;
    // Disabled scopes record into a process-wide scratch registry
    // that nothing ever exports, so callers need no null checks.
    static MetricsRegistry scratch;
    return scratch;
}

Labels
ScopedMetrics::merged(const Labels &extra) const
{
    if (extra.empty())
        return labels_;
    Labels all = labels_;
    all.insert(all.end(), extra.begin(), extra.end());
    return all;
}

ScopedMetrics
ScopedMetrics::with(const Labels &extra) const
{
    return ScopedMetrics(registry_, merged(extra));
}

Counter &
ScopedMetrics::counter(const std::string &name,
                       const Labels &extra) const
{
    return registry().counter(name, merged(extra));
}

Gauge &
ScopedMetrics::gauge(const std::string &name,
                     const Labels &extra) const
{
    return registry().gauge(name, merged(extra));
}

Histogram &
ScopedMetrics::histogram(const std::string &name,
                         const std::vector<double> &uppers,
                         const Labels &extra) const
{
    return registry().histogram(name, uppers, merged(extra));
}

PhaseTimer &
ScopedMetrics::timer(const std::string &name,
                     const Labels &extra) const
{
    return registry().timer(name, merged(extra));
}

} // namespace pcap::obs
