#include "obs/manifest.hpp"

#include <cstdio>
#include <ctime>
#include <fstream>

namespace pcap::obs {

BuildInfo
collectBuildInfo()
{
    BuildInfo info;
    char buffer[64];
#if defined(__clang__)
    info.compiler = "clang";
    std::snprintf(buffer, sizeof buffer, "%d.%d.%d",
                  __clang_major__, __clang_minor__,
                  __clang_patchlevel__);
    info.compilerVersion = buffer;
#elif defined(__GNUC__)
    info.compiler = "gcc";
    std::snprintf(buffer, sizeof buffer, "%d.%d.%d", __GNUC__,
                  __GNUC_MINOR__, __GNUC_PATCHLEVEL__);
    info.compilerVersion = buffer;
#else
    info.compiler = "unknown";
    info.compilerVersion = "unknown";
#endif

#if defined(PCAP_BUILD_TYPE)
    info.buildType = PCAP_BUILD_TYPE;
#endif

#if defined(__cplusplus)
    // 202002L -> "c++20"; report the raw value for anything newer
    // or nonstandard rather than guessing.
    if (__cplusplus >= 202302L)
        info.cxxStandard = "c++23";
    else if (__cplusplus >= 202002L)
        info.cxxStandard = "c++20";
    else if (__cplusplus >= 201703L)
        info.cxxStandard = "c++17";
    else {
        std::snprintf(buffer, sizeof buffer, "%ld",
                      static_cast<long>(__cplusplus));
        info.cxxStandard = buffer;
    }
#endif

#if defined(__SANITIZE_ADDRESS__)
    info.sanitizers.push_back("address");
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
    info.sanitizers.push_back("address");
#endif
#endif
#if defined(__SANITIZE_THREAD__)
    info.sanitizers.push_back("thread");
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
    info.sanitizers.push_back("thread");
#endif
#endif
#if defined(PCAP_SANITIZE_BUILD)
    // UBSan defines no feature macro; the build system records the
    // combined ASan+UBSan configuration explicitly instead.
    if (info.sanitizers.empty() ||
        info.sanitizers.front() != "undefined")
        info.sanitizers.push_back("undefined");
#endif
    return info;
}

Json
RunManifest::toJson() const
{
    Json root = Json::object();
    root["schema"] = kManifestSchema;
    root["created_at_utc"] = createdAtUtc;
    root["git_describe"] = gitDescribe;
    root["command"] = command;

    Json &config = root["config"];
    config = Json::object();
    config["seed"] = seed;
    config["jobs"] = jobs;
    config["max_executions"] = maxExecutions;
    if (fleetHosts)
        config["fleet_hosts"] = fleetHosts;

    Json &cache = root["workload_cache"];
    cache = Json::object();
    cache["enabled"] = workloadCacheEnabled;
    cache["directory"] = workloadCacheDir;

    Json &keys = root["input_keys"];
    keys = Json::object();
    for (const auto &[app, key] : inputKeys)
        keys[app] = key;

    Json &phases = root["phase_ms"];
    phases = Json::object();
    for (const auto &[phase, ms] : phaseMs)
        phases[phase] = ms;

    Json &report_list = root["reports"];
    report_list = Json::array();
    for (const std::string &report : reports)
        report_list.push(report);

    Json &outputs = root["outputs"];
    outputs = Json::object();
    outputs["results"] = resultsPath;
    outputs["prometheus"] = prometheusPath;

    Json &buildJson = root["build"];
    buildJson = Json::object();
    buildJson["compiler"] = build.compiler;
    buildJson["compiler_version"] = build.compilerVersion;
    buildJson["build_type"] = build.buildType;
    buildJson["cxx_standard"] = build.cxxStandard;
    Json &sanitizers = buildJson["sanitizers"];
    sanitizers = Json::array();
    for (const std::string &name : build.sanitizers)
        sanitizers.push(name);

    if (!perfBackend.empty()) {
        Json &perf = root["perf"];
        perf = Json::object();
        perf["requested"] = perfRequested;
        perf["backend"] = perfBackend;
        perf["detail"] = perfDetail;
    }
    return root;
}

std::string
isoTimestampUtc()
{
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    char buffer[32];
    std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ",
                  &utc);
    return buffer;
}

std::string
collectGitDescribe(const std::string &dir)
{
    // Best effort: a sandbox without git (or outside a work tree)
    // yields "unknown", never a failed run.
    const std::string command =
        "git -C '" + dir + "' describe --always --dirty 2>/dev/null";
    FILE *pipe = popen(command.c_str(), "r");
    if (!pipe)
        return "unknown";
    char buffer[128];
    std::string out;
    while (std::fgets(buffer, sizeof(buffer), pipe))
        out += buffer;
    pclose(pipe);
    while (!out.empty() &&
           (out.back() == '\n' || out.back() == '\r'))
        out.pop_back();
    return out.empty() ? "unknown" : out;
}

std::string
writeManifest(const RunManifest &manifest, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        return "cannot open " + path + " for writing";
    manifest.toJson().dump(os);
    os << "\n";
    os.flush();
    if (!os)
        return "write to " + path + " failed";
    return "";
}

} // namespace pcap::obs
