#include "obs/manifest.hpp"

#include <cstdio>
#include <ctime>
#include <fstream>

namespace pcap::obs {

Json
RunManifest::toJson() const
{
    Json root = Json::object();
    root["schema"] = kManifestSchema;
    root["created_at_utc"] = createdAtUtc;
    root["git_describe"] = gitDescribe;
    root["command"] = command;

    Json &config = root["config"];
    config = Json::object();
    config["seed"] = seed;
    config["jobs"] = jobs;
    config["max_executions"] = maxExecutions;
    if (fleetHosts)
        config["fleet_hosts"] = fleetHosts;

    Json &cache = root["workload_cache"];
    cache = Json::object();
    cache["enabled"] = workloadCacheEnabled;
    cache["directory"] = workloadCacheDir;

    Json &keys = root["input_keys"];
    keys = Json::object();
    for (const auto &[app, key] : inputKeys)
        keys[app] = key;

    Json &phases = root["phase_ms"];
    phases = Json::object();
    for (const auto &[phase, ms] : phaseMs)
        phases[phase] = ms;

    Json &report_list = root["reports"];
    report_list = Json::array();
    for (const std::string &report : reports)
        report_list.push(report);

    Json &outputs = root["outputs"];
    outputs = Json::object();
    outputs["results"] = resultsPath;
    outputs["prometheus"] = prometheusPath;
    return root;
}

std::string
isoTimestampUtc()
{
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    char buffer[32];
    std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ",
                  &utc);
    return buffer;
}

std::string
collectGitDescribe(const std::string &dir)
{
    // Best effort: a sandbox without git (or outside a work tree)
    // yields "unknown", never a failed run.
    const std::string command =
        "git -C '" + dir + "' describe --always --dirty 2>/dev/null";
    FILE *pipe = popen(command.c_str(), "r");
    if (!pipe)
        return "unknown";
    char buffer[128];
    std::string out;
    while (std::fgets(buffer, sizeof(buffer), pipe))
        out += buffer;
    pclose(pipe);
    while (!out.empty() &&
           (out.back() == '\n' || out.back() == '\r'))
        out.pop_back();
    return out.empty() ? "unknown" : out;
}

std::string
writeManifest(const RunManifest &manifest, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        return "cannot open " + path + " for writing";
    manifest.toJson().dump(os);
    os << "\n";
    os.flush();
    if (!os)
        return "write to " + path + " failed";
    return "";
}

} // namespace pcap::obs
