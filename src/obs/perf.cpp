#include "obs/perf.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>

#include "obs/metrics.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace pcap::obs {

namespace {

std::atomic<PerfProfiler *> gProfiler{nullptr};

/** Source of PerfProfiler::generation_ ids. Never reused, so a
 * thread slot left behind by a destroyed profiler can never match a
 * new one — even when the stack hands the new profiler the old
 * profiler's address. */
std::atomic<std::uint64_t> gProfilerGeneration{0};

/** Per-thread group cache, keyed by the owning profiler's generation
 * id so a fresh profiler never sees a stale pointer (same discipline
 * as the trace recorder's buffer slot). */
struct ThreadSlot
{
    std::uint64_t owner = 0; ///< profiler generation, 0 = none
    void *group = nullptr;
};

thread_local ThreadSlot tSlot;

std::uint64_t
monotonicNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Thread CPU time (user + system) in nanoseconds — the software
 * backend's stand-in for the task-clock counter. */
std::uint64_t
threadCpuNowNs()
{
#if defined(__linux__)
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
        return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
               static_cast<std::uint64_t>(ts.tv_nsec);
    rusage usage{};
    if (getrusage(RUSAGE_THREAD, &usage) == 0) {
        const auto toNs = [](const timeval &tv) {
            return static_cast<std::uint64_t>(tv.tv_sec) *
                       1000000000ull +
                   static_cast<std::uint64_t>(tv.tv_usec) * 1000ull;
        };
        return toNs(usage.ru_utime) + toNs(usage.ru_stime);
    }
#endif
    return 0;
}

std::uint64_t
saturatingSub(std::uint64_t a, std::uint64_t b)
{
    return a > b ? a - b : 0;
}

#if defined(__linux__)

/** PerfCounts slot indices: which field a group value lands in. */
enum PerfSlot
{
    SlotCycles = 0,
    SlotInstructions,
    SlotCacheReferences,
    SlotCacheMisses,
    SlotBranchMisses,
    SlotTaskClock,
};

struct EventSpec
{
    std::uint32_t type;
    std::uint64_t config;
    int slot;
};

/** The group, leader first. task-clock is a software event but the
 * kernel allows it as a sibling in a hardware group. */
constexpr EventSpec kEvents[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, SlotCycles},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS,
     SlotInstructions},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES,
     SlotCacheReferences},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES,
     SlotCacheMisses},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES,
     SlotBranchMisses},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK, SlotTaskClock},
};

int
openPerfEvent(const EventSpec &spec, int groupFd)
{
    perf_event_attr attr{};
    attr.size = sizeof attr;
    attr.type = spec.type;
    attr.config = spec.config;
    // The leader starts disabled so the whole group enables as one
    // unit; siblings inherit the leader's run state.
    attr.disabled = groupFd == -1 ? 1 : 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP |
                       PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    return static_cast<int>(syscall(SYS_perf_event_open, &attr, 0,
                                    -1, groupFd, 0));
}

std::string
openFailureDetail(int err)
{
    std::string detail = "perf_event_open failed: ";
    detail += std::strerror(err);
    if (err == ENOENT)
        detail += " (hardware events unsupported here — VM or "
                  "container without PMU access)";
    if (err == ENOSYS)
        detail += " (perf_event_open not implemented/allowed in "
                  "this kernel or sandbox)";
    if (err == EACCES || err == EPERM) {
        std::ifstream in("/proc/sys/kernel/perf_event_paranoid");
        std::string level;
        if (in && std::getline(in, level))
            detail += " (perf_event_paranoid=" + level + ")";
    }
    return detail;
}

#endif // __linux__

double
safeRatio(std::uint64_t numer, std::uint64_t denom)
{
    return denom == 0
               ? 0.0
               : static_cast<double>(numer) /
                     static_cast<double>(denom);
}

} // namespace

const char *
perfBackendName(PerfBackend backend)
{
    return backend == PerfBackend::Hardware ? "hardware"
                                            : "software";
}

void
PerfCounts::add(const PerfCounts &other)
{
    cycles += other.cycles;
    instructions += other.instructions;
    cacheReferences += other.cacheReferences;
    cacheMisses += other.cacheMisses;
    branchMisses += other.branchMisses;
    taskClockNs += other.taskClockNs;
    timeEnabledNs += other.timeEnabledNs;
    timeRunningNs += other.timeRunningNs;
    multiplexed = multiplexed || other.multiplexed;
}

PerfCounts
PerfCounts::since(const PerfCounts &start) const
{
    PerfCounts delta;
    delta.cycles = saturatingSub(cycles, start.cycles);
    delta.instructions =
        saturatingSub(instructions, start.instructions);
    delta.cacheReferences =
        saturatingSub(cacheReferences, start.cacheReferences);
    delta.cacheMisses = saturatingSub(cacheMisses, start.cacheMisses);
    delta.branchMisses =
        saturatingSub(branchMisses, start.branchMisses);
    delta.taskClockNs = saturatingSub(taskClockNs, start.taskClockNs);
    delta.timeEnabledNs =
        saturatingSub(timeEnabledNs, start.timeEnabledNs);
    delta.timeRunningNs =
        saturatingSub(timeRunningNs, start.timeRunningNs);
    delta.multiplexed = multiplexed || start.multiplexed;
    return delta;
}

double
PerfCounts::ipc() const
{
    return safeRatio(instructions, cycles);
}

double
PerfCounts::cacheMissRate() const
{
    return safeRatio(cacheMisses, cacheReferences);
}

double
PerfCounts::branchMissRate() const
{
    return safeRatio(branchMisses, instructions);
}

PerfCounterGroup::PerfCounterGroup(PerfBackend backend)
    : backend_(backend)
{
#if defined(__linux__)
    if (backend_ == PerfBackend::Hardware) {
        for (const EventSpec &spec : kEvents) {
            const int fd = openPerfEvent(spec, leaderFd_);
            if (fd < 0) {
                if (leaderFd_ == -1) {
                    // Capture errno before anything else (clock
                    // reads, vector ops) can clobber it; probe()
                    // reports this, not the global errno.
                    openErrno_ = errno;
                    break; // no leader, no group
                }
                // A missing sibling (ENOENT on unusual PMUs) is
                // tolerable: that counter just reads 0.
                continue;
            }
            if (leaderFd_ == -1)
                leaderFd_ = fd;
            fds_.push_back(fd);
            slots_.push_back(spec.slot);
        }
        if (leaderFd_ >= 0) {
            counters_ = static_cast<int>(fds_.size());
            ioctl(leaderFd_, PERF_EVENT_IOC_RESET,
                  PERF_IOC_FLAG_GROUP);
            ioctl(leaderFd_, PERF_EVENT_IOC_ENABLE,
                  PERF_IOC_FLAG_GROUP);
            return;
        }
        backend_ = PerfBackend::Software;
    }
#else
    backend_ = PerfBackend::Software;
#endif
    softwareEpochNs_ = monotonicNowNs();
}

PerfCounterGroup::~PerfCounterGroup()
{
#if defined(__linux__)
    for (const int fd : fds_)
        close(fd);
#endif
}

PerfCounts
PerfCounterGroup::read() const
{
    PerfCounts counts;
#if defined(__linux__)
    if (backend_ == PerfBackend::Hardware) {
        // Group read layout with PERF_FORMAT_GROUP | TOTAL_TIME_*:
        // { u64 nr; u64 time_enabled; u64 time_running;
        //   u64 values[nr]; } in open order.
        std::uint64_t buf[3 + std::size(kEvents)] = {};
        const ssize_t n = ::read(leaderFd_, buf, sizeof buf);
        if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t)))
            return counts;
        const std::uint64_t nr = buf[0];
        const std::uint64_t enabled = buf[1];
        const std::uint64_t running = buf[2];
        counts.timeEnabledNs = enabled;
        counts.timeRunningNs = running;
        counts.multiplexed = running < enabled;
        // The standard multiplexing correction: inflate each value
        // by enabled/running to estimate the full-schedule count.
        const double scale =
            (running > 0 && running < enabled)
                ? static_cast<double>(enabled) /
                      static_cast<double>(running)
                : 1.0;
        std::uint64_t *const slot[] = {
            &counts.cycles,          &counts.instructions,
            &counts.cacheReferences, &counts.cacheMisses,
            &counts.branchMisses,    &counts.taskClockNs,
        };
        for (std::uint64_t i = 0;
             i < nr && i < slots_.size(); ++i) {
            const std::uint64_t raw = buf[3 + i];
            const std::uint64_t scaled =
                scale == 1.0
                    ? raw
                    : static_cast<std::uint64_t>(
                          static_cast<double>(raw) * scale);
            *slot[slots_[i]] = scaled;
        }
        return counts;
    }
#endif
    const std::uint64_t elapsed =
        saturatingSub(monotonicNowNs(), softwareEpochNs_);
    counts.taskClockNs = threadCpuNowNs();
    counts.timeEnabledNs = elapsed;
    counts.timeRunningNs = elapsed;
    return counts;
}

PerfCapability
PerfCounterGroup::probe()
{
    PerfCapability cap;
#if defined(__linux__)
    PerfCounterGroup group(PerfBackend::Hardware);
    if (group.backend() == PerfBackend::Hardware) {
        cap.hardware = true;
        cap.counters = group.counterCount();
        cap.detail = "ok";
        return cap;
    }
    cap.detail = openFailureDetail(group.openErrno_);
#else
    cap.detail = "perf_event_open unavailable (not Linux)";
#endif
    return cap;
}

PerfProfiler::PerfProfiler()
    : generation_(
          gProfilerGeneration.fetch_add(1,
                                        std::memory_order_relaxed) +
          1)
{
    capability_ = PerfCounterGroup::probe();
    backend_ = capability_.hardware ? PerfBackend::Hardware
                                    : PerfBackend::Software;
    detail_ = capability_.hardware ? "ok" : capability_.detail;

    if (const char *env = std::getenv("PCAP_PERF_BACKEND")) {
        const std::string mode = env;
        if (mode == "software") {
            backend_ = PerfBackend::Software;
            detail_ = "forced by PCAP_PERF_BACKEND=software";
        } else if (mode == "hardware") {
            if (capability_.hardware) {
                backend_ = PerfBackend::Hardware;
                detail_ = "forced by PCAP_PERF_BACKEND=hardware";
            } else {
                // The request cannot be honored without a working
                // probe: fall back to software, but say what was
                // asked for and why it failed.
                backend_ = PerfBackend::Software;
                detail_ = "PCAP_PERF_BACKEND=hardware requested "
                          "but probe failed: " +
                          capability_.detail;
            }
        } else if (mode != "auto" && !mode.empty()) {
            warn("unknown PCAP_PERF_BACKEND value \"" + mode +
                 "\" (want auto|hardware|software); using " +
                 perfBackendName(backend_));
        }
    }
}

PerfCounterGroup &
PerfProfiler::threadGroup()
{
    if (tSlot.owner != generation_) {
        std::lock_guard<std::mutex> lock(mutex_);
        auto group = std::make_unique<PerfCounterGroup>(backend_);
        tSlot.owner = generation_;
        tSlot.group = group.get();
        groups_.push_back(std::move(group));
    }
    return *static_cast<PerfCounterGroup *>(tSlot.group);
}

PerfCounts
PerfProfiler::snapshot()
{
    return threadGroup().read();
}

void
PerfProfiler::accumulate(const std::string &region,
                         const PerfCounts &delta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &entry : regions_) {
        if (entry.first == region) {
            entry.second.add(delta);
            return;
        }
    }
    regions_.emplace_back(region, delta);
}

std::vector<std::pair<std::string, PerfCounts>>
PerfProfiler::regions() const
{
    std::vector<std::pair<std::string, PerfCounts>> out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out = regions_;
    }
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    return out;
}

void
setPerfProfiler(PerfProfiler *profiler)
{
    gProfiler.store(profiler, std::memory_order_release);
}

PerfProfiler *
perfProfiler()
{
    return gProfiler.load(std::memory_order_acquire);
}

bool
perfEnabled()
{
    return perfProfiler() != nullptr;
}

PerfRegion::PerfRegion(std::string name)
    : PerfRegion(nullptr, nullptr)
{
    if (profiler_)
        name_ = std::move(name);
}

PerfRegion::PerfRegion(const char *name, PerfCounts *into)
    : profiler_(perfProfiler()), literal_(name), into_(into)
{
    if (profiler_)
        start_ = profiler_->snapshot();
}

PerfRegion::~PerfRegion()
{
    if (!profiler_)
        return;
    const PerfCounts delta = profiler_->snapshot().since(start_);
    if (into_)
        into_->add(delta);
    if (literal_)
        profiler_->accumulate(literal_, delta);
    else if (!name_.empty())
        profiler_->accumulate(name_, delta);
}

Json
perfCountsJson(const PerfCounts &counts)
{
    Json obj = Json::object();
    obj["cycles"] = counts.cycles;
    obj["instructions"] = counts.instructions;
    obj["cache_references"] = counts.cacheReferences;
    obj["cache_misses"] = counts.cacheMisses;
    obj["branch_misses"] = counts.branchMisses;
    obj["task_clock_ns"] = counts.taskClockNs;
    obj["time_enabled_ns"] = counts.timeEnabledNs;
    obj["time_running_ns"] = counts.timeRunningNs;
    obj["multiplexed"] = counts.multiplexed;
    obj["ipc"] = counts.ipc();
    obj["cache_miss_rate"] = counts.cacheMissRate();
    obj["branch_miss_rate"] = counts.branchMissRate();
    return obj;
}

Json
perfToJson(const PerfProfiler &profiler)
{
    Json block = Json::object();
    block["schema"] = "pcap-perf-v1";
    block["backend"] = perfBackendName(profiler.backend());
    block["detail"] = profiler.backendDetail();

    bool multiplexed = false;
    Json regions = Json::array();
    for (const auto &[name, counts] : profiler.regions()) {
        Json entry = perfCountsJson(counts);
        // Region name leads; rebuild with it first so the rendered
        // JSON reads name-then-numbers.
        Json named = Json::object();
        named["region"] = name;
        for (const std::string &key : entry.keys())
            named[key] = *entry.find(key);
        regions.push(std::move(named));
        multiplexed = multiplexed || counts.multiplexed;
    }
    block["multiplexed"] = multiplexed;
    block["regions"] = std::move(regions);
    return block;
}

void
recordPerfMetrics(const PerfProfiler &profiler,
                  MetricsRegistry &registry)
{
    registry.describe("pcap_perf_cycles_total",
                      "CPU cycles per measured perf region "
                      "(multiplexing-scaled).");
    registry.describe("pcap_perf_instructions_total",
                      "Retired instructions per measured perf "
                      "region.");
    registry.describe("pcap_perf_cache_references_total",
                      "Cache references per measured perf region.");
    registry.describe("pcap_perf_cache_misses_total",
                      "Cache misses per measured perf region.");
    registry.describe("pcap_perf_branch_misses_total",
                      "Branch misses per measured perf region.");
    registry.describe("pcap_perf_task_clock_seconds",
                      "Task-clock CPU time per measured perf "
                      "region.");
    registry.describe("pcap_perf_ipc",
                      "Instructions per cycle per measured perf "
                      "region.");
    registry.describe("pcap_perf_time_running_ratio",
                      "Fraction of enabled time the counter group "
                      "owned the PMU (1.0 = never multiplexed).");

    for (const auto &[name, counts] : profiler.regions()) {
        const Labels labels = {{"region", name}};
        registry.counter("pcap_perf_cycles_total", labels)
            .inc(counts.cycles);
        registry.counter("pcap_perf_instructions_total", labels)
            .inc(counts.instructions);
        registry.counter("pcap_perf_cache_references_total", labels)
            .inc(counts.cacheReferences);
        registry.counter("pcap_perf_cache_misses_total", labels)
            .inc(counts.cacheMisses);
        registry.counter("pcap_perf_branch_misses_total", labels)
            .inc(counts.branchMisses);
        registry.gauge("pcap_perf_task_clock_seconds", labels)
            .set(static_cast<double>(counts.taskClockNs) * 1e-9);
        registry.gauge("pcap_perf_ipc", labels).set(counts.ipc());
        registry.gauge("pcap_perf_time_running_ratio", labels)
            .set(counts.timeEnabledNs == 0
                     ? 1.0
                     : static_cast<double>(counts.timeRunningNs) /
                           static_cast<double>(
                               counts.timeEnabledNs));
    }
}

} // namespace pcap::obs
