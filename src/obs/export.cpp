#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace pcap::obs {

namespace {

/** Prometheus-compatible number: integers without a decimal point,
 * everything else shortest-round-trip-ish %.12g (matching the JSON
 * writer so the two exports agree). */
std::string
formatNumber(double value)
{
    if (std::isinf(value))
        return value > 0 ? "+Inf" : "-Inf";
    if (std::isnan(value))
        return "NaN";
    char buffer[40];
    if (value == std::floor(value) && std::fabs(value) < 9.0e15) {
        std::snprintf(buffer, sizeof(buffer), "%lld",
                      static_cast<long long>(value));
    } else {
        std::snprintf(buffer, sizeof(buffer), "%.12g", value);
    }
    return buffer;
}

/** Escape a Prometheus label value (backslash, quote, newline). */
std::string
escapeLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

/** Render one label set as {k="v",...}; extra pairs appended last
 * (used for the histogram "le" label). Empty set renders as "". */
std::string
labelBlock(const Labels &labels, const Labels &extra = {})
{
    if (labels.empty() && extra.empty())
        return "";
    std::string out = "{";
    bool first = true;
    auto append = [&](const Label &label) {
        if (!first)
            out += ',';
        first = false;
        out += label.first;
        out += "=\"";
        out += escapeLabelValue(label.second);
        out += '"';
    };
    for (const Label &label : labels)
        append(label);
    for (const Label &label : extra)
        append(label);
    out += '}';
    return out;
}

Json
labelsJson(const Labels &labels)
{
    Json object = Json::object();
    for (const Label &label : labels)
        object[label.first] = label.second;
    return object;
}

/** Timer series name with the seconds unit, avoiding "_seconds"
 * stutter when the registered name already carries it. */
std::string
timerSecondsName(const std::string &name)
{
    constexpr char kUnit[] = "_seconds";
    const std::size_t unit = sizeof(kUnit) - 1;
    if (name.size() >= unit &&
        name.compare(name.size() - unit, unit, kUnit) == 0)
        return name + "_total";
    return name + "_seconds_total";
}

} // namespace

Json
metricsToJson(const MetricsRegistry &registry)
{
    Json root = Json::object();
    root["schema"] = kMetricsSchema;
    Json &series = root["series"];
    series = Json::array();

    for (const MetricsRegistry::Series &s : registry.snapshot()) {
        Json entry = Json::object();
        entry["name"] = s.name;
        entry["type"] = metricKindName(s.kind);
        entry["labels"] = labelsJson(s.labels);
        switch (s.kind) {
          case MetricKind::Counter:
            entry["value"] = s.counter->value();
            break;
          case MetricKind::Gauge:
            entry["value"] = s.gauge->value();
            break;
          case MetricKind::Histogram: {
            entry["count"] = s.histogram->count();
            entry["sum"] = s.histogram->sum();
            Json &buckets = entry["buckets"];
            buckets = Json::array();
            for (std::size_t i = 0; i < s.histogram->bucketCount();
                 ++i) {
                Json bucket = Json::object();
                const double upper = s.histogram->upper(i);
                if (std::isinf(upper))
                    bucket["le"] = "+Inf";
                else
                    bucket["le"] = upper;
                bucket["count"] = s.histogram->bucketValue(i);
                buckets.push(std::move(bucket));
            }
            break;
          }
          case MetricKind::Timer:
            entry["seconds"] = s.timer->seconds();
            entry["laps"] = s.timer->laps();
            break;
        }
        series.push(std::move(entry));
    }
    return root;
}

void
writePrometheus(const MetricsRegistry &registry, std::ostream &os)
{
    std::string last_name;
    for (const MetricsRegistry::Series &s : registry.snapshot()) {
        if (s.name != last_name) {
            last_name = s.name;
            const std::string help = registry.helpFor(s.name);
            if (!help.empty())
                os << "# HELP " << s.name << ' ' << help << '\n';
            switch (s.kind) {
              case MetricKind::Counter:
                os << "# TYPE " << s.name << " counter\n";
                break;
              case MetricKind::Gauge:
                os << "# TYPE " << s.name << " gauge\n";
                break;
              case MetricKind::Histogram:
                os << "# TYPE " << s.name << " histogram\n";
                break;
              case MetricKind::Timer:
                os << "# TYPE " << timerSecondsName(s.name)
                   << " counter\n";
                break;
            }
        }
        switch (s.kind) {
          case MetricKind::Counter:
            os << s.name << labelBlock(s.labels) << ' '
               << formatNumber(
                      static_cast<double>(s.counter->value()))
               << '\n';
            break;
          case MetricKind::Gauge:
            os << s.name << labelBlock(s.labels) << ' '
               << formatNumber(s.gauge->value()) << '\n';
            break;
          case MetricKind::Histogram: {
            std::uint64_t cumulative = 0;
            for (std::size_t i = 0; i < s.histogram->bucketCount();
                 ++i) {
                cumulative += s.histogram->bucketValue(i);
                const double upper = s.histogram->upper(i);
                const std::string le = std::isinf(upper)
                                           ? std::string("+Inf")
                                           : formatNumber(upper);
                os << s.name << "_bucket"
                   << labelBlock(s.labels, {{"le", le}}) << ' '
                   << cumulative << '\n';
            }
            os << s.name << "_sum" << labelBlock(s.labels) << ' '
               << formatNumber(s.histogram->sum()) << '\n';
            os << s.name << "_count" << labelBlock(s.labels) << ' '
               << s.histogram->count() << '\n';
            break;
          }
          case MetricKind::Timer:
            os << timerSecondsName(s.name) << labelBlock(s.labels)
               << ' ' << formatNumber(s.timer->seconds()) << '\n';
            os << s.name << "_laps_total" << labelBlock(s.labels)
               << ' ' << s.timer->laps() << '\n';
            break;
        }
    }
}

} // namespace pcap::obs
