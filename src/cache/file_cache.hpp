/**
 * @file
 * File (page) cache simulator.
 *
 * Models the Linux file cache the way the paper's evaluation does
 * (Section 6): a 256 KB LRU cache in front of the disk, with a 30 s
 * timer between flushes of dirty data. Traced I/O operations are
 * filtered through the cache and only misses — plus dirty write-backs
 * — become disk accesses.
 */

#ifndef PCAP_CACHE_FILE_CACHE_HPP
#define PCAP_CACHE_FILE_CACHE_HPP

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "trace/event.hpp"
#include "trace/trace.hpp"
#include "util/types.hpp"

namespace pcap::cache {

/** Configuration of the file cache. */
struct CacheParams
{
    std::size_t capacityBytes = 256 * 1024; ///< paper: 256 Kbytes
    std::uint32_t blockSize = 4096;         ///< Linux page size
    TimeUs flushInterval = secondsUs(30);   ///< paper: 30 s timer
    /** How often the flush daemon checks dirty ages (Linux pdflush
     * wakes every five seconds). */
    TimeUs flushCheckPeriod = secondsUs(5);

    /** Number of blocks the cache holds. */
    std::size_t capacityBlocks() const
    {
        return capacityBytes / blockSize;
    }

    /** Empty string when consistent, else a problem description. */
    std::string validate() const;
};

/** Aggregate statistics of one cache run. */
struct CacheStats
{
    std::uint64_t lookups = 0;    ///< block lookups performed
    std::uint64_t hits = 0;       ///< block lookups that hit
    std::uint64_t misses = 0;     ///< block lookups that missed
    std::uint64_t evictions = 0;  ///< blocks evicted
    std::uint64_t writebackBlocks = 0; ///< dirty blocks written back
    std::uint64_t flushRuns = 0;  ///< periodic flush activations

    bool operator==(const CacheStats &other) const = default;

    /** Hit ratio in [0,1]; 0 when there were no lookups. */
    double hitRatio() const
    {
        return lookups ? static_cast<double>(hits) /
                             static_cast<double>(lookups)
                       : 0.0;
    }

    /** Fold another run's statistics into this one. */
    void merge(const CacheStats &other);
};

/**
 * Add @p stats to @p scope's pcap_file_cache_* counters. The stats
 * travel with the cached workload inputs, so the numbers are
 * identical whether the inputs were generated or deserialized.
 */
void recordCacheMetrics(const CacheStats &stats,
                        const obs::ScopedMetrics &scope);

/**
 * LRU file cache with write-back and periodic dirty-data flushes.
 *
 * Reads miss per block and produce disk reads; a write to an
 * uncached block is a read-modify-write fetch and reaches the disk
 * too. Write hits dirty the block without disk traffic; dirty blocks
 * are written back by the flush daemon once their age exceeds the
 * flush interval (checked every flushCheckPeriod, like Linux
 * pdflush) or when they are evicted. Opens probe a per-file metadata
 * block through the same machinery, so a first open of a file costs
 * a disk access while repeated opens are absorbed.
 *
 * Feed events in non-decreasing time order via access(), calling
 * advanceTo() liberally so periodic flushes happen on schedule;
 * flushAll() drains the dirty set at the end of a trace.
 */
class FileCache
{
  public:
    explicit FileCache(const CacheParams &params);

    /**
     * Run the periodic flush daemon for all activations due up to
     * @p time, appending write-back accesses to @p out.
     */
    void advanceTo(TimeUs time, std::vector<trace::DiskAccess> &out);

    /**
     * Apply one traced event (advanceTo(event.time) is implied) and
     * append any generated disk accesses to @p out.
     */
    void access(const trace::TraceEvent &event,
                std::vector<trace::DiskAccess> &out);

    /** Write back everything still dirty at @p time. */
    void flushAll(TimeUs time, std::vector<trace::DiskAccess> &out);

    /** Statistics accumulated so far. */
    const CacheStats &stats() const { return stats_; }

    /** Number of blocks currently resident. */
    std::size_t residentBlocks() const { return map_.size(); }

    /** Number of resident blocks that are dirty. */
    std::size_t dirtyBlocks() const;

    /** Drop all cached state (used between executions: cold cache). */
    void clear();

  private:
    /** Identity of one cached block: file id + block index. */
    using BlockKey = std::uint64_t;

    struct Block
    {
        BlockKey key;
        bool dirty = false;
        TimeUs dirtySince = 0; ///< when the block first became dirty
    };

    static BlockKey makeKey(FileId file, std::uint64_t block_index);

    /**
     * Look up one block; on miss, insert it (evicting as needed and
     * appending eviction write-backs to @p out). Returns true on hit.
     */
    bool touchBlock(BlockKey key, bool dirty, TimeUs time,
                    std::vector<trace::DiskAccess> &out);

    /** Evict the LRU block, appending a write-back if dirty. */
    void evictOne(TimeUs time, std::vector<trace::DiskAccess> &out);

    CacheParams params_;
    CacheStats stats_;
    // Front = most recently used.
    std::list<Block> lru_;
    std::unordered_map<BlockKey, std::list<Block>::iterator> map_;
    TimeUs nextFlush_;
};

/**
 * Convenience pipeline: filter a whole trace through a fresh cache,
 * returning the time-sorted disk access stream. @p stats_out, when
 * non-null, receives the cache statistics.
 */
std::vector<trace::DiskAccess>
filterTrace(const trace::Trace &trace, const CacheParams &params,
            CacheStats *stats_out = nullptr);

} // namespace pcap::cache

#endif // PCAP_CACHE_FILE_CACHE_HPP
