#include "cache/file_cache.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace pcap::cache {

namespace {

/** Block index used for a file's metadata (inode) probe on open(). */
constexpr std::uint64_t kMetadataBlockIndex = 0xffffffffull;

FileId
fileOfKey(std::uint64_t key)
{
    return static_cast<FileId>(key >> 32);
}

} // namespace

std::string
CacheParams::validate() const
{
    if (blockSize == 0)
        return "blockSize must be positive";
    if (capacityBytes < blockSize)
        return "capacity smaller than one block";
    if (flushInterval <= 0)
        return "flushInterval must be positive";
    if (flushCheckPeriod <= 0 || flushCheckPeriod > flushInterval)
        return "flushCheckPeriod must be in (0, flushInterval]";
    return {};
}

FileCache::FileCache(const CacheParams &params)
    : params_(params), nextFlush_(params.flushCheckPeriod)
{
    const std::string problem = params_.validate();
    if (!problem.empty())
        fatal("FileCache: bad parameters: " + problem);
}

FileCache::BlockKey
FileCache::makeKey(FileId file, std::uint64_t block_index)
{
    if (block_index > kMetadataBlockIndex)
        panic("FileCache: block index exceeds 32 bits");
    return (static_cast<std::uint64_t>(file) << 32) | block_index;
}

std::size_t
FileCache::dirtyBlocks() const
{
    std::size_t count = 0;
    for (const auto &block : lru_) {
        if (block.dirty)
            ++count;
    }
    return count;
}

void
FileCache::clear()
{
    lru_.clear();
    map_.clear();
    nextFlush_ = params_.flushCheckPeriod;
}

void
FileCache::evictOne(TimeUs time, std::vector<trace::DiskAccess> &out)
{
    if (lru_.empty())
        panic("FileCache::evictOne: cache empty");
    const Block victim = lru_.back();
    map_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
    if (victim.dirty) {
        trace::DiskAccess writeback;
        writeback.time = time;
        writeback.pid = kFlushDaemonPid;
        writeback.pc = kFlushDaemonPc;
        writeback.fd = -1;
        writeback.file = fileOfKey(victim.key);
        writeback.isWrite = true;
        writeback.blocks = 1;
        out.push_back(writeback);
        ++stats_.writebackBlocks;
    }
}

bool
FileCache::touchBlock(BlockKey key, bool dirty, TimeUs time,
                      std::vector<trace::DiskAccess> &out)
{
    ++stats_.lookups;
    auto it = map_.find(key);
    if (it != map_.end()) {
        ++stats_.hits;
        // Move to MRU position.
        lru_.splice(lru_.begin(), lru_, it->second);
        if (dirty) {
            // Re-dirtying refreshes the write-back timer, so data
            // being actively overwritten chases forward to the next
            // quiet period (the flush-timer behaviour the paper
            // notes was being tuned in the Linux community).
            it->second->dirty = true;
            it->second->dirtySince = time;
        }
        return true;
    }

    ++stats_.misses;
    while (map_.size() >= params_.capacityBlocks())
        evictOne(time, out);
    lru_.push_front(Block{key, dirty, time});
    map_[key] = lru_.begin();
    return false;
}

void
FileCache::advanceTo(TimeUs time, std::vector<trace::DiskAccess> &out)
{
    while (nextFlush_ <= time) {
        const TimeUs flush_time = nextFlush_;
        nextFlush_ += params_.flushCheckPeriod;
        ++stats_.flushRuns;

        // Age-based write-back, like Linux pdflush: once any block
        // has been dirty for the full flush interval, the daemon
        // syncs the whole dirty set in one batch (coalescing avoids
        // back-to-back partial flushes).
        bool expired = false;
        for (const auto &block : lru_) {
            if (block.dirty &&
                flush_time - block.dirtySince >=
                    params_.flushInterval) {
                expired = true;
                break;
            }
        }
        std::uint32_t flushed = 0;
        FileId any_file = 0;
        if (expired) {
            for (auto &block : lru_) {
                if (block.dirty) {
                    block.dirty = false;
                    ++flushed;
                    any_file = fileOfKey(block.key);
                }
            }
        }
        if (flushed > 0) {
            trace::DiskAccess writeback;
            writeback.time = flush_time;
            writeback.pid = kFlushDaemonPid;
            writeback.pc = kFlushDaemonPc;
            writeback.fd = -1;
            writeback.file = any_file;
            writeback.isWrite = true;
            writeback.blocks = flushed;
            out.push_back(writeback);
            stats_.writebackBlocks += flushed;
        }
    }
}

void
FileCache::access(const trace::TraceEvent &event,
                  std::vector<trace::DiskAccess> &out)
{
    advanceTo(event.time, out);

    std::uint32_t missed = 0;
    const bool is_write = event.type == trace::EventType::Write;

    switch (event.type) {
      case trace::EventType::Read:
      case trace::EventType::Write: {
        const std::uint64_t first = event.offset / params_.blockSize;
        const std::uint64_t span = event.size == 0 ? 1 : event.size;
        const std::uint64_t last =
            (event.offset + span - 1) / params_.blockSize;
        for (std::uint64_t block = first; block <= last; ++block) {
            const bool hit = touchBlock(makeKey(event.file, block),
                                        is_write, event.time, out);
            // A miss reaches the disk for reads and for writes alike
            // (a write to an uncached block is a read-modify-write
            // fetch); a write *hit* is absorbed and written back
            // later by the flush daemon.
            if (!hit)
                ++missed;
        }
        break;
      }
      case trace::EventType::Open: {
        const bool hit =
            touchBlock(makeKey(event.file, kMetadataBlockIndex),
                       false, event.time, out);
        if (!hit)
            ++missed;
        break;
      }
      case trace::EventType::Close:
      case trace::EventType::Fork:
      case trace::EventType::Exit:
        return;
    }

    if (missed > 0) {
        trace::DiskAccess access;
        access.time = event.time;
        access.pid = event.pid;
        access.pc = event.pc;
        access.fd = event.fd;
        access.file = event.file;
        access.isWrite = is_write;
        access.blocks = missed;
        out.push_back(access);
    }
}

void
FileCache::flushAll(TimeUs time, std::vector<trace::DiskAccess> &out)
{
    advanceTo(time, out);
    std::uint32_t flushed = 0;
    FileId any_file = 0;
    for (auto &block : lru_) {
        if (block.dirty) {
            block.dirty = false;
            ++flushed;
            any_file = fileOfKey(block.key);
        }
    }
    if (flushed > 0) {
        trace::DiskAccess writeback;
        writeback.time = time;
        writeback.pid = kFlushDaemonPid;
        writeback.pc = kFlushDaemonPc;
        writeback.fd = -1;
        writeback.file = any_file;
        writeback.isWrite = true;
        writeback.blocks = flushed;
        out.push_back(writeback);
        stats_.writebackBlocks += flushed;
    }
}

std::vector<trace::DiskAccess>
filterTrace(const trace::Trace &trace, const CacheParams &params,
            CacheStats *stats_out)
{
    FileCache cache(params);
    std::vector<trace::DiskAccess> accesses;
    for (const auto &event : trace.events())
        cache.access(event, accesses);
    cache.flushAll(trace.endTime(), accesses);

    std::stable_sort(accesses.begin(), accesses.end(),
                     [](const trace::DiskAccess &a,
                        const trace::DiskAccess &b) {
                         return a.time < b.time;
                     });
    if (stats_out)
        *stats_out = cache.stats();
    return accesses;
}

void
CacheStats::merge(const CacheStats &other)
{
    lookups += other.lookups;
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    writebackBlocks += other.writebackBlocks;
    flushRuns += other.flushRuns;
}

void
recordCacheMetrics(const CacheStats &stats,
                   const obs::ScopedMetrics &scope)
{
    scope.counter("pcap_file_cache_lookups_total").inc(stats.lookups);
    scope.counter("pcap_file_cache_hits_total").inc(stats.hits);
    scope.counter("pcap_file_cache_misses_total").inc(stats.misses);
    scope.counter("pcap_file_cache_evictions_total")
        .inc(stats.evictions);
    scope.counter("pcap_file_cache_writeback_blocks_total")
        .inc(stats.writebackBlocks);
    scope.counter("pcap_file_cache_flush_runs_total")
        .inc(stats.flushRuns);
}

} // namespace pcap::cache
