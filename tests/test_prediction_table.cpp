/**
 * @file
 * Prediction-table tests: lookup/training semantics, entry metadata,
 * LRU replacement under a capacity bound, and persistence.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/prediction_table.hpp"

namespace pcap::core {
namespace {

TableKey
key(std::uint32_t signature, std::uint16_t history = 0,
    std::uint8_t history_length = 0, Fd fd = -1)
{
    TableKey k;
    k.signature = signature;
    k.historyBits = history;
    k.historyLength = history_length;
    k.fd = fd;
    return k;
}

TEST(TableKey, EqualityCoversAllFields)
{
    EXPECT_EQ(key(1), key(1));
    EXPECT_NE(key(1), key(2));
    EXPECT_NE(key(1, 0b1), key(1, 0b0));
    EXPECT_NE(key(1, 0, 3), key(1, 0, 4));
    EXPECT_NE(key(1, 0, 0, 3), key(1, 0, 0, 4));
}

TEST(TableKey, HashDiscriminates)
{
    TableKeyHash hash;
    EXPECT_NE(hash(key(1)), hash(key(2)));
    EXPECT_NE(hash(key(1, 1, 1)), hash(key(1, 2, 1)));
    EXPECT_EQ(hash(key(7, 3, 2, 5)), hash(key(7, 3, 2, 5)));
}

TEST(PredictionTable, LookupMissesUntilTrained)
{
    PredictionTable table;
    EXPECT_FALSE(table.lookup(key(42)));
    EXPECT_TRUE(table.train(key(42)));
    EXPECT_TRUE(table.lookup(key(42)));
    EXPECT_EQ(table.size(), 1u);
}

TEST(PredictionTable, RetrainingBumpsCountNotSize)
{
    PredictionTable table;
    EXPECT_TRUE(table.train(key(42)));
    EXPECT_FALSE(table.train(key(42)));
    EXPECT_EQ(table.size(), 1u);
    EXPECT_EQ(table.entryOf(key(42)).trainings, 2u);
}

TEST(PredictionTable, LookupCountsHits)
{
    PredictionTable table;
    table.train(key(42));
    table.lookup(key(42));
    table.lookup(key(42));
    table.lookup(key(7)); // miss: no entry touched
    EXPECT_EQ(table.entryOf(key(42)).hits, 2u);
}

TEST(PredictionTable, ContainsDoesNotMutate)
{
    PredictionTable table;
    table.train(key(42));
    EXPECT_TRUE(table.contains(key(42)));
    EXPECT_FALSE(table.contains(key(43)));
    EXPECT_EQ(table.entryOf(key(42)).hits, 0u);
}

TEST(PredictionTable, EraseRemoves)
{
    PredictionTable table;
    table.train(key(42));
    EXPECT_TRUE(table.erase(key(42)));
    EXPECT_FALSE(table.erase(key(42)));
    EXPECT_FALSE(table.contains(key(42)));
}

TEST(PredictionTable, CapacityEnforcedWithLru)
{
    PredictionTable table(2);
    table.train(key(1));
    table.train(key(2));
    table.lookup(key(1)); // key 2 becomes LRU
    table.train(key(3));  // evicts key 2
    EXPECT_EQ(table.size(), 2u);
    EXPECT_TRUE(table.contains(key(1)));
    EXPECT_FALSE(table.contains(key(2)));
    EXPECT_TRUE(table.contains(key(3)));
    EXPECT_EQ(table.evictions(), 1u);
}

TEST(PredictionTable, EvictionHookSeesVictimKey)
{
    PredictionTable table(2);
    std::vector<TableKey> victims;
    table.setEvictionHook(
        [&victims](const TableKey &k) { victims.push_back(k); });
    table.train(key(1));
    table.train(key(2));
    EXPECT_TRUE(victims.empty()); // capacity not yet exceeded
    table.lookup(key(1));         // key 2 becomes LRU
    table.train(key(3));          // evicts key 2
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0], key(2));
    EXPECT_EQ(table.evictions(), 1u);

    table.setEvictionHook(nullptr); // detaching is safe
    table.train(key(4));            // evicts without a hook
    EXPECT_EQ(victims.size(), 1u);
    EXPECT_EQ(table.evictions(), 2u);
}

TEST(PredictionTable, TrainingRefreshesLruOrder)
{
    PredictionTable table(2);
    table.train(key(1));
    table.train(key(2));
    table.train(key(1)); // refresh key 1
    table.train(key(3)); // should evict key 2
    EXPECT_TRUE(table.contains(key(1)));
    EXPECT_FALSE(table.contains(key(2)));
}

TEST(PredictionTable, UnboundedByDefault)
{
    PredictionTable table;
    for (std::uint32_t i = 0; i < 1000; ++i)
        table.train(key(i));
    EXPECT_EQ(table.size(), 1000u);
    EXPECT_EQ(table.evictions(), 0u);
    EXPECT_EQ(table.capacity(), 0u);
}

TEST(PredictionTable, ClearEmpties)
{
    PredictionTable table;
    table.train(key(1));
    table.clear();
    EXPECT_EQ(table.size(), 0u);
    EXPECT_FALSE(table.contains(key(1)));
}

TEST(PredictionTable, KeysReturnsAllEntries)
{
    PredictionTable table;
    table.train(key(1));
    table.train(key(2, 5, 3, 7));
    const auto keys = table.keys();
    EXPECT_EQ(keys.size(), 2u);
}

TEST(PredictionTable, StorageBytesMatchPaperPacking)
{
    // Section 6.4.2: each entry encodes into one 4-byte word;
    // 139 entries -> 556 bytes.
    PredictionTable table;
    for (std::uint32_t i = 0; i < 139; ++i)
        table.train(key(i));
    EXPECT_EQ(table.storageBytes(), 556u);
}

TEST(PredictionTable, SaveLoadRoundTrip)
{
    PredictionTable table;
    table.train(key(0x12345678));
    table.train(key(42, 0b101101, 6, 3));
    table.train(key(7, 0, 0, -1));

    std::stringstream buffer;
    table.save(buffer);

    PredictionTable loaded;
    ASSERT_EQ(loaded.load(buffer), "");
    EXPECT_EQ(loaded.size(), 3u);
    EXPECT_TRUE(loaded.contains(key(0x12345678)));
    EXPECT_TRUE(loaded.contains(key(42, 0b101101, 6, 3)));
    EXPECT_TRUE(loaded.contains(key(7, 0, 0, -1)));
}

TEST(PredictionTable, LoadReplacesExistingContents)
{
    PredictionTable source;
    source.train(key(1));
    std::stringstream buffer;
    source.save(buffer);

    PredictionTable loaded;
    loaded.train(key(99));
    ASSERT_EQ(loaded.load(buffer), "");
    EXPECT_FALSE(loaded.contains(key(99)));
    EXPECT_TRUE(loaded.contains(key(1)));
}

TEST(PredictionTable, LoadRejectsGarbage)
{
    PredictionTable table;
    std::stringstream empty;
    EXPECT_NE(table.load(empty), "");

    std::stringstream bad_header("nonsense\n");
    EXPECT_NE(table.load(bad_header), "");

    std::stringstream bad_entry("# pcap-table v1 entries=1\nx y\n");
    EXPECT_NE(table.load(bad_entry), "");
}

TEST(PredictionTableDeath, EntryOfMissingKeyPanics)
{
    PredictionTable table;
    EXPECT_DEATH(table.entryOf(key(1)), "not present");
}

} // namespace
} // namespace pcap::core
