/**
 * @file
 * Property-based tests: invariants that must hold across randomized
 * scenario sweeps (TEST_P over seeds and configurations).
 *
 *  - the disk model conserves energy: the ledger equals a
 *    first-principles reconstruction from the same script;
 *  - the cache never exceeds capacity and its counters balance;
 *  - every policy's accuracy tallies balance against opportunity
 *    counts on randomized access streams;
 *  - signature arithmetic is order-insensitive (commutative sum).
 */

#include <gtest/gtest.h>

#include "cache/file_cache.hpp"
#include "core/signature.hpp"
#include "power/disk.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace pcap {
namespace {

// ---- Disk-model energy conservation --------------------------------

class DiskEnergyProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(DiskEnergyProperty, LedgerMatchesFirstPrinciples)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const power::DiskParams params = power::fujitsuMhf2043at();
    power::PowerManagedDisk disk(params);

    // Random request/shutdown script; mirror the timeline by hand.
    double busy_expected = 0.0;
    double gap_expected = 0.0; // idle + standby, all gaps
    double cycle_expected = 0.0;

    TimeUs now = 0;
    TimeUs completion = 0;
    for (int i = 0; i < 200; ++i) {
        const auto blocks = static_cast<std::uint32_t>(
            rng.uniformInt(1, 20));
        const TimeUs gap =
            secondsUs(rng.uniformReal(0.01, 25.0));
        now = completion + gap;

        // Maybe order a shutdown mid-gap, leaving room for the
        // spin-down transition to complete inside the gap so the
        // hand-mirror below stays simple.
        bool was_shut = false;
        TimeUs shut_at = 0;
        if (rng.chance(0.4) && gap > 2 * params.shutdownTime) {
            shut_at = completion +
                      secondsUs(rng.uniformReal(
                          0.0,
                          usToSeconds(gap -
                                      2 * params.shutdownTime)));
            was_shut = disk.shutdown(shut_at);
        }

        const TimeUs prev_completion = completion;
        completion = disk.request(now, blocks);

        if (was_shut) {
            gap_expected +=
                power::energyJ(params.idlePowerW,
                               shut_at - prev_completion) +
                power::energyJ(params.standbyPowerW,
                               now - shut_at -
                                   params.shutdownTime);
            cycle_expected +=
                params.shutdownEnergyJ + params.spinUpEnergyJ;
            busy_expected += power::energyJ(
                params.busyPowerW,
                static_cast<TimeUs>(blocks) *
                    params.serviceTimePerBlock);
        } else {
            gap_expected += power::energyJ(
                params.idlePowerW, now - prev_completion);
            busy_expected += power::energyJ(
                params.busyPowerW,
                static_cast<TimeUs>(blocks) *
                    params.serviceTimePerBlock);
        }
    }
    disk.finish(completion);

    const auto &ledger = disk.ledger();
    EXPECT_NEAR(ledger.get(power::EnergyCategory::BusyIo),
                busy_expected, 1e-6);
    EXPECT_NEAR(ledger.get(power::EnergyCategory::IdleShort) +
                    ledger.get(power::EnergyCategory::IdleLong),
                gap_expected, 1e-6);
    EXPECT_NEAR(ledger.get(power::EnergyCategory::PowerCycle),
                cycle_expected, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiskEnergyProperty,
                         ::testing::Range(1, 9));

// ---- Cache invariants ----------------------------------------------

struct CacheSweepParam
{
    int seed;
    std::size_t capacity_blocks;
};

class CacheProperty
    : public ::testing::TestWithParam<CacheSweepParam>
{
};

TEST_P(CacheProperty, CountersBalanceAndCapacityHolds)
{
    Rng rng(static_cast<std::uint64_t>(GetParam().seed));
    cache::CacheParams params;
    params.capacityBytes = GetParam().capacity_blocks * 4096;

    cache::FileCache cache(params);
    std::vector<trace::DiskAccess> out;
    TimeUs now = 0;
    std::uint64_t disk_read_blocks = 0;

    for (int i = 0; i < 2000; ++i) {
        now += static_cast<TimeUs>(rng.exponential(
            static_cast<double>(secondsUs(0.5))));
        trace::TraceEvent event;
        event.time = now;
        event.pid = 10;
        event.type = rng.chance(0.3) ? trace::EventType::Write
                                     : trace::EventType::Read;
        event.pc = 0x1000;
        event.fd = 3;
        event.file = static_cast<FileId>(rng.uniformInt(0, 20));
        event.offset = 4096 * static_cast<std::uint64_t>(
                                  rng.uniformInt(0, 40));
        event.size = static_cast<std::uint32_t>(
            4096 * rng.uniformInt(1, 4));

        out.clear();
        cache.access(event, out);
        ASSERT_LE(cache.residentBlocks(),
                  params.capacityBlocks());
        for (const auto &access : out) {
            if (!access.isWrite)
                disk_read_blocks += access.blocks;
        }
    }
    out.clear();
    cache.flushAll(now + secondsUs(60), out);
    EXPECT_EQ(cache.dirtyBlocks(), 0u);

    const cache::CacheStats &stats = cache.stats();
    EXPECT_EQ(stats.lookups, stats.hits + stats.misses);
    // Every read miss became a disk read block.
    EXPECT_LE(disk_read_blocks, stats.misses);
    EXPECT_GT(stats.hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheProperty,
    ::testing::Values(CacheSweepParam{1, 4}, CacheSweepParam{2, 16},
                      CacheSweepParam{3, 64},
                      CacheSweepParam{4, 256},
                      CacheSweepParam{5, 1}));

// ---- Accuracy-tally invariants over random streams ------------------

struct PolicySweepParam
{
    const char *label;
    int seed;
};

class AccuracyProperty
    : public ::testing::TestWithParam<PolicySweepParam>
{
  protected:
    static sim::PolicyConfig
    policyFor(const std::string &label)
    {
        if (label == "TP")
            return sim::PolicyConfig::timeoutPolicy();
        if (label == "LT")
            return sim::PolicyConfig::learningTree();
        if (label == "PCAPh")
            return sim::PolicyConfig::pcapHistory();
        if (label == "PCAPfh")
            return sim::PolicyConfig::pcapFdHistory();
        return sim::PolicyConfig::pcapBase();
    }
};

TEST_P(AccuracyProperty, TalliesBalanceOnRandomStreams)
{
    Rng rng(static_cast<std::uint64_t>(GetParam().seed) * 7919);
    sim::ExecutionInput input;
    input.app = "random";

    // Random multiprocess access stream with heavy-tailed gaps.
    TimeUs now = 0;
    const int pids = 3;
    const Pid pid_base = 100; // clear of the flush daemon's pid
    for (int i = 0; i < 400; ++i) {
        now += secondsUs(rng.logNormal(2.0, 1.5));
        trace::DiskAccess access;
        access.time = now;
        access.pid = static_cast<Pid>(
            pid_base + rng.uniformInt(0, pids - 1));
        access.pc = static_cast<Address>(
            0x1000 * rng.uniformInt(1, 8));
        access.fd = static_cast<Fd>(rng.uniformInt(3, 6));
        access.blocks = 1;
        input.accesses.push_back(access);
    }
    input.endTime = now + secondsUs(30);
    for (Pid pid = 0; pid < pids; ++pid)
        input.processes.push_back(
            {static_cast<Pid>(pid_base + pid), 0, input.endTime});
    input.processes.push_back(
        {kFlushDaemonPid, 0, input.endTime});

    sim::SimParams params;
    sim::PolicySession session(policyFor(GetParam().label));
    const sim::RunResult result =
        sim::runGlobal({input}, session, params);
    const sim::AccuracyStats &stats = result.accuracy;

    // Hits and not-predicted periods are bounded by opportunities;
    // misses may exceed them (short-gap shutdowns) but every
    // shutdown decision is accounted exactly once.
    EXPECT_LE(stats.hits() + stats.notPredicted,
              stats.opportunities);
    EXPECT_EQ(stats.opportunities,
              input.countGlobalOpportunities(params.breakeven()));
    // The disk performed no more spin-downs than decisions taken
    // (some orders are refused while busy).
    EXPECT_LE(result.shutdowns,
              stats.hits() + stats.misses());
    // Energy sanity: something was spent, never negative.
    EXPECT_GT(result.energy.total(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, AccuracyProperty,
    ::testing::Values(PolicySweepParam{"TP", 1},
                      PolicySweepParam{"TP", 2},
                      PolicySweepParam{"LT", 1},
                      PolicySweepParam{"LT", 2},
                      PolicySweepParam{"PCAP", 1},
                      PolicySweepParam{"PCAP", 2},
                      PolicySweepParam{"PCAPh", 1},
                      PolicySweepParam{"PCAPfh", 1}),
    [](const auto &info) {
        return std::string(info.param.label) + "_seed" +
               std::to_string(info.param.seed);
    });

// ---- Signature algebra ----------------------------------------------

class SignatureProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(SignatureProperty, SumIsOrderInsensitive)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    std::vector<Address> pcs;
    for (int i = 0; i < 32; ++i)
        pcs.push_back(static_cast<Address>(rng.next()));

    core::PathSignature forward;
    for (Address pc : pcs)
        forward.extend(pc);

    std::vector<Address> shuffled = pcs;
    for (std::size_t i = shuffled.size() - 1; i > 0; --i) {
        std::swap(shuffled[i],
                  shuffled[static_cast<std::size_t>(
                      rng.uniformInt(0, static_cast<int>(i)))]);
    }
    core::PathSignature backward;
    for (Address pc : shuffled)
        backward.extend(pc);

    EXPECT_EQ(forward.value(), backward.value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SignatureProperty,
                         ::testing::Range(1, 7));

} // namespace
} // namespace pcap
